// Reproduces the paper's Figure 9: (a) execution times of the EM3D algorithm
// under HMPI and plain MPI on the 9-machine heterogeneous network, and
// (b) the speedup of HMPI over MPI, as a function of problem size.
//
// Setup mirrors §5: nine workstations with relative speeds
// {46,46,46,46,46,46,176,106,9} on 100 Mbit switched Ethernet. The object is
// decomposed into nine irregular subbodies; the plain MPI version assigns
// subbody i to machine i (rank order), the HMPI version lets the runtime
// select the group from the Figure-4 performance model. The paper reports
// HMPI roughly 1.5x faster across sizes.
#include <vector>

#include "apps/em3d/app.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"

namespace {

using namespace hmpi;
using apps::em3d::DriverResult;
using apps::em3d::GeneratorConfig;
using apps::em3d::WorkMode;

GeneratorConfig config_for_scale(int scale) {
  // Irregular decomposition, scaled: rank order parks a mid-sized subbody on
  // the speed-9 machine and wastes the speed-106 machine on a tiny one.
  GeneratorConfig config;
  const int base[9] = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  for (int b : base) config.nodes_per_subbody.push_back(b * scale);
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 2003;
  return config;
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const int iterations = 8;

  support::Table times("Figure 9(a): EM3D execution time, HMPI vs MPI "
                       "(9-machine heterogeneous network)",
                       {"total_nodes", "mpi_time_s", "hmpi_time_s"});
  support::Table speedup("Figure 9(b): speedup of the HMPI EM3D program over MPI",
                         {"total_nodes", "speedup"});

  for (int scale : {1, 2, 4, 8, 16, 32}) {
    const GeneratorConfig config = config_for_scale(scale);
    long long total_nodes = 0;
    for (int n : config.nodes_per_subbody) total_nodes += n;

    DriverResult mpi =
        apps::em3d::run_mpi(cluster, config, iterations, WorkMode::kVirtualOnly);
    DriverResult hmpi = apps::em3d::run_hmpi(cluster, config, iterations,
                                             WorkMode::kVirtualOnly,
                                             /*k=*/100);

    times.add_row({support::Table::num(static_cast<long long>(total_nodes)),
                   support::Table::num(mpi.algorithm_time),
                   support::Table::num(hmpi.algorithm_time)});
    speedup.add_row({support::Table::num(static_cast<long long>(total_nodes)),
                     support::Table::num(mpi.algorithm_time / hmpi.algorithm_time, 3)});
  }

  bench::emit(times);
  bench::emit(speedup);
  bench::write_bench_json("fig09_em3d", {times, speedup});
  return 0;
}
