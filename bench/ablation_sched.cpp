// Ablation A13: the hmpictld scheduler service (docs/scheduler.md) on a
// 2000-job multi-tenant arrival trace.
//
// The baseline is slurm-without-plugins: FIFO order, exclusive machine
// leases, no backfill, no preemption — the discipline an HNOC inherits when
// every user simply runs mpirun against the whole cluster in turn. The
// treatment arm is the full hmpictld stack: priority + aging queues,
// residual-capacity group selection (leased machines re-priced at
// base/(1+leases) instead of excluded), conservative backfill behind the
// queue head's reservation, and checkpoint-aware preemption. Both arms
// execute every job as a real simulated HMPI run, so service times are
// measured, not modeled.
//
// Acceptance bars (DESIGN.md A13, enforced here — non-zero exit on miss):
//   * makespan(FIFO) / makespan(priority+backfill) >= 1.3
//   * utilization(priority+backfill) strictly > utilization(FIFO)
//   * zero correctness divergence: every job's result token equals its
//     uncontended reference run (preempt -> requeue -> re-dispatch included).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hnoc/cluster.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sinks.hpp"

namespace {

using namespace hmpi;

constexpr int kJobs = 2000;
constexpr std::uint64_t kSeed = 42;

/// Twelve machines in three speed tiers — heterogeneous enough that
/// placement quality matters, small enough that a wide job blocks a
/// meaningful fraction of the cluster under exclusive FIFO. The switched
/// network is a real LAN (1 ms / 2 MB/s), not the default infinite-bandwidth
/// fabric: transfer time is what co-tenants overlap, so multi-tenancy only
/// pays off when communication costs something.
hnoc::Cluster make_cluster() {
  hnoc::ClusterBuilder b;
  for (int i = 0; i < 12; ++i) {
    const double speed = i < 4 ? 100.0 : (i < 8 ? 80.0 : 60.0);
    b.add("m" + std::to_string(i), speed);
  }
  b.network(1e-3, 2e6);
  return b.build();
}

struct ArmResult {
  sched::SchedStats stats;
  long long divergences = 0;
};

ArmResult run_arm(const hnoc::Cluster& cluster,
                  const std::vector<sched::JobSpec>& trace,
                  const std::vector<std::uint64_t>& reference,
                  sched::SchedPolicy policy) {
  sched::SchedConfig config;
  config.policy = policy;
  config.slots_per_machine = 2;   // normalised to 1 for kFifo
  config.preempt_priority_gap = 2;  // only the lowest tier yields to the
                                    // highest: preemption stays surgical
  config.execute = true;
  sched::Scheduler scheduler(cluster, config);

  std::vector<sched::JobId> ids;
  ids.reserve(trace.size());
  for (const sched::JobSpec& spec : trace) ids.push_back(scheduler.submit(spec));
  scheduler.run_until_idle();

  ArmResult out;
  out.stats = scheduler.stats();
  for (std::size_t j = 0; j < ids.size(); ++j) {
    const auto info = scheduler.poll(ids[j]);
    if (!info || info->state != sched::JobState::kCompleted ||
        info->result != reference[j]) {
      ++out.divergences;
    }
  }
  return out;
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = make_cluster();

  bench::ArrivalTraceOptions options;
  options.jobs = kJobs;
  options.seed = kSeed;
  options.max_width = 10;           // wide jobs on 12 machines: FIFO's
                                    // head-of-line blocking is expensive
  options.ring_bytes = 1 << 20;     // ~0.5 s/hop at 2 MB/s: comm-bound jobs
  options.volume_scale = 15.0;      // ~50/50 compute/comm mix — co-tenants
                                    // genuinely overlap each other's transfers
  options.checkpoint_frac = 0.7;
  const std::vector<sched::JobSpec> trace = bench::make_arrival_trace(options);

  // The correctness oracle: each job run alone on an idle cluster. The body
  // token is placement-independent by construction, so a contended run that
  // was preempted, requeued, and re-dispatched must reproduce it exactly.
  std::vector<std::uint64_t> reference;
  reference.reserve(trace.size());
  for (const sched::JobSpec& spec : trace) {
    reference.push_back(sched::Scheduler::uncontended_run(cluster, spec));
  }

  const ArmResult fifo =
      run_arm(cluster, trace, reference, sched::SchedPolicy::kFifo);
  const ArmResult prio =
      run_arm(cluster, trace, reference, sched::SchedPolicy::kPriority);

  support::Table table(
      "Ablation A13: hmpictld vs FIFO/exclusive on a " +
          std::to_string(kJobs) + "-job arrival trace (12 machines)",
      {"policy", "makespan_s", "utilization", "mean_wait_s",
       "mean_turnaround_s", "throughput_jobs_s", "preempted", "backfilled",
       "divergences"});
  const auto add_arm = [&table](const char* name, const ArmResult& arm) {
    table.add_row({name, support::Table::num(arm.stats.makespan_s),
                   support::Table::num(arm.stats.utilization, 4),
                   support::Table::num(arm.stats.mean_wait_s),
                   support::Table::num(arm.stats.mean_turnaround_s),
                   support::Table::num(arm.stats.throughput_jobs_per_s, 4),
                   std::to_string(arm.stats.preempted),
                   std::to_string(arm.stats.backfilled),
                   std::to_string(arm.divergences)});
  };
  add_arm("fifo-exclusive", fifo);
  add_arm("priority+backfill", prio);

  const double speedup = prio.stats.makespan_s > 0.0
                             ? fifo.stats.makespan_s / prio.stats.makespan_s
                             : 0.0;
  support::Table verdict("A13 acceptance",
                         {"criterion", "value", "bar", "pass"});
  verdict.add_row({"makespan_speedup", support::Table::num(speedup, 3),
                   ">= 1.3", speedup >= 1.3 ? "yes" : "NO"});
  verdict.add_row(
      {"utilization_gain",
       support::Table::num(prio.stats.utilization - fifo.stats.utilization, 4),
       "> 0", prio.stats.utilization > fifo.stats.utilization ? "yes" : "NO"});
  verdict.add_row({"divergences",
                   std::to_string(fifo.divergences + prio.divergences), "== 0",
                   fifo.divergences + prio.divergences == 0 ? "yes" : "NO"});

  bench::emit(table);
  bench::emit(verdict);
  bench::write_bench_json("sched", {table, verdict});

  // This bench drives the Scheduler directly (no Runtime), so it honours the
  // metrics sink itself — CI validates the sched.* grammar in the dump.
  if (const telemetry::Sinks sinks = telemetry::Sinks::from_env();
      !sinks.metrics_json.empty()) {
    std::ofstream os(sinks.metrics_json);
    telemetry::metrics().write_json(os);
  }

  if (speedup < 1.3 || prio.stats.utilization <= fifo.stats.utilization ||
      fifo.divergences + prio.divergences != 0) {
    std::fprintf(stderr, "A13 acceptance FAILED (speedup %.3f, util %+0.4f, "
                         "divergences %lld)\n",
                 speedup, prio.stats.utilization - fifo.stats.utilization,
                 fifo.divergences + prio.divergences);
    return 1;
  }
  return 0;
}
