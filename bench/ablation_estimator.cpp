// Ablation A9 (DESIGN.md): the compiled cost IR and delta re-estimation
// (docs/estimator.md). Three tables on the paper's 9-machine EM3D testbed:
//   * A9a — Timeof microbench: pricing the same mappings through the pmdl
//     scheme interpreter vs Plan::evaluate. Enforces the >= 5x acceptance
//     bar and bit-identical values per mapping.
//   * A9b — end-to-end Group_create-shaped selection (portfolio mapper,
//     estimate cache on, the runtime defaults) across
//     {interpreter, compiled, compiled+delta} x {1, 2, 8} threads.
//     Enforces bit-identical selections across every mode/thread pairing.
//   * A9c — what the delta path saves: IR ops replayed vs the ops full
//     evaluation would have run, on the hill climbers. EM3D's scheme
//     touches every processor in its first phase (suffix ~ whole plan);
//     a staggered pipeline model shows the savings when entries stagger.
// Exit status 1 (FATAL on stderr) on any acceptance-bar violation.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "apps/em3d/app.hpp"
#include "bench_util.hpp"
#include "estimator/estimate_cache.hpp"
#include "estimator/estimator.hpp"
#include "estimator/plan.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"
#include "pmdl/model.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace hmpi;

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The Figure-4 EM3D instance over the irregular 9-subbody object (the same
/// workload ablation_mapper uses).
pmdl::ModelInstance em3d_instance() {
  apps::em3d::GeneratorConfig config;
  config.nodes_per_subbody = {4000, 5000, 7000, 5500, 6500, 6000, 8000, 1000,
                              2050};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 17;
  const apps::em3d::System system = apps::em3d::generate(config);
  pmdl::Model model = apps::em3d::performance_model();
  return model.instantiate(apps::em3d::model_parameters(system, /*k=*/1000));
}

/// Staggered pipeline: processor a enters the schedule only at phase a
/// (20 computes, then a transfer to a+1), so a move on a late slot leaves a
/// long untouched prefix — the shape the delta path exists for.
pmdl::ModelInstance pipeline_instance(int p) {
  pmdl::InstanceBuilder b("pipeline");
  b.shape({p});
  for (int a = 0; a < p; ++a) {
    b.node_volume(a, 400.0 + 40.0 * a);
    if (a + 1 < p) b.link(a, a + 1, 1e5);
  }
  b.scheme([p](pmdl::ScheduleSink& s) {
    for (long long a = 0; a < p; ++a) {
      const long long c[1] = {a};
      for (int r = 0; r < 20; ++r) s.compute(c, 5.0);
      if (a + 1 < p) {
        const long long d[1] = {a + 1};
        s.transfer(c, d, 100.0);
      }
    }
  });
  return b.build();
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const pmdl::ModelInstance instance = em3d_instance();
  const est::EstimateOptions options{};
  std::vector<map::Candidate> candidates;
  for (int i = 0; i < cluster.size(); ++i) candidates.push_back({i, i});

  std::vector<support::Table> exported;

  // --- A9a: Timeof microbench — interpreter vs compiled ------------------
  // The same random mappings priced by both backends, repeated enough that
  // wall times are meaningful. Values must match bit for bit (the plan
  // contract), and compiled must clear the 5x acceptance bar.
  {
    est::Plan plan(instance);
    std::vector<std::vector<int>> mappings;
    support::Rng rng(0x4139);  // "A9"
    for (int m = 0; m < 64; ++m) {
      std::vector<int> mapping(static_cast<std::size_t>(instance.size()));
      for (int& slot : mapping) {
        slot = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(net.size())));
      }
      mappings.push_back(std::move(mapping));
    }
    for (const std::vector<int>& mapping : mappings) {
      const double interpreted =
          est::estimate_time(instance, mapping, net, options);
      const double compiled = plan.evaluate(mapping, net, options);
      if (interpreted != compiled) {
        std::fprintf(stderr,
                     "FATAL: compiled Timeof diverged from the interpreter "
                     "(%.17g vs %.17g)\n",
                     compiled, interpreted);
        return 1;
      }
    }

    const int reps = 40;
    double sink = 0.0;
    const double interp_ms = wall_ms([&] {
      for (int r = 0; r < reps; ++r) {
        for (const std::vector<int>& mapping : mappings) {
          sink += est::estimate_time(instance, mapping, net, options);
        }
      }
    });
    const double compiled_ms = wall_ms([&] {
      for (int r = 0; r < reps; ++r) {
        for (const std::vector<int>& mapping : mappings) {
          sink += plan.evaluate(mapping, net, options);
        }
      }
    });
    const double evals = static_cast<double>(reps) *
                         static_cast<double>(mappings.size());
    const double speedup = interp_ms / compiled_ms;

    support::Table micro(
        "Ablation A9a: Timeof microbench (em3d, 9 machines, identical values)",
        {"backend", "evaluations", "wall_ms", "us_per_eval", "speedup"});
    micro.add_row({"interpreter", support::Table::num(evals, 0),
                   support::Table::num(interp_ms, 2),
                   support::Table::num(interp_ms * 1e3 / evals, 2), "1.00"});
    micro.add_row({"compiled", support::Table::num(evals, 0),
                   support::Table::num(compiled_ms, 2),
                   support::Table::num(compiled_ms * 1e3 / evals, 2),
                   support::Table::num(speedup, 2)});
    bench::emit(micro);
    exported.push_back(micro);
    std::printf("(checksum %.6g)\n\n", sink);

    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "FATAL: compiled Timeof speedup %.2fx is below the 5x "
                   "acceptance bar\n",
                   speedup);
      return 1;
    }
  }

  // --- A9b: end-to-end selection across estimator modes and threads ------
  // The Group_create workload with runtime defaults (portfolio mapper,
  // estimate cache on): every mode/thread pairing must reproduce the
  // interpreter's serial selection bit for bit.
  {
    const map::PortfolioMapper portfolio;

    struct Mode {
      const char* name;
      bool plans;
      bool delta;
    };
    const Mode modes[] = {{"interpreter", false, false},
                          {"compiled", true, false},
                          {"compiled+delta", true, true}};

    map::MappingResult baseline;
    double baseline_ms = 0.0;
    bool have_baseline = false;
    support::Table endtoend(
        "Ablation A9b: Group_create selection by estimator mode (em3d, "
        "portfolio mapper, cache on)",
        {"mode", "threads", "wall_ms", "speedup", "compiled_evals",
         "delta_evals", "identical"});

    for (const Mode& mode : modes) {
      for (int threads : {1, 2, 8}) {
        std::unique_ptr<support::ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<support::ThreadPool>(threads);
        est::EstimateCache cache;
        est::PlanCache plans;
        map::SearchContext context;
        context.pool = pool.get();
        context.cache = &cache;
        context.plans = mode.plans ? &plans : nullptr;
        context.delta = mode.delta;

        map::MappingResult result;
        const double ms = wall_ms([&] {
          result = portfolio.select(instance, candidates, 0, net, options,
                                    context);
        });
        if (!have_baseline) {
          baseline = result;
          baseline_ms = ms;
          have_baseline = true;
        }
        const bool identical =
            result.candidate_for_abstract == baseline.candidate_for_abstract &&
            result.estimated_time == baseline.estimated_time;
        if (!identical) {
          std::fprintf(stderr,
                       "FATAL: %s selection at %d threads diverged from the "
                       "interpreter baseline\n",
                       mode.name, threads);
          return 1;
        }
        endtoend.add_row(
            {mode.name, support::Table::num(threads, 0),
             support::Table::num(ms, 2), support::Table::num(baseline_ms / ms, 2),
             support::Table::num(result.stats.compiled_evaluations, 0),
             support::Table::num(result.stats.delta_evaluations, 0), "yes"});
      }
    }
    bench::emit(endtoend);
    exported.push_back(endtoend);
  }

  // --- A9c: delta suffix-replay savings on the hill climbers -------------
  // savings = 1 - ops_replayed / ops_total. EM3D's first phase touches
  // every processor, so its suffixes are nearly full-length; the staggered
  // pipeline is the favourable shape. Replayed includes the amortised
  // checkpoint rebuilds that follow accepted moves, so slightly negative
  // savings are possible on unfavourable models.
  {
    const pmdl::ModelInstance pipeline = pipeline_instance(net.size() - 1);
    const map::SwapRefineMapper refine;
    const map::AnnealingMapper anneal;

    support::Table savings(
        "Ablation A9c: delta replay savings (1 - ops_replayed/ops_total)",
        {"model", "mapper", "delta_evals", "ops_replayed", "ops_total",
         "savings"});
    struct Workload {
      const char* model;
      const pmdl::ModelInstance* instance;
      const char* mapper;
      const map::Mapper* algo;
    };
    const Workload workloads[] = {
        {"em3d", &instance, "swap-refine", &refine},
        {"em3d", &instance, "annealing", &anneal},
        {"pipeline", &pipeline, "swap-refine", &refine},
        {"pipeline", &pipeline, "annealing", &anneal},
    };
    for (const Workload& w : workloads) {
      est::PlanCache plans;
      map::SearchContext context;
      context.plans = &plans;
      context.delta = true;
      const map::MappingResult result =
          w.algo->select(*w.instance, candidates, 0, net, options, context);
      const double ratio =
          result.stats.delta_ops_total > 0
              ? 1.0 - static_cast<double>(result.stats.delta_ops_replayed) /
                          static_cast<double>(result.stats.delta_ops_total)
              : 0.0;
      savings.add_row(
          {w.model, w.mapper,
           support::Table::num(result.stats.delta_evaluations, 0),
           support::Table::num(result.stats.delta_ops_replayed, 0),
           support::Table::num(result.stats.delta_ops_total, 0),
           support::Table::num(ratio, 3)});
    }
    bench::emit(savings);
    exported.push_back(savings);
  }

  bench::write_bench_json("est", exported);
  return 0;
}
