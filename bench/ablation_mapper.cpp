// Ablation A1 (DESIGN.md): quality and cost of the process-selection
// algorithms. For the paper's two performance models, each mapper's
// predicted makespan is compared with the exhaustive optimum, along with
// the wall-clock cost of running the mapper itself.
#include <chrono>
#include <memory>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"

namespace {

using namespace hmpi;

struct Case {
  const char* name;
  pmdl::ModelInstance instance;
  const hnoc::Cluster* cluster;
};

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const hnoc::Cluster em3d_net = hnoc::testbeds::paper_em3d_network();
  const hnoc::Cluster mm_net = hnoc::testbeds::paper_mm_network();

  // EM3D instance: the Figure-4 model over an irregular 9-subbody object.
  apps::em3d::GeneratorConfig em3d_config;
  em3d_config.nodes_per_subbody = {4000, 5000, 7000, 5500, 6500, 6000, 8000, 1000, 2050};
  em3d_config.degree = 5;
  em3d_config.remote_fraction = 0.05;
  em3d_config.seed = 17;
  const apps::em3d::System system = apps::em3d::generate(em3d_config);
  pmdl::Model em3d_model = apps::em3d::performance_model();
  pmdl::ModelInstance em3d_instance = em3d_model.instantiate(
      apps::em3d::model_parameters(system, /*k=*/1000));

  // MM instance: the Figure-7 model on a 2x2 grid (kept small enough for
  // the exhaustive mapper to enumerate in reasonable time).
  pmdl::Model mm_model = apps::matmul::performance_model();
  std::vector<double> grid_speeds{106, 46, 46, 46};
  apps::matmul::Partition partition(2, 6, grid_speeds);
  pmdl::ModelInstance mm_instance = mm_model.instantiate(
      apps::matmul::model_parameters(2, 8, 24, partition));

  std::vector<Case> cases;
  cases.push_back({"em3d", std::move(em3d_instance), &em3d_net});
  cases.push_back({"matmul", std::move(mm_instance), &mm_net});

  support::Table table("Ablation A1: mapper quality (predicted makespan) and cost",
                       {"model", "mapper", "predicted_s", "vs_optimal", "wall_ms"});

  for (const Case& c : cases) {
    hnoc::NetworkModel net(*c.cluster);
    std::vector<map::Candidate> candidates;
    for (int i = 0; i < c.cluster->size(); ++i) candidates.push_back({i, i});

    std::vector<std::unique_ptr<map::Mapper>> mappers;
    mappers.push_back(std::make_unique<map::ExhaustiveMapper>(100'000'000));
    mappers.push_back(std::make_unique<map::GreedyMapper>());
    mappers.push_back(std::make_unique<map::SwapRefineMapper>());
    mappers.push_back(std::make_unique<map::AnnealingMapper>());

    double optimal = 0.0;
    for (const auto& mapper : mappers) {
      map::MappingResult result;
      const double ms = wall_ms([&] {
        result = mapper->select(c.instance, candidates, 0, net,
                                est::EstimateOptions{});
      });
      if (mapper->name() == "exhaustive") optimal = result.estimated_time;
      table.add_row({c.name, mapper->name(),
                     support::Table::num(result.estimated_time),
                     support::Table::num(result.estimated_time / optimal, 4),
                     support::Table::num(ms, 2)});
    }
  }

  bench::emit(table);
  return 0;
}
