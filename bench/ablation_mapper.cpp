// Ablation A1 (DESIGN.md): quality and cost of the process-selection
// algorithms. For the paper's two performance models, each mapper's
// predicted makespan is compared with the exhaustive optimum, along with
// the wall-clock cost of running the mapper itself.
// The second table (A1b) measures the parallel exhaustive search: wall-clock
// speedup over the serial enumeration at 1/2/4/8 threads, with and without
// the estimate cache, asserting the bit-identical-selection guarantee from
// docs/mapper.md along the way. The third (A1c) replays the paper's
// Timeof-then-Group_create pattern through a shared cache and reports the
// hit rate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "bench_util.hpp"
#include "estimator/estimate_cache.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace hmpi;

struct Case {
  const char* name;
  pmdl::ModelInstance instance;
  const hnoc::Cluster* cluster;
};

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const hnoc::Cluster em3d_net = hnoc::testbeds::paper_em3d_network();
  const hnoc::Cluster mm_net = hnoc::testbeds::paper_mm_network();

  // EM3D instance: the Figure-4 model over an irregular 9-subbody object.
  apps::em3d::GeneratorConfig em3d_config;
  em3d_config.nodes_per_subbody = {4000, 5000, 7000, 5500, 6500, 6000, 8000, 1000, 2050};
  em3d_config.degree = 5;
  em3d_config.remote_fraction = 0.05;
  em3d_config.seed = 17;
  const apps::em3d::System system = apps::em3d::generate(em3d_config);
  pmdl::Model em3d_model = apps::em3d::performance_model();
  pmdl::ModelInstance em3d_instance = em3d_model.instantiate(
      apps::em3d::model_parameters(system, /*k=*/1000));

  // MM instance: the Figure-7 model on a 2x2 grid (kept small enough for
  // the exhaustive mapper to enumerate in reasonable time).
  pmdl::Model mm_model = apps::matmul::performance_model();
  std::vector<double> grid_speeds{106, 46, 46, 46};
  apps::matmul::Partition partition(2, 6, grid_speeds);
  pmdl::ModelInstance mm_instance = mm_model.instantiate(
      apps::matmul::model_parameters(2, 8, 24, partition));

  std::vector<Case> cases;
  cases.push_back({"em3d", std::move(em3d_instance), &em3d_net});
  cases.push_back({"matmul", std::move(mm_instance), &mm_net});

  support::Table table("Ablation A1: mapper quality (predicted makespan) and cost",
                       {"model", "mapper", "predicted_s", "vs_optimal", "wall_ms"});

  for (const Case& c : cases) {
    hnoc::NetworkModel net(*c.cluster);
    std::vector<map::Candidate> candidates;
    for (int i = 0; i < c.cluster->size(); ++i) candidates.push_back({i, i});

    std::vector<std::unique_ptr<map::Mapper>> mappers;
    mappers.push_back(std::make_unique<map::ExhaustiveMapper>(100'000'000));
    mappers.push_back(std::make_unique<map::GreedyMapper>());
    mappers.push_back(std::make_unique<map::SwapRefineMapper>());
    mappers.push_back(std::make_unique<map::AnnealingMapper>());
    mappers.push_back(std::make_unique<map::PortfolioMapper>());

    double optimal = 0.0;
    for (const auto& mapper : mappers) {
      map::MappingResult result;
      const double ms = wall_ms([&] {
        result = mapper->select(c.instance, candidates, 0, net,
                                est::EstimateOptions{});
      });
      if (mapper->name() == "exhaustive") optimal = result.estimated_time;
      table.add_row({c.name, mapper->name(),
                     support::Table::num(result.estimated_time),
                     support::Table::num(result.estimated_time / optimal, 4),
                     support::Table::num(ms, 2)});
    }
  }

  bench::emit(table);

  // Scoped tables are copied out so one BENCH_ file carries all three.
  std::vector<support::Table> exported;
  exported.push_back(table);

  // --- A1b: parallel exhaustive search on the 9-machine paper cluster ----
  // 8! = 40320 arrangements with the parent pinned; the chunked search must
  // return the serial selection bit-for-bit at every thread count.
  {
    hnoc::NetworkModel net(em3d_net);
    std::vector<map::Candidate> candidates;
    for (int i = 0; i < em3d_net.size(); ++i) candidates.push_back({i, i});
    const map::ExhaustiveMapper exhaustive(100'000'000);
    const pmdl::ModelInstance& instance = cases[0].instance;

    map::MappingResult serial;
    const double serial_ms = wall_ms([&] {
      serial = exhaustive.select(instance, candidates, 0, net,
                                 est::EstimateOptions{});
    });

    // Wall-clock speedup is bounded by the cores actually available; the
    // bit-identity column is hardware-independent.
    std::printf("hardware_concurrency: %u\n\n",
                std::thread::hardware_concurrency());
    support::Table scaling(
        "Ablation A1b: parallel exhaustive search (em3d, 9 machines)",
        {"threads", "cache", "wall_ms", "speedup", "hit_rate", "identical"});
    scaling.add_row({"1", "off", support::Table::num(serial_ms, 2), "1.00",
                     "0.00", "yes"});
    for (bool cached : {false, true}) {
      for (int threads : {2, 4, 8}) {
        support::ThreadPool pool(threads);
        est::EstimateCache cache;
        map::SearchContext context;
        context.pool = &pool;
        if (cached) context.cache = &cache;
        map::MappingResult result;
        const double ms = wall_ms([&] {
          result = exhaustive.select(instance, candidates, 0, net,
                                     est::EstimateOptions{}, context);
        });
        const bool identical =
            result.candidate_for_abstract == serial.candidate_for_abstract &&
            result.estimated_time == serial.estimated_time;
        if (!identical) {
          std::fprintf(stderr,
                       "FATAL: parallel exhaustive selection diverged at "
                       "%d threads (cache %s)\n",
                       threads, cached ? "on" : "off");
          return 1;
        }
        scaling.add_row({support::Table::num(threads, 0), cached ? "on" : "off",
                         support::Table::num(ms, 2),
                         support::Table::num(serial_ms / ms, 2),
                         support::Table::num(result.stats.hit_rate(), 2),
                         "yes"});
      }
    }
    bench::emit(scaling);
    exported.push_back(scaling);
  }

  // --- A1c: estimate-cache hit rate on the swap-refine workload ----------
  // The canonical runtime sequence: HMPI_Timeof to decide whether a group is
  // worth creating, HMPI_Group_create to build it, and a group_respawn-style
  // re-selection (docs/faults.md) later on — three identical searches over
  // an unchanged network sharing the runtime's cache. Everything after the
  // first search is answered from memory.
  {
    hnoc::NetworkModel net(em3d_net);
    std::vector<map::Candidate> candidates;
    for (int i = 0; i < em3d_net.size(); ++i) candidates.push_back({i, i});
    const map::SwapRefineMapper refine;
    est::EstimateCache cache;
    map::SearchContext context;
    context.cache = &cache;

    support::Table workload(
        "Ablation A1c: estimate-cache hit rate (swap-refine, timeof + create "
        "+ respawn)",
        {"search", "evaluations", "hits", "misses", "hit_rate"});
    map::SearchStats combined;
    for (const char* label : {"timeof", "group_create", "group_respawn"}) {
      const map::MappingResult result =
          refine.select(cases[0].instance, candidates, 0, net,
                        est::EstimateOptions{}, context);
      combined.evaluations += result.stats.evaluations;
      combined.cache_hits += result.stats.cache_hits;
      combined.cache_misses += result.stats.cache_misses;
      workload.add_row({label, support::Table::num(result.stats.evaluations, 0),
                        support::Table::num(result.stats.cache_hits, 0),
                        support::Table::num(result.stats.cache_misses, 0),
                        support::Table::num(result.stats.hit_rate(), 2)});
    }
    workload.add_row({"combined", support::Table::num(combined.evaluations, 0),
                      support::Table::num(combined.cache_hits, 0),
                      support::Table::num(combined.cache_misses, 0),
                      support::Table::num(combined.hit_rate(), 2)});
    bench::emit(workload);
    exported.push_back(workload);
  }

  bench::write_bench_json("ablation_mapper", exported);
  return 0;
}
