// Ablation A10 (DESIGN.md): scaling the selection hot path to P=1000
// (docs/mapper.md, docs/estimator.md). Three tables:
//   * A10a — end-to-end selection on a seeded 1000-machine heterogeneous
//     cluster: the pre-scaling portfolio (greedy + swap-refine + annealing
//     restarts, effort capped so the baseline terminates in CI time) vs the
//     at-scale portfolio (greedy + beam + work-stealing annealing over the
//     SoA batch evaluator). Enforces the >= 5x wall-clock acceptance bar at
//     equal-or-better makespan.
//   * A10b — determinism matrix on the paper's 9-machine testbed: the
//     default portfolio must reproduce the pre-scaling portfolio bit for
//     bit below the scale threshold, across {1, 2, 8} threads x cache
//     {on, off}; beam and annealing-ws must each be bit-identical across
//     the same matrix.
//   * A10c — Plan::evaluate_batch throughput vs one-at-a-time
//     Plan::evaluate on the same random mappings at P=1000, values checked
//     bit for bit (the batch contract).
// Exit status 1 (FATAL on stderr) on any acceptance-bar violation.
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "estimator/estimate_cache.hpp"
#include "estimator/estimator.hpp"
#include "estimator/plan.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"
#include "pmdl/model.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace hmpi;

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Ring workload over `p` abstract processors: heterogeneous volumes, a few
/// compute phases per slot, one ring transfer each. Deliberately small in op
/// count — at P=1000 the per-evaluation cost is dominated by the mapping
/// machinery (the dense per-pair busy table the SoA evaluator replaces), not
/// by walking ops, which is exactly the regime A10 measures.
pmdl::ModelInstance ring_instance(int p) {
  pmdl::InstanceBuilder b("mapscale-ring");
  b.shape({p});
  for (int a = 0; a < p; ++a) {
    b.node_volume(a, 400.0 + 40.0 * a);
    b.link(a, (a + 1) % p, 1e5);
  }
  b.scheme([p](pmdl::ScheduleSink& s) {
    for (long long a = 0; a < p; ++a) {
      const long long c[1] = {a};
      for (int r = 0; r < 3; ++r) s.compute(c, 5.0);
      const long long d[1] = {(a + 1) % p};
      s.transfer(c, d, 100.0);
    }
  });
  return b.build();
}

std::vector<map::Candidate> all_candidates(int n) {
  std::vector<map::Candidate> candidates;
  candidates.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) candidates.push_back({i, i});
  return candidates;
}

}  // namespace

int main() {
  constexpr int kMachines = 1000;
  const est::EstimateOptions options{};
  std::vector<support::Table> exported;

  // Equal effort knobs on both sides, capped so the pre-scaling baseline
  // finishes in CI time (its per-round substitution scan is O(p * n) full
  // evaluations — the very cost this ablation exists to retire; uncapped
  // defaults only make the baseline slower and the bar easier).
  map::PortfolioOptions legacy_opts;
  legacy_opts.scale_threshold = std::numeric_limits<int>::max();  // pre-PR path
  legacy_opts.swap_refine_rounds = 1;
  legacy_opts.annealing.iterations = 400;
  map::PortfolioOptions scale_opts;
  scale_opts.swap_refine_rounds = 1;
  scale_opts.annealing.iterations = 400;
  scale_opts.work_stealing.annealing.iterations = 400;

  // --- A10a: P=1000 selection — pre-scaling vs at-scale portfolio ---------
  {
    const hnoc::Cluster cluster = bench::make_large_cluster(kMachines);
    hnoc::NetworkModel net(cluster);
    const pmdl::ModelInstance instance = ring_instance(9);
    const std::vector<map::Candidate> candidates = all_candidates(net.size());

    struct Config {
      const char* name;
      const map::Mapper* mapper;
    };
    const map::PortfolioMapper legacy(legacy_opts);
    const map::PortfolioMapper scaled(scale_opts);
    const Config configs[] = {{"portfolio-pre", &legacy},
                              {"portfolio", &scaled}};

    support::Table at_scale(
        "Ablation A10a: selection at P=1000 (ring model, 8 threads, cache "
        "on, capped equal effort)",
        {"mapper", "wall_ms", "speedup", "makespan_s", "evaluations",
         "batch_evaluated"});
    double baseline_ms = 0.0;
    double baseline_makespan = 0.0;
    double scaled_ms = 0.0;
    double scaled_makespan = 0.0;
    for (const Config& config : configs) {
      support::ThreadPool pool(8);
      est::EstimateCache cache;
      est::PlanCache plans;
      map::SearchContext context;
      context.pool = &pool;
      context.cache = &cache;
      context.plans = &plans;
      context.delta = false;  // both sides on the compiled full-eval route

      map::MappingResult result;
      const double ms = wall_ms([&] {
        result = config.mapper->select(instance, candidates, 0, net, options,
                                       context);
      });
      const bool is_baseline = config.mapper == &legacy;
      if (is_baseline) {
        baseline_ms = ms;
        baseline_makespan = result.estimated_time;
      } else {
        scaled_ms = ms;
        scaled_makespan = result.estimated_time;
      }
      at_scale.add_row({config.name, support::Table::num(ms, 1),
                        support::Table::num(baseline_ms / ms, 1),
                        support::Table::num(result.estimated_time, 6),
                        support::Table::num(result.stats.evaluations, 0),
                        support::Table::num(result.stats.batch_evaluated, 0)});
    }
    bench::emit(at_scale);
    exported.push_back(at_scale);

    if (scaled_ms * 5.0 > baseline_ms) {
      std::fprintf(stderr,
                   "FATAL: at-scale portfolio speedup %.2fx is below the 5x "
                   "acceptance bar (%.1f ms vs %.1f ms)\n",
                   baseline_ms / scaled_ms, scaled_ms, baseline_ms);
      return 1;
    }
    if (scaled_makespan > baseline_makespan) {
      std::fprintf(stderr,
                   "FATAL: at-scale portfolio makespan %.9g regressed the "
                   "pre-scaling baseline %.9g\n",
                   scaled_makespan, baseline_makespan);
      return 1;
    }
  }

  // --- A10b: determinism matrix on the paper's 9-machine testbed ----------
  // Below the scale threshold the default portfolio must BE the pre-scaling
  // portfolio, bit for bit; the new mappers must each return one selection
  // across every thread count and cache toggle.
  {
    const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
    hnoc::NetworkModel net(cluster);
    const pmdl::ModelInstance instance = ring_instance(6);
    const std::vector<map::Candidate> candidates = all_candidates(net.size());

    const map::PortfolioMapper legacy(legacy_opts);
    const map::PortfolioMapper scaled(scale_opts);
    const map::BeamMapper beam;
    const map::WorkStealingAnnealingMapper ws;
    struct Row {
      const char* name;
      const map::Mapper* mapper;
      const map::Mapper* reference;  // must match this mapper's serial result
    };
    const Row rows[] = {{"portfolio", &scaled, &legacy},
                        {"beam", &beam, &beam},
                        {"annealing-ws", &ws, &ws}};

    support::Table determinism(
        "Ablation A10b: selections across threads {1,2,8} x cache {on,off} "
        "(paper 9-machine testbed)",
        {"mapper", "reference", "combos", "identical", "makespan_s"});
    for (const Row& row : rows) {
      // Serial, cache-on reference result.
      map::MappingResult reference;
      {
        est::EstimateCache cache;
        est::PlanCache plans;
        map::SearchContext context;
        context.cache = &cache;
        context.plans = &plans;
        reference = row.reference->select(instance, candidates, 0, net,
                                          options, context);
      }
      int combos = 0;
      for (int threads : {1, 2, 8}) {
        for (bool cache_on : {true, false}) {
          std::unique_ptr<support::ThreadPool> pool;
          if (threads > 1) {
            pool = std::make_unique<support::ThreadPool>(threads);
          }
          est::EstimateCache cache;
          est::PlanCache plans;
          map::SearchContext context;
          context.pool = pool.get();
          context.cache = cache_on ? &cache : nullptr;
          context.plans = &plans;
          const map::MappingResult result =
              row.mapper->select(instance, candidates, 0, net, options,
                                 context);
          ++combos;
          if (result.candidate_for_abstract !=
                  reference.candidate_for_abstract ||
              result.estimated_time != reference.estimated_time) {
            std::fprintf(stderr,
                         "FATAL: %s selection diverged at %d threads, cache "
                         "%s\n",
                         row.name, threads, cache_on ? "on" : "off");
            return 1;
          }
        }
      }
      determinism.add_row(
          {row.name, row.reference == row.mapper ? "self" : "portfolio-pre",
           support::Table::num(combos, 0), "yes",
           support::Table::num(reference.estimated_time, 6)});
    }
    bench::emit(determinism);
    exported.push_back(determinism);
  }

  // --- A10c: evaluate_batch throughput vs one-at-a-time evaluate ----------
  {
    const hnoc::Cluster cluster = bench::make_large_cluster(kMachines);
    hnoc::NetworkModel net(cluster);
    const pmdl::ModelInstance instance = ring_instance(9);
    const est::Plan plan(instance);
    const auto p = static_cast<std::size_t>(instance.size());

    constexpr std::size_t kBatch = 4096;
    support::Rng rng(0x413063);  // "A10c"
    std::vector<int> soa(p * kBatch);
    std::vector<std::vector<int>> rows(kBatch,
                                       std::vector<int>(p, 0));
    for (std::size_t i = 0; i < kBatch; ++i) {
      for (std::size_t a = 0; a < p; ++a) {
        const int proc = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(net.size())));
        rows[i][a] = proc;
        soa[a * kBatch + i] = proc;
      }
    }

    std::vector<double> single(kBatch);
    const double single_ms = wall_ms([&] {
      for (std::size_t i = 0; i < kBatch; ++i) {
        single[i] = plan.evaluate(rows[i], net, options);
      }
    });
    std::vector<double> batched(kBatch);
    const double batch_ms = wall_ms([&] {
      plan.evaluate_batch(soa, kBatch, net, options, batched);
    });
    for (std::size_t i = 0; i < kBatch; ++i) {
      if (single[i] != batched[i]) {
        std::fprintf(stderr,
                     "FATAL: evaluate_batch diverged from evaluate at "
                     "mapping %zu (%.17g vs %.17g)\n",
                     i, batched[i], single[i]);
        return 1;
      }
    }

    support::Table micro(
        "Ablation A10c: batch estimation microbench (P=1000, identical "
        "values)",
        {"backend", "evaluations", "wall_ms", "us_per_eval", "speedup"});
    const auto evals = static_cast<double>(kBatch);
    micro.add_row({"evaluate x N", support::Table::num(evals, 0),
                   support::Table::num(single_ms, 2),
                   support::Table::num(single_ms * 1e3 / evals, 2), "1.00"});
    micro.add_row({"evaluate_batch", support::Table::num(evals, 0),
                   support::Table::num(batch_ms, 2),
                   support::Table::num(batch_ms * 1e3 / evals, 2),
                   support::Table::num(single_ms / batch_ms, 2)});
    bench::emit(micro);
    exported.push_back(micro);

    if (batch_ms * 5.0 > single_ms) {
      std::fprintf(stderr,
                   "FATAL: evaluate_batch speedup %.2fx is below the 5x "
                   "acceptance bar at P=1000\n",
                   single_ms / batch_ms);
      return 1;
    }
  }

  bench::write_bench_json("mapscale", exported);
  return 0;
}
