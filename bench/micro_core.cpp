// Ablation A4 (DESIGN.md): google-benchmark microbenchmarks of the core
// machinery — PMDL front end, scheme replay / estimation, process selection,
// and the message-passing substrate's collectives.
#include <benchmark/benchmark.h>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "estimator/estimator.hpp"
#include "estimator/plan.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"
#include "mpsim/comm.hpp"

namespace {

using namespace hmpi;

apps::em3d::System bench_system() {
  apps::em3d::GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 41;
  return apps::em3d::generate(config);
}

void BM_PmdlParseEm3d(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::em3d::performance_model());
  }
}
BENCHMARK(BM_PmdlParseEm3d);

void BM_PmdlParseParallelAxB(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::matmul::performance_model());
  }
}
BENCHMARK(BM_PmdlParseParallelAxB);

void BM_InstantiateEm3d(benchmark::State& state) {
  const auto system = bench_system();
  pmdl::Model model = apps::em3d::performance_model();
  const auto params = apps::em3d::model_parameters(system, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.instantiate(params));
  }
}
BENCHMARK(BM_InstantiateEm3d);

void BM_EstimateEm3dScheme(benchmark::State& state) {
  const auto system = bench_system();
  pmdl::Model model = apps::em3d::performance_model();
  const auto instance =
      model.instantiate(apps::em3d::model_parameters(system, 1000));
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  std::vector<int> mapping{0, 1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(est::estimate_time(instance, mapping, net));
  }
}
BENCHMARK(BM_EstimateEm3dScheme);

void BM_EstimateAxBScheme(benchmark::State& state) {
  pmdl::Model model = apps::matmul::performance_model();
  std::vector<double> grid_speeds{106, 46, 46, 46, 46, 46, 46, 46, 9};
  apps::matmul::Partition partition(3, 9, grid_speeds);
  const auto instance = model.instantiate(
      apps::matmul::model_parameters(3, 8, static_cast<int>(state.range(0)),
                                     partition));
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  hnoc::NetworkModel net(cluster);
  std::vector<int> mapping{7, 0, 1, 2, 3, 4, 5, 6, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(est::estimate_time(instance, mapping, net));
  }
}
BENCHMARK(BM_EstimateAxBScheme)->Arg(18)->Arg(45)->Arg(90);

void BM_EstimateBatchEm3d(benchmark::State& state) {
  const auto system = bench_system();
  pmdl::Model model = apps::em3d::performance_model();
  const auto instance =
      model.instantiate(apps::em3d::model_parameters(system, 1000));
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const est::Plan plan(instance);
  const auto p = static_cast<std::size_t>(instance.size());
  const auto count = static_cast<std::size_t>(state.range(0));
  // Slot-major SoA batch of rotations of the identity mapping.
  std::vector<int> soa(p * count);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t i = 0; i < count; ++i) {
      soa[a * count + i] = static_cast<int>((a + i) % p);
    }
  }
  std::vector<double> out(count);
  for (auto _ : state) {
    plan.evaluate_batch(soa, count, net, est::EstimateOptions{}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long long>(state.iterations()) *
                          static_cast<long long>(count));
}
BENCHMARK(BM_EstimateBatchEm3d)->Arg(64)->Arg(1024);

void BM_SwapRefineSelect(benchmark::State& state) {
  const auto system = bench_system();
  pmdl::Model model = apps::em3d::performance_model();
  const auto instance =
      model.instantiate(apps::em3d::model_parameters(system, 1000));
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  std::vector<map::Candidate> candidates;
  for (int i = 0; i < 9; ++i) candidates.push_back({i, i});
  map::SwapRefineMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.select(instance, candidates, 0, net, est::EstimateOptions{}));
  }
}
BENCHMARK(BM_SwapRefineSelect);

void BM_WorldBcast(benchmark::State& state) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(9, 50.0);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mp::World::run_one_per_processor(cluster, [bytes](mp::Proc& p) {
      std::vector<std::byte> data(bytes);
      p.world_comm().bcast(std::span<std::byte>(data), 0);
    });
  }
  state.SetBytesProcessed(static_cast<long long>(state.iterations()) *
                          static_cast<long long>(bytes) * 8);
}
BENCHMARK(BM_WorldBcast)->Arg(64)->Arg(65536);

void BM_WorldBarrier(benchmark::State& state) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(9, 50.0);
  for (auto _ : state) {
    mp::World::run_one_per_processor(cluster, [](mp::Proc& p) {
      for (int i = 0; i < 10; ++i) p.world_comm().barrier();
    });
  }
}
BENCHMARK(BM_WorldBarrier);

void BM_Em3dGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench_system());
  }
}
BENCHMARK(BM_Em3dGenerate);

}  // namespace

BENCHMARK_MAIN();
