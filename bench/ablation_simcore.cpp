// Ablation A12: the simulator core — thread-per-process vs the event-driven
// fiber engine (docs/simulator.md).
//
// Both engines execute the same hand-rolled workload (a ring exchange, a
// dissemination barrier, and a second ring round, all plain p2p); what
// differs is the host cost. (With many processes per machine the reported
// virtual makespans can differ slightly between engines: the order in which
// concurrent senders reserve a shared directed link is a host-scheduling
// race under the thread engine, while the event engine arbitrates it
// deterministically by virtual ready time — see docs/simulator.md.) The thread
// engine needs one OS thread per simulated process, so it stops scaling in
// the low thousands (thread stacks + scheduler churn); the event engine
// multiplexes fibers over a virtual-time event queue and reaches 10k+
// processes interactively. This bench measures wall time per engine at
// P = 64 / 1000 / 10000 (the thread engine is skipped at 10k) and reports
// the speedup plus the event engine's dispatch telemetry.
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace {

using namespace hmpi;

struct RunOutcome {
  double wall_s = 0.0;
  double makespan = 0.0;
  bool ran = false;
};

RunOutcome run_workload(int P, mp::sim::SimEngine engine) {
  hnoc::Cluster cluster = hnoc::testbeds::two_level(4, 4, 100.0);
  const int machines = cluster.size();
  std::vector<int> placement(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) placement[static_cast<std::size_t>(r)] = r % machines;

  mp::World::Options options;
  options.engine = engine;
  options.fiber_stack_bytes = 256 * 1024;

  RunOutcome out;
  const auto start = std::chrono::steady_clock::now();
  auto result = mp::World::run(
      cluster, placement,
      [P](mp::Proc& p) {
        mp::Comm comm = p.world_comm();
        const int me = p.rank();
        auto ring_round = [&](int tag) {
          comm.send_placeholder(256, (me + 1) % P, tag);
          comm.recv_placeholder((me + P - 1) % P, tag);
        };
        ring_round(1);
        for (int k = 1, round = 0; k < P; k <<= 1, ++round) {
          comm.send_placeholder(1, (me + k) % P, 100 + round);
          comm.recv_placeholder((me + P - k) % P, 100 + round);
        }
        ring_round(2);
      },
      options);
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.makespan = result.makespan;
  out.ran = true;
  return out;
}

}  // namespace

int main() {
  support::Table table(
      "Ablation A12: simulator core scaling (ring + dissemination barrier, "
      "16 machines)",
      {"processes", "engine", "wall_s", "virtual_makespan_s", "speedup"});

  const std::vector<int> sizes{64, 1000, 10000};
  for (int P : sizes) {
    // 10k OS threads (stacks alone ~80 GiB of virtual address space plus
    // scheduler churn) is outside the thread engine's operating range; the
    // asymmetry is the point of this ablation.
    const bool thread_feasible = P <= 1000;
    RunOutcome threads;
    if (thread_feasible) {
      threads = run_workload(P, mp::sim::SimEngine::kThread);
    }
    RunOutcome events = run_workload(P, mp::sim::SimEngine::kEvent);
    if (threads.ran) {
      table.add_row({std::to_string(P), "thread",
                     support::Table::num(threads.wall_s),
                     support::Table::num(threads.makespan),
                     support::Table::num(threads.wall_s / events.wall_s, 3)});
    } else {
      table.add_row({std::to_string(P), "thread", "infeasible", "-", "-"});
    }
    table.add_row({std::to_string(P), "event",
                   support::Table::num(events.wall_s),
                   support::Table::num(events.makespan), "1.000"});
  }

  hmpi::bench::emit(table);
  hmpi::bench::write_bench_json("simcore", {table});
  return 0;
}
