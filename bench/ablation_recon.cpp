// Ablation A2 (DESIGN.md): the value of HMPI_Recon under external load.
//
// HNOCs are multi-user systems (paper §1): between installation-time
// benchmarking and the run, other users load some machines. The runtime's
// initial speed estimates (the machines' base speeds) are then stale. This
// bench loads the two fastest machines of the paper network to 25% and runs
// the HMPI EM3D application twice: once creating the group from the stale
// estimates, once after HMPI_Recon refreshed them.
#include <mutex>

#include "apps/em3d/app.hpp"
#include "apps/em3d/parallel.hpp"
#include "bench_util.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

namespace {

using namespace hmpi;
using apps::em3d::GeneratorConfig;
using apps::em3d::System;
using apps::em3d::WorkMode;

/// The paper's EM3D network with machines 6 (speed 176) and 7 (speed 106)
/// externally loaded to a quarter of their speed.
hnoc::Cluster loaded_network() {
  hnoc::ClusterBuilder b;
  const double speeds[9] = {46, 46, 46, 46, 46, 46, 176, 106, 9};
  for (int i = 0; i < 9; ++i) {
    hnoc::LoadProfile load;
    if (i == 6 || i == 7) load = hnoc::LoadProfile::constant(0.25);
    b.add("ws" + std::to_string(i), speeds[i], load);
  }
  b.network(150e-6, 12.5e6);
  return b.build();
}

double run_em3d(const hnoc::Cluster& cluster, const System& system,
                int iterations, bool with_recon) {
  pmdl::Model model = apps::em3d::performance_model();
  const auto params = apps::em3d::model_parameters(system, /*k=*/1000);
  double time = 0.0;
  std::mutex mutex;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    Runtime rt(proc);
    if (with_recon) {
      rt.recon([&](mp::Proc& q) { apps::em3d::recon_benchmark(q, system, 1000); });
    }
    auto group = rt.group_create(model, params);
    if (group) {
      auto result = apps::em3d::run_parallel(group->comm(), system, iterations,
                                             WorkMode::kVirtualOnly);
      if (rt.is_host()) {
        std::lock_guard<std::mutex> lock(mutex);
        time = result.algorithm_time;
      }
      rt.group_free(*group);
    }
    rt.finalize();
  });
  return time;
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = loaded_network();

  GeneratorConfig config;
  config.nodes_per_subbody = {4000, 5000, 7000, 5500, 6500, 6000, 8000, 1000, 2050};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 23;
  const System system = apps::em3d::generate(config);

  support::Table table(
      "Ablation A2: HMPI_Recon under external load (machines 6 and 7 loaded "
      "to 25%)",
      {"speed_estimates", "em3d_time_s"});

  const double stale = run_em3d(cluster, system, 8, /*with_recon=*/false);
  const double fresh = run_em3d(cluster, system, 8, /*with_recon=*/true);
  table.add_row({"stale (no recon)", support::Table::num(stale)});
  table.add_row({"fresh (recon)", support::Table::num(fresh)});
  table.add_row({"stale/fresh", support::Table::num(stale / fresh, 3)});

  bench::emit(table);
  return 0;
}
