// Ablation A3 (DESIGN.md): HMPI_Timeof fidelity — the prediction the group
// was created with versus the simulated execution time, for both paper
// applications across problem sizes.
#include <cmath>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"

int main() {
  using namespace hmpi;

  support::Table table("Ablation A3: Timeof prediction vs simulated execution",
                       {"app", "size", "predicted_s", "measured_s", "error_pct"});

  // EM3D across scales.
  {
    const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
    for (int scale : {1, 4, 16}) {
      apps::em3d::GeneratorConfig config;
      const int base[9] = {400, 500, 700, 550, 650, 600, 800, 100, 205};
      for (int b : base) config.nodes_per_subbody.push_back(b * scale);
      config.degree = 5;
      config.remote_fraction = 0.05;
      config.seed = 31;
      const int iterations = 8;
      auto result = apps::em3d::run_hmpi(cluster, config, iterations,
                                         apps::em3d::WorkMode::kVirtualOnly, 100);
      long long total = 0;
      for (int n : config.nodes_per_subbody) total += n;
      table.add_row(
          {"em3d", support::Table::num(total),
           support::Table::num(result.predicted_time),
           support::Table::num(result.algorithm_time),
           support::Table::num(100.0 *
                                   (result.predicted_time - result.algorithm_time) /
                                   result.algorithm_time,
                               1)});
    }
  }

  // MM across sizes.
  {
    const hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
    for (int n : {18, 36, 72}) {
      apps::matmul::MmDriverConfig config;
      config.m = 3;
      config.r = 9;
      config.n = n;
      config.l = 9;
      config.mode = apps::matmul::WorkMode::kVirtualOnly;
      auto result = apps::matmul::run_hmpi(cluster, config);
      table.add_row(
          {"matmul", support::Table::num(static_cast<long long>(n) * config.r),
           support::Table::num(result.predicted_time),
           support::Table::num(result.algorithm_time),
           support::Table::num(100.0 *
                                   (result.predicted_time - result.algorithm_time) /
                                   result.algorithm_time,
                               1)});
    }
  }

  hmpi::bench::emit(table);
  return 0;
}
