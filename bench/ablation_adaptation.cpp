// Ablation A11 (DESIGN.md): the value of closed-loop adaptation under a
// mid-run load shift.
//
// HNOCs are multi-user systems whose load changes *during* a run, not only
// before it (paper §1): a mapping that was optimal at group creation can be
// arbitrarily bad minutes later. This bench selects six of nine machines for
// an iterative compute workload and collapses two of the selected machines
// to 5% of their speed mid-run. The static configuration (adaptation off)
// rides out the slowdown on the original roster; the adaptive one
// (docs/adaptation.md) detects the divergence, re-measures the members, and
// migrates the group onto the idle spares. A third run on a load-free copy
// of the cluster checks the other half of the contract: a stable cluster
// must see zero migrations.
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "hmpi/adapt.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "hnoc/load_profile.hpp"

namespace {

using namespace hmpi;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;

constexpr int kGroupSize = 6;
constexpr int kRounds = 12;
constexpr double kUnitsPerRound = 100.0;

/// Nine machines: the hub and five workstations at speed 100, three spares
/// at 90. The mapper picks the six 100-speed machines; when `shifted`, two
/// of them drop to 5% at t=2.5 — mid-run for a 1 s/round workload.
hnoc::Cluster cluster_with(bool shifted) {
  hnoc::ClusterBuilder b;
  b.add("hub", 100.0);
  for (int i = 1; i <= 5; ++i) {
    hnoc::LoadProfile load;
    if (shifted && (i == 2 || i == 3)) load = hnoc::LoadProfile({{2.5, 0.05}});
    b.add("ws" + std::to_string(i), 100.0, load);
  }
  for (int i = 1; i <= 3; ++i) b.add("sp" + std::to_string(i), 90.0);
  return b.build();
}

/// Compute-only model: p abstract processors, equal volumes, all parallel.
Model compute_model() {
  return Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (int a = 0; a < p; ++a) {
          b.node_volume(a,
                        static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

double round_max(const Group& group, double elapsed) {
  double out = 0.0;
  group.comm().allreduce(std::span<const double>(&elapsed, 1),
                         std::span<double>(&out, 1),
                         [](double a, double b) { return a > b ? a : b; });
  return out;
}

struct BenchResult {
  double makespan_s = 0.0;
  int migrations = 0;
  int rollbacks = 0;
};

/// Runs kRounds barrier-synchronised compute rounds on a group of
/// kGroupSize, with the closed loop on or off, and reports the host's
/// virtual-time makespan plus the parent's ledger counts.
BenchResult run_rounds(const hnoc::Cluster& cluster, bool adaptive) {
  RuntimeConfig config;
  config.adapt.enabled = adaptive;
  config.adapt.threshold = 0.25;
  config.adapt.ewma_alpha = 1.0;
  config.adapt.hysteresis = 2;
  config.adapt.cooldown_s = 5.0;

  const Model model = compute_model();
  const std::vector<ParamValue> params = {
      pmdl::array(std::vector<long long>(kGroupSize, 10))};

  BenchResult result;
  std::mutex mutex;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& p) {
    Runtime rt(p, config);
    // Only the parent's count is authoritative; drafted members learn the
    // remaining budget from the per-round broadcast below.
    int done_rounds = 0;
    while (!rt.adapt_quiesced()) {
      std::optional<Group> group = rt.group_create(model, params);
      if (!group) continue;
      bool serving = true;
      while (group && serving) {
        group->comm().barrier();
        const double start = p.clock();
        p.compute(kUnitsPerRound);
        const double measured = round_max(*group, p.clock() - start);
        const adapt::AdaptDecision d = rt.adapt_observe(*group, measured);
        int remaining = 0;
        if (group->rank() == group->parent_rank()) {
          done_rounds += 1;
          remaining = kRounds - done_rounds;
        }
        group->comm().bcast_value(remaining, group->parent_rank());
        if (remaining <= 0) {
          serving = false;
        } else if (d.migrate) {
          rt.adapt_recon(*group, [](mp::Proc& q) { q.compute(1.0); });
          Runtime::AdaptMigrateOptions opt;
          opt.trigger = d;
          const Runtime::AdaptOutcome out =
              rt.adapt_migrate(*group, model, params, opt);
          if (!out.member) group.reset();  // released: back to serving
        }
      }
      if (group) {
        if (rt.is_host()) {
          std::lock_guard<std::mutex> lock(mutex);
          result.makespan_s = p.clock();
          for (const adapt::AdaptRecord& rec : rt.adapt_ledger()) {
            if (rec.outcome == adapt::AdaptOutcomeKind::kMigrated) {
              result.migrations += 1;
            }
            if (rec.outcome == adapt::AdaptOutcomeKind::kRolledBack) {
              result.rollbacks += 1;
            }
          }
          rt.adapt_quiesce();
        }
        rt.group_free(*group);
      }
    }
    rt.finalize();
  });
  return result;
}

}  // namespace

int main() {
  const hnoc::Cluster shifted = cluster_with(/*shifted=*/true);
  const hnoc::Cluster stable = cluster_with(/*shifted=*/false);

  const BenchResult static_run = run_rounds(shifted, /*adaptive=*/false);
  const BenchResult adaptive_run = run_rounds(shifted, /*adaptive=*/true);
  const BenchResult stable_run = run_rounds(stable, /*adaptive=*/true);
  const double speedup = static_run.makespan_s / adaptive_run.makespan_s;

  support::Table table(
      "Ablation A11: closed-loop adaptation (two of six selected machines "
      "drop to 5% at t=2.5)",
      {"configuration", "cluster", "makespan_s", "migrations", "rollbacks"});
  table.add_row({"static (adapt off)", "load-shift",
                 support::Table::num(static_run.makespan_s),
                 std::to_string(static_run.migrations),
                 std::to_string(static_run.rollbacks)});
  table.add_row({"adaptive (closed loop)", "load-shift",
                 support::Table::num(adaptive_run.makespan_s),
                 std::to_string(adaptive_run.migrations),
                 std::to_string(adaptive_run.rollbacks)});
  table.add_row({"adaptive (closed loop)", "stable",
                 support::Table::num(stable_run.makespan_s),
                 std::to_string(stable_run.migrations),
                 std::to_string(stable_run.rollbacks)});
  table.add_row({"static/adaptive speedup", "load-shift",
                 support::Table::num(speedup, 3), "", ""});

  bench::emit(table);
  bench::write_bench_json("adapt", {table});

  // The closed loop must pay for itself (DESIGN.md acceptance: >= 1.3x on
  // the load shift) and must not churn a healthy cluster.
  bool ok = true;
  if (speedup < 1.3) {
    std::cerr << "FAIL: adaptive speedup " << speedup << " < 1.3\n";
    ok = false;
  }
  if (adaptive_run.migrations < 1) {
    std::cerr << "FAIL: adaptive run never migrated\n";
    ok = false;
  }
  if (stable_run.migrations != 0 || stable_run.rollbacks != 0) {
    std::cerr << "FAIL: stable cluster saw ledger activity\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
