// Ablation A6: where process selection starts to matter.
//
// Sweeps the degree of heterogeneity of the EM3D network — the slowest
// machine's speed drops from 46 (fully homogeneous) towards 3 — and reports
// the HMPI-over-MPI speedup at each point. On the homogeneous end any group
// is as good as any other (speedup ~1); as the network grows more lopsided,
// rank-order assignment pays an increasing price.
#include <vector>

#include "apps/em3d/app.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"

int main() {
  using namespace hmpi;
  using apps::em3d::GeneratorConfig;
  using apps::em3d::WorkMode;

  GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 61;

  support::Table table(
      "Ablation A6: HMPI advantage vs degree of heterogeneity (EM3D)",
      {"slowest_speed", "mpi_time_s", "hmpi_time_s", "speedup"});

  for (double slow : {46.0, 30.0, 18.0, 9.0, 5.0, 3.0}) {
    hnoc::ClusterBuilder b;
    const double speeds[9] = {46, 46, 46, 46, 46, 46, 176, 106, slow};
    for (int i = 0; i < 9; ++i) b.add("ws" + std::to_string(i), speeds[i]);
    b.network(150e-6, 12.5e6);
    hnoc::Cluster cluster = b.build();

    auto mpi = apps::em3d::run_mpi(cluster, config, 8, WorkMode::kVirtualOnly);
    auto hmpi_result =
        apps::em3d::run_hmpi(cluster, config, 8, WorkMode::kVirtualOnly, 100);
    table.add_row({support::Table::num(slow, 0),
                   support::Table::num(mpi.algorithm_time),
                   support::Table::num(hmpi_result.algorithm_time),
                   support::Table::num(
                       mpi.algorithm_time / hmpi_result.algorithm_time, 3)});
  }

  hmpi::bench::emit(table);
  return 0;
}
