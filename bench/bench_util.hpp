// Shared helpers for the figure-reproduction benches.
#pragma once

#include <iostream>

#include "support/table.hpp"

namespace hmpi::bench {

inline void emit(support::Table& table) {
  table.print(std::cout);
  std::cout << "\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

}  // namespace hmpi::bench
