// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "telemetry/json.hpp"

namespace hmpi::bench {

inline void emit(support::Table& table) {
  table.print(std::cout);
  std::cout << "\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

/// Writes `BENCH_<name>.json` — the machine-readable counterpart of the
/// printed tables, consumed by the perf-trajectory tooling and validated by
/// tools/telemetry_check (docs/observability.md). Cells that parse fully as
/// numbers are emitted as JSON numbers, everything else as strings. Shape:
/// `{"benchmark": name, "tables": [{"title", "columns", "rows"}]}`.
inline void write_bench_json(const std::string& name,
                             std::span<const support::Table> tables) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  const auto cell_json = [](const std::string& cell) -> std::string {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (!cell.empty() && end != nullptr && *end == '\0') {
      return telemetry::json_number(v);
    }
    return telemetry::json_quote(cell);
  };
  os << "{\n  \"benchmark\": " << telemetry::json_quote(name)
     << ",\n  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const support::Table& table = tables[t];
    os << (t == 0 ? "\n" : ",\n") << "    {\"title\": "
       << telemetry::json_quote(table.title()) << ", \"columns\": [";
    for (std::size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) os << ", ";
      os << telemetry::json_quote(table.columns()[c]);
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "      [";
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) os << ", ";
        os << cell_json(row[c]);
      }
      os << "]";
    }
    os << (table.rows().empty() ? "" : "\n    ") << "]}";
  }
  os << (tables.empty() ? "" : "\n  ") << "]\n}\n";
  std::cout << "wrote " << path << "\n";
}

inline void write_bench_json(const std::string& name,
                             std::initializer_list<support::Table> tables) {
  write_bench_json(name, std::span<const support::Table>(tables.begin(),
                                                         tables.size()));
}

}  // namespace hmpi::bench
