// Shared helpers for the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "pmdl/model.hpp"
#include "sched/job.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "telemetry/json.hpp"

namespace hmpi::bench {

inline void emit(support::Table& table) {
  table.print(std::cout);
  std::cout << "\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

/// Writes `BENCH_<name>.json` — the machine-readable counterpart of the
/// printed tables, consumed by the perf-trajectory tooling and validated by
/// tools/telemetry_check (docs/observability.md). Cells that parse fully as
/// numbers are emitted as JSON numbers, everything else as strings. Shape:
/// `{"benchmark": name, "tables": [{"title", "columns", "rows"}]}`.
inline void write_bench_json(const std::string& name,
                             std::span<const support::Table> tables) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  const auto cell_json = [](const std::string& cell) -> std::string {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (!cell.empty() && end != nullptr && *end == '\0') {
      return telemetry::json_number(v);
    }
    return telemetry::json_quote(cell);
  };
  os << "{\n  \"benchmark\": " << telemetry::json_quote(name)
     << ",\n  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const support::Table& table = tables[t];
    os << (t == 0 ? "\n" : ",\n") << "    {\"title\": "
       << telemetry::json_quote(table.title()) << ", \"columns\": [";
    for (std::size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) os << ", ";
      os << telemetry::json_quote(table.columns()[c]);
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "      [";
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) os << ", ";
        os << cell_json(row[c]);
      }
      os << "]";
    }
    os << (table.rows().empty() ? "" : "\n    ") << "]}";
  }
  os << (tables.empty() ? "" : "\n  ") << "]\n}\n";
  std::cout << "wrote " << path << "\n";
}

inline void write_bench_json(const std::string& name,
                             std::initializer_list<support::Table> tables) {
  write_bench_json(name, std::span<const support::Table>(tables.begin(),
                                                         tables.size()));
}

// --- scheduler workload generation (A13: bench/ablation_sched.cpp) ----------

/// Performance model of one synthetic scheduler job: param 0 is the
/// per-abstract-processor compute volume array (its length is the job
/// width), param 1 the ring-neighbour payload in bytes. The scheme is the
/// job's actual structure — parallel compute then a ring exchange — so the
/// selector's estimate and the executed body agree.
inline std::shared_ptr<const pmdl::Model> sched_job_model() {
  return std::make_shared<const pmdl::Model>(pmdl::Model::from_factory(
      "sched_job", 2, [](std::span<const pmdl::ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        const auto bytes = std::get<long long>(params[1]);
        const auto p = static_cast<long long>(volumes.size());
        pmdl::InstanceBuilder b("sched_job");
        b.shape({p});
        for (long long a = 0; a < p; ++a) {
          b.node_volume(static_cast<int>(a),
                        static_cast<double>(volumes[static_cast<std::size_t>(a)]));
          if (p > 1 && bytes > 0) {
            b.link(static_cast<int>(a), static_cast<int>((a + 1) % p),
                   static_cast<double>(bytes));
          }
        }
        b.scheme([p, bytes](pmdl::ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
          if (p > 1 && bytes > 0) {
            s.par_begin();
            for (long long a = 0; a < p; ++a) {
              s.par_iter_begin();
              const long long src[1] = {a};
              const long long dst[1] = {(a + 1) % p};
              s.transfer(src, dst, 100.0);
            }
            s.par_end();
          }
        });
        return b.build();
      }));
}

/// The shared P-machine heterogeneous testbed of the at-scale experiments:
/// one seed, one cluster, everywhere — the A10 ablation, the mapper scale
/// tests and `hmpictl --large-cluster` must all search the same landscape so
/// their numbers compare (docs/mapper.md).
inline hnoc::Cluster make_large_cluster(int machines,
                                        std::uint64_t seed = 0x413130ULL) {
  return hnoc::testbeds::large_cluster(machines, seed);
}

/// Body of a sched_job: each rank computes its volume and exchanges the ring
/// payload, then returns a token folded from the spec constants only — so
/// the token is placement-independent and a preempted/re-dispatched run is
/// bit-identical to an uncontended one (the A13 correctness oracle).
inline sched::JobBody make_sched_job_body(std::vector<long long> volumes,
                                          long long ring_bytes) {
  std::uint64_t token = 1469598103934665603ULL;
  const auto mix = [&token](std::uint64_t v) {
    token ^= v;
    token *= 1099511628211ULL;
  };
  for (long long v : volumes) mix(static_cast<std::uint64_t>(v));
  mix(static_cast<std::uint64_t>(ring_bytes));
  return [volumes = std::move(volumes), ring_bytes,
          token](mp::Proc& proc) -> std::uint64_t {
    const int n = proc.nprocs();
    const int me = proc.rank();
    proc.compute(static_cast<double>(volumes[static_cast<std::size_t>(me)]));
    if (n > 1 && ring_bytes > 0) {
      mp::Comm comm = proc.world_comm();
      comm.send_placeholder(static_cast<std::size_t>(ring_bytes),
                            (me + 1) % n, 7);
      comm.recv_placeholder((me + n - 1) % n, 7);
    }
    return token;
  };
}

/// Knobs of make_arrival_trace.
struct ArrivalTraceOptions {
  int jobs = 2000;
  std::uint64_t seed = 42;
  /// Mean of the exponential interarrival gap (Poisson arrivals).
  double mean_interarrival_s = 0.5;
  /// Job width (abstract processors), uniform in [min_width, max_width].
  int min_width = 2;
  int max_width = 8;
  /// Pareto(alpha ~ 1.7) compute-volume scale in benchmark units; the heavy
  /// tail is what gives backfill its holes.
  double volume_scale = 50.0;
  long long ring_bytes = 64 * 1024;
  /// Priorities drawn uniformly from [0, priority_levels).
  int priority_levels = 3;
  /// Fraction of jobs that checkpoint on preemption (the rest restart).
  double checkpoint_frac = 0.5;
  long long checkpoint_bytes = 1 << 20;
  /// Attach executable bodies (measured service + correctness tokens).
  bool with_bodies = true;
};

/// A seeded synthetic multi-tenant arrival trace (satellite of A13; also
/// used by tools/hmpictl). Deterministic: the same options give the same
/// stream of specs on every platform.
inline std::vector<sched::JobSpec> make_arrival_trace(
    const ArrivalTraceOptions& opt) {
  support::Rng rng(opt.seed);
  const std::shared_ptr<const pmdl::Model> model = sched_job_model();
  std::vector<sched::JobSpec> out;
  out.reserve(static_cast<std::size_t>(opt.jobs));
  double t = 0.0;
  for (int j = 0; j < opt.jobs; ++j) {
    t += -std::log(1.0 - rng.next_double()) * opt.mean_interarrival_s;
    const int width = static_cast<int>(rng.next_in(opt.min_width, opt.max_width));
    std::vector<long long> volumes(static_cast<std::size_t>(width));
    for (long long& v : volumes) {
      const double tail = std::pow(1.0 - rng.next_double(), -0.6);
      v = std::clamp<long long>(
          static_cast<long long>(std::llround(opt.volume_scale * tail)), 1,
          static_cast<long long>(opt.volume_scale) * 50);
    }
    sched::JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.model = model;
    spec.params = {pmdl::array(volumes), pmdl::scalar(opt.ring_bytes)};
    spec.priority = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(std::max(1, opt.priority_levels))));
    spec.arrival_s = t;
    spec.checkpoint_bytes =
        rng.next_double() < opt.checkpoint_frac ? opt.checkpoint_bytes : -1;
    if (opt.with_bodies) {
      spec.body = make_sched_job_body(std::move(volumes), opt.ring_bytes);
    }
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace hmpi::bench
