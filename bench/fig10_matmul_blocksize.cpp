// Reproduces the paper's Figure 10: execution time of the matrix
// multiplication under HMPI and plain MPI for different values of the
// generalised block size l, at r = 8.
//
// The homogeneous MPI distribution does not depend on l in any interesting
// way (equal rectangles regardless), so its curve is flat; the HMPI curve
// has an interior structure — small l gives the heterogeneous distribution
// too little resolution to mirror the speed ratios, very large l reduces
// the number of generalised blocks until rounding effects dominate.
#include "apps/matmul/app.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"

int main() {
  using namespace hmpi;
  using apps::matmul::MmDriverConfig;
  using apps::matmul::MmDriverResult;
  using apps::matmul::WorkMode;

  const hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();

  MmDriverConfig config;
  config.m = 3;
  config.r = 8;
  config.n = 48;  // 384 x 384 elements
  config.mode = WorkMode::kVirtualOnly;
  config.seed = 2003;

  support::Table table(
      "Figure 10: MM execution time vs generalised block size l (r = 8, "
      "n = 48 blocks)",
      {"l", "mpi_time_s", "hmpi_time_s"});

  // The MPI baseline does not use the generalised block machinery; run once.
  MmDriverConfig mpi_config = config;
  mpi_config.l = 3;
  const MmDriverResult mpi = apps::matmul::run_mpi(cluster, mpi_config);

  for (int l : {3, 4, 6, 8, 12, 16, 24, 48}) {
    MmDriverConfig hmpi_config = config;
    hmpi_config.l = l;
    const MmDriverResult hmpi = apps::matmul::run_hmpi(cluster, hmpi_config);
    table.add_row({support::Table::num(static_cast<long long>(l)),
                   support::Table::num(mpi.algorithm_time),
                   support::Table::num(hmpi.algorithm_time)});
  }

  bench::emit(table);
  return 0;
}
