// Ablation A7: automatic group sizing (the HeteroMPI-style
// group_auto_create extension; the paper's conclusion points to this line
// of work).
//
// For the Jacobi relaxation, more workers mean thinner row bands (less
// compute each) but more halo pairs (more latency per iteration). The
// runtime searches the process count p that minimises the predicted time.
// Small plates should stay narrow; large plates should use every machine.
#include <mutex>

#include "apps/jacobi/jacobi.hpp"
#include "bench_util.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

namespace {

using namespace hmpi;
using apps::jacobi::JacobiConfig;

/// Runs group_auto_create for a plate of `interior_rows` and returns the
/// chosen worker count and its predicted per-iteration time.
std::pair<int, double> auto_size(const hnoc::Cluster& cluster,
                                 int interior_rows, int cols) {
  pmdl::Model model = apps::jacobi::performance_model();
  std::pair<int, double> result{0, 0.0};
  std::mutex mutex;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    Runtime rt(proc);
    rt.recon([](mp::Proc& q) { q.compute(1.0); });
    auto group = rt.group_auto_create(
        model,
        [&](int p) {
          // Equal bands for the sizing search (the real run would then
          // redistribute by speed; the tradeoff shape is the same).
          std::vector<double> equal(static_cast<std::size_t>(p), 1.0);
          const auto rows = apps::jacobi::distribute_rows(interior_rows, equal);
          return apps::jacobi::model_parameters(rows, cols);
        },
        cluster.size());
    if (group && rt.is_host()) {
      std::lock_guard<std::mutex> lock(mutex);
      result = {group->size(), group->estimated_time()};
    }
    if (group) rt.group_free(*group);
    rt.finalize();
  });
  return result;
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();

  support::Table table(
      "Ablation A7: group_auto_create worker-count search (Jacobi halo "
      "exchange vs band width)",
      {"interior_rows", "cols", "chosen_p", "predicted_s_per_iter"});

  for (int rows : {9, 30, 90, 300, 1000, 4000}) {
    const int cols = 8;  // narrow plate: halo latency matters
    const auto [p, predicted] = auto_size(cluster, rows, cols);
    table.add_row({support::Table::num(static_cast<long long>(rows)),
                   support::Table::num(static_cast<long long>(cols)),
                   support::Table::num(static_cast<long long>(p)),
                   support::Table::num(predicted, 6)});
  }

  hmpi::bench::emit(table);
  return 0;
}
