// Ablation A5: multiple communication protocols in one application.
//
// The paper's first HNOC challenge (§1) is that one application should use
// different protocols between different process pairs — e.g. shared memory
// inside a machine and TCP between machines. Our substrate models this with
// per-pair link parameters. This bench runs the EM3D exchange-heavy workload
// with four processes on two machines (two per machine) and compares:
//   * single protocol: every pair talks over 100 Mbit Ethernet;
//   * multi protocol: intra-machine pairs use the shared-memory link.
#include <vector>

#include "apps/em3d/body.hpp"
#include "apps/em3d/parallel.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"

namespace {

using namespace hmpi;
using apps::em3d::GeneratorConfig;
using apps::em3d::System;
using apps::em3d::WorkMode;

hnoc::Cluster two_machines(bool multi_protocol) {
  hnoc::ClusterBuilder b;
  b.add("alpha", 100.0).add("beta", 100.0);
  b.network(150e-6, 12.5e6);
  if (multi_protocol) {
    b.shared_memory(5e-6, 1e9);
  } else {
    b.shared_memory(150e-6, 12.5e6);  // same wire for everyone
  }
  return b.build();
}

double run(const hnoc::Cluster& cluster, const System& system, int iterations) {
  double time = 0.0;
  // Processes 0,1 on machine 0; processes 2,3 on machine 1. Neighbouring
  // subbodies land on the same machine, so much of the boundary exchange is
  // intra-machine.
  mp::World::run(cluster, {0, 0, 1, 1}, [&](mp::Proc& p) {
    auto result = apps::em3d::run_parallel(p.world_comm(), system, iterations,
                                           WorkMode::kVirtualOnly);
    if (p.rank() == 0) time = result.algorithm_time;
  });
  return time;
}

}  // namespace

int main() {
  GeneratorConfig config;
  config.nodes_per_subbody = {3000, 3000, 3000, 3000};
  config.degree = 5;
  config.remote_fraction = 0.4;  // exchange-heavy decomposition
  config.seed = 57;
  const System system = apps::em3d::generate(config);

  support::Table table(
      "Ablation A5: multi-protocol communication (EM3D, 4 processes on 2 "
      "machines)",
      {"protocols", "em3d_time_s"});

  const double single = run(two_machines(false), system, 8);
  const double multi = run(two_machines(true), system, 8);
  table.add_row({"Ethernet only", support::Table::num(single)});
  table.add_row({"Ethernet + shared memory", support::Table::num(multi)});
  table.add_row({"single/multi", support::Table::num(single / multi, 3)});

  hmpi::bench::emit(table);
  return 0;
}
