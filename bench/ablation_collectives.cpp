// Ablation A8: cost-model-driven collective algorithm selection (src/coll/).
//
// For every (operation, message size, topology) cell this bench compares the
// algorithm the library hard-coded before the coll subsystem existed
// (coll::legacy_default) against the CollTuner's predicted-fastest pick, both
// as the analytical cost and as the simulated virtual makespan of a fresh
// world running exactly that collective. Sizes are powers of two, so the
// tuner's bucket representative coincides with the measured size and its
// argmin guarantee applies exactly.
//
// The bench exits non-zero when the tuner's pick is measurably slower than
// the legacy choice in any cell, or when no cell on the paper's 9-machine
// heterogeneous cluster (Table 1) reaches a 1.3x speedup — the acceptance
// bar for the subsystem.
#include <cstddef>
#include <cstdio>
#include <numeric>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "coll/cost.hpp"
#include "coll/tuner.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace {

using namespace hmpi;
using coll::CollOp;

const CollOp kOps[] = {CollOp::kBcast,         CollOp::kReduce,
                       CollOp::kAllreduce,     CollOp::kReduceScatter,
                       CollOp::kAllgather,     CollOp::kBarrier};

// Runs one collective as the first action of a fresh world with the
// algorithm pinned and returns the virtual makespan (same harness as
// tests/coll/cost_fidelity_test.cpp, which proves makespan == cost).
double simulate(const hnoc::Cluster& cluster, CollOp op, int algo,
                std::size_t bytes) {
  coll::CollPolicy policy;
  policy.set_choice(op, algo);
  const auto result = mp::World::run_one_per_processor(
      cluster, [&](mp::Proc& p) {
        mp::Comm comm = p.world_comm();
        comm.set_coll_policy(policy);
        const int n = comm.size();
        const auto sum = [](double a, double b) { return a + b; };
        // Payloads are doubles; block operations split `bytes` across the
        // members the same way coll::collective_cost does.
        const std::size_t elems = bytes / sizeof(double);
        const std::size_t block =
            bytes / sizeof(double) / static_cast<std::size_t>(n);
        switch (op) {
          case CollOp::kBcast: {
            std::vector<double> data(elems, 1.0);
            comm.bcast(std::span<double>(data), 0);
            break;
          }
          case CollOp::kReduce: {
            std::vector<double> in(elems, 1.0);
            std::vector<double> out(elems, 0.0);
            comm.reduce(std::span<const double>(in), std::span<double>(out),
                        sum, 0);
            break;
          }
          case CollOp::kAllreduce: {
            std::vector<double> in(elems, 1.0);
            std::vector<double> out(elems, 0.0);
            comm.allreduce(std::span<const double>(in), std::span<double>(out),
                           sum);
            break;
          }
          case CollOp::kReduceScatter: {
            std::vector<double> in(block * static_cast<std::size_t>(n), 1.0);
            std::vector<double> out(block, 0.0);
            comm.reduce_scatter(std::span<const double>(in),
                                std::span<double>(out), sum);
            break;
          }
          case CollOp::kAllgather: {
            std::vector<double> mine(block, 1.0);
            std::vector<double> all(block * static_cast<std::size_t>(n), 0.0);
            comm.allgather(std::span<const double>(mine),
                           std::span<double>(all));
            break;
          }
          case CollOp::kBarrier:
            comm.barrier();
            break;
        }
      });
  return result.makespan;
}

struct Topology {
  const char* name;
  hnoc::Cluster cluster;
  bool is_paper9;  // the acceptance 1.3x bar applies to this one
};

}  // namespace

int main() {
  std::vector<Topology> topologies;
  topologies.push_back({"paper9", hnoc::testbeds::paper_em3d_network(), true});
  topologies.push_back({"homogeneous8", hnoc::testbeds::homogeneous(8, 100.0),
                        false});

  support::Table cells(
      "Ablation A8: legacy hard-coded algorithm vs CollTuner pick",
      {"topology", "op", "bytes", "legacy", "legacy_s", "tuner", "tuner_s",
       "speedup"});
  support::Table sweep(
      "Ablation A8b: per-algorithm predicted cost at 1 MiB (paper9)",
      {"op", "algo", "predicted_s", "vs_best"});

  bool never_slower = true;
  double best_paper9_speedup = 0.0;

  for (const Topology& topo : topologies) {
    hnoc::NetworkModel network(topo.cluster);
    coll::CollTuner tuner(topo.cluster, coll::CollTuner::Options{});
    std::vector<int> procs(static_cast<std::size_t>(topo.cluster.size()));
    std::iota(procs.begin(), procs.end(), 0);

    for (CollOp op : kOps) {
      const bool barrier = op == CollOp::kBarrier;
      const std::vector<std::size_t> sizes =
          barrier ? std::vector<std::size_t>{0}
                  : std::vector<std::size_t>{8, 4096, std::size_t{1} << 20};
      for (std::size_t bytes : sizes) {
        const int legacy = coll::legacy_default(op);
        double predicted = -1.0;
        const int chosen = tuner.select(op, procs, bytes, &predicted);
        const double legacy_s = simulate(topo.cluster, op, legacy, bytes);
        const double tuner_s = chosen == legacy
                                   ? legacy_s
                                   : simulate(topo.cluster, op, chosen, bytes);
        const double speedup = tuner_s > 0.0 ? legacy_s / tuner_s : 1.0;
        if (tuner_s > legacy_s * (1.0 + 1e-9)) {
          never_slower = false;
          std::fprintf(stderr, "FAIL: %s %s %zuB: tuner %s (%.9f s) slower "
                       "than legacy %s (%.9f s)\n",
                       topo.name, coll::op_name(op), bytes,
                       coll::algo_name(op, chosen), tuner_s,
                       coll::algo_name(op, legacy), legacy_s);
        }
        if (topo.is_paper9) {
          best_paper9_speedup = std::max(best_paper9_speedup, speedup);
        }
        cells.add_row({topo.name, coll::op_name(op), std::to_string(bytes),
                       coll::algo_name(op, legacy),
                       support::Table::num(legacy_s),
                       coll::algo_name(op, chosen),
                       support::Table::num(tuner_s),
                       support::Table::num(speedup, 3)});
      }

      if (topo.is_paper9 && !barrier) {
        const std::size_t bytes = std::size_t{1} << 20;
        double best = -1.0;
        for (int algo = 1; algo <= coll::algo_count(op); ++algo) {
          const double c = coll::collective_cost(op, algo, procs, bytes,
                                                 network);
          if (best < 0.0 || c < best) best = c;
        }
        for (int algo = 1; algo <= coll::algo_count(op); ++algo) {
          const double c = coll::collective_cost(op, algo, procs, bytes,
                                                 network);
          sweep.add_row({coll::op_name(op), coll::algo_name(op, algo),
                         support::Table::num(c),
                         support::Table::num(c / best, 3)});
        }
      }
    }
  }

  hmpi::bench::emit(cells);
  hmpi::bench::emit(sweep);
  hmpi::bench::write_bench_json("coll", {cells, sweep});

  if (!never_slower) {
    std::fprintf(stderr, "FAIL: tuner pick slower than legacy choice\n");
    return 1;
  }
  if (best_paper9_speedup < 1.3) {
    std::fprintf(stderr,
                 "FAIL: best paper9 speedup %.3f below the 1.3x bar\n",
                 best_paper9_speedup);
    return 1;
  }
  std::printf("OK: tuner never slower; best paper9 speedup %.3fx\n",
              best_paper9_speedup);
  return 0;
}
