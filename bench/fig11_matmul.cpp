// Reproduces the paper's Figure 11: (a) execution times of the matrix
// multiplication under HMPI and plain MPI on the 9-machine heterogeneous
// network, and (b) the speedup of HMPI over MPI, as a function of matrix
// size. r = l = 9, as the paper found optimal.
//
// The homogeneous 2D block-cyclic baseline gives every machine the same
// area, so the speed-9 machine paces the whole grid; the HMPI version sizes
// each rectangle to its machine. The paper reports roughly 3x.
#include "apps/matmul/app.hpp"
#include "bench_util.hpp"
#include "hnoc/cluster.hpp"

int main() {
  using namespace hmpi;
  using apps::matmul::MmDriverConfig;
  using apps::matmul::MmDriverResult;
  using apps::matmul::WorkMode;

  const hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();

  support::Table times(
      "Figure 11(a): MM execution time, HMPI vs MPI (r = l = 9)",
      {"matrix_size", "mpi_time_s", "hmpi_time_s"});
  support::Table speedup("Figure 11(b): speedup of the HMPI MM program over MPI",
                         {"matrix_size", "speedup"});

  for (int n : {9, 18, 27, 36, 54, 72, 90}) {
    MmDriverConfig config;
    config.m = 3;
    config.r = 9;
    config.n = n;
    config.l = 9;
    config.mode = WorkMode::kVirtualOnly;
    config.seed = 2003;

    const MmDriverResult mpi = apps::matmul::run_mpi(cluster, config);
    const MmDriverResult hmpi = apps::matmul::run_hmpi(cluster, config);

    const long long size = static_cast<long long>(n) * config.r;
    times.add_row({support::Table::num(size),
                   support::Table::num(mpi.algorithm_time),
                   support::Table::num(hmpi.algorithm_time)});
    speedup.add_row({support::Table::num(size),
                     support::Table::num(mpi.algorithm_time / hmpi.algorithm_time, 3)});
  }

  bench::emit(times);
  bench::emit(speedup);
  bench::write_bench_json("fig11_matmul", {times, speedup});
  return 0;
}
