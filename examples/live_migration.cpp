// Closed-loop adaptation: drift detection and guarded live migration
// (docs/adaptation.md).
//
// HMPI_Recon (examples/adaptive_load.cpp) fixes stale speeds *before* a
// group is created. This example shows the runtime correcting itself while
// the application runs: three machines compute in a loop, one of them is
// grabbed by another user mid-run, the divergence watchdog trips after two
// slow rounds, and the runtime migrates the group onto the idle spare — then
// keeps watching and reports the realized (not just predicted) gain.
//
// Build & run:  ./build/examples/live_migration
// The adaptation ledger is written to live_migration_ledger.json
// (override the path with HMPI_ADAPT_LEDGER_JSON).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <vector>

#include "hmpi/adapt.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "hnoc/load_profile.hpp"

using namespace hmpi;

namespace {

/// alpha/beta/gamma at speed 100 with an idle 90-speed spare; beta's
/// machine drops to 5% at t=0.45 — mid-run for 0.1 s rounds.
hnoc::Cluster cluster() {
  return hnoc::ClusterBuilder()
      .add("alpha", 100.0)
      .add("beta", 100.0, hnoc::LoadProfile({{0.45, 0.05}}))
      .add("gamma", 100.0)
      .add("delta", 90.0)
      .build();
}

/// Compute-only model: 3 parallel workers with equal volumes, parent 0.
pmdl::Model work_model() {
  return pmdl::Model::from_source(R"(
    algorithm Work(int p, int v[p]) {
      coord I=p;
      node { I>=0: bench*(v[I]); };
      parent[0];
      scheme { int i; par (i = 0; i < p; i++) 100%%[i]; };
    };
  )");
}

double round_max(const Group& group, double elapsed) {
  double out = 0.0;
  group.comm().allreduce(std::span<const double>(&elapsed, 1),
                         std::span<double>(&out, 1),
                         [](double a, double b) { return a > b ? a : b; });
  return out;
}

std::string roster(const hnoc::Cluster& c, mp::Proc& p, const Group& group) {
  std::string out;
  for (int member : group.members()) {
    if (!out.empty()) out += " ";
    out += c.processor(p.world().processor_of(member)).name;
  }
  return out;
}

}  // namespace

int main() {
  const hnoc::Cluster net = cluster();
  std::printf(
      "alpha, beta and gamma (speed 100) are selected; delta (90) idles.\n"
      "At t=0.45 another user loads beta's machine to 5%%.\n\n");

  RuntimeConfig config;
  config.adapt.enabled = true;
  config.adapt.threshold = 0.25;   // trip on >25% divergence...
  config.adapt.hysteresis = 2;     // ...sustained for two rounds
  config.adapt.ewma_alpha = 1.0;
  config.adapt.cooldown_s = 5.0;

  const pmdl::Model model = work_model();
  const std::vector<pmdl::ParamValue> params{pmdl::scalar(3),
                                             pmdl::array({10, 10, 10})};

  std::mutex mutex;
  int migrations = 0;
  bool realized_closed = false;
  std::string ledger_json;

  mp::World::run_one_per_processor(net, [&](mp::Proc& p) {
    Runtime rt(p, config);
    while (!rt.adapt_quiesced()) {
      std::optional<Group> group = rt.group_create(model, params);
      if (!group) continue;
      int rounds = 0;
      bool done = false;
      while (group && !done) {
        group->comm().barrier();
        const double start = p.clock();
        p.compute(10.0);
        const double measured = round_max(*group, p.clock() - start);
        const adapt::AdaptDecision d = rt.adapt_observe(*group, measured);
        rounds += 1;
        if (rt.is_host()) {
          std::lock_guard<std::mutex> lock(mutex);
          std::printf("round t=%5.2f  %.3f s  [%s]%s\n", p.clock(), measured,
                      roster(net, p, *group).c_str(),
                      d.migrate         ? "  <- divergence watchdog tripped"
                      : d.closed_migration ? "  <- realized gain confirmed"
                                           : "");
          if (d.closed_migration) realized_closed = true;
        }
        if (d.closed_migration || rounds >= 20) {
          done = true;
        } else if (d.migrate) {
          rt.adapt_recon(*group, [](mp::Proc& q) { q.compute(1.0); });
          Runtime::AdaptMigrateOptions opt;
          opt.trigger = d;
          const Runtime::AdaptOutcome out =
              rt.adapt_migrate(*group, model, params, opt);
          if (out.migrated && rt.is_host()) {
            std::lock_guard<std::mutex> lock(mutex);
            std::printf("      migrated -> [%s] (predicted gain %.3f s/round)\n",
                        roster(net, p, *group).c_str(), out.predicted_gain_s);
          }
          if (!out.member) group.reset();  // released: back to serving
        }
      }
      if (group) {
        if (rt.is_host()) {
          std::lock_guard<std::mutex> lock(mutex);
          for (const adapt::AdaptRecord& rec : rt.adapt_ledger()) {
            if (rec.outcome == adapt::AdaptOutcomeKind::kMigrated) {
              migrations += 1;
              std::printf(
                  "\nledger: %s, severity %.2f, predicted %.3f -> %.3f s, "
                  "realized gain %.3f s\n",
                  adapt::outcome_name(rec.outcome), rec.severity,
                  rec.predicted_old_s, rec.predicted_new_s,
                  rec.realized_gain_s);
            }
          }
          std::ostringstream os;
          rt.adapt_write_ledger_json(os);
          ledger_json = os.str();
          rt.adapt_quiesce();
        }
        rt.group_free(*group);
      }
    }
    rt.finalize();
  });

  const char* env = std::getenv("HMPI_ADAPT_LEDGER_JSON");
  const std::string path = env ? env : "live_migration_ledger.json";
  std::ofstream os(path);
  os << ledger_json;
  std::printf("wrote %s\n", path.c_str());

  return (migrations == 1 && realized_closed) ? 0 : 1;
}
