// The paper's regular application (Figures 6-8): dense matrix multiplication
// with the heterogeneous 2D block-cyclic distribution, including the
// HMPI_Timeof search for the optimal generalised block size, verified
// against a serial multiplication.
//
// Build & run:  ./build/examples/matmul_hetero
#include <cmath>
#include <cstdio>

#include "apps/matmul/app.hpp"
#include "coll/policy.hpp"
#include "hnoc/cluster.hpp"

using namespace hmpi;
using apps::matmul::MmDriverConfig;
using apps::matmul::WorkMode;

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();

  MmDriverConfig config;
  config.m = 3;   // 3x3 process grid
  config.r = 4;   // block size (small: this example verifies numerics)
  config.n = 12;  // 48 x 48 elements
  config.l = 0;   // let HMPI_Timeof choose the generalised block size
  config.mode = WorkMode::kReal;
  config.seed = 77;

  std::printf("C = A x B, %d x %d elements, 3x3 grid on the paper's network\n\n",
              config.n * config.r, config.n * config.r);

  // Serial reference.
  const auto a = apps::matmul::make_matrix(config.seed, 0, config.n, config.r);
  const auto b = apps::matmul::make_matrix(config.seed, 1, config.n, config.r);
  const auto c = apps::matmul::serial_multiply(a, b);
  double serial_checksum = 0.0;
  for (double v : c.flat()) serial_checksum += v;

  // Homogeneous MPI baseline.
  auto mpi = apps::matmul::run_mpi(cluster, config);
  std::printf("MPI  (homogeneous blocks):  %9.4f s\n", mpi.algorithm_time);

  // HMPI version with the Timeof block-size search.
  auto hmpi = apps::matmul::run_hmpi(cluster, config, {3, 4, 6, 12});
  std::printf("HMPI (heterogeneous):       %9.4f s   (chose l = %d)\n",
              hmpi.algorithm_time, hmpi.chosen_l);
  std::printf("speedup: %.2fx\n\n", mpi.algorithm_time / hmpi.algorithm_time);

  std::printf("grid placement (grid position -> machine):\n");
  for (int i = 0; i < config.m; ++i) {
    std::printf(" ");
    for (int j = 0; j < config.m; ++j) {
      const int machine =
          hmpi.grid_placement[static_cast<std::size_t>(i * config.m + j)];
      std::printf("  P(%d,%d)=%s", i, j, cluster.processor(machine).name.c_str());
    }
    std::printf("\n");
  }

  // Pivot rows/columns travel as native collectives; the runtime's cost
  // model picks each algorithm per payload size (docs/collectives.md).
  std::printf("\ncollective algorithms chosen by the tuner:\n");
  for (const auto& sel : hmpi.coll_selections) {
    std::printf("  %-14s %6zu B -> %-12s (predicted %.6f s)\n",
                coll::op_name(sel.op), sel.bytes,
                coll::algo_name(sel.op, sel.algo), sel.predicted_s);
  }

  const bool ok = std::abs(mpi.checksum - serial_checksum) < 1e-8 &&
                  std::abs(hmpi.checksum - serial_checksum) < 1e-8;
  std::printf("\nchecksums: serial %.6f, mpi %.6f, hmpi %.6f -> %s\n",
              serial_checksum, mpi.checksum, hmpi.checksum,
              ok ? "all match" : "MISMATCH");
  return ok ? 0 : 1;
}
