// Post-mortem of a simulated run: per-machine utilisation from the tracer.
//
// Runs the EM3D algorithm under both placements (rank-order MPI and the
// HMPI selection) with the event tracer attached, then reports where each
// machine spent its virtual time — the "why" behind the speedup numbers.
//
// Build & run:  ./build/examples/trace_report
#include <cstdio>
#include <map>

#include "apps/em3d/app.hpp"
#include "apps/em3d/parallel.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"

using namespace hmpi;
using apps::em3d::GeneratorConfig;
using apps::em3d::System;
using apps::em3d::WorkMode;

namespace {

struct MachineUse {
  double compute = 0.0;
  double bytes = 0.0;
  int messages = 0;
};

void report(const char* title, const hnoc::Cluster& cluster,
            const System& system, const std::vector<int>& placement) {
  mp::Tracer tracer;
  mp::WorldOptions options;
  options.tracer = &tracer;

  double makespan = 0.0;
  mp::World::run(
      cluster, placement,
      [&](mp::Proc& p) {
        auto result = apps::em3d::run_parallel(p.world_comm(), system, 4,
                                               WorkMode::kVirtualOnly);
        if (p.rank() == 0) makespan = result.algorithm_time;
      },
      options);

  std::map<int, MachineUse> use;
  for (const mp::TraceEvent& e : tracer.events()) {
    MachineUse& m = use[e.processor];
    if (e.kind == mp::TraceEvent::Kind::kCompute) {
      m.compute += e.end_time - e.start_time;
    } else if (e.kind == mp::TraceEvent::Kind::kSend) {
      m.bytes += static_cast<double>(e.bytes);
      m.messages += 1;
    }
  }

  std::printf("%s: algorithm time %.3f s\n", title, makespan);
  std::printf("  %-8s %-7s %12s %10s %9s\n", "machine", "speed", "compute_s",
              "busy_pct", "sent_kB");
  for (const auto& [machine, stats] : use) {
    const auto& proc = cluster.processor(machine);
    std::printf("  %-8s %-7.0f %12.3f %9.1f%% %9.1f\n", proc.name.c_str(),
                proc.speed, stats.compute, 100.0 * stats.compute / makespan,
                stats.bytes / 1000.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 77;
  const System system = apps::em3d::generate(config);

  // Rank order (the MPI baseline)...
  std::vector<int> rank_order{0, 1, 2, 3, 4, 5, 6, 7, 8};
  report("MPI placement (rank order)", cluster, system, rank_order);

  // ...versus the placement HMPI picks (biggest subbodies on the fast
  // machines, the tiny one on the slow box).
  auto hmpi = apps::em3d::run_hmpi(cluster, config, 1, WorkMode::kVirtualOnly, 100);
  report("HMPI placement (runtime-selected)", cluster, system, hmpi.placement);

  std::printf(
      "Reading: under rank order the slow machine computes for most of the\n"
      "makespan while fast machines idle; the selected placement evens the\n"
      "busy percentages out.\n");
  return 0;
}
