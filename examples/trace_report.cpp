// Post-mortem of a simulated run, built on the telemetry layer.
//
// Runs the EM3D algorithm under both placements (rank-order MPI and the
// HMPI selection) and reports where each machine spent its virtual time —
// the "why" behind the speedup numbers. Unlike the tracer-walking original,
// the per-machine numbers come from the telemetry metrics registry
// (machine.<p>.compute_seconds / sent_bytes / messages_sent), diffing a
// snapshot taken around each run; the runtime's span log and prediction
// ledger supply the search timeline and the Timeof-accuracy summary
// (docs/observability.md).
//
// Exports: build/trace_report_metrics.json and build/trace_report_trace.json
// (Chrome trace_event format — load in Perfetto or chrome://tracing).
// Override the paths with HMPI_METRICS_JSON / HMPI_TRACE_JSON.
//
// Build & run:  ./build/examples/trace_report
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "apps/em3d/app.hpp"
#include "apps/em3d/parallel.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prediction.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/span.hpp"

using namespace hmpi;
using apps::em3d::GeneratorConfig;
using apps::em3d::System;
using apps::em3d::WorkMode;

namespace {

double machine_metric(const telemetry::MetricsRegistry::Snapshot& snap,
                      int machine, const char* what) {
  return snap.counter_value("machine." + std::to_string(machine) + "." + what);
}

void report(const char* title, const hnoc::Cluster& cluster,
            const System& system, const std::vector<int>& placement,
            mp::Tracer& tracer) {
  const telemetry::MetricsRegistry::Snapshot before =
      telemetry::metrics().snapshot();

  mp::WorldOptions options;
  options.tracer = &tracer;
  double makespan = 0.0;
  mp::World::run(
      cluster, placement,
      [&](mp::Proc& p) {
        auto result = apps::em3d::run_parallel(p.world_comm(), system, 4,
                                               WorkMode::kVirtualOnly);
        if (p.rank() == 0) makespan = result.algorithm_time;
      },
      options);

  const telemetry::MetricsRegistry::Snapshot after =
      telemetry::metrics().snapshot();

  std::printf("%s: algorithm time %.3f s\n", title, makespan);
  std::printf("  %-8s %-7s %12s %10s %9s %6s\n", "machine", "speed",
              "compute_s", "busy_pct", "sent_kB", "msgs");
  for (int machine = 0; machine < cluster.size(); ++machine) {
    const double compute = machine_metric(after, machine, "compute_seconds") -
                           machine_metric(before, machine, "compute_seconds");
    const double bytes = machine_metric(after, machine, "sent_bytes") -
                         machine_metric(before, machine, "sent_bytes");
    const double msgs = machine_metric(after, machine, "messages_sent") -
                        machine_metric(before, machine, "messages_sent");
    if (compute == 0.0 && msgs == 0.0) continue;
    const auto& proc = cluster.processor(machine);
    std::printf("  %-8s %-7.0f %12.3f %9.1f%% %9.1f %6.0f\n",
                proc.name.c_str(), proc.speed, compute,
                100.0 * compute / makespan, bytes / 1000.0, msgs);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 77;
  const System system = apps::em3d::generate(config);

  mp::Tracer tracer;

  // Rank order (the MPI baseline)...
  std::vector<int> rank_order{0, 1, 2, 3, 4, 5, 6, 7, 8};
  report("MPI placement (rank order)", cluster, system, rank_order, tracer);

  // ...versus the placement HMPI picks (biggest subbodies on the fast
  // machines, the tiny one on the slow box). run_hmpi drives the full
  // runtime, so it populates the span log and the prediction ledger.
  auto hmpi = apps::em3d::run_hmpi(cluster, config, 1, WorkMode::kVirtualOnly, 100);
  report("HMPI placement (runtime-selected)", cluster, system, hmpi.placement,
         tracer);

  // --- runtime span summary (wall timeline) --------------------------------
  struct SpanUse {
    int count = 0;
    double total_ms = 0.0;
  };
  std::map<std::string, SpanUse> span_use;
  for (const telemetry::SpanRecord& s : telemetry::spans().records()) {
    SpanUse& u = span_use[s.name];
    u.count += 1;
    u.total_ms += s.wall_dur_us / 1000.0;
  }
  std::printf("Runtime spans (wall time):\n");
  std::printf("  %-16s %6s %12s\n", "span", "count", "total_ms");
  for (const auto& [name, u] : span_use) {
    std::printf("  %-16s %6d %12.3f\n", name.c_str(), u.count, u.total_ms);
  }
  std::printf("\n");

  // --- Timeof prediction accuracy ------------------------------------------
  std::printf("Prediction ledger (Timeof-predicted vs measured makespan):\n");
  for (const auto& e : telemetry::predictions().summary()) {
    std::printf("  model %-12s samples %2d  mean rel error %5.1f%%  max %5.1f%%\n",
                e.model.c_str(), e.samples, 100.0 * e.mean_rel_error,
                100.0 * e.max_rel_error);
  }
  std::printf("\n");

  // --- scheduler service demo ----------------------------------------------
  // A burst of small jobs through hmpictld (docs/scheduler.md) with the same
  // tracer attached: the kSchedDispatch/kSchedPreempt instants join the
  // exported Chrome trace, and the sched.* metrics join the metrics dump.
  {
    auto job_model = std::make_shared<const pmdl::Model>(
        pmdl::Model::from_factory(
            "demo_job", 2, [](std::span<const pmdl::ParamValue> params) {
              const long long p = std::get<long long>(params[0]);
              const long long volume = std::get<long long>(params[1]);
              pmdl::InstanceBuilder b("demo_job");
              b.shape({p});
              for (long long a = 0; a < p; ++a) {
                b.node_volume(static_cast<int>(a),
                              static_cast<double>(volume));
              }
              b.scheme([p](pmdl::ScheduleSink& s) {
                s.par_begin();
                for (long long a = 0; a < p; ++a) {
                  s.par_iter_begin();
                  const long long c[1] = {a};
                  s.compute(c, 100.0);
                }
                s.par_end();
              });
              return b.build();
            }));
    sched::SchedConfig sched_config;
    sched_config.tracer = &tracer;
    sched::Scheduler scheduler(cluster, sched_config);
    for (int i = 0; i < 8; ++i) {
      sched::JobSpec spec;
      spec.model = job_model;
      spec.params = {pmdl::scalar(1 + i % 3), pmdl::scalar(200 + 150 * i)};
      spec.priority = i % 3;
      spec.arrival_s = 0.3 * i;
      spec.name = "demo" + std::to_string(i);
      scheduler.submit(std::move(spec));
    }
    scheduler.run_until_idle();
    const sched::SchedStats s = scheduler.stats();
    std::printf("Scheduler service (8-job burst, %s policy):\n",
                sched::policy_name(scheduler.config().policy));
    std::printf(
        "  completed %lld/%lld  backfilled %lld  preempted %lld\n"
        "  makespan %.3f s  utilization %.1f%%  mean wait %.3f s\n\n",
        s.completed, s.submitted, s.backfilled, s.preempted, s.makespan_s,
        100.0 * s.utilization, s.mean_wait_s);
  }

  // --- export ---------------------------------------------------------------
  // Default under build/ so the dumps never land in a source checkout; the
  // HMPI_METRICS_JSON / HMPI_TRACE_JSON overrides still win.
  std::filesystem::create_directories("build");
  telemetry::Sinks sinks;
  sinks.metrics_json = "build/trace_report_metrics.json";
  sinks.trace_json = "build/trace_report_trace.json";
  sinks = sinks.with_env_overrides();
  {
    std::ofstream os(sinks.metrics_json);
    telemetry::metrics().write_json(os);
  }
  {
    std::ofstream os(sinks.trace_json);
    auto events = telemetry::spans_to_chrome(telemetry::spans().records());
    auto virt = mp::to_chrome_events(tracer.events());
    events.insert(events.end(), virt.begin(), virt.end());
    telemetry::write_chrome_trace(os, std::move(events));
  }
  std::printf("wrote %s and %s (open the trace in Perfetto)\n\n",
              sinks.metrics_json.c_str(), sinks.trace_json.c_str());

  std::printf(
      "Reading: under rank order the slow machine computes for most of the\n"
      "makespan while fast machines idle; the selected placement evens the\n"
      "busy percentages out.\n");
  return 0;
}
