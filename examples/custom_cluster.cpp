// Describing a network in the textual cluster format.
//
// Experiments usually want the machine roster in data, not code. This
// example parses a cluster description (hnoc::parse_cluster), prints the
// canonical form back, and runs a selection on it — including a machine
// whose external load arrives mid-session.
//
// Build & run:  ./build/examples/custom_cluster
#include <cstdio>
#include <mutex>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster_io.hpp"

using namespace hmpi;

namespace {

constexpr const char* kDescription = R"(
# A small campus network: one server, two lab machines, one laptop that
# starts compiling something at t=2s, and a slow legacy box. The lab pair
# shares a fast private interconnect.
network latency 150e-6 bandwidth 12.5e6
shared_memory latency 5e-6 bandwidth 1e9

processor server  speed 120
processor lab1    speed 80
processor lab2    speed 80
processor laptop  speed 100 load@2 0.2
processor legacy  speed 12

symmetric_link lab1 lab2 latency 2e-5 bandwidth 1.25e8
)";

}  // namespace

int main() {
  hnoc::Cluster cluster = hnoc::parse_cluster(kDescription);
  std::printf("parsed %d machines; canonical description:\n%s\n", cluster.size(),
              hnoc::to_description(cluster).c_str());

  // Three workers with unequal volumes; which machines get picked depends on
  // when we measure the laptop.
  pmdl::Model model = pmdl::Model::from_source(R"(
    algorithm Work(int p, int v[p]) {
      coord I=p;
      node { I>=0: bench*(v[I]); };
      parent[0];
      scheme { int i; par (i = 0; i < p; i++) 100%%[i]; };
    };
  )");
  const std::vector<pmdl::ParamValue> params{pmdl::scalar(3),
                                             pmdl::array({100, 900, 400})};

  std::mutex io;
  auto pick_group = [&](double measure_at) {
    mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
      Runtime rt(proc);
      proc.elapse(measure_at);
      rt.recon([](mp::Proc& p) { p.compute(1.0); });
      auto group = rt.group_create(model, params);
      if (group && rt.is_host()) {
        std::lock_guard<std::mutex> lock(io);
        std::printf("measured at t=%.0fs -> group:", measure_at);
        for (int member : group->members()) {
          std::printf(" %s", cluster.processor(proc.world().processor_of(member))
                                 .name.c_str());
        }
        std::printf("\n");
      }
      if (group) rt.group_free(*group);
      rt.finalize();
    });
  };

  pick_group(0.0);  // laptop still idle: it gets the big volume
  pick_group(5.0);  // laptop loaded to 20%: the labs take over
  return 0;
}
