// The paper's irregular application (Figures 3-5): EM3D field simulation on
// the 9-machine heterogeneous network, written against the paper-style C
// interface, and compared with the plain MPI version.
//
// Build & run:  ./build/examples/em3d_simulation
#include <cstdio>
#include <mutex>

#include "apps/em3d/app.hpp"
#include "apps/em3d/parallel.hpp"
#include "hmpi/hmpi_c.hpp"
#include "hnoc/cluster.hpp"

using namespace hmpi;
using apps::em3d::GeneratorConfig;
using apps::em3d::System;
using apps::em3d::WorkMode;

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  std::printf("EM3D on the paper's 9-machine network (speeds: ");
  for (int i = 0; i < cluster.size(); ++i) {
    std::printf("%s%.0f", i ? ", " : "", cluster.processor(i).speed);
  }
  std::printf(")\n\n");

  GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 99;
  const System system = apps::em3d::generate(config);
  const int iterations = 8;
  const int k = 100;  // benchmark node count

  // --- plain MPI version (Figure 3): subbody i on machine i ----------------
  auto mpi = apps::em3d::run_mpi(cluster, config, iterations, WorkMode::kReal);
  std::printf("MPI  (rank-order group):    %9.3f s   checksum %.6f\n",
              mpi.algorithm_time, mpi.checksum);

  // --- HMPI version (Figure 5), written with the paper's C interface -------
  pmdl::Model model = apps::em3d::performance_model();
  const auto params = apps::em3d::model_parameters(system, k);

  std::mutex io;
  double hmpi_time = 0.0, hmpi_checksum = 0.0;
  std::vector<int> placement;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    HMPI_Init(proc);

    // HMPI_Recon with the serial EM3D benchmark.
    HMPI_Recon([&](mp::Proc& q) { apps::em3d::recon_benchmark(q, system, k); });

    HMPI_Group gid;
    if (HMPI_Is_host() || HMPI_Is_free()) {
      HMPI_Group_create(&gid, model, params);
    }
    if (HMPI_Is_member(gid)) {
      const mp::Comm* em3dcomm = HMPI_Get_comm(gid);
      auto result =
          apps::em3d::run_parallel(*em3dcomm, system, iterations, WorkMode::kReal);
      if (HMPI_Is_host()) {
        std::lock_guard<std::mutex> lock(io);
        hmpi_time = result.algorithm_time;
        hmpi_checksum = result.checksum;
        for (int member : gid->members()) {
          placement.push_back(proc.world().processor_of(member));
        }
      }
    }
    if (HMPI_Is_member(gid)) HMPI_Group_free(&gid);
    HMPI_Finalize(0);
  });

  std::printf("HMPI (runtime-selected):    %9.3f s   checksum %.6f\n",
              hmpi_time, hmpi_checksum);
  std::printf("speedup: %.2fx\n\n", mpi.algorithm_time / hmpi_time);

  std::printf("HMPI placement (subbody -> machine):\n");
  for (std::size_t s = 0; s < placement.size(); ++s) {
    std::printf("  subbody %zu (%4d nodes) -> %s (speed %.0f)\n", s,
                config.nodes_per_subbody[s],
                cluster.processor(placement[s]).name.c_str(),
                cluster.processor(placement[s]).speed);
  }
  const bool checksums_match =
      std::abs(mpi.checksum - hmpi_checksum) < 1e-9;
  std::printf("\nresults identical across versions: %s\n",
              checksums_match ? "yes" : "NO");
  return checksums_match ? 0 : 1;
}
