// Quickstart: the whole HMPI lifecycle in one small program.
//
//   1. Describe a simulated heterogeneous network of computers.
//   2. Write the performance model of your algorithm in the model
//      definition language.
//   3. On every simulated process: init the runtime, refresh speed
//      estimates (HMPI_Recon), predict (HMPI_Timeof), create the group
//      (HMPI_Group_create), run ordinary message-passing code on the
//      group's communicator, free, finalize.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <mutex>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

using namespace hmpi;

int main() {
  // A 5-machine network: one fast box, three mid ones, one very slow one,
  // on 100 Mbit switched Ethernet.
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("host", 50.0)
                              .add("fast", 200.0)
                              .add("mid1", 60.0)
                              .add("mid2", 55.0)
                              .add("slow", 5.0)
                              .network(150e-6, 12.5e6)
                              .build();

  // The algorithm: 3 parallel workers with unequal workloads (volumes are in
  // units of the benchmark kernel below), ring communication between them.
  pmdl::Model model = pmdl::Model::from_source(R"(
    algorithm Ring(int p, int work[p]) {
      coord I=p;
      node { I>=0: bench*(work[I]); };
      link (J=p) { J == ((I+1) % p) : length*(1000) [I]->[J]; };
      parent[0];
      scheme {
        int i;
        par (i = 0; i < p; i++) 100%%[i];
        par (i = 0; i < p; i++) 100%%[i]->[(i+1) % p];
      };
    };
  )");
  const std::vector<pmdl::ParamValue> params{
      pmdl::scalar(3), pmdl::array({200, 1000, 400})};

  std::mutex io;
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    Runtime rt(proc);  // HMPI_Init (collective)

    // HMPI_Recon: one benchmark kernel == one unit of virtual work.
    rt.recon([](mp::Proc& p) { p.compute(1.0); });

    if (rt.is_host()) {
      const double predicted = rt.timeof(model, params);
      std::lock_guard<std::mutex> lock(io);
      std::printf("[host] HMPI_Timeof predicts %.4f s for the best group\n",
                  predicted);
    }

    auto group = rt.group_create(model, params);  // collective
    if (group) {
      // Ordinary message-passing code on the group's communicator: do the
      // modelled work, pass a token around the ring.
      const mp::Comm& comm = group->comm();
      const long long volumes[3] = {200, 1000, 400};
      proc.compute(static_cast<double>(volumes[comm.rank()]));
      std::vector<std::byte> token(1000);
      comm.send_bytes(token, (comm.rank() + 1) % comm.size(), 0);
      comm.recv_bytes(token, (comm.rank() + comm.size() - 1) % comm.size(), 0);
      comm.barrier();

      {
        std::lock_guard<std::mutex> lock(io);
        std::printf(
            "[group rank %d] runs on machine '%s' (volume %lld), done at "
            "t=%.4f s\n",
            comm.rank(), proc.cluster().processor(proc.processor()).name.c_str(),
            volumes[comm.rank()], proc.clock());
      }
      rt.group_free(*group);
    } else {
      std::lock_guard<std::mutex> lock(io);
      std::printf("[world rank %d] not selected (machine '%s' stays free)\n",
                  proc.rank(),
                  proc.cluster().processor(proc.processor()).name.c_str());
    }
    rt.finalize();  // HMPI_Finalize (collective)
  });

  std::printf("quickstart: ok\n");
  return 0;
}
