// Failure-aware EM3D (docs/faults.md): a worker machine crashes in the middle
// of the iteration loop, the survivors unwind with PeerFailedError /
// RevokedError, respawn a smaller group with HMPI_Group_respawn, and redo the
// computation on a re-decomposed 8-subbody system — verified against the
// serial reference of that system.
//
// Phase 1 runs the healthy 9-machine job once to find out *when* the middle
// of the algorithm is (the simulator is deterministic, so the virtual clock
// of run 1 predicts run 2 exactly). Phase 2 re-runs with a FaultPlan that
// kills the chosen worker at that moment.
//
// Build & run:  ./build/examples/failover
#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "apps/em3d/app.hpp"
#include "apps/em3d/parallel.hpp"
#include "hmpi/hmpi_c.hpp"
#include "hnoc/cluster.hpp"

using namespace hmpi;
using apps::em3d::GeneratorConfig;
using apps::em3d::System;
using apps::em3d::WorkMode;

namespace {

constexpr int kIterations = 6;
constexpr int kBenchNodes = 100;  // Recon / model benchmark node count
constexpr int kVictim = 4;        // world rank killed in phase 2

GeneratorConfig nine_subbody_config() {
  GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 99;
  return config;
}

/// Re-decomposition after losing one subbody's machine: the dead subbody's
/// nodes are folded into its lower neighbour, every survivor derives the
/// same 8-subbody config from the same observation.
GeneratorConfig merge_subbody(GeneratorConfig config, int dead) {
  config.nodes_per_subbody[static_cast<std::size_t>(dead - 1)] +=
      config.nodes_per_subbody[static_cast<std::size_t>(dead)];
  config.nodes_per_subbody.erase(config.nodes_per_subbody.begin() + dead);
  config.seed += 1;  // a genuinely new decomposition, not a re-run
  return config;
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const GeneratorConfig config9 = nine_subbody_config();
  const System system9 = apps::em3d::generate(config9);
  pmdl::Model model = apps::em3d::performance_model();

  std::mutex io;

  // --- phase 1: healthy run, to locate the middle of the algorithm ---------
  double algorithm_start = 0.0;  // victim's clock entering run_parallel
  double algorithm_time = 0.0;
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    HMPI_Init(proc);
    HMPI_Recon([&](mp::Proc& q) {
      apps::em3d::recon_benchmark(q, system9, kBenchNodes);
    });
    HMPI_Group gid;
    HMPI_Group_create(&gid, model,
                      apps::em3d::model_parameters(system9, kBenchNodes));
    if (HMPI_Is_member(gid)) {
      if (proc.rank() == kVictim) algorithm_start = proc.clock();
      auto result = apps::em3d::run_parallel(*HMPI_Get_comm(gid), system9,
                                             kIterations, WorkMode::kReal);
      if (proc.rank() == kVictim) algorithm_time = result.algorithm_time;
      HMPI_Group_free(&gid);
    }
    HMPI_Finalize(0);
  });
  const double crash_time = algorithm_start + 0.5 * algorithm_time;
  std::printf("healthy run: algorithm %.3f s; injecting crash of rank %d at "
              "t=%.3f s\n\n",
              algorithm_time, kVictim, crash_time);

  // --- phase 2: the same job with the worker killed mid-loop ---------------
  mp::World::Options options;
  options.faults.crashes.push_back({kVictim, crash_time});

  double recovered_checksum = 0.0;
  double serial_reference = 0.0;
  bool degraded = false;
  double degraded_delta = 0.0;
  const auto run = mp::World::run_one_per_processor(
      cluster,
      [&](mp::Proc& proc) {
        HMPI_Init(proc);
        HMPI_Recon([&](mp::Proc& q) {
          apps::em3d::recon_benchmark(q, system9, kBenchNodes);
        });
        HMPI_Group gid;
        HMPI_Group_create(&gid, model,
                          apps::em3d::model_parameters(system9, kBenchNodes));
        // All nine machines are members (nine subbodies). The victim dies
        // inside run_parallel; every survivor unwinds with PeerFailedError
        // (blocked on the dead rank) or RevokedError (blocked on a survivor
        // that already moved on to the respawn).
        bool failed = false;
        try {
          apps::em3d::run_parallel(*HMPI_Get_comm(gid), system9, kIterations,
                                   WorkMode::kReal);
        } catch (const PeerFailedError& e) {
          failed = true;
          if (HMPI_Is_host()) {
            std::lock_guard<std::mutex> lock(io);
            std::printf("host: peer %d failed at t=%.3f s — respawning\n",
                        e.peer_world_rank(), e.failure_time());
          }
        } catch (const RevokedError&) {
          failed = true;
        }
        if (!failed) {
          // Unreachable for survivors; kept so a logic change fails loudly.
          HMPI_Group_free(&gid);
          HMPI_Finalize(0);
          return;
        }

        // Every survivor observes the same dead member and derives the same
        // 8-subbody re-decomposition.
        int dead_subbody = -1;
        const std::vector<int>& members = gid->members();
        for (std::size_t g = 0; g < members.size(); ++g) {
          if (!proc.world().alive(members[g])) {
            dead_subbody = static_cast<int>(g);
          }
        }
        const GeneratorConfig config8 = merge_subbody(config9, dead_subbody);
        const System system8 = apps::em3d::generate(config8);

        HMPI_Group_respawn(&gid, model,
                           apps::em3d::model_parameters(system8, kBenchNodes));
        auto result = apps::em3d::run_parallel(*HMPI_Get_comm(gid), system8,
                                               kIterations, WorkMode::kReal);
        if (HMPI_Is_host()) {
          std::lock_guard<std::mutex> lock(io);
          recovered_checksum = result.checksum;
          serial_reference = apps::em3d::serial_run(system8, kIterations);
          degraded = HMPI_Group_is_degraded(gid) != 0;
          degraded_delta = HMPI_Group_degraded_delta(gid);
        }
        HMPI_Group_free(&gid);
        HMPI_Finalize(0);
      },
      options);

  std::printf("failed ranks: {");
  for (std::size_t i = 0; i < run.failed_ranks.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", run.failed_ranks[i]);
  }
  std::printf("}\n");
  std::printf("respawned group: degraded=%s, predicted slowdown %.3f s\n",
              degraded ? "yes" : "no", degraded_delta);
  std::printf("recovered checksum %.6f vs serial reference %.6f\n",
              recovered_checksum, serial_reference);
  const bool ok = std::abs(recovered_checksum - serial_reference) < 1e-9 &&
                  run.failed_ranks == std::vector<int>{kVictim} && degraded;
  std::printf("\nrecovery successful: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
