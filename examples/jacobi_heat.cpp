// Heat diffusion with heterogeneous row bands — writing a new HMPI
// application from scratch (not one of the paper's two).
//
// A rows x cols plate with fixed border temperatures relaxes under Jacobi
// iteration. The row bands are sized to the measured machine speeds
// (HMPI_Recon), and HMPI_Group_create puts each band on the machine the
// distribution assumed.
//
// Build & run:  ./build/examples/jacobi_heat
#include <cstdio>

#include "apps/jacobi/jacobi.hpp"
#include "coll/policy.hpp"
#include "hnoc/cluster.hpp"

using namespace hmpi;
using apps::jacobi::JacobiConfig;
using apps::jacobi::WorkMode;

int main() {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();

  JacobiConfig config;
  config.rows = 130;  // 128 interior rows
  config.cols = 64;
  config.iterations = 20;
  config.seed = 42;
  const int workers = 9;

  std::printf("Jacobi heat diffusion, %dx%d plate, %d iterations, %d workers\n\n",
              config.rows, config.cols, config.iterations, workers);

  const double expected =
      apps::jacobi::grid_checksum(apps::jacobi::serial_jacobi(config));

  auto mpi = apps::jacobi::run_mpi(cluster, config, workers, WorkMode::kReal);
  std::printf("MPI  (equal bands):         %9.4f s\n", mpi.algorithm_time);

  auto hmpi = apps::jacobi::run_hmpi(cluster, config, workers, WorkMode::kReal);
  std::printf("HMPI (speed-sized bands):   %9.4f s\n", hmpi.algorithm_time);
  std::printf("speedup: %.2fx\n\n", mpi.algorithm_time / hmpi.algorithm_time);

  std::printf("band sizes (rows) by machine:\n");
  for (std::size_t w = 0; w < hmpi.row_counts.size(); ++w) {
    const auto& machine = cluster.processor(hmpi.placement[w]);
    std::printf("  band %zu: %3d rows on %s (speed %.0f)\n", w,
                hmpi.row_counts[w], machine.name.c_str(), machine.speed);
  }

  // The checksum runs as a native reduce_scatter + allreduce; the runtime's
  // cost model picks each algorithm per payload size (docs/collectives.md).
  std::printf("\ncollective algorithms chosen by the tuner:\n");
  for (const auto& sel : hmpi.coll_selections) {
    std::printf("  %-14s %6zu B -> %-12s (predicted %.6f s)\n",
                coll::op_name(sel.op), sel.bytes,
                coll::algo_name(sel.op, sel.algo), sel.predicted_s);
  }

  const bool ok = std::abs(mpi.checksum - expected) < 1e-8 &&
                  std::abs(hmpi.checksum - expected) < 1e-8;
  std::printf("\nresults match the serial solver: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
