// Multi-user networks: why HMPI_Recon exists (paper §1-2).
//
// A HNOC's machines serve other users too; the speed a machine delivers
// drifts over time. This example runs the same workload twice on a network
// whose two fastest machines are externally loaded:
//   * once creating the group from the stale installation-time speeds,
//   * once after HMPI_Recon measured the speeds the machines deliver now.
//
// Build & run:  ./build/examples/adaptive_load
#include <cstdio>
#include <mutex>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

using namespace hmpi;

namespace {

/// The paper's EM3D network, but machines 6 (176) and 7 (106) are busy with
/// other users and only deliver a tenth of their speed.
hnoc::Cluster loaded_network() {
  hnoc::ClusterBuilder b;
  const double speeds[9] = {46, 46, 46, 46, 46, 46, 176, 106, 9};
  for (int i = 0; i < 9; ++i) {
    hnoc::LoadProfile load;
    if (i == 6 || i == 7) load = hnoc::LoadProfile::constant(0.10);
    b.add("ws" + std::to_string(i), speeds[i], load);
  }
  return b.build();
}

/// 4 parallel workers with unequal volumes; parent is worker 0.
pmdl::Model work_model() {
  return pmdl::Model::from_source(R"(
    algorithm Work(int p, int v[p]) {
      coord I=p;
      node { I>=0: bench*(v[I]); };
      parent[0];
      scheme { int i; par (i = 0; i < p; i++) 100%%[i]; };
    };
  )");
}

double run_once(const hnoc::Cluster& cluster, bool with_recon,
                std::vector<int>* placement_out) {
  pmdl::Model model = work_model();
  const std::vector<pmdl::ParamValue> params{pmdl::scalar(4),
                                             pmdl::array({500, 4000, 2000, 1000})};
  const long long volumes[4] = {500, 4000, 2000, 1000};

  double makespan = 0.0;
  std::mutex mutex;
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    Runtime rt(proc);
    if (with_recon) {
      rt.recon([](mp::Proc& p) { p.compute(1.0); });
    }
    auto group = rt.group_create(model, params);
    if (group) {
      group->comm().barrier();
      const double start = proc.clock();
      proc.compute(static_cast<double>(volumes[group->rank()]));
      double elapsed = proc.clock() - start;
      double max_elapsed = 0.0;
      group->comm().allreduce(std::span<const double>(&elapsed, 1),
                              std::span<double>(&max_elapsed, 1),
                              [](double a, double b) { return a > b ? a : b; });
      if (rt.is_host()) {
        std::lock_guard<std::mutex> lock(mutex);
        makespan = max_elapsed;
        placement_out->clear();
        for (int member : group->members()) {
          placement_out->push_back(proc.world().processor_of(member));
        }
      }
      rt.group_free(*group);
    }
    rt.finalize();
  });
  return makespan;
}

void describe(const hnoc::Cluster& cluster, const char* label, double time,
              const std::vector<int>& placement) {
  std::printf("%s: %8.3f s, placement:", label, time);
  for (int machine : placement) {
    std::printf(" %s", cluster.processor(machine).name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const hnoc::Cluster cluster = loaded_network();
  std::printf(
      "ws6 (base 176) and ws7 (base 106) are loaded to 10%% by other users.\n"
      "Workload: 4 processes with volumes {500, 4000, 2000, 1000}.\n\n");

  std::vector<int> stale_placement, fresh_placement;
  const double stale = run_once(cluster, /*with_recon=*/false, &stale_placement);
  const double fresh = run_once(cluster, /*with_recon=*/true, &fresh_placement);

  describe(cluster, "stale speed estimates (no HMPI_Recon)", stale, stale_placement);
  describe(cluster, "fresh speed estimates (   HMPI_Recon)", fresh, fresh_placement);
  std::printf("\nrecon advantage: %.2fx\n", stale / fresh);
  return fresh <= stale ? 0 : 1;
}
