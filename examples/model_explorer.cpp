// Model explorer: what the PMDL "compiler" sees.
//
// Takes the paper's two performance models, prints their canonical source
// (pretty-printer), instantiates them with representative parameters, dumps
// the compiled summary (volumes/links/parent), and compares the predicted
// execution time of the naive rank-order mapping with the mapper's choice
// on the paper's network.
//
// Build & run:  ./build/examples/model_explorer
#include <cstdio>
#include <numeric>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "estimator/estimator.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"
#include "pmdl/parser.hpp"
#include "pmdl/printer.hpp"

using namespace hmpi;

namespace {

void explore(const char* title, const pmdl::ModelInstance& instance,
             const hnoc::Cluster& cluster) {
  std::printf("---- %s ----\n%s", title, instance.summary().c_str());

  hnoc::NetworkModel net(cluster);
  std::vector<int> identity(static_cast<std::size_t>(instance.size()));
  std::iota(identity.begin(), identity.end(), 0);
  const double naive = est::estimate_time(instance, identity, net);

  std::vector<map::Candidate> candidates;
  for (int i = 0; i < cluster.size(); ++i) candidates.push_back({i, i});
  const auto best = map::SwapRefineMapper().select(instance, candidates, 0, net,
                                                   est::EstimateOptions{});

  std::printf("  predicted: rank-order %.4f s, selected group %.4f s (%.2fx)\n\n",
              naive, best.estimated_time, naive / best.estimated_time);
}

}  // namespace

int main() {
  // EM3D (Figure 4) -----------------------------------------------------------
  {
    pmdl::Model model = apps::em3d::performance_model();
    apps::em3d::GeneratorConfig config;
    config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
    config.degree = 5;
    config.remote_fraction = 0.05;
    config.seed = 7;
    const auto system = apps::em3d::generate(config);

    std::printf("== Em3d, canonical source as the compiler sees it ==\n");
    // Round-trip the application's model text through the parser + printer.
    const auto parsed = pmdl::parse(R"(
algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
  coord I=p;
  node {I>=0: bench*(d[I]/k);};
  link (L=p) {
    I>=0 && I!=L && (dep[I][L] > 0) :
      length*(dep[I][L]*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int current, owner, remote;
    par (owner = 0; owner < p; owner++)
        par (remote = 0; remote < p; remote++)
             if ((owner != remote) && (dep[owner][remote] > 0))
                100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
};
)");
    std::printf("%s\n", pmdl::to_source(*parsed).c_str());

    explore("Em3d compiled for the 9-subbody object",
            model.instantiate(apps::em3d::model_parameters(system, 100)),
            hnoc::testbeds::paper_em3d_network());
  }

  // ParallelAxB (Figure 7) ------------------------------------------------------
  {
    pmdl::Model model = apps::matmul::performance_model();
    std::vector<double> grid_speeds{46, 106, 46, 46, 46, 46, 46, 46, 9};
    apps::matmul::Partition partition(3, 9, grid_speeds);
    explore("ParallelAxB compiled for n=18, r=8, l=9",
            model.instantiate(apps::matmul::model_parameters(3, 8, 18, partition)),
            hnoc::testbeds::paper_mm_network());
  }
  return 0;
}
