// hmpiprof: human-readable critical-path and blame report
// (docs/observability.md).
//
// Reads the `{"critical_path": {...}}` JSON written by the HMPI_CRITPATH_JSON
// sink (or HMPI_Critical_path_json) and prints the path breakdown, the top-k
// blamed machines and links, and the collectives' share of the path. With a
// prediction-ledger dump as a second file, also prints predicted-vs-measured
// deltas per model.
//
//   hmpiprof [-k N] CRITPATH.json [PREDICTIONS.json]
//
// Exit status 0 on success, 1 on malformed input, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace {

using hmpi::telemetry::JsonValue;

double number_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream is(path);
  if (!is) {
    *ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  *ok = true;
  return buffer.str();
}

void print_share_line(const std::string& label, double seconds, double path_s) {
  const double share = path_s > 0.0 ? 100.0 * seconds / path_s : 0.0;
  std::printf("  %-24s %12.6f s  %5.1f%%\n", label.c_str(), seconds, share);
}

/// One blame row: a machine's compute seconds or a link's wait + transfer
/// seconds on the critical path, printed most-blamed first.
struct Blamed {
  std::string label;
  double seconds = 0.0;
};

int report_critpath(const std::string& file, const JsonValue& doc, int top_k) {
  const JsonValue* cp = doc.find("critical_path");
  if (cp == nullptr || !cp->is_object()) {
    std::fprintf(stderr, "%s: not a critical-path report (missing "
                         "\"critical_path\")\n",
                 file.c_str());
    return 1;
  }
  const double makespan = number_or(*cp, "makespan_s", 0.0);
  const double path = number_or(*cp, "path_s", 0.0);
  const JsonValue* complete = cp->find("complete");
  const bool is_complete = complete != nullptr &&
                           complete->type == JsonValue::Type::kBool &&
                           complete->boolean;

  std::printf("critical path report (%s)\n", file.c_str());
  std::printf("  %-24s %12.6f s\n", "makespan", makespan);
  std::printf("  %-24s %12.6f s  (%s)\n", "path", path,
              is_complete ? "complete" : "truncated: ring horizon reached");
  print_share_line("compute", number_or(*cp, "compute_s", 0.0), path);
  print_share_line("transfer", number_or(*cp, "transfer_s", 0.0), path);
  print_share_line("overhead", number_or(*cp, "overhead_s", 0.0), path);
  print_share_line("gap", number_or(*cp, "gap_s", 0.0), path);
  const JsonValue* segments = cp->find("segments");
  std::printf("  %-24s %12d     (ends at rank %d, %d events dropped)\n",
              "segments",
              segments != nullptr && segments->is_array()
                  ? static_cast<int>(segments->array.size())
                  : 0,
              static_cast<int>(number_or(*cp, "end_rank", -1.0)),
              static_cast<int>(number_or(*cp, "events_dropped", 0.0)));

  std::vector<Blamed> blamed;
  if (const JsonValue* machines = cp->find("machines");
      machines != nullptr && machines->is_array()) {
    for (const JsonValue& m : machines->array) {
      Blamed b;
      b.label =
          "machine " + std::to_string(static_cast<int>(number_or(m, "processor", -1.0)));
      b.seconds = number_or(m, "seconds", 0.0);
      blamed.push_back(std::move(b));
    }
  }
  if (const JsonValue* links = cp->find("links");
      links != nullptr && links->is_array()) {
    for (const JsonValue& l : links->array) {
      Blamed b;
      b.label = "link " +
                std::to_string(static_cast<int>(number_or(l, "src", -1.0))) +
                " -> " +
                std::to_string(static_cast<int>(number_or(l, "dst", -1.0)));
      b.seconds = number_or(l, "seconds", 0.0);
      blamed.push_back(std::move(b));
    }
  }
  std::stable_sort(blamed.begin(), blamed.end(),
                   [](const Blamed& a, const Blamed& b) {
                     return a.seconds > b.seconds;
                   });
  std::printf("\ntop blamed machines / links\n");
  if (blamed.empty()) std::printf("  (none on the path)\n");
  for (std::size_t i = 0;
       i < blamed.size() && i < static_cast<std::size_t>(top_k); ++i) {
    const double share = path > 0.0 ? 100.0 * blamed[i].seconds / path : 0.0;
    std::printf("  %2d. %-22s %12.6f s  %5.1f%%\n", static_cast<int>(i + 1),
                blamed[i].label.c_str(), blamed[i].seconds, share);
  }

  if (const JsonValue* colls = cp->find("collectives");
      colls != nullptr && colls->is_array() && !colls->array.empty()) {
    std::printf("\ncollectives on the path\n");
    for (const JsonValue& c : colls->array) {
      const JsonValue* op = c.find("op");
      const JsonValue* algo = c.find("algo");
      const std::string label =
          (op != nullptr && op->is_string() ? op->string : "?") + "/" +
          (algo != nullptr && algo->is_string() ? algo->string : "?");
      print_share_line(label, number_or(c, "seconds", 0.0), path);
    }
  }
  return 0;
}

int report_predictions(const std::string& file, const JsonValue& doc) {
  const JsonValue* samples = doc.find("samples");
  if (samples == nullptr || !samples->is_array()) {
    std::fprintf(stderr, "%s: not a prediction ledger (missing \"samples\")\n",
                 file.c_str());
    return 1;
  }
  std::printf("\npredicted vs measured (%s)\n", file.c_str());
  bool any = false;
  for (const JsonValue& s : samples->array) {
    const JsonValue* measured = s.find("measured_s");
    if (measured == nullptr || !measured->is_number()) continue;  // open entry
    const JsonValue* model = s.find("model");
    const double predicted = number_or(s, "predicted_s", 0.0);
    const double delta = measured->number - predicted;
    std::printf("  %-16s group %-4d predicted %10.6f s, measured %10.6f s, "
                "delta %+10.6f s (%+.1f%%)\n",
                model != nullptr && model->is_string() ? model->string.c_str()
                                                       : "?",
                static_cast<int>(number_or(s, "group_id", -1.0)), predicted,
                measured->number, delta,
                predicted > 0.0 ? 100.0 * delta / predicted : 0.0);
    any = true;
  }
  if (!any) std::printf("  (no closed predicted/measured pairs)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int top_k = 5;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-k") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hmpiprof: -k needs a value\n");
        return 2;
      }
      top_k = std::atoi(argv[++i]);
      if (top_k < 1) {
        std::fprintf(stderr, "hmpiprof: -k needs a positive integer\n");
        return 2;
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || files.size() > 2) {
    std::fprintf(stderr,
                 "usage: hmpiprof [-k N] CRITPATH.json [PREDICTIONS.json]\n");
    return 2;
  }

  for (std::size_t i = 0; i < files.size(); ++i) {
    bool ok = false;
    const std::string text = read_file(files[i], &ok);
    if (!ok) {
      std::fprintf(stderr, "%s: cannot open\n", files[i].c_str());
      return 1;
    }
    std::string error;
    const auto doc = hmpi::telemetry::parse_json(text, &error);
    if (!doc || !doc->is_object()) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", files[i].c_str(),
                   error.c_str());
      return 1;
    }
    const int status = i == 0 ? report_critpath(files[i], *doc, top_k)
                              : report_predictions(files[i], *doc);
    if (status != 0) return status;
  }
  return 0;
}
