// Validates telemetry JSON artifacts (CI smoke job; docs/observability.md).
//
// For each file argument the checker parses the document with the telemetry
// JSON parser and then applies shape checks by sniffing the document type:
//   * Chrome traces ({"traceEvents": [...]}): every event needs name/ph/ts,
//     ts must be non-decreasing per (pid, tid) track (metadata events
//     excluded), and at least one non-metadata event must be present.
//   * Metrics dumps ({"counters": ..., "histograms": ...}): sections must be
//     objects, histogram entries need count/sum/buckets, and every metric in
//     the reserved `coll.` namespace must follow the collective-subsystem
//     grammar: counters `coll.tuner.hits|misses` or `coll.<op>.<algo>`,
//     histograms `coll.<op>.seconds`, with <op>/<algo> names from the
//     coll policy tables (docs/collectives.md). Metrics in the reserved
//     `est.` namespace must follow the estimator grammar: counters
//     `est.compile.count|hits|misses|evaluations`,
//     `est.delta.evaluations|ops_replayed|ops_total`,
//     `est.cache.hits|misses`, or `est.batch.evaluations`, gauge
//     `est.delta.savings`, histogram `est.compile.seconds`
//     (docs/estimator.md). Metrics in the reserved `mapper.` namespace must
//     follow the batch-search grammar: counters
//     `mapper.batch.chunks|candidates` only (docs/mapper.md). Metrics in the
//     reserved `adapt.` namespace must
//     follow the adaptation grammar: counters
//     `adapt.checks|triggers|migrations|rollbacks|suppressed`, gauges
//     `adapt.divergence|drift`, histograms
//     `adapt.predicted_gain_seconds|realized_gain_seconds`
//     (docs/adaptation.md). Metrics in the reserved `sim.` namespace must
//     follow the simulator-engine grammar: counters
//     `sim.dispatches|stalls|runs.event|runs.thread`, gauges
//     `sim.fibers|workers|ready_peak|stack_bytes` (docs/simulator.md).
//   * Bench exports ({"benchmark": ..., "tables": [...]}): every table needs
//     title/columns/rows with rows matching the column count.
//   * Adaptation ledgers ({"adaptations": [...]}): every entry needs group
//     ids, a known signal/outcome, gate pricing, and member rosters.
//   * Scheduler dumps ({"scheduler": {...}}; docs/scheduler.md): a
//     fifo|priority policy, numeric accounting summary, and per-job records
//     with states from the JobState vocabulary. Metrics in the reserved
//     `sched.` namespace must follow the scheduler grammar: counters
//     `sched.submitted|dispatched|completed|preempted|backfilled|cancelled`,
//     gauges `sched.queue_depth|queue_depth_peak|running|utilization|
//     makespan_s|throughput_jobs_per_s`, histograms
//     `sched.wait_seconds|turnaround_seconds|service_seconds`.
// Exit status 0 when every file passes, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "coll/policy.hpp"
#include "telemetry/json.hpp"

namespace {

using hmpi::telemetry::JsonValue;

int errors = 0;

void fail(const std::string& file, const std::string& message) {
  std::fprintf(stderr, "%s: FAIL: %s\n", file.c_str(), message.c_str());
  ++errors;
}

void check_chrome_trace(const std::string& file, const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail(file, "traceEvents is not an array");
    return;
  }
  std::map<std::pair<double, double>, double> last_ts;  // (pid, tid) -> ts
  int real_events = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      fail(file, at + " is not an object");
      continue;
    }
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    if (name == nullptr || !name->is_string()) fail(file, at + " missing name");
    if (ph == nullptr || !ph->is_string()) fail(file, at + " missing ph");
    if (ts == nullptr || !ts->is_number()) fail(file, at + " missing ts");
    if (ph == nullptr || ts == nullptr || !ph->is_string() || !ts->is_number()) {
      continue;
    }
    if (ph->string == "M") continue;  // metadata carries no timeline position
    ++real_events;
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    const std::pair<double, double> track{pid != nullptr ? pid->number : 0.0,
                                          tid != nullptr ? tid->number : 0.0};
    auto it = last_ts.find(track);
    if (it != last_ts.end() && ts->number < it->second) {
      fail(file, at + ": ts regressed on its (pid, tid) track");
    }
    last_ts[track] = std::max(ts->number,
                              it != last_ts.end() ? it->second : ts->number);
  }
  if (real_events == 0) fail(file, "trace contains no non-metadata events");
}

// Resolves a "<op>.<algo>" tail against the coll policy tables.
bool valid_coll_op_algo(const std::string& tail) {
  const std::size_t dot = tail.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= tail.size()) {
    return false;
  }
  const std::string op_part = tail.substr(0, dot);
  const std::string algo_part = tail.substr(dot + 1);
  for (int i = 0; i < hmpi::coll::kNumCollOps; ++i) {
    const auto op = static_cast<hmpi::coll::CollOp>(i);
    if (op_part != hmpi::coll::op_name(op)) continue;
    return hmpi::coll::algo_from_name(op, algo_part) >= 1;
  }
  return false;
}

// Splits "coll.<op>.<suffix>" and resolves <op> against the policy tables;
// returns false when the name is outside the reserved grammar.
bool valid_coll_metric(const std::string& name, bool histogram) {
  const std::string rest = name.substr(5);  // past "coll."
  const std::size_t dot = rest.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
    return false;
  }
  const std::string head = rest.substr(0, dot);
  const std::string tail = rest.substr(dot + 1);
  if (!histogram && head == "tuner") {
    return tail == "hits" || tail == "misses";
  }
  for (int i = 0; i < hmpi::coll::kNumCollOps; ++i) {
    const auto op = static_cast<hmpi::coll::CollOp>(i);
    if (head != hmpi::coll::op_name(op)) continue;
    if (histogram) return tail == "seconds";
    return hmpi::coll::algo_from_name(op, tail) >= 1;
  }
  return false;
}

// The measured-feedback gauge grammar: coll.feedback.<op>.<algo>
// (docs/observability.md).
bool valid_coll_gauge(const std::string& name) {
  const std::string rest = name.substr(5);  // past "coll."
  if (rest.rfind("feedback.", 0) != 0) return false;
  return valid_coll_op_algo(rest.substr(9));
}

// True when every character of `s` is a decimal digit (and s is non-empty).
bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// The critical-path gauge grammar for the reserved "crit." namespace
// (docs/observability.md): fixed totals plus crit.machine.<p>.seconds,
// crit.link.<src>.<dst>.seconds, and crit.coll.<op>.<algo>.seconds. The
// crit.* namespace holds gauges only.
bool valid_crit_gauge(const std::string& name) {
  const std::string rest = name.substr(5);  // past "crit."
  if (rest == "path_seconds" || rest == "makespan_seconds" ||
      rest == "compute_seconds" || rest == "transfer_seconds" ||
      rest == "overhead_seconds" || rest == "gap_seconds" ||
      rest == "segments" || rest == "complete" || rest == "events_dropped") {
    return true;
  }
  if (rest.rfind("machine.", 0) == 0) {
    const std::string tail = rest.substr(8);
    const std::size_t dot = tail.find('.');
    return dot != std::string::npos && all_digits(tail.substr(0, dot)) &&
           tail.substr(dot + 1) == "seconds";
  }
  if (rest.rfind("link.", 0) == 0) {
    const std::string tail = rest.substr(5);
    const std::size_t d1 = tail.find('.');
    if (d1 == std::string::npos) return false;
    const std::size_t d2 = tail.find('.', d1 + 1);
    return d2 != std::string::npos && all_digits(tail.substr(0, d1)) &&
           all_digits(tail.substr(d1 + 1, d2 - d1 - 1)) &&
           tail.substr(d2 + 1) == "seconds";
  }
  if (rest.rfind("coll.", 0) == 0) {
    std::string tail = rest.substr(5);
    const std::size_t suffix = tail.rfind(".seconds");
    if (suffix == std::string::npos || suffix + 8 != tail.size()) return false;
    return valid_coll_op_algo(tail.substr(0, suffix));
  }
  return false;
}

// The estimator-subsystem grammar for the reserved "est." namespace
// (docs/estimator.md), by metric kind.
enum class MetricKind { kCounter, kGauge, kHistogram };

// The adaptation-subsystem grammar for the reserved "adapt." namespace
// (docs/adaptation.md), by metric kind.
bool valid_adapt_metric(const std::string& name, MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return name == "adapt.checks" || name == "adapt.triggers" ||
             name == "adapt.migrations" || name == "adapt.rollbacks" ||
             name == "adapt.suppressed";
    case MetricKind::kGauge:
      return name == "adapt.divergence" || name == "adapt.drift" ||
             name == "adapt.blame_share";
    case MetricKind::kHistogram:
      return name == "adapt.predicted_gain_seconds" ||
             name == "adapt.realized_gain_seconds";
  }
  return false;
}
// The simulator-engine grammar for the reserved "sim." namespace
// (docs/simulator.md), by metric kind. The event engine emits the dispatch
// counters and capacity gauges at the end of each run; World::run counts
// engine selections.
bool valid_sim_metric(const std::string& name, MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return name == "sim.dispatches" || name == "sim.stalls" ||
             name == "sim.runs.event" || name == "sim.runs.thread";
    case MetricKind::kGauge:
      return name == "sim.fibers" || name == "sim.workers" ||
             name == "sim.ready_peak" || name == "sim.stack_bytes";
    case MetricKind::kHistogram:
      return false;
  }
  return false;
}
// The scheduler-service grammar for the reserved "sched." namespace
// (docs/scheduler.md): dispatch-loop counters, queue/throughput gauges, and
// the wait/turnaround/service latency histograms.
bool valid_sched_metric(const std::string& name, MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return name == "sched.submitted" || name == "sched.dispatched" ||
             name == "sched.completed" || name == "sched.preempted" ||
             name == "sched.backfilled" || name == "sched.cancelled";
    case MetricKind::kGauge:
      return name == "sched.queue_depth" ||
             name == "sched.queue_depth_peak" || name == "sched.running" ||
             name == "sched.utilization" || name == "sched.makespan_s" ||
             name == "sched.throughput_jobs_per_s";
    case MetricKind::kHistogram:
      return name == "sched.wait_seconds" ||
             name == "sched.turnaround_seconds" ||
             name == "sched.service_seconds";
  }
  return false;
}
bool valid_est_metric(const std::string& name, MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return name == "est.compile.count" || name == "est.compile.hits" ||
             name == "est.compile.misses" ||
             name == "est.compile.evaluations" ||
             name == "est.delta.evaluations" ||
             name == "est.delta.ops_replayed" ||
             name == "est.delta.ops_total" || name == "est.cache.hits" ||
             name == "est.cache.misses" || name == "est.batch.evaluations";
    case MetricKind::kGauge:
      return name == "est.delta.savings";
    case MetricKind::kHistogram:
      return name == "est.compile.seconds";
  }
  return false;
}
// The batch-search grammar for the reserved "mapper." namespace
// (docs/mapper.md): counters only, emitted by searches that took the batch
// scoring path. (The legacy underscore names mapper_searches etc. are not in
// this namespace and stay unconstrained.)
bool valid_mapper_metric(const std::string& name, MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return name == "mapper.batch.chunks" ||
             name == "mapper.batch.candidates";
    case MetricKind::kGauge:
    case MetricKind::kHistogram:
      return false;
  }
  return false;
}

void check_metrics(const std::string& file, const JsonValue& doc) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* s = doc.find(section);
    if (s == nullptr || !s->is_object()) {
      fail(file, std::string(section) + " is not an object");
    }
  }
  const JsonValue* counters = doc.find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, c] : counters->object) {
      (void)c;
      if (name.rfind("coll.", 0) == 0 &&
          !valid_coll_metric(name, /*histogram=*/false)) {
        fail(file, "counter '" + name +
                       "' violates the coll.* grammar (expected "
                       "coll.tuner.hits|misses or coll.<op>.<algo>)");
      }
      if (name.rfind("crit.", 0) == 0) {
        fail(file, "counter '" + name +
                       "' violates the crit.* grammar (crit.* holds gauges "
                       "only)");
      }
      if (name.rfind("est.", 0) == 0 &&
          !valid_est_metric(name, MetricKind::kCounter)) {
        fail(file, "counter '" + name +
                       "' violates the est.* grammar (expected "
                       "est.compile.count|hits|misses|evaluations, "
                       "est.delta.evaluations|ops_replayed|ops_total, "
                       "est.cache.hits|misses, or est.batch.evaluations)");
      }
      if (name.rfind("mapper.", 0) == 0 &&
          !valid_mapper_metric(name, MetricKind::kCounter)) {
        fail(file, "counter '" + name +
                       "' violates the mapper.* grammar (expected "
                       "mapper.batch.chunks|candidates)");
      }
      if (name.rfind("adapt.", 0) == 0 &&
          !valid_adapt_metric(name, MetricKind::kCounter)) {
        fail(file, "counter '" + name +
                       "' violates the adapt.* grammar (expected "
                       "adapt.checks|triggers|migrations|rollbacks|"
                       "suppressed)");
      }
      if (name.rfind("sim.", 0) == 0 &&
          !valid_sim_metric(name, MetricKind::kCounter)) {
        fail(file, "counter '" + name +
                       "' violates the sim.* grammar (expected "
                       "sim.dispatches|stalls|runs.event|runs.thread)");
      }
      if (name.rfind("sched.", 0) == 0 &&
          !valid_sched_metric(name, MetricKind::kCounter)) {
        fail(file, "counter '" + name +
                       "' violates the sched.* grammar (expected "
                       "sched.submitted|dispatched|completed|preempted|"
                       "backfilled|cancelled)");
      }
    }
  }
  const JsonValue* gauges = doc.find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, g] : gauges->object) {
      (void)g;
      if (name.rfind("coll.", 0) == 0 && !valid_coll_gauge(name)) {
        fail(file, "gauge '" + name +
                       "' violates the coll.* grammar (expected "
                       "coll.feedback.<op>.<algo>)");
      }
      if (name.rfind("crit.", 0) == 0 && !valid_crit_gauge(name)) {
        fail(file, "gauge '" + name +
                       "' violates the crit.* grammar (expected a path "
                       "total, crit.machine.<p>.seconds, "
                       "crit.link.<src>.<dst>.seconds, or "
                       "crit.coll.<op>.<algo>.seconds)");
      }
      if (name.rfind("est.", 0) == 0 &&
          !valid_est_metric(name, MetricKind::kGauge)) {
        fail(file, "gauge '" + name +
                       "' violates the est.* grammar (expected "
                       "est.delta.savings)");
      }
      if (name.rfind("mapper.", 0) == 0 &&
          !valid_mapper_metric(name, MetricKind::kGauge)) {
        fail(file, "gauge '" + name +
                       "' violates the mapper.* grammar (mapper.* holds "
                       "counters only)");
      }
      if (name.rfind("adapt.", 0) == 0 &&
          !valid_adapt_metric(name, MetricKind::kGauge)) {
        fail(file, "gauge '" + name +
                       "' violates the adapt.* grammar (expected "
                       "adapt.divergence|drift)");
      }
      if (name.rfind("sim.", 0) == 0 &&
          !valid_sim_metric(name, MetricKind::kGauge)) {
        fail(file, "gauge '" + name +
                       "' violates the sim.* grammar (expected "
                       "sim.fibers|workers|ready_peak|stack_bytes)");
      }
      if (name.rfind("sched.", 0) == 0 &&
          !valid_sched_metric(name, MetricKind::kGauge)) {
        fail(file, "gauge '" + name +
                       "' violates the sched.* grammar (expected "
                       "sched.queue_depth|queue_depth_peak|running|"
                       "utilization|makespan_s|throughput_jobs_per_s)");
      }
    }
  }
  const JsonValue* hists = doc.find("histograms");
  if (hists == nullptr || !hists->is_object()) return;
  for (const auto& [name, h] : hists->object) {
    if (!h.is_object() || h.find("count") == nullptr ||
        h.find("sum") == nullptr || h.find("buckets") == nullptr ||
        !h.find("buckets")->is_array()) {
      fail(file, "histogram " + name + " missing count/sum/buckets");
    }
    // Percentiles are part of the dump format; null only for empty
    // histograms (json_number renders NaN as null).
    for (const char* q : {"p50", "p95", "p99"}) {
      const JsonValue* v = h.is_object() ? h.find(q) : nullptr;
      if (v == nullptr || (!v->is_number() && !v->is_null())) {
        fail(file, "histogram " + name + " missing numeric-or-null " + q);
      }
    }
    if (name.rfind("coll.", 0) == 0 &&
        !valid_coll_metric(name, /*histogram=*/true)) {
      fail(file, "histogram '" + name +
                     "' violates the coll.* grammar (expected "
                     "coll.<op>.seconds)");
    }
    if (name.rfind("crit.", 0) == 0) {
      fail(file, "histogram '" + name +
                     "' violates the crit.* grammar (crit.* holds gauges "
                     "only)");
    }
    if (name.rfind("est.", 0) == 0 &&
        !valid_est_metric(name, MetricKind::kHistogram)) {
      fail(file, "histogram '" + name +
                     "' violates the est.* grammar (expected "
                     "est.compile.seconds)");
    }
    if (name.rfind("mapper.", 0) == 0 &&
        !valid_mapper_metric(name, MetricKind::kHistogram)) {
      fail(file, "histogram '" + name +
                     "' violates the mapper.* grammar (mapper.* holds "
                     "counters only)");
    }
    if (name.rfind("adapt.", 0) == 0 &&
        !valid_adapt_metric(name, MetricKind::kHistogram)) {
      fail(file, "histogram '" + name +
                     "' violates the adapt.* grammar (expected "
                     "adapt.predicted_gain_seconds|realized_gain_seconds)");
    }
    if (name.rfind("sim.", 0) == 0 &&
        !valid_sim_metric(name, MetricKind::kHistogram)) {
      fail(file, "histogram '" + name +
                     "' violates the sim.* grammar (sim.* has no histograms)");
    }
    if (name.rfind("sched.", 0) == 0 &&
        !valid_sched_metric(name, MetricKind::kHistogram)) {
      fail(file, "histogram '" + name +
                     "' violates the sched.* grammar (expected "
                     "sched.wait_seconds|turnaround_seconds|service_seconds)");
    }
  }
}

void check_bench(const std::string& file, const JsonValue& doc) {
  const JsonValue* tables = doc.find("tables");
  if (tables == nullptr || !tables->is_array()) {
    fail(file, "tables is not an array");
    return;
  }
  for (const JsonValue& t : tables->array) {
    const JsonValue* title = t.find("title");
    const JsonValue* columns = t.find("columns");
    const JsonValue* rows = t.find("rows");
    if (title == nullptr || !title->is_string() || columns == nullptr ||
        !columns->is_array() || rows == nullptr || !rows->is_array()) {
      fail(file, "table missing title/columns/rows");
      continue;
    }
    for (const JsonValue& row : rows->array) {
      if (!row.is_array() || row.array.size() != columns->array.size()) {
        fail(file, "table '" + title->string + "' row width != column count");
        break;
      }
    }
  }
}

// Adaptation-decision ledgers ({"adaptations": [...]}; docs/adaptation.md):
// every entry needs group ids, a signal/outcome from the closed vocabulary,
// the gate's pricing fields, and the member rosters.
void check_adapt_ledger(const std::string& file, const JsonValue& doc) {
  const JsonValue* entries = doc.find("adaptations");
  if (entries == nullptr || !entries->is_array()) {
    fail(file, "adaptations is not an array");
    return;
  }
  for (std::size_t i = 0; i < entries->array.size(); ++i) {
    const JsonValue& e = entries->array[i];
    const std::string at = "adaptations[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      fail(file, at + " is not an object");
      continue;
    }
    for (const char* field : {"group_id", "time_s", "severity",
                              "predicted_old_s", "predicted_new_s", "cost_s"}) {
      const JsonValue* v = e.find(field);
      if (v == nullptr || !v->is_number()) {
        fail(file, at + " missing numeric " + field);
      }
    }
    const JsonValue* signal = e.find("signal");
    if (signal == nullptr || !signal->is_string() ||
        (signal->string != "none" && signal->string != "divergence" &&
         signal->string != "speed_drift" &&
         signal->string != "blame_machine" &&
         signal->string != "blame_link")) {
      fail(file, at + " signal outside none|divergence|speed_drift|"
                      "blame_machine|blame_link");
    }
    const JsonValue* outcome = e.find("outcome");
    if (outcome == nullptr || !outcome->is_string() ||
        (outcome->string != "migrated" && outcome->string != "rolled_back" &&
         outcome->string != "suppressed")) {
      fail(file, at + " outcome outside migrated|rolled_back|suppressed");
    }
    // realized_gain_s may be null (migration never measured) but must exist.
    if (e.find("realized_gain_s") == nullptr) {
      fail(file, at + " missing realized_gain_s");
    }
    for (const char* field : {"old_members", "new_members"}) {
      const JsonValue* v = e.find(field);
      if (v == nullptr || !v->is_array()) {
        fail(file, at + " missing " + field + " array");
      }
    }
  }
}

// Critical-path reports ({"critical_path": {...}}; docs/observability.md):
// numeric totals, a boolean completeness flag, and the machines / links /
// collectives / segments blame arrays with their identity fields.
void check_critpath(const std::string& file, const JsonValue& doc) {
  const JsonValue* cp = doc.find("critical_path");
  if (cp == nullptr || !cp->is_object()) {
    fail(file, "critical_path is not an object");
    return;
  }
  for (const char* field : {"makespan_s", "path_s", "compute_s", "transfer_s",
                            "overhead_s", "gap_s", "end_rank",
                            "events_dropped"}) {
    const JsonValue* v = cp->find(field);
    if (v == nullptr || !v->is_number()) {
      fail(file, std::string("critical_path missing numeric ") + field);
    }
  }
  const JsonValue* complete = cp->find("complete");
  if (complete == nullptr || complete->type != JsonValue::Type::kBool) {
    fail(file, "critical_path missing boolean complete");
  }
  for (const char* section : {"machines", "links", "collectives", "segments"}) {
    const JsonValue* s = cp->find(section);
    if (s == nullptr || !s->is_array()) {
      fail(file, std::string("critical_path missing ") + section + " array");
    }
  }
  if (const JsonValue* machines = cp->find("machines");
      machines != nullptr && machines->is_array()) {
    for (const JsonValue& m : machines->array) {
      if (m.find("processor") == nullptr || m.find("seconds") == nullptr) {
        fail(file, "critical_path machine entry missing processor/seconds");
        break;
      }
    }
  }
  if (const JsonValue* links = cp->find("links");
      links != nullptr && links->is_array()) {
    for (const JsonValue& l : links->array) {
      if (l.find("src") == nullptr || l.find("dst") == nullptr ||
          l.find("seconds") == nullptr) {
        fail(file, "critical_path link entry missing src/dst/seconds");
        break;
      }
    }
  }
  if (const JsonValue* segments = cp->find("segments");
      segments != nullptr && segments->is_array()) {
    double last_end = 0.0;
    for (std::size_t i = 0; i < segments->array.size(); ++i) {
      const JsonValue& s = segments->array[i];
      const std::string at = "segments[" + std::to_string(i) + "]";
      const JsonValue* kind = s.find("kind");
      const JsonValue* start = s.find("start_s");
      const JsonValue* end = s.find("end_s");
      if (kind == nullptr || !kind->is_string() || start == nullptr ||
          !start->is_number() || end == nullptr || !end->is_number()) {
        fail(file, at + " missing kind/start_s/end_s");
        continue;
      }
      if (kind->string != "compute" && kind->string != "elapse" &&
          kind->string != "send_overhead" && kind->string != "transfer" &&
          kind->string != "recv_overhead" && kind->string != "gap") {
        fail(file, at + " kind '" + kind->string + "' outside the vocabulary");
      }
      if (end->number < start->number) {
        fail(file, at + " ends before it starts");
      }
      if (i > 0 && start->number < last_end) {
        fail(file, at + " overlaps the previous segment");
      }
      last_end = end->number;
    }
  }
}

// Scheduler dumps ({"scheduler": {...}}; docs/scheduler.md): a policy name,
// numeric capacity/accounting summary, and per-job records whose states come
// from the closed JobState vocabulary.
void check_scheduler(const std::string& file, const JsonValue& doc) {
  const JsonValue* sched = doc.find("scheduler");
  if (sched == nullptr || !sched->is_object()) {
    fail(file, "scheduler is not an object");
    return;
  }
  const JsonValue* policy = sched->find("policy");
  if (policy == nullptr || !policy->is_string() ||
      (policy->string != "fifo" && policy->string != "priority")) {
    fail(file, "scheduler policy outside fifo|priority");
  }
  for (const char* field :
       {"machines", "slots_per_machine", "submitted", "dispatched",
        "completed", "preempted", "backfilled", "cancelled", "queue_depth",
        "running", "now_s", "makespan_s", "utilization", "mean_wait_s",
        "mean_turnaround_s", "throughput_jobs_per_s"}) {
    const JsonValue* v = sched->find(field);
    if (v == nullptr || !v->is_number()) {
      fail(file, std::string("scheduler missing numeric ") + field);
    }
  }
  const JsonValue* jobs = sched->find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    fail(file, "scheduler missing jobs array");
    return;
  }
  for (std::size_t i = 0; i < jobs->array.size(); ++i) {
    const JsonValue& j = jobs->array[i];
    const std::string at = "jobs[" + std::to_string(i) + "]";
    if (!j.is_object()) {
      fail(file, at + " is not an object");
      continue;
    }
    for (const char* field : {"id", "priority", "arrival_s", "start_s",
                              "finish_s", "service_s", "preemptions",
                              "result"}) {
      const JsonValue* v = j.find(field);
      if (v == nullptr || !v->is_number()) {
        fail(file, at + " missing numeric " + field);
      }
    }
    const JsonValue* state = j.find("state");
    if (state == nullptr || !state->is_string() ||
        (state->string != "pending" && state->string != "running" &&
         state->string != "completed" && state->string != "cancelled")) {
      fail(file, at + " state outside pending|running|completed|cancelled");
    }
    const JsonValue* backfilled = j.find("backfilled");
    if (backfilled == nullptr ||
        backfilled->type != JsonValue::Type::kBool) {
      fail(file, at + " missing boolean backfilled");
    }
  }
}

void check_file(const std::string& file) {
  const int errors_before = errors;
  std::ifstream is(file);
  if (!is) {
    fail(file, "cannot open");
    return;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto doc = hmpi::telemetry::parse_json(buffer.str(), &error);
  if (!doc) {
    fail(file, "invalid JSON: " + error);
    return;
  }
  if (!doc->is_object()) {
    fail(file, "top-level value is not an object");
    return;
  }
  if (doc->find("traceEvents") != nullptr) {
    check_chrome_trace(file, *doc);
  } else if (doc->find("counters") != nullptr) {
    check_metrics(file, *doc);
  } else if (doc->find("benchmark") != nullptr) {
    check_bench(file, *doc);
  } else if (doc->find("samples") != nullptr && doc->find("models") != nullptr) {
    // Prediction-ledger dump: well-formed JSON with both sections suffices.
  } else if (doc->find("adaptations") != nullptr) {
    check_adapt_ledger(file, *doc);
  } else if (doc->find("critical_path") != nullptr) {
    check_critpath(file, *doc);
  } else if (doc->find("scheduler") != nullptr) {
    check_scheduler(file, *doc);
  } else {
    fail(file, "unrecognised telemetry document shape");
    return;
  }
  if (errors == errors_before) std::printf("%s: OK\n", file.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: telemetry_check FILE.json...\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) check_file(argv[i]);
  return errors == 0 ? 0 : 1;
}
