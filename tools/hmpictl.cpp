// hmpictl: command-line front-end of the hmpictld scheduler service
// (docs/scheduler.md).
//
// Generates the seeded synthetic arrival trace from bench/bench_util.hpp,
// drives it through a sched::Scheduler on a three-tier heterogeneous
// cluster, and prints the aggregate accounting — the quick way to explore
// policy/slots/backfill/preemption trade-offs without writing a bench. The
// HMPI_SCHED_* environment overrides apply on top of the flags.
//
//   hmpictl [--policy fifo|priority] [--jobs N] [--seed S] [--slots K]
//           [--machines M] [--large-cluster] [--mapper NAME]
//           [--no-backfill] [--no-preempt] [--no-execute] [--json PATH]
//
// --large-cluster swaps the three-tier testbed for the seeded heterogeneous
// large_cluster of the A10 mapping-scale experiments (same seed as
// bench/ablation_mapscale, so numbers compare); pair it with --machines 1000
// and --mapper portfolio|beam|annealing-ws to exercise the at-scale
// selection path. --json writes the `{"scheduler": {...}}` document
// (telemetry_check's scheduler shape) to PATH, or to stdout when PATH is
// "-". Exit status 0 on success, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hnoc/cluster.hpp"
#include "sched/scheduler.hpp"
#include "support/table.hpp"

namespace {

using namespace hmpi;

int usage() {
  std::fprintf(stderr,
               "usage: hmpictl [--policy fifo|priority] [--jobs N] [--seed S]"
               " [--slots K]\n"
               "               [--machines M] [--large-cluster]"
               " [--mapper NAME]\n"
               "               [--no-backfill] [--no-preempt] [--no-execute]"
               " [--json PATH]\n");
  return 2;
}

/// Same shape as the A13 cluster: three speed tiers and a 1 ms / 2 MB/s LAN.
hnoc::Cluster make_cluster(int machines) {
  hnoc::ClusterBuilder b;
  for (int i = 0; i < machines; ++i) {
    const int tier = i * 3 / machines;
    const double speed = tier == 0 ? 100.0 : (tier == 1 ? 80.0 : 60.0);
    b.add("m" + std::to_string(i), speed);
  }
  b.network(1e-3, 2e6);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  sched::SchedConfig config;
  config.slots_per_machine = 2;
  config.execute = true;
  int machines = 12;
  bool large_cluster = false;
  bench::ArrivalTraceOptions trace_options;
  trace_options.jobs = 200;
  trace_options.ring_bytes = 1 << 20;
  trace_options.volume_scale = 15.0;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--policy") {
      const char* v = value();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "fifo") == 0) {
        config.policy = sched::SchedPolicy::kFifo;
      } else if (std::strcmp(v, "priority") == 0) {
        config.policy = sched::SchedPolicy::kPriority;
      } else {
        return usage();
      }
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      trace_options.jobs = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage();
      trace_options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--slots") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) <= 0) return usage();
      config.slots_per_machine = std::atoi(v);
    } else if (arg == "--machines") {
      const char* v = value();
      if (v == nullptr || std::atoi(v) < 3) return usage();
      machines = std::atoi(v);
    } else if (arg == "--large-cluster") {
      large_cluster = true;
    } else if (arg == "--mapper") {
      const char* v = value();
      if (v == nullptr) return usage();
      config.mapper = v;  // validated by the scheduler (unknown names throw)
    } else if (arg == "--no-backfill") {
      config.backfill = false;
    } else if (arg == "--no-preempt") {
      config.preempt = false;
    } else if (arg == "--no-execute") {
      config.execute = false;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return usage();
      json_path = v;
    } else {
      return usage();
    }
  }
  config = sched::sched_config_with_env(config);
  trace_options.max_width = std::min(10, machines - 2);
  trace_options.with_bodies = config.execute;

  const hnoc::Cluster cluster = large_cluster
                                    ? bench::make_large_cluster(machines)
                                    : make_cluster(machines);
  sched::Scheduler scheduler(cluster, config);
  for (sched::JobSpec& spec : bench::make_arrival_trace(trace_options)) {
    scheduler.submit(std::move(spec));
  }
  scheduler.run_until_idle();

  const sched::SchedStats stats = scheduler.stats();
  // The scheduler normalises kFifo to exclusive single-slot leases; print
  // its effective config, not the requested one.
  const sched::SchedConfig& effective = scheduler.config();
  support::Table table(
      "hmpictl: " + std::string(sched::policy_name(effective.policy)) + ", " +
          std::to_string(machines) + " machines x " +
          std::to_string(effective.slots_per_machine) + " slots",
      {"metric", "value"});
  table.add_row({"submitted", std::to_string(stats.submitted)});
  table.add_row({"completed", std::to_string(stats.completed)});
  table.add_row({"preempted", std::to_string(stats.preempted)});
  table.add_row({"backfilled", std::to_string(stats.backfilled)});
  table.add_row({"makespan_s", support::Table::num(stats.makespan_s)});
  table.add_row({"utilization", support::Table::num(stats.utilization, 4)});
  table.add_row({"mean_wait_s", support::Table::num(stats.mean_wait_s)});
  table.add_row(
      {"mean_turnaround_s", support::Table::num(stats.mean_turnaround_s)});
  table.add_row({"throughput_jobs_s",
                 support::Table::num(stats.throughput_jobs_per_s, 4)});
  table.print(std::cout);

  if (!json_path.empty()) {
    if (json_path == "-") {
      scheduler.stats_json(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "hmpictl: cannot write %s\n", json_path.c_str());
        return 2;
      }
      scheduler.stats_json(os);
      os << "\n";
      std::cout << "wrote " << json_path << "\n";
    }
  }
  return 0;
}
