#include "coll/schedule.hpp"

#include <algorithm>
#include <cstdint>

#include "hnoc/cluster.hpp"
#include "support/error.hpp"

namespace hmpi::coll {

namespace {

using Action = Step::Action;

struct Builder {
  std::vector<Step> steps;

  /// Every generator knows its step count to within a small factor, and the
  /// tuner prices several candidate algorithms per selection — reserving up
  /// front keeps that hot path from reallocating mid-build.
  explicit Builder(std::size_t expected_steps) { steps.reserve(expected_steps); }

  void add(int round, int src, int dst, std::size_t offset, std::size_t count,
           Action action) {
    if (src == dst) return;
    steps.push_back({round, src, dst, offset, count, action});
  }

  /// Rounds are emitted out of order by some generators (e.g. the pipelined
  /// chain); the executor and the cost replay both require round-grouped
  /// steps. The sort is stable so within-round order stays the emission
  /// order — deterministic, and shared by executor and replay.
  std::vector<Step> finish() && {
    std::stable_sort(steps.begin(), steps.end(),
                     [](const Step& a, const Step& b) { return a.round < b.round; });
    return std::move(steps);
  }
};

/// Members listed root-first in virtual-rank order.
std::vector<int> rotated(int n, int root) {
  std::vector<int> members(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) members[static_cast<std::size_t>(i)] = (root + i) % n;
  return members;
}

int log2_rounds(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

int largest_pow2_leq(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Binomial broadcast from members[0] of [offset, offset+count). Round t
/// activates the subtree at distance 2^(K-1-t), reproducing the legacy
/// in-header tree (largest subtree first) message for message. Returns the
/// first unused round.
int add_binomial_bcast(Builder& b, std::span<const int> members,
                       std::size_t offset, std::size_t count, int round0,
                       Action action) {
  const int n = static_cast<int>(members.size());
  const int rounds = log2_rounds(n);
  for (int t = 0; t < rounds; ++t) {
    const int mask = 1 << (rounds - 1 - t);
    for (int vr = 0; vr + mask < n; vr += 2 * mask) {
      b.add(round0 + t, members[static_cast<std::size_t>(vr)],
            members[static_cast<std::size_t>(vr + mask)], offset, count, action);
    }
  }
  return round0 + rounds;
}

/// Binomial reduction toward members[0]: round t folds distance-2^t
/// children into their parents (leaves first), matching the legacy
/// in-header tree. `action` is kCombine for data, kToken for barriers.
int add_binomial_reduce(Builder& b, std::span<const int> members,
                        std::size_t offset, std::size_t count, int round0,
                        Action action) {
  const int n = static_cast<int>(members.size());
  const int rounds = log2_rounds(n);
  for (int t = 0; t < rounds; ++t) {
    const int mask = 1 << t;
    for (int vr = 0; vr + mask < n; vr += 2 * mask) {
      b.add(round0 + t, members[static_cast<std::size_t>(vr + mask)],
            members[static_cast<std::size_t>(vr)], offset, count, action);
    }
  }
  return round0 + rounds;
}

/// Recursive-halving reduce-scatter over the first p2 (power-of-two)
/// virtual ranks of `members`, preceded by a fold round when n > p2: the
/// excess ranks [p2, n) combine their whole vector into vr - p2. On return
/// lo[vr]/hi[vr] give the element range each vr < p2 owns (the combined
/// value of that range), and *next_round is the first unused round.
/// Ranges are element ranges unless `granularity` > 1, in which case all
/// splits land on multiples of it (used for block-aligned reduce-scatter).
void add_halving_reduce_scatter(Builder& b, std::span<const int> members,
                                std::size_t count, std::size_t granularity,
                                std::vector<std::size_t>& lo,
                                std::vector<std::size_t>& hi,
                                int* next_round) {
  const int n = static_cast<int>(members.size());
  const int p2 = largest_pow2_leq(n);
  int round = 0;
  for (int vr = p2; vr < n; ++vr) {
    b.add(round, members[static_cast<std::size_t>(vr)],
          members[static_cast<std::size_t>(vr - p2)], 0, count, Action::kCombine);
  }
  if (n > p2) ++round;

  lo.assign(static_cast<std::size_t>(p2), 0);
  hi.assign(static_cast<std::size_t>(p2), count);
  const std::size_t g = granularity ? granularity : 1;
  for (int half = p2 / 2; half >= 1; half /= 2, ++round) {
    for (int a = 0; a < p2; ++a) {
      if ((a & half) != 0 || (a ^ half) >= p2) continue;
      const int partner = a | half;
      const std::size_t alo = lo[static_cast<std::size_t>(a)];
      const std::size_t ahi = hi[static_cast<std::size_t>(a)];
      // Split the pair's shared range at a granularity boundary; `a` (the
      // half-bit-0 member) keeps the lower part, the partner the upper.
      const std::size_t units = (ahi - alo) / g;
      const std::size_t mid = alo + (units + 1) / 2 * g;
      b.add(round, members[static_cast<std::size_t>(partner)],
            members[static_cast<std::size_t>(a)], alo, mid - alo,
            Action::kCombine);
      b.add(round, members[static_cast<std::size_t>(a)],
            members[static_cast<std::size_t>(partner)], mid, ahi - mid,
            Action::kCombine);
      hi[static_cast<std::size_t>(a)] = mid;
      lo[static_cast<std::size_t>(partner)] = mid;
    }
  }
  *next_round = round;
}

std::vector<Step> bcast_flat(int n, int root, std::size_t count) {
  Builder b(static_cast<std::size_t>(n));
  const std::vector<int> members = rotated(n, root);
  for (int vr = 1; vr < n; ++vr) {
    b.add(0, root, members[static_cast<std::size_t>(vr)], 0, count,
          Action::kCopy);
  }
  return std::move(b).finish();
}

std::vector<Step> bcast_binomial(int n, int root, std::size_t count) {
  Builder b(static_cast<std::size_t>(n));
  add_binomial_bcast(b, rotated(n, root), 0, count, 0, Action::kCopy);
  return std::move(b).finish();
}

std::vector<Step> bcast_chain(int n, int root, std::size_t count,
                              std::size_t segment_elems) {
  const std::vector<int> members = rotated(n, root);
  const std::size_t seg = std::max<std::size_t>(1, segment_elems);
  const std::size_t nseg = count == 0 ? 1 : (count + seg - 1) / seg;
  Builder b(static_cast<std::size_t>(n) * nseg);
  for (int i = 0; i + 1 < n; ++i) {
    for (std::size_t s = 0; s < nseg; ++s) {
      const std::size_t off = s * seg;
      b.add(i + static_cast<int>(s), members[static_cast<std::size_t>(i)],
            members[static_cast<std::size_t>(i + 1)], off,
            std::min(seg, count - std::min(count, off)), Action::kCopy);
    }
  }
  return std::move(b).finish();
}

std::vector<Step> bcast_two_level(int n, int root, std::size_t count,
                                  std::span<const int> member_procs) {
  if (member_procs.size() != static_cast<std::size_t>(n)) {
    return bcast_binomial(n, root, count);  // no placement information
  }
  // One leader per machine — the lowest member rank, except the root's
  // machine whose leader is the root itself. Leaders are ordered root
  // first, the rest by rank, so every member derives the same schedule.
  Builder b(2 * static_cast<std::size_t>(n));
  std::vector<int> leaders;
  std::vector<int> leader_of(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    const int proc = member_procs[static_cast<std::size_t>(r)];
    int leader = root;
    if (proc != member_procs[static_cast<std::size_t>(root)]) {
      leader = -1;
      for (int m = 0; m < n; ++m) {
        if (member_procs[static_cast<std::size_t>(m)] == proc) {
          leader = m;
          break;
        }
      }
    }
    leader_of[static_cast<std::size_t>(r)] = leader;
  }
  leaders.push_back(root);
  for (int r = 0; r < n; ++r) {
    if (leader_of[static_cast<std::size_t>(r)] == r && r != root &&
        leader_of[static_cast<std::size_t>(root)] != r) {
      leaders.push_back(r);
    }
  }
  const int after = add_binomial_bcast(b, leaders, 0, count, 0, Action::kCopy);
  for (int r = 0; r < n; ++r) {
    const int leader = leader_of[static_cast<std::size_t>(r)];
    if (r != leader && r != root) b.add(after, leader, r, 0, count, Action::kCopy);
  }
  return std::move(b).finish();
}

std::vector<Step> reduce_flat(int n, int root, std::size_t count) {
  Builder b(static_cast<std::size_t>(n));
  const std::vector<int> members = rotated(n, root);
  for (int vr = 1; vr < n; ++vr) {
    b.add(0, members[static_cast<std::size_t>(vr)], root, 0, count,
          Action::kCombine);
  }
  return std::move(b).finish();
}

std::vector<Step> reduce_binomial(int n, int root, std::size_t count) {
  Builder b(static_cast<std::size_t>(n));
  add_binomial_reduce(b, rotated(n, root), 0, count, 0, Action::kCombine);
  return std::move(b).finish();
}

/// Rabenseifner: recursive-halving reduce-scatter, then a binomial gather
/// of the owned ranges back up the halving tree to the root.
std::vector<Step> reduce_rabenseifner(int n, int root, std::size_t count) {
  Builder b(static_cast<std::size_t>(n) *
            static_cast<std::size_t>(log2_rounds(n) + 2));
  const std::vector<int> members = rotated(n, root);
  const int p2 = largest_pow2_leq(n);
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
  int round = 0;
  add_halving_reduce_scatter(b, members, count, 1, lo, hi, &round);
  for (int half = 1; half < p2; half *= 2, ++round) {
    for (int a = 0; a < p2; ++a) {
      if ((a & half) != 0) continue;
      const int partner = a | half;
      if (partner >= p2) continue;
      b.add(round, members[static_cast<std::size_t>(partner)],
            members[static_cast<std::size_t>(a)],
            lo[static_cast<std::size_t>(partner)],
            hi[static_cast<std::size_t>(partner)] -
                lo[static_cast<std::size_t>(partner)],
            Action::kCopy);
      lo[static_cast<std::size_t>(a)] = std::min(lo[static_cast<std::size_t>(a)],
                                                 lo[static_cast<std::size_t>(partner)]);
      hi[static_cast<std::size_t>(a)] = std::max(hi[static_cast<std::size_t>(a)],
                                                 hi[static_cast<std::size_t>(partner)]);
    }
  }
  return std::move(b).finish();
}

std::vector<Step> allreduce_reduce_bcast(int n, std::size_t count) {
  Builder b(2 * static_cast<std::size_t>(n));
  const std::vector<int> members = rotated(n, 0);
  const int after = add_binomial_reduce(b, members, 0, count, 0, Action::kCombine);
  add_binomial_bcast(b, members, 0, count, after, Action::kCopy);
  return std::move(b).finish();
}

std::vector<Step> allreduce_recursive_doubling(int n, std::size_t count) {
  Builder b(static_cast<std::size_t>(n) *
            static_cast<std::size_t>(log2_rounds(n) + 2));
  const int p2 = largest_pow2_leq(n);
  int round = 0;
  for (int r = p2; r < n; ++r) b.add(round, r, r - p2, 0, count, Action::kCombine);
  if (n > p2) ++round;
  for (int d = 1; d < p2; d *= 2, ++round) {
    for (int a = 0; a < p2; ++a) {
      if ((a & d) != 0) continue;
      const int partner = a | d;
      // Full-vector exchange; round grouping makes both sides send their
      // pre-round accumulator before folding in the partner's.
      b.add(round, a, partner, 0, count, Action::kCombine);
      b.add(round, partner, a, 0, count, Action::kCombine);
    }
  }
  for (int r = p2; r < n; ++r) b.add(round, r - p2, r, 0, count, Action::kCopy);
  return std::move(b).finish();
}

std::vector<Step> allreduce_rabenseifner(int n, std::size_t count) {
  Builder b(static_cast<std::size_t>(n) *
            static_cast<std::size_t>(log2_rounds(n) + 2));
  const std::vector<int> members = rotated(n, 0);
  const int p2 = largest_pow2_leq(n);
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
  int round = 0;
  add_halving_reduce_scatter(b, members, count, 1, lo, hi, &round);
  // Recursive-doubling allgather back up the halving tree: pairs swap their
  // owned ranges until every vr < p2 holds the full vector.
  for (int half = 1; half < p2; half *= 2, ++round) {
    for (int a = 0; a < p2; ++a) {
      if ((a & half) != 0) continue;
      const int partner = a | half;
      if (partner >= p2) continue;
      const std::size_t a_lo = lo[static_cast<std::size_t>(a)];
      const std::size_t a_hi = hi[static_cast<std::size_t>(a)];
      const std::size_t p_lo = lo[static_cast<std::size_t>(partner)];
      const std::size_t p_hi = hi[static_cast<std::size_t>(partner)];
      b.add(round, a, partner, a_lo, a_hi - a_lo, Action::kCopy);
      b.add(round, partner, a, p_lo, p_hi - p_lo, Action::kCopy);
      const std::size_t u_lo = std::min(a_lo, p_lo);
      const std::size_t u_hi = std::max(a_hi, p_hi);
      lo[static_cast<std::size_t>(a)] = lo[static_cast<std::size_t>(partner)] = u_lo;
      hi[static_cast<std::size_t>(a)] = hi[static_cast<std::size_t>(partner)] = u_hi;
    }
  }
  for (int r = p2; r < n; ++r) b.add(round, r - p2, r, 0, count, Action::kCopy);
  return std::move(b).finish();
}

std::vector<Step> reduce_scatter_pairwise(int n, std::size_t block) {
  Builder b(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int s = 1; s < n; ++s) {
    for (int r = 0; r < n; ++r) {
      const int owner = (r + s) % n;
      b.add(s - 1, r, owner, static_cast<std::size_t>(owner) * block, block,
            Action::kCombine);
    }
  }
  return std::move(b).finish();
}

std::vector<Step> reduce_scatter_recursive_halving(int n, std::size_t block) {
  Builder b(static_cast<std::size_t>(n) *
            static_cast<std::size_t>(log2_rounds(n) + 2));
  const std::vector<int> members = rotated(n, 0);
  const int p2 = largest_pow2_leq(n);
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
  int round = 0;
  const std::size_t count = static_cast<std::size_t>(n) * block;
  add_halving_reduce_scatter(b, members, count, std::max<std::size_t>(1, block),
                             lo, hi, &round);
  // Placement: each surviving owner ships every block in its range to the
  // block's final owner (block k belongs to member k).
  for (int a = 0; a < p2; ++a) {
    if (block == 0) break;
    const std::size_t b_lo = lo[static_cast<std::size_t>(a)] / block;
    const std::size_t b_hi = hi[static_cast<std::size_t>(a)] / block;
    for (std::size_t k = b_lo; k < b_hi; ++k) {
      b.add(round, a, static_cast<int>(k), k * block, block, Action::kCopy);
    }
  }
  return std::move(b).finish();
}

std::vector<Step> allgather_gather_bcast(int n, std::size_t block) {
  Builder b(2 * static_cast<std::size_t>(n));
  for (int r = 1; r < n; ++r) {
    b.add(0, r, 0, static_cast<std::size_t>(r) * block, block, Action::kCopy);
  }
  add_binomial_bcast(b, rotated(n, 0), 0, static_cast<std::size_t>(n) * block, 1,
                     Action::kCopy);
  return std::move(b).finish();
}

std::vector<Step> allgather_ring(int n, std::size_t block) {
  Builder b(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int t = 0; t < n - 1; ++t) {
    for (int r = 0; r < n; ++r) {
      const int blk = ((r - t) % n + n) % n;
      b.add(t, r, (r + 1) % n, static_cast<std::size_t>(blk) * block, block,
            Action::kCopy);
    }
  }
  return std::move(b).finish();
}

/// Dissemination allgather with absolute block indexing (the Bruck variant
/// that needs no final rotation): after k rounds member r owns the
/// contiguous-mod-n run of 2^k blocks ending at its own, and in round k it
/// ships min(2^k, n - 2^k) of them distance 2^k forward — ceil(log2 n)
/// rounds for any n.
std::vector<Step> allgather_recursive_doubling(int n, std::size_t block) {
  Builder b(2 * static_cast<std::size_t>(n) *
            static_cast<std::size_t>(log2_rounds(n) + 1));
  int round = 0;
  for (std::size_t d = 1; d < static_cast<std::size_t>(n); d *= 2, ++round) {
    const std::size_t m = std::min(d, static_cast<std::size_t>(n) - d);
    for (int r = 0; r < n; ++r) {
      const int dst = (r + static_cast<int>(d)) % n;
      const int first =
          ((r - static_cast<int>(m) + 1) % n + n) % n;  // lowest block index
      if (static_cast<std::size_t>(first) + m <= static_cast<std::size_t>(n)) {
        b.add(round, r, dst, static_cast<std::size_t>(first) * block, m * block,
              Action::kCopy);
      } else {
        const std::size_t head = static_cast<std::size_t>(n - first);
        b.add(round, r, dst, static_cast<std::size_t>(first) * block,
              head * block, Action::kCopy);
        b.add(round, r, dst, 0, (m - head) * block, Action::kCopy);
      }
    }
  }
  return std::move(b).finish();
}

std::vector<Step> barrier_dissemination(int n) {
  Builder b(static_cast<std::size_t>(n) *
            static_cast<std::size_t>(log2_rounds(n) + 1));
  int round = 0;
  for (int off = 1; off < n; off <<= 1, ++round) {
    for (int r = 0; r < n; ++r) {
      b.add(round, r, (r + off) % n, 0, 0, Action::kToken);
    }
  }
  return std::move(b).finish();
}

std::vector<Step> barrier_tournament(int n) {
  Builder b(2 * static_cast<std::size_t>(n));
  const std::vector<int> members = rotated(n, 0);
  const int after = add_binomial_reduce(b, members, 0, 0, 0, Action::kToken);
  add_binomial_bcast(b, members, 0, 0, after, Action::kToken);
  return std::move(b).finish();
}

}  // namespace

std::vector<Step> bcast_schedule(BcastAlgo algo, int n, int root,
                                 std::size_t count,
                                 std::span<const int> member_procs,
                                 std::size_t segment_elems) {
  support::require(n >= 1 && root >= 0 && root < n,
                   "bcast schedule: bad member count or root");
  if (n == 1) return {};
  switch (algo) {
    case BcastAlgo::kFlat:
      return bcast_flat(n, root, count);
    case BcastAlgo::kChain:
      return bcast_chain(n, root, count, segment_elems);
    case BcastAlgo::kTwoLevel:
      return bcast_two_level(n, root, count, member_procs);
    case BcastAlgo::kAuto:
    case BcastAlgo::kBinomial:
      return bcast_binomial(n, root, count);
  }
  return bcast_binomial(n, root, count);
}

std::vector<Step> reduce_schedule(ReduceAlgo algo, int n, int root,
                                  std::size_t count) {
  support::require(n >= 1 && root >= 0 && root < n,
                   "reduce schedule: bad member count or root");
  if (n == 1) return {};
  switch (algo) {
    case ReduceAlgo::kFlat:
      return reduce_flat(n, root, count);
    case ReduceAlgo::kRabenseifner:
      return reduce_rabenseifner(n, root, count);
    case ReduceAlgo::kAuto:
    case ReduceAlgo::kBinomial:
      return reduce_binomial(n, root, count);
  }
  return reduce_binomial(n, root, count);
}

std::vector<Step> allreduce_schedule(AllreduceAlgo algo, int n,
                                     std::size_t count) {
  support::require(n >= 1, "allreduce schedule: bad member count");
  if (n == 1) return {};
  switch (algo) {
    case AllreduceAlgo::kRecursiveDoubling:
      return allreduce_recursive_doubling(n, count);
    case AllreduceAlgo::kRabenseifner:
      return allreduce_rabenseifner(n, count);
    case AllreduceAlgo::kAuto:
    case AllreduceAlgo::kReduceBcast:
      return allreduce_reduce_bcast(n, count);
  }
  return allreduce_reduce_bcast(n, count);
}

std::vector<Step> reduce_scatter_schedule(ReduceScatterAlgo algo, int n,
                                          std::size_t block) {
  support::require(n >= 1, "reduce_scatter schedule: bad member count");
  if (n == 1) return {};
  switch (algo) {
    case ReduceScatterAlgo::kRecursiveHalving:
      return reduce_scatter_recursive_halving(n, block);
    case ReduceScatterAlgo::kAuto:
    case ReduceScatterAlgo::kPairwise:
      return reduce_scatter_pairwise(n, block);
  }
  return reduce_scatter_pairwise(n, block);
}

std::vector<Step> allgather_schedule(AllgatherAlgo algo, int n,
                                     std::size_t block) {
  support::require(n >= 1, "allgather schedule: bad member count");
  if (n == 1) return {};
  switch (algo) {
    case AllgatherAlgo::kRing:
      return allgather_ring(n, block);
    case AllgatherAlgo::kRecursiveDoubling:
      return allgather_recursive_doubling(n, block);
    case AllgatherAlgo::kAuto:
    case AllgatherAlgo::kGatherBcast:
      return allgather_gather_bcast(n, block);
  }
  return allgather_gather_bcast(n, block);
}

std::vector<Step> barrier_schedule(BarrierAlgo algo, int n) {
  support::require(n >= 1, "barrier schedule: bad member count");
  if (n == 1) return {};
  switch (algo) {
    case BarrierAlgo::kTournament:
      return barrier_tournament(n);
    case BarrierAlgo::kAuto:
    case BarrierAlgo::kDissemination:
      return barrier_dissemination(n);
  }
  return barrier_dissemination(n);
}

std::vector<Step> schedule_for(CollOp op, int algo, int n, int root,
                               std::size_t count,
                               std::span<const int> member_procs,
                               std::size_t segment_elems) {
  switch (op) {
    case CollOp::kBcast:
      return bcast_schedule(static_cast<BcastAlgo>(algo), n, root, count,
                            member_procs, segment_elems);
    case CollOp::kReduce:
      return reduce_schedule(static_cast<ReduceAlgo>(algo), n, root, count);
    case CollOp::kAllreduce:
      return allreduce_schedule(static_cast<AllreduceAlgo>(algo), n, count);
    case CollOp::kReduceScatter:
      return reduce_scatter_schedule(static_cast<ReduceScatterAlgo>(algo), n,
                                     count);
    case CollOp::kAllgather:
      return allgather_schedule(static_cast<AllgatherAlgo>(algo), n, count);
    case CollOp::kBarrier:
      return barrier_schedule(static_cast<BarrierAlgo>(algo), n);
  }
  return {};
}

std::vector<int> two_level_groups(const hnoc::Cluster& cluster,
                                  std::span<const int> member_procs) {
  std::vector<int> groups(member_procs.begin(), member_procs.end());
  if (!cluster.two_level()) return groups;
  for (int& g : groups) g = cluster.lan_of(g);
  return groups;
}

}  // namespace hmpi::coll
