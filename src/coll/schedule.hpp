// Collective schedules: each algorithm is a deterministic, round-structured
// message plan generated once and consumed twice —
//   * executed over mp::Comm point-to-point sends (coll/algorithms.hpp), and
//   * replayed over hnoc::NetworkModel link parameters to predict its
//     virtual duration (coll/cost.hpp) with the simulator's exact formulas.
// Keeping one generator per algorithm guarantees the cost model prices the
// byte-for-byte schedule the executor runs.
//
// Offsets and counts are in *elements* of the operation's logical vector:
// the data buffer for bcast, the accumulator for reduce/allreduce, the
// n-block receive buffer for allgather/reduce_scatter. Rounds express the
// data dependences: a member never sends a range before the round that
// delivered it, and within a round every member performs all of its sends
// before any of its receives (so exchange rounds send pre-round values).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "coll/policy.hpp"

namespace hmpi::hnoc {
class Cluster;
}

namespace hmpi::coll {

/// One message of a collective schedule.
struct Step {
  enum class Action {
    kCopy,     ///< Receiver overwrites vector[offset, offset+count).
    kCombine,  ///< Receiver folds in: v[i] = op(v[i], incoming[i]).
    kToken,    ///< One-byte synchronisation message; offset/count unused.
  };
  int round = 0;  ///< Rounds execute in non-decreasing order.
  int src = 0;    ///< Sending member (communicator rank).
  int dst = 0;    ///< Receiving member.
  std::size_t offset = 0;
  std::size_t count = 0;
  Action action = Action::kCopy;

  /// Tag offset above the operation's tag base. Rounds wrap modulo the tag
  /// block width; FIFO per (sender, context) ordering keeps wrapped rounds
  /// matching correctly.
  int tag() const noexcept { return round & 0xff; }
};

/// Segment size used by the chain-pipelined bcast when the caller does not
/// specify one, in elements (the dispatchers divide by sizeof(T)).
inline constexpr std::size_t kChainSegmentBytes = 64 * 1024;

/// Broadcast of `count` elements from `root` over `n` members.
/// `member_procs` (machine id per member, possibly empty) is only used by
/// kTwoLevel; without placement it degenerates to the binomial tree.
std::vector<Step> bcast_schedule(BcastAlgo algo, int n, int root,
                                 std::size_t count,
                                 std::span<const int> member_procs = {},
                                 std::size_t segment_elems = kChainSegmentBytes);

/// Reduction of `count` elements to `root`.
std::vector<Step> reduce_schedule(ReduceAlgo algo, int n, int root,
                                  std::size_t count);

/// Allreduce of `count` elements.
std::vector<Step> allreduce_schedule(AllreduceAlgo algo, int n,
                                     std::size_t count);

/// Reduce-scatter over a logical vector of n blocks of `block` elements;
/// member r ends up owning block r (at offset r*block).
std::vector<Step> reduce_scatter_schedule(ReduceScatterAlgo algo, int n,
                                          std::size_t block);

/// Allgather into a logical vector of n blocks of `block` elements; every
/// member starts with its own block in place.
std::vector<Step> allgather_schedule(AllgatherAlgo algo, int n,
                                     std::size_t block);

/// Barrier (token messages only).
std::vector<Step> barrier_schedule(BarrierAlgo algo, int n);

/// Generic entry point: `algo` is the per-op enum value (never 0/kAuto).
/// `count` follows the per-op convention above (total elements for
/// bcast/reduce/allreduce, per-member block for reduce_scatter/allgather,
/// ignored for barrier).
std::vector<Step> schedule_for(CollOp op, int algo, int n, int root,
                               std::size_t count,
                               std::span<const int> member_procs = {},
                               std::size_t segment_elems = kChainSegmentBytes);

/// Grouping key per member for hierarchy-aware schedules (the kTwoLevel
/// bcast): each member's LAN id when the cluster carries a two-level
/// topology, else its machine id unchanged. On flat clusters the result is
/// byte-identical to `member_procs`, so schedules are unaffected; on
/// two-level clusters one leader is elected per LAN instead of per machine,
/// crossing the slow inter-LAN link once per LAN.
std::vector<int> two_level_groups(const hnoc::Cluster& cluster,
                                  std::span<const int> member_procs);

}  // namespace hmpi::coll
