// Collective-algorithm policy: which algorithm runs each collective.
//
// Every collective operation of mp::Comm (bcast, reduce, allreduce,
// reduce_scatter, allgather, barrier) has a family of interchangeable
// algorithms (docs/collectives.md). Selection is resolved per call, in
// priority order:
//   1. the communicator's own CollPolicy override (Comm::set_coll_policy),
//   2. the world-wide CollPolicy in mp::WorldOptions::coll,
//   3. the installed Selector (the runtime's cost-model-driven CollTuner),
//   4. the built-in legacy default (the algorithm the library hard-coded
//      before this subsystem existed), so worlds without a runtime behave
//      byte-identically to older versions.
//
// This header is dependency-free on purpose: mpsim includes it from
// WorldOptions/Comm, while the cost model and tuner live above in
// libhmpi_coll.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace hmpi::coll {

/// The collective operations with pluggable algorithms.
enum class CollOp {
  kBcast,
  kReduce,
  kAllreduce,
  kReduceScatter,
  kAllgather,
  kBarrier,
};
inline constexpr int kNumCollOps = 6;

/// Broadcast algorithms.
enum class BcastAlgo {
  kAuto,      ///< Defer to the world policy / selector / default.
  kFlat,      ///< Root sends directly to every member.
  kBinomial,  ///< Binomial tree (the legacy default).
  kChain,     ///< Pipelined chain: the message is segmented and streamed
              ///< along a ring path rooted at the root.
  kTwoLevel,  ///< Cluster-aware: binomial over one leader per machine, then
              ///< a flat intra-machine fan-out over the cheap self link.
};

/// Reduction algorithms. Non-default algorithms require the operator to be
/// commutative as well as associative (docs/collectives.md).
enum class ReduceAlgo {
  kAuto,
  kFlat,         ///< Every member sends its vector to the root.
  kBinomial,     ///< Binomial tree (the legacy default).
  kRabenseifner, ///< Recursive-halving reduce-scatter + binomial gather.
};

/// Allreduce algorithms.
enum class AllreduceAlgo {
  kAuto,
  kReduceBcast,       ///< Binomial reduce to rank 0 + binomial bcast (legacy).
  kRecursiveDoubling, ///< Pairwise full-vector exchange; non-power-of-two
                      ///< member counts fold the excess ranks in and out.
  kRabenseifner,      ///< Reduce-scatter + recursive-doubling allgather.
};

/// Reduce-scatter algorithms (no legacy default: the operation is new).
enum class ReduceScatterAlgo {
  kAuto,
  kPairwise,          ///< Alltoall-style block exchange, combine at owner.
  kRecursiveHalving,  ///< Halve the vector per round, then place blocks.
};

/// Allgather algorithms.
enum class AllgatherAlgo {
  kAuto,
  kGatherBcast,       ///< Linear gather to rank 0 + binomial bcast (legacy).
  kRing,              ///< n-1 neighbour rounds; bandwidth-optimal pipeline.
  kRecursiveDoubling, ///< Doubling-distance dissemination (Bruck's absolute
                      ///< indexing), ceil(log2 n) rounds for any n.
};

/// Barrier algorithms.
enum class BarrierAlgo {
  kAuto,
  kDissemination,  ///< +/- 2^k token exchanges (legacy default).
  kTournament,     ///< Binomial reduce of a token to rank 0 + binomial bcast.
};

/// Per-operation algorithm choices; kAuto defers down the resolution chain
/// (see file comment). Identical on every member of a communicator, or the
/// members disagree on the message pattern and the collective deadlocks.
struct CollPolicy {
  BcastAlgo bcast = BcastAlgo::kAuto;
  ReduceAlgo reduce = ReduceAlgo::kAuto;
  AllreduceAlgo allreduce = AllreduceAlgo::kAuto;
  ReduceScatterAlgo reduce_scatter = ReduceScatterAlgo::kAuto;
  AllgatherAlgo allgather = AllgatherAlgo::kAuto;
  BarrierAlgo barrier = BarrierAlgo::kAuto;

  /// The per-op choice as a generic integer (0 = auto); see algo_count().
  int choice(CollOp op) const noexcept;
  void set_choice(CollOp op, int algo);
};

/// The algorithm the library used before pluggable collectives existed
/// (never kAuto; reduce_scatter had no legacy implementation and defaults
/// to kPairwise).
int legacy_default(CollOp op) noexcept;

/// Number of selectable algorithms of `op`, kAuto excluded. Valid concrete
/// algorithm values are 1..algo_count(op).
int algo_count(CollOp op) noexcept;

/// Stable lower-case operation name ("bcast", "reduce_scatter", ...), used
/// in metric names (`coll.<op>.<algo>`) and env overrides.
const char* op_name(CollOp op);

/// Stable lower-case algorithm name ("binomial", "two_level", ...). `algo`
/// is the per-op enum value; 0 returns "auto".
const char* algo_name(CollOp op, int algo);

/// Inverse of algo_name for `op`; -1 when the name is unknown ("auto" = 0).
int algo_from_name(CollOp op, const std::string& name);

/// Pluggable per-call algorithm selector, installed into a mp::World (the
/// runtime installs its CollTuner). select() must be deterministic in its
/// arguments: every member of a communicator calls it independently and the
/// results must agree.
class Selector {
 public:
  virtual ~Selector() = default;

  /// Chooses the algorithm (per-op enum value, never 0/kAuto) for a
  /// collective of `bytes` total payload over members whose machines are
  /// `member_procs` (by communicator rank). Sets *predicted_s (when
  /// non-null) to the predicted virtual duration, or a negative value when
  /// the selector does not predict.
  virtual int select(CollOp op, std::span<const int> member_procs,
                     std::size_t bytes, double* predicted_s) = 0;

  /// Reports the observed virtual duration of a finished collective (one
  /// call per member, with that member's local completion time). Default:
  /// ignored.
  virtual void observe(CollOp op, int algo, std::size_t bytes,
                       double measured_s, double predicted_s);
};

}  // namespace hmpi::coll
