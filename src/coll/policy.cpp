#include "coll/policy.hpp"

namespace hmpi::coll {

namespace {

constexpr const char* kOpNames[kNumCollOps] = {
    "bcast", "reduce", "allreduce", "reduce_scatter", "allgather", "barrier",
};

// Indexed by [op][algo]; algo 0 is always "auto".
constexpr const char* kBcastNames[] = {"auto", "flat", "binomial", "chain",
                                       "two_level"};
constexpr const char* kReduceNames[] = {"auto", "flat", "binomial",
                                        "rabenseifner"};
constexpr const char* kAllreduceNames[] = {"auto", "reduce_bcast",
                                           "recursive_doubling",
                                           "rabenseifner"};
constexpr const char* kReduceScatterNames[] = {"auto", "pairwise",
                                               "recursive_halving"};
constexpr const char* kAllgatherNames[] = {"auto", "gather_bcast", "ring",
                                           "recursive_doubling"};
constexpr const char* kBarrierNames[] = {"auto", "dissemination",
                                         "tournament"};

struct OpTable {
  const char* const* names;
  int count;  // concrete algorithms, excluding "auto"
};

OpTable table_of(CollOp op) noexcept {
  switch (op) {
    case CollOp::kBcast:
      return {kBcastNames, 4};
    case CollOp::kReduce:
      return {kReduceNames, 3};
    case CollOp::kAllreduce:
      return {kAllreduceNames, 3};
    case CollOp::kReduceScatter:
      return {kReduceScatterNames, 2};
    case CollOp::kAllgather:
      return {kAllgatherNames, 3};
    case CollOp::kBarrier:
      return {kBarrierNames, 2};
  }
  return {kBcastNames, 0};
}

}  // namespace

int CollPolicy::choice(CollOp op) const noexcept {
  switch (op) {
    case CollOp::kBcast:
      return static_cast<int>(bcast);
    case CollOp::kReduce:
      return static_cast<int>(reduce);
    case CollOp::kAllreduce:
      return static_cast<int>(allreduce);
    case CollOp::kReduceScatter:
      return static_cast<int>(reduce_scatter);
    case CollOp::kAllgather:
      return static_cast<int>(allgather);
    case CollOp::kBarrier:
      return static_cast<int>(barrier);
  }
  return 0;
}

void CollPolicy::set_choice(CollOp op, int algo) {
  if (algo < 0 || algo > algo_count(op)) algo = 0;
  switch (op) {
    case CollOp::kBcast:
      bcast = static_cast<BcastAlgo>(algo);
      break;
    case CollOp::kReduce:
      reduce = static_cast<ReduceAlgo>(algo);
      break;
    case CollOp::kAllreduce:
      allreduce = static_cast<AllreduceAlgo>(algo);
      break;
    case CollOp::kReduceScatter:
      reduce_scatter = static_cast<ReduceScatterAlgo>(algo);
      break;
    case CollOp::kAllgather:
      allgather = static_cast<AllgatherAlgo>(algo);
      break;
    case CollOp::kBarrier:
      barrier = static_cast<BarrierAlgo>(algo);
      break;
  }
}

int legacy_default(CollOp op) noexcept {
  switch (op) {
    case CollOp::kBcast:
      return static_cast<int>(BcastAlgo::kBinomial);
    case CollOp::kReduce:
      return static_cast<int>(ReduceAlgo::kBinomial);
    case CollOp::kAllreduce:
      return static_cast<int>(AllreduceAlgo::kReduceBcast);
    case CollOp::kReduceScatter:
      return static_cast<int>(ReduceScatterAlgo::kPairwise);
    case CollOp::kAllgather:
      return static_cast<int>(AllgatherAlgo::kGatherBcast);
    case CollOp::kBarrier:
      return static_cast<int>(BarrierAlgo::kDissemination);
  }
  return 1;
}

int algo_count(CollOp op) noexcept { return table_of(op).count; }

const char* op_name(CollOp op) {
  const int i = static_cast<int>(op);
  return (i >= 0 && i < kNumCollOps) ? kOpNames[i] : "unknown";
}

const char* algo_name(CollOp op, int algo) {
  const OpTable t = table_of(op);
  return (algo >= 0 && algo <= t.count) ? t.names[algo] : "unknown";
}

int algo_from_name(CollOp op, const std::string& name) {
  const OpTable t = table_of(op);
  for (int a = 0; a <= t.count; ++a) {
    if (name == t.names[a]) return a;
  }
  return -1;
}

void Selector::observe(CollOp, int, std::size_t, double, double) {}

}  // namespace hmpi::coll
