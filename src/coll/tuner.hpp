// CollTuner: cost-model-driven collective algorithm selection.
//
// For each (operation, roster, message-size bucket) the tuner prices every
// candidate algorithm with coll::collective_cost over the cluster's link
// parameters and picks the predicted-fastest, memoizing the answer in
// est::EstimateCache style: the memo key includes the NetworkModel version
// supplied by an injected callback, so a Recon that bumps the model version
// invalidates every cached selection without the tuner ever touching the
// runtime's mutable speed state (link parameters are immutable topology).
//
// Determinism contract: with feedback off (the default), select() is a pure
// function of (op, roster machines, size bucket, policy, model version) —
// every member of a communicator computes the same choice independently,
// regardless of thread count or cache hits. The optional measured-feedback
// mode folds observed/predicted ratios into the ranking; observations are
// staged into a pending table and only applied by promote_feedback(), which
// the runtime calls at a world-collective quiescent point (Recon), so
// members of an in-flight collective can never disagree on the ranking.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "coll/cost.hpp"
#include "coll/policy.hpp"
#include "hnoc/cluster.hpp"
#include "hnoc/network_model.hpp"

namespace hmpi::coll {

class CollTuner : public Selector {
 public:
  struct Options {
    CostOptions cost;
    /// When false, select() skips the cost search and returns the policy /
    /// legacy default — the subsystem's "off switch" that still funnels
    /// every collective through one resolution point.
    bool predict = true;
    /// Enables measured-feedback re-ranking (see file comment).
    bool feedback = false;
    /// EWMA weight of a new observation in feedback mode.
    double feedback_alpha = 0.25;
  };

  CollTuner(const hnoc::Cluster& topology, Options options);

  /// Injects the invalidation source: called under the owner's locking
  /// discipline and expected to return hnoc::NetworkModel::version() of the
  /// live model. Without one, cached selections are never invalidated.
  void set_version_source(std::function<std::uint64_t()> fn);

  /// Policy overrides consulted before the cost search (a concrete per-op
  /// choice bypasses prediction). Safe to call between collectives; calling
  /// it while a collective is in flight risks members disagreeing.
  void set_policy(const CollPolicy& policy);
  CollPolicy policy() const;

  // Selector:
  int select(CollOp op, std::span<const int> member_procs, std::size_t bytes,
             double* predicted_s) override;
  void observe(CollOp op, int algo, std::size_t bytes, double measured_s,
               double predicted_s) override;

  /// Applies staged feedback observations to the active ranking. Call only
  /// at points where no collective is in flight (the runtime does this in
  /// Recon). No-op when feedback is disabled or nothing was observed.
  void promote_feedback();

  /// Cache statistics (for diagnostics and tests).
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;

  /// Active (promoted) measured/predicted EWMA ratio for one (op, algo), or
  /// <= 0 when no observation has been promoted. Exported by the runtime as
  /// `coll.feedback.<op>.<algo>` gauges (docs/observability.md).
  double feedback_ratio(CollOp op, int algo) const;

 private:
  struct Key {
    std::uint8_t op;
    std::uint32_t bucket;
    std::uint64_t roster_hash;
    std::uint64_t version;
    std::uint64_t feedback_gen;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Selection {
    int algo = 0;
    double predicted_s = -1.0;
  };

  Selection pick(CollOp op, std::span<const int> member_procs,
                 std::size_t rep_bytes, std::uint64_t feedback_gen) const;

  const hnoc::NetworkModel model_;  // immutable topology snapshot
  const Options options_;

  mutable std::mutex mutex_;
  std::function<std::uint64_t()> version_fn_;
  CollPolicy policy_;
  std::unordered_map<Key, Selection, KeyHash> memo_;
  // ratio_[op][algo]: EWMA of measured/predicted; <= 0 means no data.
  double active_ratio_[kNumCollOps][8] = {};
  double pending_ratio_[kNumCollOps][8] = {};
  bool pending_dirty_ = false;
  std::uint64_t feedback_gen_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hmpi::coll
