// Generic executor for collective schedules (coll/schedule.hpp).
//
// Every member runs the same schedule: it walks the rounds in order and,
// within each round, performs all of its sends (from the current state of
// the logical vector) before blocking on its receives — so exchange rounds
// transmit pre-round values, exactly as the cost replay assumes. Receives
// within a round are consumed in schedule order, which is identical on
// every member; per-(sender, context) FIFO delivery then makes wrapped
// round tags unambiguous.
//
// This header is intentionally free of mpsim includes: it is templated on
// the communicator type, so mp::Comm's own header can instantiate it
// without a dependency cycle (libhmpi_coll sits below libhmpi_mpsim).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "coll/schedule.hpp"

namespace hmpi::coll {

/// Executes `steps` for the calling member over `comm`'s point-to-point
/// primitives. `vec` is the member's view of the operation's logical vector
/// (see schedule.hpp); `op(acc_element, incoming_element)` resolves
/// kCombine steps and is never invoked by kCopy/kToken schedules. Message
/// tags are `tag_base + step.tag()`.
template <typename CommT, typename T, typename Op>
void run_schedule(const CommT& comm, std::span<const Step> steps,
                  std::span<T> vec, Op op, int tag_base) {
  const int me = comm.rank();
  std::vector<T> incoming;
  std::size_t i = 0;
  while (i < steps.size()) {
    std::size_t j = i;
    while (j < steps.size() && steps[j].round == steps[i].round) ++j;
    for (std::size_t k = i; k < j; ++k) {
      const Step& s = steps[k];
      if (s.src != me) continue;
      const int tag = tag_base + s.tag();
      if (s.action == Step::Action::kToken) {
        const T token{};
        comm.send(std::span<const T>(&token, 1), s.dst, tag);
      } else {
        comm.send(std::span<const T>(vec.subspan(s.offset, s.count)), s.dst,
                  tag);
      }
    }
    for (std::size_t k = i; k < j; ++k) {
      const Step& s = steps[k];
      if (s.dst != me) continue;
      const int tag = tag_base + s.tag();
      if (s.action == Step::Action::kToken) {
        T token{};
        comm.recv(std::span<T>(&token, 1), s.src, tag);
        continue;
      }
      incoming.resize(s.count);
      comm.recv(std::span<T>(incoming), s.src, tag);
      const std::span<T> range = vec.subspan(s.offset, s.count);
      if (s.action == Step::Action::kCombine) {
        for (std::size_t e = 0; e < s.count; ++e) {
          range[e] = op(range[e], incoming[e]);
        }
      } else {
        std::copy(incoming.begin(), incoming.end(), range.begin());
      }
    }
    i = j;
  }
}

}  // namespace hmpi::coll
