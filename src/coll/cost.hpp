// Analytical cost of a collective schedule: the schedule is replayed on a
// synthetic timeline with per-member clocks and per-directed-link busy
// times, using the identical formulas the simulator charges for real
// traffic (World::reserve_link + send/recv overheads). Because every
// algorithm is generated and executed from the same schedule
// (coll/schedule.hpp), the predicted duration of an idle-network collective
// matches its simulated duration exactly — which is what lets the tuner's
// predicted-fastest pick be the measured-fastest pick.
#pragma once

#include <cstddef>
#include <span>

#include "coll/schedule.hpp"
#include "hnoc/network_model.hpp"

namespace hmpi::coll {

/// Per-message bookkeeping constants; mirror mp::WorldOptions.
struct CostOptions {
  double send_overhead_s = 5e-6;
  double recv_overhead_s = 5e-6;
};

/// Virtual makespan of `steps` over members placed on `member_procs`
/// (machine id per member rank), starting from idle clocks and idle links.
/// `elem_bytes` scales Step counts to wire bytes (token steps cost one
/// byte, like the executor sends).
double schedule_cost(std::span<const Step> steps,
                     std::span<const int> member_procs, std::size_t elem_bytes,
                     const hnoc::NetworkModel& network,
                     const CostOptions& opts = {});

/// Cost of one collective: generates the schedule for (op, algo) and
/// replays it. `bytes` is the operation's total payload in bytes — the
/// vector for bcast/reduce/allreduce, the full n-block logical vector for
/// reduce_scatter/allgather — and is ignored for barrier. `root` follows
/// the per-op convention (member rank for bcast/reduce, ignored otherwise).
double collective_cost(CollOp op, int algo, std::span<const int> member_procs,
                       std::size_t bytes, const hnoc::NetworkModel& network,
                       const CostOptions& opts = {}, int root = 0);

}  // namespace hmpi::coll
