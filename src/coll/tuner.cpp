#include "coll/tuner.hpp"

#include <algorithm>
#include <bit>

namespace hmpi::coll {

namespace {

// FNV-1a over the roster's machine sequence: the placement, not the member
// identities, is what the cost model depends on.
std::uint64_t roster_hash(std::span<const int> member_procs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int p : member_procs) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
    h *= 1099511628211ULL;
  }
  h ^= member_procs.size();
  h *= 1099511628211ULL;
  return h;
}

// Power-of-two size buckets; the representative (upper bound) size is what
// gets priced, so every size in a bucket shares one cached selection.
std::uint32_t bucket_of(std::size_t bytes) {
  return bytes == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(bytes));
}

std::size_t representative_bytes(std::uint32_t bucket) {
  return bucket == 0 ? 0 : std::size_t{1} << (bucket - 1);
}

}  // namespace

std::size_t CollTuner::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = k.roster_hash;
  h ^= (static_cast<std::uint64_t>(k.op) << 56) ^
       (static_cast<std::uint64_t>(k.bucket) << 32);
  h ^= k.version * 0x9e3779b97f4a7c15ULL;
  h ^= k.feedback_gen * 0xc2b2ae3d27d4eb4fULL;
  return static_cast<std::size_t>(h ^ (h >> 29));
}

CollTuner::CollTuner(const hnoc::Cluster& topology, Options options)
    : model_(topology), options_(options) {}

void CollTuner::set_version_source(std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  version_fn_ = std::move(fn);
}

void CollTuner::set_policy(const CollPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
  memo_.clear();
}

CollPolicy CollTuner::policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

CollTuner::Selection CollTuner::pick(CollOp op,
                                     std::span<const int> member_procs,
                                     std::size_t rep_bytes,
                                     std::uint64_t feedback_gen) const {
  Selection best;
  for (int algo = 1; algo <= algo_count(op); ++algo) {
    double cost = collective_cost(op, algo, member_procs, rep_bytes, model_,
                                  options_.cost);
    if (feedback_gen > 0) {
      const double ratio =
          active_ratio_[static_cast<int>(op)][static_cast<std::size_t>(algo)];
      if (ratio > 0.0) cost *= ratio;
    }
    if (best.algo == 0 || cost < best.predicted_s) {
      best.algo = algo;
      best.predicted_s = cost;
    }
  }
  return best;
}

int CollTuner::select(CollOp op, std::span<const int> member_procs,
                      std::size_t bytes, double* predicted_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int forced = policy_.choice(op);
  if (!options_.predict || forced != 0) {
    if (predicted_s != nullptr) *predicted_s = -1.0;
    return forced != 0 ? forced : legacy_default(op);
  }

  Key key;
  key.op = static_cast<std::uint8_t>(op);
  key.bucket = bucket_of(bytes);
  key.roster_hash = roster_hash(member_procs);
  key.version = version_fn_ ? version_fn_() : 0;
  key.feedback_gen = feedback_gen_;

  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++hits_;
    if (predicted_s != nullptr) *predicted_s = it->second.predicted_s;
    return it->second.algo;
  }
  ++misses_;
  const Selection best =
      pick(op, member_procs, representative_bytes(key.bucket), feedback_gen_);
  memo_.emplace(key, best);
  if (predicted_s != nullptr) *predicted_s = best.predicted_s;
  return best.algo;
}

void CollTuner::observe(CollOp op, int algo, std::size_t /*bytes*/,
                        double measured_s, double predicted_s) {
  if (!options_.feedback || predicted_s <= 0.0 || measured_s <= 0.0 ||
      algo <= 0 || algo > 7) {
    return;
  }
  const double ratio = measured_s / predicted_s;
  std::lock_guard<std::mutex> lock(mutex_);
  double& r = pending_ratio_[static_cast<int>(op)][static_cast<std::size_t>(algo)];
  r = r > 0.0 ? (1.0 - options_.feedback_alpha) * r + options_.feedback_alpha * ratio
              : ratio;
  pending_dirty_ = true;
}

void CollTuner::promote_feedback() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_dirty_) return;
  std::copy(&pending_ratio_[0][0], &pending_ratio_[0][0] + kNumCollOps * 8,
            &active_ratio_[0][0]);
  pending_dirty_ = false;
  ++feedback_gen_;  // re-keys the memo: stale selections miss and re-rank
}

std::uint64_t CollTuner::cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t CollTuner::cache_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

double CollTuner::feedback_ratio(CollOp op, int algo) const {
  if (algo <= 0 || algo > 7) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  return active_ratio_[static_cast<int>(op)][static_cast<std::size_t>(algo)];
}

}  // namespace hmpi::coll
