#include "coll/cost.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace hmpi::coll {

double schedule_cost(std::span<const Step> steps,
                     std::span<const int> member_procs, std::size_t elem_bytes,
                     const hnoc::NetworkModel& network,
                     const CostOptions& opts) {
  const int n = static_cast<int>(member_procs.size());
  std::vector<double> clock(static_cast<std::size_t>(n), 0.0);
  std::map<std::pair<int, int>, double> link_busy;
  std::vector<double> arrival(steps.size(), 0.0);

  // Replay round by round with the executor's two-pass discipline: every
  // member issues all of its round sends before blocking on receives, so a
  // send's ready time never includes the same round's receive updates.
  std::size_t i = 0;
  while (i < steps.size()) {
    std::size_t j = i;
    while (j < steps.size() && steps[j].round == steps[i].round) ++j;
    for (std::size_t k = i; k < j; ++k) {
      const Step& s = steps[k];
      support::require(s.src >= 0 && s.src < n && s.dst >= 0 && s.dst < n,
                       "schedule step member out of roster range");
      const double bytes =
          s.action == Step::Action::kToken
              ? 1.0
              : static_cast<double>(s.count) * static_cast<double>(elem_bytes);
      const int src_proc = member_procs[static_cast<std::size_t>(s.src)];
      const int dst_proc = member_procs[static_cast<std::size_t>(s.dst)];
      double& busy = link_busy[{src_proc, dst_proc}];
      const double start = std::max(clock[static_cast<std::size_t>(s.src)], busy);
      const double finish =
          start + network.link(src_proc, dst_proc).transfer_time(bytes);
      busy = finish;
      arrival[k] = finish;
      clock[static_cast<std::size_t>(s.src)] += opts.send_overhead_s;
    }
    for (std::size_t k = i; k < j; ++k) {
      const Step& s = steps[k];
      double& c = clock[static_cast<std::size_t>(s.dst)];
      c = std::max(c, arrival[k]) + opts.recv_overhead_s;
    }
    i = j;
  }
  double makespan = 0.0;
  for (double c : clock) makespan = std::max(makespan, c);
  return makespan;
}

double collective_cost(CollOp op, int algo, std::span<const int> member_procs,
                       std::size_t bytes, const hnoc::NetworkModel& network,
                       const CostOptions& opts, int root) {
  const int n = static_cast<int>(member_procs.size());
  if (n <= 1) return 0.0;
  // Schedules are priced at byte granularity (elem_bytes = 1); block-based
  // ops divide the payload into the n per-member blocks.
  std::size_t count = bytes;
  if (op == CollOp::kAllgather || op == CollOp::kReduceScatter) {
    count = bytes / static_cast<std::size_t>(n);
  }
  if (op == CollOp::kBarrier) count = 0;
  // Generate with LAN-collapsed placement (so the two-level bcast elects
  // leaders per LAN, matching the executor) but price every step over the
  // real processor pair — the schedule's links, not the group ids.
  const std::vector<int> groups =
      two_level_groups(network.topology(), member_procs);
  const std::vector<Step> steps =
      schedule_for(op, algo, n, root, count, groups);
  return schedule_cost(steps, member_procs, 1, network, opts);
}

}  // namespace hmpi::coll
