// The HMPI runtime's *estimate* of the executing network.
//
// The paper distinguishes the real network (whose processor speeds drift
// under multi-user load) from the runtime's model of it, which "reflects the
// state of this network just before the execution of the parallel algorithm"
// (§2) and is refreshed by HMPI_Recon. The estimator and the mapper only
// ever see a NetworkModel, never the ground-truth Cluster, so a stale model
// produces exactly the paper's failure mode: a badly chosen group.
//
// Link parameters are considered static and known (the paper's runtime also
// treats communication characteristics as measured once), so they are read
// through from the topology; processor speeds are the mutable estimates.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "hnoc/cluster.hpp"
#include "support/error.hpp"

namespace hmpi::hnoc {

/// Estimated speeds + static link topology of the executing network.
class NetworkModel {
 public:
  /// Initialises speed estimates from the cluster's *base* speeds (what an
  /// installation-time benchmark would have measured on idle machines).
  /// The referenced cluster must outlive the model.
  explicit NetworkModel(const Cluster& topology)
      : topology_(&topology),
        speeds_(topology.size()),
        version_(next_version()) {
    for (int p = 0; p < topology.size(); ++p) {
      speeds_[static_cast<std::size_t>(p)] = topology.processor(p).speed;
    }
  }

  int size() const noexcept { return static_cast<int>(speeds_.size()); }

  /// Current speed estimate for processor `p` (benchmark units/second).
  double speed(int p) const { return speeds_.at(static_cast<std::size_t>(p)); }

  /// Replaces the estimate for processor `p` (called by HMPI_Recon).
  void set_speed(int p, double units_per_second) {
    support::require(units_per_second > 0.0, "speed estimate must be positive");
    speeds_.at(static_cast<std::size_t>(p)) = units_per_second;
    version_ = next_version();
  }

  /// Identity of this model's speed estimates, for memoisation
  /// (est::EstimateCache): every mutation re-stamps the model from a
  /// process-wide counter, so two models share a version only when one is an
  /// unmutated copy of the other — equal versions imply equal speeds. A
  /// recon therefore invalidates every cached makespan simply by bumping
  /// this, and snapshot copies taken for a selection keep hitting the cache.
  std::uint64_t version() const noexcept { return version_; }

  /// All estimates, indexed by processor.
  const std::vector<double>& speeds() const noexcept { return speeds_; }

  /// Relative speed drift of processor `p` against a baseline estimate
  /// (|current - baseline| / baseline; 0 when the baseline is not positive).
  /// The adaptation loop measures a group's decay against the snapshot
  /// taken at selection time this way (docs/adaptation.md).
  double relative_drift(int p, double baseline_speed) const {
    if (baseline_speed <= 0.0) return 0.0;
    const double now = speed(p);
    return (now > baseline_speed ? now - baseline_speed : baseline_speed - now) /
           baseline_speed;
  }

  /// Per-processor relative drift against a baseline speed vector (missing
  /// baseline entries count as no drift).
  std::vector<double> relative_drift(const std::vector<double>& baseline) const {
    std::vector<double> out(speeds_.size(), 0.0);
    for (std::size_t p = 0; p < speeds_.size(); ++p) {
      out[p] = p < baseline.size()
                   ? relative_drift(static_cast<int>(p), baseline[p])
                   : 0.0;
    }
    return out;
  }

  /// Link parameters between two processors (static, from topology).
  const LinkParams& link(int from, int to) const {
    return topology_->link(from, to);
  }

  const Cluster& topology() const noexcept { return *topology_; }

 private:
  static std::uint64_t next_version() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  const Cluster* topology_;
  std::vector<double> speeds_;
  std::uint64_t version_ = 0;
};

}  // namespace hmpi::hnoc
