// The HMPI runtime's *estimate* of the executing network.
//
// The paper distinguishes the real network (whose processor speeds drift
// under multi-user load) from the runtime's model of it, which "reflects the
// state of this network just before the execution of the parallel algorithm"
// (§2) and is refreshed by HMPI_Recon. The estimator and the mapper only
// ever see a NetworkModel, never the ground-truth Cluster, so a stale model
// produces exactly the paper's failure mode: a badly chosen group.
//
// Link parameters are considered static and known (the paper's runtime also
// treats communication characteristics as measured once), so they are read
// through from the topology; processor speeds are the mutable estimates.
#pragma once

#include <vector>

#include "hnoc/cluster.hpp"
#include "support/error.hpp"

namespace hmpi::hnoc {

/// Estimated speeds + static link topology of the executing network.
class NetworkModel {
 public:
  /// Initialises speed estimates from the cluster's *base* speeds (what an
  /// installation-time benchmark would have measured on idle machines).
  /// The referenced cluster must outlive the model.
  explicit NetworkModel(const Cluster& topology)
      : topology_(&topology),
        speeds_(topology.size()) {
    for (int p = 0; p < topology.size(); ++p) {
      speeds_[static_cast<std::size_t>(p)] = topology.processor(p).speed;
    }
  }

  int size() const noexcept { return static_cast<int>(speeds_.size()); }

  /// Current speed estimate for processor `p` (benchmark units/second).
  double speed(int p) const { return speeds_.at(static_cast<std::size_t>(p)); }

  /// Replaces the estimate for processor `p` (called by HMPI_Recon).
  void set_speed(int p, double units_per_second) {
    support::require(units_per_second > 0.0, "speed estimate must be positive");
    speeds_.at(static_cast<std::size_t>(p)) = units_per_second;
  }

  /// All estimates, indexed by processor.
  const std::vector<double>& speeds() const noexcept { return speeds_; }

  /// Link parameters between two processors (static, from topology).
  const LinkParams& link(int from, int to) const {
    return topology_->link(from, to);
  }

  const Cluster& topology() const noexcept { return *topology_; }

 private:
  const Cluster* topology_;
  std::vector<double> speeds_;
};

}  // namespace hmpi::hnoc
