#include "hnoc/cluster.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::hnoc {

Cluster::Cluster(std::vector<Processor> processors, LinkParams default_link,
                 LinkParams self_link,
                 std::map<std::pair<int, int>, LinkParams> overrides,
                 std::optional<TwoLevelTopology> two_level)
    : processors_(std::move(processors)),
      default_link_(default_link),
      self_link_(self_link),
      overrides_(std::move(overrides)),
      two_level_(std::move(two_level)) {
  support::require(!processors_.empty(), "Cluster needs at least one processor");
  for (const Processor& p : processors_) {
    support::require(p.speed > 0.0 && std::isfinite(p.speed),
                     "processor speed must be positive and finite");
  }
  auto check_link = [](const LinkParams& l, const char* what) {
    support::require(l.latency_s >= 0.0, std::string(what) + ": negative latency");
    support::require(l.bandwidth_bps > 0.0, std::string(what) + ": bandwidth must be positive");
  };
  check_link(default_link_, "default link");
  check_link(self_link_, "self link");
  for (const auto& [pair, l] : overrides_) {
    support::require(pair.first >= 0 && pair.first < size() && pair.second >= 0 &&
                         pair.second < size(),
                     "link override references unknown processor");
    check_link(l, "link override");
  }
  if (two_level_.has_value()) {
    support::require(
        two_level_->lan_of.size() == processors_.size(),
        "two-level topology needs exactly one LAN id per processor");
    for (int id : two_level_->lan_of) {
      support::require(id >= 0, "LAN ids must be non-negative");
    }
    check_link(two_level_->intra, "intra-LAN link");
    check_link(two_level_->inter, "inter-LAN link");
  }
}

const Processor& Cluster::processor(int p) const {
  support::require(p >= 0 && p < size(), "processor index out of range");
  return processors_[static_cast<std::size_t>(p)];
}

const LinkParams& Cluster::link(int from, int to) const {
  support::require(from >= 0 && from < size() && to >= 0 && to < size(),
                   "link endpoint out of range");
  auto it = overrides_.find({from, to});
  if (it != overrides_.end()) return it->second;
  if (from == to) return self_link_;
  if (two_level_.has_value()) {
    const auto& lan = two_level_->lan_of;
    return lan[static_cast<std::size_t>(from)] ==
                   lan[static_cast<std::size_t>(to)]
               ? two_level_->intra
               : two_level_->inter;
  }
  return default_link_;
}

int Cluster::lan_of(int p) const {
  support::require(p >= 0 && p < size(), "processor index out of range");
  support::require(two_level_.has_value(), "lan_of on a flat cluster");
  return two_level_->lan_of[static_cast<std::size_t>(p)];
}

const LinkParams& Cluster::intra_link() const {
  support::require(two_level_.has_value(), "intra_link on a flat cluster");
  return two_level_->intra;
}

const LinkParams& Cluster::inter_link() const {
  support::require(two_level_.has_value(), "inter_link on a flat cluster");
  return two_level_->inter;
}

double Cluster::compute_finish(int p, double start, double units) const {
  const Processor& proc = processor(p);
  return proc.load.finish_time(start, units, proc.speed);
}

double Cluster::effective_speed(int p, double t) const {
  const Processor& proc = processor(p);
  return proc.speed * proc.load.multiplier_at(t);
}

double Cluster::total_base_speed() const noexcept {
  double sum = 0.0;
  for (const Processor& p : processors_) sum += p.speed;
  return sum;
}

ClusterBuilder& ClusterBuilder::add(std::string name, double speed,
                                    LoadProfile load) {
  processors_.push_back({std::move(name), speed, std::move(load), {}});
  return *this;
}

ClusterBuilder& ClusterBuilder::availability(Availability avail) {
  support::require(!processors_.empty(),
                   "availability() must follow the add() of a processor");
  processors_.back().availability = std::move(avail);
  return *this;
}

ClusterBuilder& ClusterBuilder::network(double latency_s, double bandwidth_bps) {
  default_link_ = {latency_s, bandwidth_bps};
  return *this;
}

ClusterBuilder& ClusterBuilder::shared_memory(double latency_s,
                                              double bandwidth_bps) {
  self_link_ = {latency_s, bandwidth_bps};
  return *this;
}

ClusterBuilder& ClusterBuilder::link_override(int from, int to, double latency_s,
                                              double bandwidth_bps) {
  overrides_[{from, to}] = {latency_s, bandwidth_bps};
  return *this;
}

ClusterBuilder& ClusterBuilder::symmetric_link_override(int a, int b,
                                                        double latency_s,
                                                        double bandwidth_bps) {
  link_override(a, b, latency_s, bandwidth_bps);
  link_override(b, a, latency_s, bandwidth_bps);
  return *this;
}

ClusterBuilder& ClusterBuilder::two_level(std::vector<int> lan_of,
                                          double intra_latency_s,
                                          double intra_bandwidth_bps,
                                          double inter_latency_s,
                                          double inter_bandwidth_bps) {
  two_level_ = TwoLevelTopology{std::move(lan_of),
                                {intra_latency_s, intra_bandwidth_bps},
                                {inter_latency_s, inter_bandwidth_bps}};
  return *this;
}

Cluster ClusterBuilder::build() const {
  return Cluster(processors_, default_link_, self_link_, overrides_, two_level_);
}

namespace testbeds {

namespace {
Cluster from_speeds(const std::vector<double>& speeds) {
  ClusterBuilder b;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    b.add("ws" + std::to_string(i), speeds[i]);
  }
  // 100 Mbit switched Ethernet: ~12.5 MB/s, ~150 us message latency.
  b.network(150e-6, 12.5e6);
  b.shared_memory(5e-6, 1e9);
  return b.build();
}
}  // namespace

Cluster paper_em3d_network() {
  return from_speeds({46, 46, 46, 46, 46, 46, 176, 106, 9});
}

Cluster paper_mm_network() {
  return from_speeds({46, 46, 46, 46, 46, 46, 46, 106, 9});
}

Cluster homogeneous(int n, double speed) {
  support::require(n > 0, "homogeneous cluster needs n > 0");
  std::vector<double> speeds(static_cast<std::size_t>(n), speed);
  return from_speeds(speeds);
}

Cluster large_cluster(int machines, std::uint64_t seed) {
  support::require(machines > 0, "large_cluster needs machines > 0");
  support::Rng rng(seed);
  ClusterBuilder b;
  for (int i = 0; i < machines; ++i) {
    // Log-uniform over [20, 200): heterogeneity multiplicative, like mixed
    // hardware generations. Rounded to 0.01 so the speeds print cleanly.
    const double speed = 20.0 * std::exp(rng.next_double() * std::log(10.0));
    b.add("n" + std::to_string(i), std::round(speed * 100.0) / 100.0);
  }
  // Switched gigabit Ethernet: ~100 MB/s, ~50 us message latency. Fast
  // uniform links keep the landscape compute-dominant at this scale, which
  // is the regime the paper's campus-network experiments target.
  b.network(50e-6, 1e8);
  b.shared_memory(5e-6, 1e9);
  return b.build();
}

Cluster two_level(int lans, int per_lan, double speed) {
  support::require(lans > 0 && per_lan > 0,
                   "two_level cluster needs lans > 0 and per_lan > 0");
  ClusterBuilder b;
  std::vector<int> lan_of;
  lan_of.reserve(static_cast<std::size_t>(lans) *
                 static_cast<std::size_t>(per_lan));
  for (int lan = 0; lan < lans; ++lan) {
    for (int m = 0; m < per_lan; ++m) {
      b.add("l" + std::to_string(lan) + "m" + std::to_string(m), speed);
      lan_of.push_back(lan);
    }
  }
  b.shared_memory(5e-6, 1e9);
  // Gigabit inside a LAN; a slow, high-latency WAN between LANs.
  b.two_level(std::move(lan_of), 50e-6, 125e6, 5e-3, 1.25e6);
  return b.build();
}

}  // namespace testbeds
}  // namespace hmpi::hnoc
