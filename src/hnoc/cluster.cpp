#include "hnoc/cluster.hpp"

#include <cmath>

#include "support/error.hpp"

namespace hmpi::hnoc {

Cluster::Cluster(std::vector<Processor> processors, LinkParams default_link,
                 LinkParams self_link,
                 std::map<std::pair<int, int>, LinkParams> overrides)
    : processors_(std::move(processors)),
      default_link_(default_link),
      self_link_(self_link),
      overrides_(std::move(overrides)) {
  support::require(!processors_.empty(), "Cluster needs at least one processor");
  for (const Processor& p : processors_) {
    support::require(p.speed > 0.0 && std::isfinite(p.speed),
                     "processor speed must be positive and finite");
  }
  auto check_link = [](const LinkParams& l, const char* what) {
    support::require(l.latency_s >= 0.0, std::string(what) + ": negative latency");
    support::require(l.bandwidth_bps > 0.0, std::string(what) + ": bandwidth must be positive");
  };
  check_link(default_link_, "default link");
  check_link(self_link_, "self link");
  for (const auto& [pair, l] : overrides_) {
    support::require(pair.first >= 0 && pair.first < size() && pair.second >= 0 &&
                         pair.second < size(),
                     "link override references unknown processor");
    check_link(l, "link override");
  }
}

const Processor& Cluster::processor(int p) const {
  support::require(p >= 0 && p < size(), "processor index out of range");
  return processors_[static_cast<std::size_t>(p)];
}

const LinkParams& Cluster::link(int from, int to) const {
  support::require(from >= 0 && from < size() && to >= 0 && to < size(),
                   "link endpoint out of range");
  auto it = overrides_.find({from, to});
  if (it != overrides_.end()) return it->second;
  return from == to ? self_link_ : default_link_;
}

double Cluster::compute_finish(int p, double start, double units) const {
  const Processor& proc = processor(p);
  return proc.load.finish_time(start, units, proc.speed);
}

double Cluster::effective_speed(int p, double t) const {
  const Processor& proc = processor(p);
  return proc.speed * proc.load.multiplier_at(t);
}

double Cluster::total_base_speed() const noexcept {
  double sum = 0.0;
  for (const Processor& p : processors_) sum += p.speed;
  return sum;
}

ClusterBuilder& ClusterBuilder::add(std::string name, double speed,
                                    LoadProfile load) {
  processors_.push_back({std::move(name), speed, std::move(load), {}});
  return *this;
}

ClusterBuilder& ClusterBuilder::availability(Availability avail) {
  support::require(!processors_.empty(),
                   "availability() must follow the add() of a processor");
  processors_.back().availability = std::move(avail);
  return *this;
}

ClusterBuilder& ClusterBuilder::network(double latency_s, double bandwidth_bps) {
  default_link_ = {latency_s, bandwidth_bps};
  return *this;
}

ClusterBuilder& ClusterBuilder::shared_memory(double latency_s,
                                              double bandwidth_bps) {
  self_link_ = {latency_s, bandwidth_bps};
  return *this;
}

ClusterBuilder& ClusterBuilder::link_override(int from, int to, double latency_s,
                                              double bandwidth_bps) {
  overrides_[{from, to}] = {latency_s, bandwidth_bps};
  return *this;
}

ClusterBuilder& ClusterBuilder::symmetric_link_override(int a, int b,
                                                        double latency_s,
                                                        double bandwidth_bps) {
  link_override(a, b, latency_s, bandwidth_bps);
  link_override(b, a, latency_s, bandwidth_bps);
  return *this;
}

Cluster ClusterBuilder::build() const {
  return Cluster(processors_, default_link_, self_link_, overrides_);
}

namespace testbeds {

namespace {
Cluster from_speeds(const std::vector<double>& speeds) {
  ClusterBuilder b;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    b.add("ws" + std::to_string(i), speeds[i]);
  }
  // 100 Mbit switched Ethernet: ~12.5 MB/s, ~150 us message latency.
  b.network(150e-6, 12.5e6);
  b.shared_memory(5e-6, 1e9);
  return b.build();
}
}  // namespace

Cluster paper_em3d_network() {
  return from_speeds({46, 46, 46, 46, 46, 46, 176, 106, 9});
}

Cluster paper_mm_network() {
  return from_speeds({46, 46, 46, 46, 46, 46, 46, 106, 9});
}

Cluster homogeneous(int n, double speed) {
  support::require(n > 0, "homogeneous cluster needs n > 0");
  std::vector<double> speeds(static_cast<std::size_t>(n), speed);
  return from_speeds(speeds);
}

}  // namespace testbeds
}  // namespace hmpi::hnoc
