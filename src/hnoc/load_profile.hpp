// Time-varying external load on a simulated processor.
//
// HNOCs are multi-user systems: the speed a processor delivers to the
// parallel application varies as other users come and go (paper §1,
// "multi-user decentralized computer system"). A LoadProfile models that as a
// piecewise-constant multiplier of the processor's base speed over virtual
// time, which is what makes HMPI_Recon meaningful in the simulator: the speed
// measured "now" can differ from the speed configured at cluster creation.
#pragma once

#include <vector>

namespace hmpi::hnoc {

/// Piecewise-constant speed multiplier over virtual time.
///
/// The profile is a step function: multiplier(t) equals the `multiplier` of
/// the last breakpoint whose `time <= t`, or 1.0 before the first breakpoint.
/// Multipliers must be positive; 1.0 means "unloaded", 0.5 means the
/// application gets half of the processor.
class LoadProfile {
 public:
  struct Step {
    double time;        ///< Virtual time (seconds) the step starts.
    double multiplier;  ///< Effective-speed multiplier from that time on.
  };

  /// Always-unloaded profile.
  LoadProfile() = default;

  /// Builds a profile from breakpoints; they are sorted by time and
  /// validated (positive multipliers, no duplicate times).
  explicit LoadProfile(std::vector<Step> steps);

  /// Convenience: constant multiplier for all time.
  static LoadProfile constant(double multiplier);

  /// Multiplier in effect at virtual time `t`.
  double multiplier_at(double t) const noexcept;

  /// Virtual time at which a computation of `units` benchmark units,
  /// started at `t0` on a processor with base speed `base_speed`
  /// (units/second), finishes. Integrates across profile steps.
  double finish_time(double t0, double units, double base_speed) const;

  bool is_constant_one() const noexcept { return steps_.empty(); }
  const std::vector<Step>& steps() const noexcept { return steps_; }

 private:
  std::vector<Step> steps_;  // sorted by time; empty == always 1.0
};

}  // namespace hmpi::hnoc
