#include "hnoc/cluster_io.hpp"

#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace hmpi::hnoc {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InvalidArgument("cluster description line " + std::to_string(line) +
                        ": " + message);
}

double parse_number(const std::string& token, int line, const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(line, std::string("malformed ") + what);
    return value;
  } catch (const std::exception&) {
    fail(line, std::string("malformed ") + what + " '" + token + "'");
  }
}

/// Parses `latency <x> bandwidth <y>` from the remaining tokens.
LinkParams parse_link_params(const std::vector<std::string>& tokens,
                             std::size_t start, int line) {
  if (tokens.size() != start + 4 || tokens[start] != "latency" ||
      tokens[start + 2] != "bandwidth") {
    fail(line, "expected 'latency <seconds> bandwidth <bytes/s>'");
  }
  LinkParams params;
  params.latency_s = parse_number(tokens[start + 1], line, "latency");
  params.bandwidth_bps = parse_number(tokens[start + 3], line, "bandwidth");
  return params;
}

}  // namespace

Cluster parse_cluster(std::string_view text) {
  ClusterBuilder builder;
  std::map<std::string, int> names;
  struct PendingLink {
    std::string a, b;
    LinkParams params;
    bool symmetric;
    int line;
  };
  std::vector<PendingLink> pending_links;
  struct PendingLan {
    std::string name;
    int id;
    int line;
  };
  std::vector<PendingLan> pending_lans;
  LinkParams intra_lan{50e-6, 125e6};
  LinkParams inter_lan{5e-3, 1.25e6};
  int next_index = 0;

  std::istringstream stream{std::string(text)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::size_t hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.resize(hash);
    std::istringstream words(raw_line);
    std::vector<std::string> tokens;
    for (std::string word; words >> word;) tokens.push_back(word);
    if (tokens.empty()) continue;

    const std::string& directive = tokens[0];
    if (directive == "network" || directive == "shared_memory") {
      const LinkParams params = parse_link_params(tokens, 1, line_no);
      if (directive == "network") {
        builder.network(params.latency_s, params.bandwidth_bps);
      } else {
        builder.shared_memory(params.latency_s, params.bandwidth_bps);
      }
    } else if (directive == "processor") {
      if (tokens.size() < 4 || tokens[2] != "speed") {
        fail(line_no, "expected 'processor <name> speed <value> [load ...]'");
      }
      const std::string& name = tokens[1];
      if (!names.emplace(name, next_index).second) {
        fail(line_no, "duplicate processor '" + name + "'");
      }
      ++next_index;
      const double speed = parse_number(tokens[3], line_no, "speed");
      std::vector<LoadProfile::Step> steps;
      for (std::size_t i = 4; i + 1 < tokens.size(); i += 2) {
        const std::string& key = tokens[i];
        const double mult = parse_number(tokens[i + 1], line_no, "load multiplier");
        if (key == "load") {
          steps.push_back({std::numeric_limits<double>::lowest(), mult});
        } else if (key.rfind("load@", 0) == 0) {
          steps.push_back({parse_number(key.substr(5), line_no, "load time"), mult});
        } else {
          fail(line_no, "unknown processor attribute '" + key + "'");
        }
      }
      if (tokens.size() > 4 && (tokens.size() - 4) % 2 != 0) {
        fail(line_no, "dangling processor attribute");
      }
      builder.add(name, speed, steps.empty() ? LoadProfile() : LoadProfile(steps));
    } else if (directive == "link" || directive == "symmetric_link") {
      if (tokens.size() < 3) {
        fail(line_no, "expected '" + directive + " <from> <to> latency ... bandwidth ...'");
      }
      pending_links.push_back({tokens[1], tokens[2],
                               parse_link_params(tokens, 3, line_no),
                               directive == "symmetric_link", line_no});
    } else if (directive == "intra_lan" || directive == "inter_lan") {
      const LinkParams params = parse_link_params(tokens, 1, line_no);
      (directive == "intra_lan" ? intra_lan : inter_lan) = params;
    } else if (directive == "lan") {
      if (tokens.size() != 3) {
        fail(line_no, "expected 'lan <processor> <id>'");
      }
      const double id = parse_number(tokens[2], line_no, "LAN id");
      if (id < 0 || id != static_cast<double>(static_cast<int>(id))) {
        fail(line_no, "LAN id must be a non-negative integer");
      }
      pending_lans.push_back({tokens[1], static_cast<int>(id), line_no});
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  // Links may reference processors declared later; resolve at the end.
  for (const PendingLink& link : pending_links) {
    auto a = names.find(link.a);
    auto b = names.find(link.b);
    if (a == names.end()) fail(link.line, "unknown processor '" + link.a + "'");
    if (b == names.end()) fail(link.line, "unknown processor '" + link.b + "'");
    if (link.symmetric) {
      builder.symmetric_link_override(a->second, b->second, link.params.latency_s,
                                      link.params.bandwidth_bps);
    } else {
      builder.link_override(a->second, b->second, link.params.latency_s,
                            link.params.bandwidth_bps);
    }
  }
  if (!pending_lans.empty()) {
    std::vector<int> lan_of(static_cast<std::size_t>(next_index), -1);
    for (const PendingLan& lan : pending_lans) {
      auto it = names.find(lan.name);
      if (it == names.end()) fail(lan.line, "unknown processor '" + lan.name + "'");
      lan_of[static_cast<std::size_t>(it->second)] = lan.id;
    }
    for (std::size_t p = 0; p < lan_of.size(); ++p) {
      if (lan_of[p] < 0) {
        throw InvalidArgument("cluster description: processor index " +
                              std::to_string(p) +
                              " has no 'lan' assignment (a two-level cluster "
                              "needs one per processor)");
      }
    }
    builder.two_level(std::move(lan_of), intra_lan.latency_s,
                      intra_lan.bandwidth_bps, inter_lan.latency_s,
                      inter_lan.bandwidth_bps);
  }
  return builder.build();
}

std::string to_description(const Cluster& cluster) {
  std::ostringstream os;
  os << "network latency " << cluster.default_link().latency_s << " bandwidth "
     << cluster.default_link().bandwidth_bps << "\n";
  os << "shared_memory latency " << cluster.self_link().latency_s
     << " bandwidth " << cluster.self_link().bandwidth_bps << "\n";
  for (int p = 0; p < cluster.size(); ++p) {
    const Processor& proc = cluster.processor(p);
    os << "processor " << proc.name << " speed " << proc.speed;
    for (const LoadProfile::Step& step : proc.load.steps()) {
      if (step.time == std::numeric_limits<double>::lowest()) {
        os << " load " << step.multiplier;
      } else {
        os << " load@" << step.time << " " << step.multiplier;
      }
    }
    os << "\n";
  }
  for (const auto& [pair, params] : cluster.link_overrides()) {
    os << "link " << cluster.processor(pair.first).name << " "
       << cluster.processor(pair.second).name << " latency " << params.latency_s
       << " bandwidth " << params.bandwidth_bps << "\n";
  }
  if (cluster.two_level()) {
    os << "intra_lan latency " << cluster.intra_link().latency_s
       << " bandwidth " << cluster.intra_link().bandwidth_bps << "\n";
    os << "inter_lan latency " << cluster.inter_link().latency_s
       << " bandwidth " << cluster.inter_link().bandwidth_bps << "\n";
    for (int p = 0; p < cluster.size(); ++p) {
      os << "lan " << cluster.processor(p).name << " " << cluster.lan_of(p)
         << "\n";
    }
  }
  return os.str();
}

}  // namespace hmpi::hnoc
