#include "hnoc/load_profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace hmpi::hnoc {

LoadProfile::LoadProfile(std::vector<Step> steps) : steps_(std::move(steps)) {
  std::sort(steps_.begin(), steps_.end(),
            [](const Step& a, const Step& b) { return a.time < b.time; });
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    support::require(steps_[i].multiplier > 0.0,
                     "LoadProfile multiplier must be positive");
    support::require(std::isfinite(steps_[i].time), "LoadProfile time must be finite");
    if (i > 0) {
      support::require(steps_[i].time != steps_[i - 1].time,
                       "LoadProfile has duplicate breakpoint times");
    }
  }
}

LoadProfile LoadProfile::constant(double multiplier) {
  return LoadProfile({{std::numeric_limits<double>::lowest(), multiplier}});
}

double LoadProfile::multiplier_at(double t) const noexcept {
  double m = 1.0;
  for (const Step& s : steps_) {
    if (s.time > t) break;
    m = s.multiplier;
  }
  return m;
}

double LoadProfile::finish_time(double t0, double units, double base_speed) const {
  support::require(units >= 0.0, "computation volume must be non-negative");
  support::require(base_speed > 0.0, "processor speed must be positive");
  if (units == 0.0) return t0;

  double t = t0;
  double remaining = units;
  // Walk the steps that lie after t, consuming work at the rate in effect.
  std::size_t i = 0;
  while (i < steps_.size() && steps_[i].time <= t) ++i;
  for (;; ++i) {
    const double rate = base_speed * multiplier_at(t);
    const double segment_end =
        i < steps_.size() ? steps_[i].time : std::numeric_limits<double>::infinity();
    const double can_do = rate * (segment_end - t);
    if (remaining <= can_do) return t + remaining / rate;
    remaining -= can_do;
    t = segment_end;
  }
}

}  // namespace hmpi::hnoc
