#include "hnoc/availability.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hmpi::hnoc {

Availability::Availability(std::vector<Outage> outages)
    : outages_(std::move(outages)) {
  for (const Outage& o : outages_) {
    support::require(o.from >= 0.0, "availability outage must start at t >= 0");
    support::require(o.to > o.from, "availability outage must end after it starts");
  }
  std::sort(outages_.begin(), outages_.end(),
            [](const Outage& a, const Outage& b) { return a.from < b.from; });
}

Availability Availability::down(double from, double to) const {
  std::vector<Outage> outages = outages_;
  outages.push_back({from, to});
  return Availability(std::move(outages));
}

Availability Availability::down_from(double from) const {
  return down(from, std::numeric_limits<double>::infinity());
}

bool Availability::available_at(double t) const noexcept {
  for (const Outage& o : outages_) {
    if (t >= o.from && t < o.to) return false;
  }
  return true;
}

double Availability::next_up_after(double t) const noexcept {
  // Intervals may overlap; iterate until none covers t.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Outage& o : outages_) {
      if (t >= o.from && t < o.to) {
        t = o.to;
        moved = true;
      }
    }
  }
  return t;
}

double Availability::permanent_failure_time() const noexcept {
  double earliest = std::numeric_limits<double>::infinity();
  for (const Outage& o : outages_) {
    if (o.to == std::numeric_limits<double>::infinity()) {
      earliest = std::min(earliest, o.from);
    }
  }
  return earliest;
}

}  // namespace hmpi::hnoc
