// Textual cluster descriptions.
//
// Lets experiments describe a heterogeneous network in a small config format
// instead of C++ — one directive per line, '#' comments:
//
//   # the paper's EM3D testbed
//   network latency 150e-6 bandwidth 12.5e6
//   shared_memory latency 5e-6 bandwidth 1e9
//   processor ws0 speed 46
//   processor ws6 speed 176 load 0.25        # constant external load
//   processor ws7 speed 106 load@10 0.5      # multiplier 0.5 from t=10 s
//   link ws0 ws6 latency 1e-5 bandwidth 1e8  # per-pair override (directed)
//   symmetric_link ws0 ws7 latency 1e-5 bandwidth 1e8
//
// A two-level LAN/WAN topology is declared by assigning every processor a
// LAN id (all processors must then be assigned) and, optionally, the two
// link classes:
//
//   intra_lan latency 50e-6 bandwidth 125e6  # same-LAN link
//   inter_lan latency 5e-3 bandwidth 1.25e6  # cross-LAN (WAN) link
//   lan ws0 0
//   lan ws6 1
//
// Processors are indexed in declaration order. parse_cluster throws
// InvalidArgument with a line number on malformed input.
#pragma once

#include <string>
#include <string_view>

#include "hnoc/cluster.hpp"

namespace hmpi::hnoc {

/// Parses a cluster description (see file comment).
Cluster parse_cluster(std::string_view text);

/// Renders a cluster back to the description format (load profiles included).
std::string to_description(const Cluster& cluster);

}  // namespace hmpi::hnoc
