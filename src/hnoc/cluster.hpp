// The simulated heterogeneous network of computers (HNOC).
//
// This is the ground truth the whole library runs on: the paper evaluated
// HMPI on a real 9-workstation Solaris/Linux network; we substitute a
// configurable model of such a network (DESIGN.md §2). A Cluster describes
//   * processors: name, base speed (benchmark units/second, the paper's
//     relative speed figures), and an external LoadProfile;
//   * links: latency + bandwidth per directed processor pair, with a
//     switched-network default (independent parallel transfers), a distinct
//     intra-machine "shared memory protocol" link, and per-pair overrides
//     (the paper's ad-hoc, multi-protocol network challenge).
//
// The same cost formulas used here by the mpsim execution engine are used by
// the estimator, which is what makes HMPI_Timeof predictions meaningful.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hnoc/availability.hpp"
#include "hnoc/load_profile.hpp"

namespace hmpi::hnoc {

/// Communication parameters of one directed link.
struct LinkParams {
  double latency_s = 0.0;       ///< Per-message fixed cost (seconds).
  double bandwidth_bps = 1e12;  ///< Bytes per second.

  /// Virtual duration of transferring `bytes` over this link.
  double transfer_time(double bytes) const noexcept {
    return latency_s + bytes / bandwidth_bps;
  }
};

/// One machine of the network.
struct Processor {
  std::string name;
  /// Base speed in benchmark units per second. The paper's relative speed
  /// figures (46, 176, 106, 9, ...) are used directly as units/second.
  double speed = 1.0;
  /// External (multi-user) load; effective speed is speed * multiplier(t).
  LoadProfile load;
  /// When the machine is reachable at all (multi-user networks lose machines
  /// outright, not just cycles). Consumed by mp::FaultPlan::from_cluster.
  Availability availability;
};

/// Two-level LAN/WAN topology (cf. MPICH-G2's multilevel clustering): every
/// processor belongs to one LAN; same-LAN pairs communicate over the `intra`
/// link, cross-LAN pairs over the `inter` link. Per-pair overrides and the
/// intra-machine self link still take precedence. Described by two link
/// classes instead of a P x P table, so a 10k-processor WAN costs O(P).
struct TwoLevelTopology {
  std::vector<int> lan_of;  ///< LAN id per processor (any non-negative ids).
  LinkParams intra;         ///< Same-LAN link (fast, low latency).
  LinkParams inter;         ///< Cross-LAN link (WAN: slow, high latency).
};

/// Immutable description of a heterogeneous network of computers.
class Cluster {
 public:
  Cluster(std::vector<Processor> processors, LinkParams default_link,
          LinkParams self_link,
          std::map<std::pair<int, int>, LinkParams> overrides = {},
          std::optional<TwoLevelTopology> two_level = {});

  int size() const noexcept { return static_cast<int>(processors_.size()); }
  const Processor& processor(int p) const;
  const std::vector<Processor>& processors() const noexcept { return processors_; }

  /// Link parameters for messages from processor `from` to processor `to`.
  /// `from == to` selects the intra-machine (shared-memory protocol) link
  /// unless overridden for that pair.
  const LinkParams& link(int from, int to) const;

  /// Virtual finish time of `units` benchmark units started on processor `p`
  /// at virtual time `start` (accounts for the load profile).
  double compute_finish(int p, double start, double units) const;

  /// Effective speed (units/second) processor `p` delivers at time `t`.
  double effective_speed(int p, double t) const;

  /// Sum of base speeds (useful for theoretical-bound calculations).
  double total_base_speed() const noexcept;

  /// True when the cluster carries a two-level LAN/WAN topology.
  bool two_level() const noexcept { return two_level_.has_value(); }

  /// LAN id of processor `p` (requires two_level()).
  int lan_of(int p) const;

  /// Same-LAN / cross-LAN links (require two_level()).
  const LinkParams& intra_link() const;
  const LinkParams& inter_link() const;

  /// Raw link configuration (used by cluster_io and diagnostics).
  const LinkParams& default_link() const noexcept { return default_link_; }
  const LinkParams& self_link() const noexcept { return self_link_; }
  const std::map<std::pair<int, int>, LinkParams>& link_overrides() const noexcept {
    return overrides_;
  }
  const std::optional<TwoLevelTopology>& two_level_topology() const noexcept {
    return two_level_;
  }

 private:
  std::vector<Processor> processors_;
  LinkParams default_link_;
  LinkParams self_link_;
  std::map<std::pair<int, int>, LinkParams> overrides_;
  std::optional<TwoLevelTopology> two_level_;
};

/// Fluent builder for Cluster.
class ClusterBuilder {
 public:
  /// Adds one processor; returns *this.
  ClusterBuilder& add(std::string name, double speed, LoadProfile load = {});

  /// Sets the availability calendar of the most recently added processor.
  ClusterBuilder& availability(Availability avail);

  /// Sets the default inter-machine link (switched network).
  ClusterBuilder& network(double latency_s, double bandwidth_bps);

  /// Sets the intra-machine link (shared-memory protocol).
  ClusterBuilder& shared_memory(double latency_s, double bandwidth_bps);

  /// Overrides the link between one directed pair (multi-protocol networks).
  ClusterBuilder& link_override(int from, int to, double latency_s,
                                double bandwidth_bps);

  /// Overrides the link in both directions.
  ClusterBuilder& symmetric_link_override(int a, int b, double latency_s,
                                          double bandwidth_bps);

  /// Declares a two-level LAN/WAN topology: `lan_of[p]` is the LAN id of
  /// processor p (sized to the processors added by build() time), intra is
  /// the same-LAN link and inter the cross-LAN link.
  ClusterBuilder& two_level(std::vector<int> lan_of, double intra_latency_s,
                            double intra_bandwidth_bps, double inter_latency_s,
                            double inter_bandwidth_bps);

  Cluster build() const;

 private:
  std::vector<Processor> processors_;
  LinkParams default_link_{150e-6, 12.5e6};  // 100 Mbit switched Ethernet
  LinkParams self_link_{5e-6, 1e9};          // shared memory
  std::map<std::pair<int, int>, LinkParams> overrides_;
  std::optional<TwoLevelTopology> two_level_;
};

namespace testbeds {

/// The paper's EM3D testbed: 9 workstations with speeds
/// {46,46,46,46,46,46,176,106,9} on 100 Mbit switched Ethernet (§5).
Cluster paper_em3d_network();

/// The paper's matrix-multiplication testbed: 9 workstations with speeds
/// {46,46,46,46,46,46,46,106,9} on 100 Mbit switched Ethernet (§5; the
/// paper lists 8 figures for 9 machines — we complete the list with one
/// more 46, see DESIGN.md).
Cluster paper_mm_network();

/// Homogeneous n-machine cluster (control case: HMPI should match MPI).
Cluster homogeneous(int n, double speed = 50.0);

/// `lans` LANs of `per_lan` machines each, gigabit inside a LAN and a slow
/// high-latency WAN between LANs (the MPICH-G2 style hierarchical testbed).
Cluster two_level(int lans, int per_lan, double speed = 50.0);

/// Seeded heterogeneous cluster at campus scale for the P=1000 mapping
/// experiments (bench/ablation_mapscale.cpp, hmpictl --large-cluster):
/// `machines` nodes with speeds drawn log-uniformly from [20, 200) — a
/// decade of spread, like a campus network mixing hardware generations — on
/// fast switched gigabit Ethernet. Fully deterministic in (machines, seed).
Cluster large_cluster(int machines, std::uint64_t seed = 0x413130);

}  // namespace testbeds
}  // namespace hmpi::hnoc
