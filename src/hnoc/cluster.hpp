// The simulated heterogeneous network of computers (HNOC).
//
// This is the ground truth the whole library runs on: the paper evaluated
// HMPI on a real 9-workstation Solaris/Linux network; we substitute a
// configurable model of such a network (DESIGN.md §2). A Cluster describes
//   * processors: name, base speed (benchmark units/second, the paper's
//     relative speed figures), and an external LoadProfile;
//   * links: latency + bandwidth per directed processor pair, with a
//     switched-network default (independent parallel transfers), a distinct
//     intra-machine "shared memory protocol" link, and per-pair overrides
//     (the paper's ad-hoc, multi-protocol network challenge).
//
// The same cost formulas used here by the mpsim execution engine are used by
// the estimator, which is what makes HMPI_Timeof predictions meaningful.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hnoc/availability.hpp"
#include "hnoc/load_profile.hpp"

namespace hmpi::hnoc {

/// Communication parameters of one directed link.
struct LinkParams {
  double latency_s = 0.0;       ///< Per-message fixed cost (seconds).
  double bandwidth_bps = 1e12;  ///< Bytes per second.

  /// Virtual duration of transferring `bytes` over this link.
  double transfer_time(double bytes) const noexcept {
    return latency_s + bytes / bandwidth_bps;
  }
};

/// One machine of the network.
struct Processor {
  std::string name;
  /// Base speed in benchmark units per second. The paper's relative speed
  /// figures (46, 176, 106, 9, ...) are used directly as units/second.
  double speed = 1.0;
  /// External (multi-user) load; effective speed is speed * multiplier(t).
  LoadProfile load;
  /// When the machine is reachable at all (multi-user networks lose machines
  /// outright, not just cycles). Consumed by mp::FaultPlan::from_cluster.
  Availability availability;
};

/// Immutable description of a heterogeneous network of computers.
class Cluster {
 public:
  Cluster(std::vector<Processor> processors, LinkParams default_link,
          LinkParams self_link,
          std::map<std::pair<int, int>, LinkParams> overrides = {});

  int size() const noexcept { return static_cast<int>(processors_.size()); }
  const Processor& processor(int p) const;
  const std::vector<Processor>& processors() const noexcept { return processors_; }

  /// Link parameters for messages from processor `from` to processor `to`.
  /// `from == to` selects the intra-machine (shared-memory protocol) link
  /// unless overridden for that pair.
  const LinkParams& link(int from, int to) const;

  /// Virtual finish time of `units` benchmark units started on processor `p`
  /// at virtual time `start` (accounts for the load profile).
  double compute_finish(int p, double start, double units) const;

  /// Effective speed (units/second) processor `p` delivers at time `t`.
  double effective_speed(int p, double t) const;

  /// Sum of base speeds (useful for theoretical-bound calculations).
  double total_base_speed() const noexcept;

  /// Raw link configuration (used by cluster_io and diagnostics).
  const LinkParams& default_link() const noexcept { return default_link_; }
  const LinkParams& self_link() const noexcept { return self_link_; }
  const std::map<std::pair<int, int>, LinkParams>& link_overrides() const noexcept {
    return overrides_;
  }

 private:
  std::vector<Processor> processors_;
  LinkParams default_link_;
  LinkParams self_link_;
  std::map<std::pair<int, int>, LinkParams> overrides_;
};

/// Fluent builder for Cluster.
class ClusterBuilder {
 public:
  /// Adds one processor; returns *this.
  ClusterBuilder& add(std::string name, double speed, LoadProfile load = {});

  /// Sets the availability calendar of the most recently added processor.
  ClusterBuilder& availability(Availability avail);

  /// Sets the default inter-machine link (switched network).
  ClusterBuilder& network(double latency_s, double bandwidth_bps);

  /// Sets the intra-machine link (shared-memory protocol).
  ClusterBuilder& shared_memory(double latency_s, double bandwidth_bps);

  /// Overrides the link between one directed pair (multi-protocol networks).
  ClusterBuilder& link_override(int from, int to, double latency_s,
                                double bandwidth_bps);

  /// Overrides the link in both directions.
  ClusterBuilder& symmetric_link_override(int a, int b, double latency_s,
                                          double bandwidth_bps);

  Cluster build() const;

 private:
  std::vector<Processor> processors_;
  LinkParams default_link_{150e-6, 12.5e6};  // 100 Mbit switched Ethernet
  LinkParams self_link_{5e-6, 1e9};          // shared memory
  std::map<std::pair<int, int>, LinkParams> overrides_;
};

namespace testbeds {

/// The paper's EM3D testbed: 9 workstations with speeds
/// {46,46,46,46,46,46,176,106,9} on 100 Mbit switched Ethernet (§5).
Cluster paper_em3d_network();

/// The paper's matrix-multiplication testbed: 9 workstations with speeds
/// {46,46,46,46,46,46,46,106,9} on 100 Mbit switched Ethernet (§5; the
/// paper lists 8 figures for 9 machines — we complete the list with one
/// more 46, see DESIGN.md).
Cluster paper_mm_network();

/// Homogeneous n-machine cluster (control case: HMPI should match MPI).
Cluster homogeneous(int n, double speed = 50.0);

}  // namespace testbeds
}  // namespace hmpi::hnoc
