// Machine availability over virtual time.
//
// The LoadProfile models a machine that slows down under external load; the
// Availability calendar models the harder reality of multi-user HNOCs (paper
// §1): machines drop off the network and come back, or die outright. It is a
// declarative companion to mp::FaultPlan — FaultPlan::from_cluster translates
// a cluster's calendars into concrete injected faults (finite down intervals
// become link outages of every link touching the machine; a permanent
// failure crashes every process placed on it).
#pragma once

#include <limits>
#include <vector>

namespace hmpi::hnoc {

/// Piecewise description of when a machine is reachable. Empty == always up.
class Availability {
 public:
  /// One down interval [from, to); `to` == infinity means the machine never
  /// comes back (permanent failure).
  struct Outage {
    double from = 0.0;
    double to = 0.0;
  };

  /// Always-up calendar.
  Availability() = default;

  /// Builds a calendar from down intervals; they are sorted and validated
  /// (from < to, non-negative times). Overlapping intervals are permitted
  /// and treated as their union.
  explicit Availability(std::vector<Outage> outages);

  /// Fluent helpers: returns a copy with one more down interval.
  Availability down(double from, double to) const;
  /// Permanent failure from `from` on.
  Availability down_from(double from) const;

  /// True when the machine is reachable at virtual time `t`.
  bool available_at(double t) const noexcept;

  /// First time >= `t` at which the machine is reachable, or infinity when
  /// it has permanently failed by then.
  double next_up_after(double t) const noexcept;

  /// Start of the permanent failure, if the calendar has one.
  /// Returns infinity otherwise.
  double permanent_failure_time() const noexcept;

  bool always_up() const noexcept { return outages_.empty(); }
  const std::vector<Outage>& outages() const noexcept { return outages_; }

 private:
  std::vector<Outage> outages_;  // sorted by `from`
};

}  // namespace hmpi::hnoc
