#include "estimator/estimate_cache.hpp"

#include <algorithm>

#include "estimator/fingerprint.hpp"
#include "estimator/plan.hpp"

namespace hmpi::est {

std::uint64_t EstimateCache::row_hash(std::uint64_t fingerprint,
                                      std::uint64_t version,
                                      std::span<const int> mapping) noexcept {
  std::uint64_t h = fp_mix(fingerprint, version);
  for (int p : mapping) h = fp_mix(h, static_cast<std::uint64_t>(p));
  return h;
}

std::size_t EstimateCache::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(
      row_hash(k.fingerprint, k.version, k.mapping));
}

EstimateCache::EstimateCache(std::size_t shards)
    : shard_count_(std::max<std::size_t>(1, shards)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

EstimateCache::Shard& EstimateCache::shard_for(const Key& key) {
  return shards_[KeyHash{}(key) % shard_count_];
}

double EstimateCache::estimate(const pmdl::ModelInstance& instance,
                               std::span<const int> mapping,
                               const hnoc::NetworkModel& network,
                               EstimateOptions options, bool* hit) {
  return estimate(estimate_fingerprint(instance, options), instance, mapping,
                  network, options, hit, nullptr);
}

double EstimateCache::estimate(std::uint64_t fingerprint,
                               const pmdl::ModelInstance& instance,
                               std::span<const int> mapping,
                               const hnoc::NetworkModel& network,
                               EstimateOptions options, bool* hit,
                               const Plan* plan) {
  // The probe key is thread-local so a table hit allocates nothing; a miss
  // copies it into the table (the one allocation it always paid).
  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  // Compute outside the shard lock: schemes can be expensive, and a parallel
  // search must not serialise on the table. A concurrent miss of the same
  // key recomputes the same deterministic value.
  const double seconds = plan != nullptr
                             ? plan->evaluate(mapping, network, options)
                             : estimate_time(instance, mapping, network,
                                             options);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.emplace(key, seconds);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (hit != nullptr) *hit = false;
  return seconds;
}

bool EstimateCache::lookup(std::uint64_t fingerprint,
                           std::span<const int> mapping,
                           const hnoc::NetworkModel& network, double* out) {
  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second;
  return true;
}

void EstimateCache::insert(std::uint64_t fingerprint,
                           std::span<const int> mapping,
                           const hnoc::NetworkModel& network, double seconds) {
  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.table.emplace(key, seconds);
}

std::size_t EstimateCache::lookup_batch(std::uint64_t fingerprint,
                                        std::span<const int> mappings,
                                        std::size_t width,
                                        const hnoc::NetworkModel& network,
                                        std::span<double> out,
                                        std::span<char> found) {
  const std::size_t count = width > 0 ? mappings.size() / width : 0;
  const std::uint64_t version = network.version();

  // Bucket rows by shard so every shard mutex is taken at most once.
  static thread_local std::vector<std::vector<std::size_t>> buckets;
  buckets.resize(shard_count_);
  for (auto& b : buckets) b.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t h =
        row_hash(fingerprint, version, mappings.subspan(i * width, width));
    buckets[static_cast<std::size_t>(h % shard_count_)].push_back(i);
  }

  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = version;
  std::size_t hit_count = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i : buckets[s]) {
      const auto row = mappings.subspan(i * width, width);
      key.mapping.assign(row.begin(), row.end());
      auto it = shard.table.find(key);
      if (it == shard.table.end()) {
        found[i] = 0;
        continue;
      }
      found[i] = 1;
      out[i] = it->second;
      ++hit_count;
    }
  }
  hits_.fetch_add(static_cast<long long>(hit_count),
                  std::memory_order_relaxed);
  misses_.fetch_add(static_cast<long long>(count - hit_count),
                    std::memory_order_relaxed);
  return hit_count;
}

void EstimateCache::insert_batch(std::uint64_t fingerprint,
                                 std::span<const int> mappings,
                                 std::size_t width,
                                 const hnoc::NetworkModel& network,
                                 std::span<const double> values,
                                 std::span<const char> skip) {
  const std::size_t count = width > 0 ? mappings.size() / width : 0;
  const std::uint64_t version = network.version();

  static thread_local std::vector<std::vector<std::size_t>> buckets;
  buckets.resize(shard_count_);
  for (auto& b : buckets) b.clear();
  for (std::size_t i = 0; i < count; ++i) {
    if (i < skip.size() && skip[i] != 0) continue;
    const std::uint64_t h =
        row_hash(fingerprint, version, mappings.subspan(i * width, width));
    buckets[static_cast<std::size_t>(h % shard_count_)].push_back(i);
  }

  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = version;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t i : buckets[s]) {
      const auto row = mappings.subspan(i * width, width);
      key.mapping.assign(row.begin(), row.end());
      shard.table.emplace(key, values[i]);
    }
  }
}

void EstimateCache::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].table.clear();
  }
}

std::size_t EstimateCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].table.size();
  }
  return total;
}

}  // namespace hmpi::est
