#include "estimator/estimate_cache.hpp"

#include "estimator/fingerprint.hpp"
#include "estimator/plan.hpp"

namespace hmpi::est {

std::size_t EstimateCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = fp_mix(k.fingerprint, k.version);
  for (int p : k.mapping) h = fp_mix(h, static_cast<std::uint64_t>(p));
  return static_cast<std::size_t>(h);
}

EstimateCache::Shard& EstimateCache::shard_for(const Key& key) {
  return shards_[KeyHash{}(key) % kShards];
}

double EstimateCache::estimate(const pmdl::ModelInstance& instance,
                               std::span<const int> mapping,
                               const hnoc::NetworkModel& network,
                               EstimateOptions options, bool* hit) {
  return estimate(estimate_fingerprint(instance, options), instance, mapping,
                  network, options, hit, nullptr);
}

double EstimateCache::estimate(std::uint64_t fingerprint,
                               const pmdl::ModelInstance& instance,
                               std::span<const int> mapping,
                               const hnoc::NetworkModel& network,
                               EstimateOptions options, bool* hit,
                               const Plan* plan) {
  // The probe key is thread-local so a table hit allocates nothing; a miss
  // copies it into the table (the one allocation it always paid).
  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  // Compute outside the shard lock: schemes can be expensive, and a parallel
  // search must not serialise on the table. A concurrent miss of the same
  // key recomputes the same deterministic value.
  const double seconds = plan != nullptr
                             ? plan->evaluate(mapping, network, options)
                             : estimate_time(instance, mapping, network,
                                             options);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.emplace(key, seconds);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (hit != nullptr) *hit = false;
  return seconds;
}

bool EstimateCache::lookup(std::uint64_t fingerprint,
                           std::span<const int> mapping,
                           const hnoc::NetworkModel& network, double* out) {
  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second;
  return true;
}

void EstimateCache::insert(std::uint64_t fingerprint,
                           std::span<const int> mapping,
                           const hnoc::NetworkModel& network, double seconds) {
  static thread_local Key key;
  key.fingerprint = fingerprint;
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.table.emplace(key, seconds);
}

void EstimateCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.clear();
  }
}

std::size_t EstimateCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.table.size();
  }
  return total;
}

}  // namespace hmpi::est
