#include "estimator/estimate_cache.hpp"

#include <bit>
#include <cstring>

namespace hmpi::est {

namespace {

/// SplitMix64 finaliser: the mixing step of support::Rng, reused as a hash
/// combiner so fingerprints are stable across platforms.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

/// Fingerprint of everything the estimate depends on besides the mapping
/// and the network speeds: the instance's aggregates and the overhead
/// options. Two instances of the same model and parameters fingerprint
/// identically (their schemes replay the same activations); instances that
/// differ in any aggregate cannot collide short of a 64-bit hash collision.
std::uint64_t fingerprint(const pmdl::ModelInstance& instance,
                          EstimateOptions options) {
  std::uint64_t h = 0x484d5049ULL;  // "HMPI"
  for (char c : instance.model_name()) {
    h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  for (long long d : instance.shape()) {
    h = mix(h, static_cast<std::uint64_t>(d));
  }
  h = mix(h, static_cast<std::uint64_t>(instance.parent_index()));
  h = mix(h, instance.has_scheme() ? 1 : 0);
  for (double v : instance.node_volumes()) h = mix_double(h, v);
  for (const auto& [pair, bytes] : instance.link_bytes()) {
    h = mix(h, static_cast<std::uint64_t>(pair.first));
    h = mix(h, static_cast<std::uint64_t>(pair.second));
    h = mix_double(h, bytes);
  }
  h = mix_double(h, options.send_overhead_s);
  h = mix_double(h, options.recv_overhead_s);
  return h;
}

}  // namespace

std::size_t EstimateCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = mix(k.fingerprint, k.version);
  for (int p : k.mapping) h = mix(h, static_cast<std::uint64_t>(p));
  return static_cast<std::size_t>(h);
}

EstimateCache::Shard& EstimateCache::shard_for(const Key& key) {
  return shards_[KeyHash{}(key) % kShards];
}

double EstimateCache::estimate(const pmdl::ModelInstance& instance,
                               std::span<const int> mapping,
                               const hnoc::NetworkModel& network,
                               EstimateOptions options, bool* hit) {
  Key key;
  key.fingerprint = fingerprint(instance, options);
  key.version = network.version();
  key.mapping.assign(mapping.begin(), mapping.end());

  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit != nullptr) *hit = true;
      return it->second;
    }
  }
  // Compute outside the shard lock: schemes can be expensive, and a parallel
  // search must not serialise on the table. A concurrent miss of the same
  // key recomputes the same deterministic value.
  const double seconds = estimate_time(instance, mapping, network, options);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.emplace(std::move(key), seconds);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (hit != nullptr) *hit = false;
  return seconds;
}

void EstimateCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.clear();
  }
}

std::size_t EstimateCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.table.size();
  }
  return total;
}

}  // namespace hmpi::est
