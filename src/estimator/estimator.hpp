// Predicted-makespan engine behind HMPI_Timeof and HMPI_Group_create.
//
// Given a ModelInstance (the compiled performance model), a mapping of
// abstract processors to physical processors, and the runtime's NetworkModel
// (estimated speeds + link parameters), the estimator replays the model's
// scheme on a timeline machine that uses the *same cost formulas* as the
// mpsim execution engine:
//   computation  : (percent/100) * volume / speed(processor)
//   communication: start at max(sender time, link busy);
//                  finish = start + latency + bytes/bandwidth;
//                  receiver time = max(receiver time, finish)
//   par blocks   : children start from the block-entry timeline; the block
//                  result is the element-wise max over children.
//
// This shared cost model is what makes HMPI_Timeof predictions track the
// simulated execution (ablation A3 quantifies the gap).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "coll/policy.hpp"
#include "hnoc/network_model.hpp"
#include "pmdl/model.hpp"

namespace hmpi::est {

/// Per-message overheads; defaults match mp::WorldOptions.
struct EstimateOptions {
  double send_overhead_s = 5e-6;
  double recv_overhead_s = 5e-6;
};

/// ScheduleSink that accumulates a virtual timeline (see file comment).
class TimelineMachine : public pmdl::ScheduleSink {
 public:
  /// `mapping[a]` is the physical processor of abstract processor `a`.
  /// The instance, mapping, and network must outlive the machine.
  TimelineMachine(const pmdl::ModelInstance& instance,
                  std::span<const int> mapping,
                  const hnoc::NetworkModel& network, EstimateOptions options);

  void compute(std::span<const long long> coords, double percent) override;
  void transfer(std::span<const long long> src, std::span<const long long> dst,
                double percent) override;
  void par_begin() override;
  void par_iter_begin() override;
  void par_end() override;

  /// Latest per-abstract-processor time (the estimate).
  double makespan() const;

  /// Per-abstract-processor finish times (diagnostics).
  const std::vector<double>& times() const noexcept { return state_.time; }

 private:
  struct State {
    std::vector<double> time;                       // per abstract processor
    std::map<std::pair<int, int>, double> link_busy;  // per processor pair
  };
  static void merge_max(State& into, const State& from);

  const pmdl::ModelInstance* instance_;
  std::vector<int> mapping_;
  const hnoc::NetworkModel* network_;
  EstimateOptions options_;

  State state_;
  // par nesting: entry snapshots and running element-wise maxima.
  std::vector<State> snapshots_;
  std::vector<State> accumulators_;
};

/// Predicted execution time of `instance` under `mapping` on `network`.
/// Replays the scheme when present; otherwise falls back to a conservative
/// per-processor bound: max over processors of (computation + all incident
/// communication).
double estimate_time(const pmdl::ModelInstance& instance,
                     std::span<const int> mapping,
                     const hnoc::NetworkModel& network,
                     EstimateOptions options = EstimateOptions());

/// Predicted virtual duration of one collective operation over members
/// placed on `member_procs` (machine id per communicator rank), using the
/// same schedule replay the runtime's CollTuner ranks algorithms with
/// (coll::collective_cost). `algo` is the per-op algorithm value; 0 (kAuto)
/// prices the legacy default. `bytes` is the operation's total payload
/// (ignored for barrier). This is what lets HMPI_Timeof price collective
/// phases consistently with the tuner's selections.
double collective_time(coll::CollOp op, int algo,
                       std::span<const int> member_procs, std::size_t bytes,
                       const hnoc::NetworkModel& network,
                       EstimateOptions options = EstimateOptions());

}  // namespace hmpi::est
