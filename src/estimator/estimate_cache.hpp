// Memoisation of estimate_time for the group-selection search.
//
// The mappers (mapper/mapper.hpp) score thousands of candidate arrangements
// per selection, and many distinct *selections* collapse to the same
// *physical mapping*: several candidate processes live on the same machine,
// hill-climbing re-scores the neighbours it rejected last round, and the
// paper's canonical HMPI_Timeof-then-HMPI_Group_create pair replays the
// whole search twice. The estimator is a pure function of
//   (model instance, physical mapping, network speeds, overhead options),
// so its results can be memoised: this cache keys on a fingerprint of the
// instance and options, the NetworkModel *version counter* (bumped by every
// set_speed, i.e. by every recon — stale speeds can never leak back), and
// the canonical per-abstract-processor physical mapping.
//
// Thread safety: the table is sharded by key hash, each shard behind its own
// mutex, so the parallel mappers can share one cache. The shard count is a
// constructor knob (RuntimeConfig::est_shards / HMPI_EST_SHARDS): the batch
// searches probe thousands of keys per round, and bulk probes grouped by
// shard take each shard mutex once per batch instead of once per key. Two
// threads that miss the same key concurrently both compute it; estimate_time
// is deterministic, so whichever insert lands is the same bit pattern —
// cached and uncached searches return bit-identical results.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "estimator/estimator.hpp"
#include "hnoc/network_model.hpp"
#include "pmdl/model.hpp"

namespace hmpi::est {

class Plan;

class EstimateCache {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  /// `shards` is clamped to >= 1. More shards cut contention under parallel
  /// and batch probes; the default matches the pre-configurable behaviour.
  explicit EstimateCache(std::size_t shards = kDefaultShards);
  EstimateCache(const EstimateCache&) = delete;
  EstimateCache& operator=(const EstimateCache&) = delete;

  /// estimate_time(instance, mapping, network, options), memoised. Sets
  /// *hit (when non-null) to whether the value came from the table.
  double estimate(const pmdl::ModelInstance& instance,
                  std::span<const int> mapping,
                  const hnoc::NetworkModel& network, EstimateOptions options,
                  bool* hit = nullptr);

  /// Hot-path overload: `fingerprint` is est::estimate_fingerprint(instance,
  /// options), hoisted out by callers that price many mappings of one
  /// instance (the fingerprint hashes every aggregate, which would otherwise
  /// dominate a table hit). When `plan` is non-null a miss is computed via
  /// Plan::evaluate instead of the interpreter — bit-identical by the plan's
  /// contract, so both overloads fill the table interchangeably.
  double estimate(std::uint64_t fingerprint,
                  const pmdl::ModelInstance& instance,
                  std::span<const int> mapping,
                  const hnoc::NetworkModel& network, EstimateOptions options,
                  bool* hit, const Plan* plan);

  /// Probe without computing: true and *out filled on a hit. Counts toward
  /// hits()/misses() exactly like estimate() — the delta search path pairs
  /// a lookup() with an insert() of its suffix-replayed value, so cached and
  /// uncached accounting stays interchangeable with the estimate() path.
  bool lookup(std::uint64_t fingerprint, std::span<const int> mapping,
              const hnoc::NetworkModel& network, double* out);

  /// Stores a value the caller computed (bit-identical to what estimate()
  /// would have computed, per the estimator determinism contract).
  void insert(std::uint64_t fingerprint, std::span<const int> mapping,
              const hnoc::NetworkModel& network, double seconds);

  /// Bulk probe of `count` mappings laid out row-major (mapping i occupies
  /// [i * width, (i + 1) * width) of `mappings`). Sets found[i] to 1 and
  /// fills out[i] on a hit; returns the number of hits. Keys are bucketed by
  /// shard and each shard mutex is taken once per batch — this is what keeps
  /// the batch searches off the per-key locking profile. Counts toward
  /// hits()/misses() exactly like `count` individual lookup() calls.
  std::size_t lookup_batch(std::uint64_t fingerprint,
                           std::span<const int> mappings, std::size_t width,
                           const hnoc::NetworkModel& network,
                           std::span<double> out, std::span<char> found);

  /// Bulk insert of caller-computed values for the subset with skip[i] == 0
  /// (pass the found mask of the paired lookup_batch). Groups keys by shard,
  /// locking each shard once.
  void insert_batch(std::uint64_t fingerprint, std::span<const int> mappings,
                    std::size_t width, const hnoc::NetworkModel& network,
                    std::span<const double> values, std::span<const char> skip);

  /// Shards the table was built with.
  std::size_t shard_count() const noexcept { return shard_count_; }

  /// Drops every entry (cumulative hit/miss counters are kept). Version
  /// keying already prevents stale reads; clearing just releases memory,
  /// e.g. after a recon made every existing entry unreachable.
  void clear();

  /// Entries currently stored.
  std::size_t size() const;

  /// Cumulative lookup counters (diagnostics; hits + misses = lookups).
  long long hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  long long misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::uint64_t fingerprint = 0;  // instance + options
    std::uint64_t version = 0;      // NetworkModel::version()
    std::vector<int> mapping;       // physical processor per abstract proc
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> table;
  };

  Shard& shard_for(const Key& key);

  /// Row hash shared by the single and batch paths (same value KeyHash
  /// computes from a materialised Key).
  static std::uint64_t row_hash(std::uint64_t fingerprint,
                                std::uint64_t version,
                                std::span<const int> mapping) noexcept;

  // Heap array, not a vector: Shard holds a mutex (immovable), and the count
  // is fixed at construction anyway.
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
};

}  // namespace hmpi::est
