#include "estimator/plan.hpp"

#include <algorithm>
#include <chrono>

#include "estimator/fingerprint.hpp"
#include "support/error.hpp"

namespace hmpi::est {

namespace {

void check_mapping(int num_procs, std::span<const int> mapping,
                   const hnoc::NetworkModel& network) {
  support::require(static_cast<int>(mapping.size()) == num_procs,
                   "mapping size must equal the number of abstract processors");
  for (int p : mapping) {
    support::require(p >= 0 && p < network.size(),
                     "mapping references a processor outside the network");
  }
}

/// Records one scheme replay as the flat op list. Self transfers are
/// dropped and the percentage factors folded in here, so the evaluators
/// never look at the instance again.
class Recorder final : public pmdl::ScheduleSink {
 public:
  Recorder(const pmdl::ModelInstance& instance, std::vector<PlanOp>& ops)
      : instance_(&instance), ops_(&ops) {}

  void compute(std::span<const long long> coords, double percent) override {
    const auto a = static_cast<std::size_t>(instance_->flatten(coords));
    // The exact expression TimelineMachine::compute evaluates per replay.
    const double units = instance_->node_volumes()[a] * percent / 100.0;
    ops_->push_back({PlanOp::Kind::kCompute, static_cast<int>(a), -1, units});
  }

  void transfer(std::span<const long long> src, std::span<const long long> dst,
                double percent) override {
    const auto s = static_cast<std::size_t>(instance_->flatten(src));
    const auto d = static_cast<std::size_t>(instance_->flatten(dst));
    if (s == d) return;  // self transfer: no cost in the model
    double bytes = 0.0;
    auto it = instance_->link_bytes().find(
        {static_cast<int>(s), static_cast<int>(d)});
    if (it != instance_->link_bytes().end()) {
      bytes = it->second * percent / 100.0;
    }
    // A missing link entry still pays latency and overheads (bytes = 0),
    // exactly like the interpreter path.
    ops_->push_back({PlanOp::Kind::kTransfer, static_cast<int>(s),
                     static_cast<int>(d), bytes});
  }

  void par_begin() override {
    ops_->push_back({PlanOp::Kind::kParBegin, -1, -1, 0.0});
  }
  void par_iter_begin() override {
    ops_->push_back({PlanOp::Kind::kParIterBegin, -1, -1, 0.0});
  }
  void par_end() override {
    ops_->push_back({PlanOp::Kind::kParEnd, -1, -1, 0.0});
  }

 private:
  const pmdl::ModelInstance* instance_;
  std::vector<PlanOp>* ops_;
};

/// time[a] += units / speed — the TimelineMachine::compute float ops.
inline void op_compute(const PlanOp& op, std::span<const int> mapping,
                       const hnoc::NetworkModel& network,
                       std::vector<double>& time) {
  const auto a = static_cast<std::size_t>(op.a);
  time[a] += op.value / network.speed(mapping[a]);
}

/// The TimelineMachine::transfer float ops over a dense busy table
/// (busy[ps * P + pd]; absent map entries and zero slots agree at 0.0).
inline void op_transfer(const PlanOp& op, std::span<const int> mapping,
                        const hnoc::NetworkModel& network,
                        EstimateOptions options, int link_stride,
                        std::vector<double>& time, std::vector<double>& busy) {
  const auto s = static_cast<std::size_t>(op.a);
  const auto d = static_cast<std::size_t>(op.b);
  const int ps = mapping[s];
  const int pd = mapping[d];
  double& slot = busy[static_cast<std::size_t>(ps) *
                          static_cast<std::size_t>(link_stride) +
                      static_cast<std::size_t>(pd)];
  const double start = std::max(time[s], slot);
  const double finish = start + network.link(ps, pd).transfer_time(op.value);
  slot = finish;
  time[s] += options.send_overhead_s;
  time[d] = std::max(time[d], finish) + options.recv_overhead_s;
}

/// Element-wise max; exact (std::max of finite doubles picks one operand).
/// Dense busy tables make this identical to the interpreter's map merge:
/// a pair absent from `from` contributes 0.0, and max(x, 0.0) == x for the
/// non-negative timeline values.
inline void merge_max_into(std::vector<double>& into_time,
                           std::vector<double>& into_busy,
                           const std::vector<double>& from_time,
                           const std::vector<double>& from_busy) {
  for (std::size_t i = 0; i < into_time.size(); ++i) {
    into_time[i] = std::max(into_time[i], from_time[i]);
  }
  for (std::size_t i = 0; i < into_busy.size(); ++i) {
    into_busy[i] = std::max(into_busy[i], from_busy[i]);
  }
}

}  // namespace

// --- Plan ------------------------------------------------------------------

Plan::Plan(const pmdl::ModelInstance& instance)
    : num_procs_(instance.size()), from_scheme_(instance.has_scheme()) {
  volumes_ = instance.node_volumes();
  links_.reserve(instance.link_bytes().size());
  for (const auto& [pair, bytes] : instance.link_bytes()) {
    links_.push_back({pair.first, pair.second, bytes});
  }
  // Per-processor incidence, preserving the global (sorted) link order the
  // fallback evaluation accumulates in; a self link is listed twice because
  // the fallback adds its transfer time to both endpoint roles.
  incident_.assign(static_cast<std::size_t>(num_procs_), {});
  for (std::size_t li = 0; li < links_.size(); ++li) {
    incident_[static_cast<std::size_t>(links_[li].src)].push_back(
        static_cast<int>(li));
    incident_[static_cast<std::size_t>(links_[li].dst)].push_back(
        static_cast<int>(li));
  }

  if (from_scheme_) {
    Recorder recorder(instance, ops_);
    instance.run_scheme(recorder);
    first_touch_.assign(static_cast<std::size_t>(num_procs_), kNeverTouched);
    // Distinct abstract transfer pairs (first-appearance order) and each
    // transfer op's pair index — the batch evaluator's compact busy keying.
    std::unordered_map<std::uint64_t, int> pair_index;
    op_pair_.assign(ops_.size(), -1);
    for (std::size_t k = 0; k < ops_.size(); ++k) {
      const PlanOp& op = ops_[k];
      if (op.kind != PlanOp::Kind::kCompute &&
          op.kind != PlanOp::Kind::kTransfer) {
        continue;
      }
      auto touch = [&](int a) {
        auto& first = first_touch_[static_cast<std::size_t>(a)];
        if (first == kNeverTouched) first = k;
      };
      touch(op.a);
      if (op.kind == PlanOp::Kind::kTransfer) {
        touch(op.b);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.a))
             << 32) |
            static_cast<std::uint32_t>(op.b);
        auto [it, inserted] =
            pair_index.emplace(key, static_cast<int>(pairs_.size()));
        if (inserted) pairs_.push_back({op.a, op.b});
        op_pair_[k] = it->second;
      }
    }
    // ~64 checkpoints bound the suffix-replay overshoot without copying the
    // timeline state too often.
    checkpoint_stride_ = std::max<std::size_t>(16, (ops_.size() + 63) / 64);
  }
}

double Plan::evaluate(std::span<const int> mapping,
                      const hnoc::NetworkModel& network,
                      EstimateOptions options) const {
  check_mapping(num_procs_, mapping, network);

  if (!from_scheme_) {
    // The fallback bound of est::estimate_time, term for term.
    std::vector<double> cost(volumes_.size(), 0.0);
    for (std::size_t a = 0; a < volumes_.size(); ++a) {
      cost[a] = volumes_[a] / network.speed(mapping[a]);
    }
    for (const PlanLink& l : links_) {
      const int ps = mapping[static_cast<std::size_t>(l.src)];
      const int pd = mapping[static_cast<std::size_t>(l.dst)];
      const double t = network.link(ps, pd).transfer_time(l.bytes);
      cost[static_cast<std::size_t>(l.src)] += t;
      cost[static_cast<std::size_t>(l.dst)] += t;
    }
    return cost.empty() ? 0.0
                        : *std::max_element(cost.begin(), cost.end());
  }

  const int P = network.size();
  std::vector<double> time(static_cast<std::size_t>(num_procs_), 0.0);
  std::vector<double> busy(static_cast<std::size_t>(P) *
                               static_cast<std::size_t>(P),
                           0.0);
  struct Frame {
    std::vector<double> snap_time, snap_busy;  // par block entry
    std::vector<double> acc_time, acc_busy;    // running element-wise max
  };
  std::vector<Frame> frames;
  for (const PlanOp& op : ops_) {
    switch (op.kind) {
      case PlanOp::Kind::kCompute:
        op_compute(op, mapping, network, time);
        break;
      case PlanOp::Kind::kTransfer:
        op_transfer(op, mapping, network, options, P, time, busy);
        break;
      case PlanOp::Kind::kParBegin:
        frames.push_back({time, busy, time, busy});
        break;
      case PlanOp::Kind::kParIterBegin: {
        Frame& f = frames.back();
        merge_max_into(f.acc_time, f.acc_busy, time, busy);
        time = f.snap_time;
        busy = f.snap_busy;
        break;
      }
      case PlanOp::Kind::kParEnd: {
        Frame& f = frames.back();
        merge_max_into(f.acc_time, f.acc_busy, time, busy);
        time = std::move(f.acc_time);
        busy = std::move(f.acc_busy);
        frames.pop_back();
        break;
      }
    }
  }
  return time.empty() ? 0.0 : *std::max_element(time.begin(), time.end());
}

// --- DeltaEvaluator ----------------------------------------------------------

DeltaEvaluator::Core& DeltaEvaluator::Stack::push() {
  if (depth == pool.size()) pool.emplace_back();
  return pool[depth++];
}

void DeltaEvaluator::assign_core(Core& into, const Core& from) {
  into.time.assign(from.time.begin(), from.time.end());
  into.busy.assign(from.busy.begin(), from.busy.end());
}

void DeltaEvaluator::merge_max_core(Core& into, const Core& from) {
  merge_max_into(into.time, into.busy, from.time, from.busy);
}

double DeltaEvaluator::makespan_of(const Core& core) const {
  return core.time.empty()
             ? 0.0
             : *std::max_element(core.time.begin(), core.time.end());
}

DeltaEvaluator::DeltaEvaluator(const Plan& plan,
                               const hnoc::NetworkModel& network,
                               EstimateOptions options)
    : plan_(&plan),
      network_(&network),
      options_(options),
      num_links_(network.size() * network.size()) {}

double DeltaEvaluator::reset(std::span<const int> mapping) {
  check_mapping(plan_->size(), mapping, *network_);
  mapping_.assign(mapping.begin(), mapping.end());
  staged_ = false;
  stale_ops_ = 0;

  if (!plan_->from_scheme_) {
    const auto& volumes = plan_->volumes_;
    committed_cost_.assign(volumes.size(), 0.0);
    for (std::size_t a = 0; a < volumes.size(); ++a) {
      committed_cost_[a] = volumes[a] / network_->speed(mapping_[a]);
    }
    for (const PlanLink& l : plan_->links_) {
      const int ps = mapping_[static_cast<std::size_t>(l.src)];
      const int pd = mapping_[static_cast<std::size_t>(l.dst)];
      const double t = network_->link(ps, pd).transfer_time(l.bytes);
      committed_cost_[static_cast<std::size_t>(l.src)] += t;
      committed_cost_[static_cast<std::size_t>(l.dst)] += t;
    }
    committed_time_ =
        committed_cost_.empty()
            ? 0.0
            : *std::max_element(committed_cost_.begin(), committed_cost_.end());
    return committed_time_;
  }

  committed_.time.assign(static_cast<std::size_t>(plan_->size()), 0.0);
  committed_.busy.assign(static_cast<std::size_t>(num_links_), 0.0);
  scratch_snapshots_.clear();
  scratch_accumulators_.clear();
  checkpoints_.clear();
  checkpoints_.emplace_back();
  checkpoints_.back().op_index = 0;
  assign_core(checkpoints_.back().core, committed_);
  run_ops(0, plan_->ops_.size(), mapping_, committed_, scratch_snapshots_,
          scratch_accumulators_, &checkpoints_);
  committed_time_ = makespan_of(committed_);
  return committed_time_;
}

std::span<const int> DeltaEvaluator::stage(std::span<const Move> moves) {
  support::require(!mapping_.empty() || plan_->size() == 0,
                   "DeltaEvaluator::stage before reset");
  staged_mapping_.assign(mapping_.begin(), mapping_.end());
  for (const Move& m : moves) {
    support::require(
        m.slot >= 0 && m.slot < plan_->size(),
        "DeltaEvaluator::stage: slot outside the abstract arrangement");
    support::require(m.processor >= 0 && m.processor < network_->size(),
                     "DeltaEvaluator::stage: processor outside the network");
    staged_mapping_[static_cast<std::size_t>(m.slot)] = m.processor;
  }
  staged_slots_.clear();
  staged_first_ = Plan::kNeverTouched;
  for (std::size_t a = 0; a < staged_mapping_.size(); ++a) {
    if (staged_mapping_[a] == mapping_[a]) continue;
    staged_slots_.push_back(static_cast<int>(a));
    if (plan_->from_scheme_) {
      staged_first_ = std::min(staged_first_, plan_->first_touch_[a]);
    }
  }
  staged_ = true;
  staged_priced_ = false;
  scratch_valid_ = false;
  staged_value_ = committed_time_;
  return staged_mapping_;
}

double DeltaEvaluator::replay() {
  support::require(staged_, "DeltaEvaluator::replay without a staged move");
  staged_priced_ = true;
  if (staged_slots_.empty() ||
      (plan_->from_scheme_ && staged_first_ == Plan::kNeverTouched)) {
    // No op touches a changed slot: the committed timeline is the answer.
    staged_value_ = committed_time_;
    return staged_value_;
  }
  staged_value_ =
      plan_->from_scheme_ ? replay_scheme() : replay_fallback();
  return staged_value_;
}

void DeltaEvaluator::set_staged_value(double seconds) {
  support::require(staged_,
                   "DeltaEvaluator::set_staged_value without a staged move");
  staged_value_ = seconds;
  staged_priced_ = true;
  scratch_valid_ = false;
}

double DeltaEvaluator::replay_scheme() {
  const std::size_t n = plan_->ops_.size();
  std::size_t j0 = staged_first_ / plan_->checkpoint_stride_;
  if (j0 >= checkpoints_.size()) {
    // Commits drop stale checkpoints lazily, so the grid can be shorter than
    // this proposal's first touch asks for. Replaying from the last survivor
    // stays bit-exact (no op before staged_first_ touches a changed slot);
    // charge the clamp and, once the accumulated cost exceeds one full pass,
    // re-record the grid so savings return.
    stale_ops_ += static_cast<long long>((j0 - (checkpoints_.size() - 1)) *
                                         plan_->checkpoint_stride_);
    if (stale_ops_ >= static_cast<long long>(n)) {
      rebuild_checkpoints();
      stale_ops_ = 0;
      j0 = staged_first_ / plan_->checkpoint_stride_;
    }
    j0 = std::min(j0, checkpoints_.size() - 1);
  }
  const Checkpoint& cp = checkpoints_[j0];

  assign_core(scratch_, cp.core);
  scratch_snapshots_.clear();
  for (const Core& c : cp.snapshots) assign_core(scratch_snapshots_.push(), c);
  scratch_accumulators_.clear();
  for (const Core& c : cp.accumulators) {
    assign_core(scratch_accumulators_.push(), c);
  }
  run_ops(cp.op_index, n, staged_mapping_, scratch_, scratch_snapshots_,
          scratch_accumulators_, nullptr);
  replays_ += 1;
  ops_replayed_ += static_cast<long long>(n - cp.op_index);
  scratch_valid_ = true;
  return makespan_of(scratch_);
}

double DeltaEvaluator::replay_fallback() {
  // Affected processors: the moved slots plus every endpoint sharing a link
  // term with one (their incident transfer times change too).
  affected_mark_.assign(static_cast<std::size_t>(plan_->size()), 0);
  affected_.clear();
  auto mark = [&](int a) {
    if (affected_mark_[static_cast<std::size_t>(a)] != 0) return;
    affected_mark_[static_cast<std::size_t>(a)] = 1;
    affected_.push_back(a);
  };
  for (int s : staged_slots_) {
    mark(s);
    for (int li : plan_->incident_[static_cast<std::size_t>(s)]) {
      mark(plan_->links_[static_cast<std::size_t>(li)].src);
      mark(plan_->links_[static_cast<std::size_t>(li)].dst);
    }
  }
  scratch_cost_.assign(committed_cost_.begin(), committed_cost_.end());
  recompute_costs(affected_, staged_mapping_, scratch_cost_);
  replays_ += 1;
  for (int a : affected_) {
    ops_replayed_ += 1 + static_cast<long long>(
                             plan_->incident_[static_cast<std::size_t>(a)].size());
  }
  scratch_valid_ = true;
  return scratch_cost_.empty()
             ? 0.0
             : *std::max_element(scratch_cost_.begin(), scratch_cost_.end());
}

void DeltaEvaluator::recompute_costs(std::span<const int> affected,
                                     std::span<const int> mapping,
                                     std::vector<double>& cost) {
  // Each processor's cost is its own sum, accumulated in the global link
  // order — the same addition sequence the full fallback evaluation performs
  // for it, so recomputed entries are bit-identical.
  for (int a : affected) {
    const auto ai = static_cast<std::size_t>(a);
    double c = plan_->volumes_[ai] / network_->speed(mapping[ai]);
    for (int li : plan_->incident_[ai]) {
      const PlanLink& l = plan_->links_[static_cast<std::size_t>(li)];
      const int ps = mapping[static_cast<std::size_t>(l.src)];
      const int pd = mapping[static_cast<std::size_t>(l.dst)];
      c += network_->link(ps, pd).transfer_time(l.bytes);
    }
    cost[ai] = c;
  }
}

void DeltaEvaluator::commit() {
  support::require(staged_, "DeltaEvaluator::commit without a staged move");
  staged_ = false;
  if (staged_slots_.empty()) return;  // mapping unchanged (e.g. same-machine swap)

  if (!plan_->from_scheme_) {
    if (scratch_valid_) {
      committed_cost_.swap(scratch_cost_);
    } else {
      // Value came from a memo; rebuild only the affected entries. This
      // repeats the affected-set walk of replay_fallback on purpose: the
      // staged slots are the source of truth, scratch_cost_ is not.
      const double memo = staged_value_;
      staged_value_ = replay_fallback();
      committed_cost_.swap(scratch_cost_);
      staged_value_ = memo;
    }
    mapping_.swap(staged_mapping_);
    committed_time_ =
        committed_cost_.empty()
            ? 0.0
            : *std::max_element(committed_cost_.begin(), committed_cost_.end());
    return;
  }

  mapping_.swap(staged_mapping_);
  if (staged_first_ == Plan::kNeverTouched) return;  // timeline unchanged

  if (staged_priced_) {
    // O(1) accept: the staged value is the new committed makespan (replay and
    // memo values are bit-exact by the invariant). Checkpoints past the first
    // touched op describe the old mapping's timeline; drop them instead of
    // re-running the suffix here — replay_scheme() clamps to the survivors
    // and amortises one grid rebuild against the accumulated clamp cost.
    committed_time_ = staged_value_;
    const std::size_t keep = staged_first_ / plan_->checkpoint_stride_ + 1;
    if (keep < checkpoints_.size()) checkpoints_.resize(keep);
    return;
  }

  // Unpriced commit (stage() straight into commit()): rebuild the suffix with
  // checkpoint recording to learn the value.
  const std::size_t n = plan_->ops_.size();
  const std::size_t j0 = std::min(staged_first_ / plan_->checkpoint_stride_,
                                  checkpoints_.size() - 1);
  const std::size_t start = checkpoints_[j0].op_index;
  checkpoints_.resize(j0 + 1);
  assign_core(scratch_, checkpoints_[j0].core);
  scratch_snapshots_.clear();
  for (const Core& c : checkpoints_[j0].snapshots) {
    assign_core(scratch_snapshots_.push(), c);
  }
  scratch_accumulators_.clear();
  for (const Core& c : checkpoints_[j0].accumulators) {
    assign_core(scratch_accumulators_.push(), c);
  }
  run_ops(start, n, mapping_, scratch_, scratch_snapshots_,
          scratch_accumulators_, &checkpoints_);
  ops_replayed_ += static_cast<long long>(n - start);
  std::swap(committed_, scratch_);
  committed_time_ = makespan_of(committed_);
}

void DeltaEvaluator::rebuild_checkpoints() {
  // Recorded re-run of [last surviving checkpoint, end) under the committed
  // mapping; the survivor is exact for it (see commit()), so the re-recorded
  // grid is too. Charged to ops_replayed_ — the savings metric stays honest.
  const std::size_t n = plan_->ops_.size();
  const std::size_t start = checkpoints_.back().op_index;
  assign_core(scratch_, checkpoints_.back().core);
  scratch_snapshots_.clear();
  for (const Core& c : checkpoints_.back().snapshots) {
    assign_core(scratch_snapshots_.push(), c);
  }
  scratch_accumulators_.clear();
  for (const Core& c : checkpoints_.back().accumulators) {
    assign_core(scratch_accumulators_.push(), c);
  }
  run_ops(start, n, mapping_, scratch_, scratch_snapshots_,
          scratch_accumulators_, &checkpoints_);
  ops_replayed_ += static_cast<long long>(n - start);
}

void DeltaEvaluator::run_ops(std::size_t from, std::size_t to,
                             std::span<const int> mapping, Core& core,
                             Stack& snapshots, Stack& accumulators,
                             std::vector<Checkpoint>* record) {
  const auto& ops = plan_->ops_;
  const std::size_t stride = plan_->checkpoint_stride_;
  const int P = network_->size();
  for (std::size_t k = from; k < to; ++k) {
    if (record != nullptr && k != from && k % stride == 0) {
      record->emplace_back();
      Checkpoint& cp = record->back();
      cp.op_index = k;
      assign_core(cp.core, core);
      cp.snapshots.resize(snapshots.depth);
      for (std::size_t i = 0; i < snapshots.depth; ++i) {
        assign_core(cp.snapshots[i], snapshots.pool[i]);
      }
      cp.accumulators.resize(accumulators.depth);
      for (std::size_t i = 0; i < accumulators.depth; ++i) {
        assign_core(cp.accumulators[i], accumulators.pool[i]);
      }
    }
    const PlanOp& op = ops[k];
    switch (op.kind) {
      case PlanOp::Kind::kCompute:
        op_compute(op, mapping, *network_, core.time);
        break;
      case PlanOp::Kind::kTransfer:
        op_transfer(op, mapping, *network_, options_, P, core.time, core.busy);
        break;
      case PlanOp::Kind::kParBegin:
        assign_core(snapshots.push(), core);
        assign_core(accumulators.push(), core);
        break;
      case PlanOp::Kind::kParIterBegin:
        merge_max_core(accumulators.top(), core);
        assign_core(core, snapshots.top());
        break;
      case PlanOp::Kind::kParEnd:
        merge_max_core(accumulators.top(), core);
        assign_core(core, accumulators.top());
        accumulators.pop();
        snapshots.pop();
        break;
    }
  }
}

// --- BatchEvaluator ----------------------------------------------------------

void BatchEvaluator::compute_canonical_pairs(const Plan& plan,
                                             std::span<const int> procs_soa,
                                             std::size_t count,
                                             const hnoc::NetworkModel& network) {
  const std::size_t q_count = plan.pairs_.size();
  canon_.resize(q_count * count);
  latency_.resize(q_count * count);
  bandwidth_.resize(q_count * count);

  // Open-addressing capacity: power of two >= 2 * Q, so probes stay short.
  std::size_t capacity = 8;
  while (capacity < 2 * q_count) capacity *= 2;
  if (probe_key_.size() != capacity) {
    probe_key_.assign(capacity, 0);
    probe_gen_.assign(capacity, 0);
    probe_pair_.assign(capacity, 0);
    generation_ = 0;
  }

  for (std::size_t i = 0; i < count; ++i) {
    ++generation_;
    if (generation_ == 0) {  // stamp wrapped: reset the table once
      std::fill(probe_gen_.begin(), probe_gen_.end(), 0u);
      generation_ = 1;
    }
    for (std::size_t q = 0; q < q_count; ++q) {
      const auto s = static_cast<std::size_t>(plan.pairs_[q].first);
      const auto d = static_cast<std::size_t>(plan.pairs_[q].second);
      const int ps = procs_soa[s * count + i];
      const int pd = procs_soa[d * count + i];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ps)) << 32) |
          static_cast<std::uint32_t>(pd);
      // SplitMix64 finaliser as the probe hash (same mixing as fp_mix).
      std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
      std::size_t slot = static_cast<std::size_t>(h) & (capacity - 1);
      int canonical = static_cast<int>(q);
      while (true) {
        if (probe_gen_[slot] != generation_) {
          probe_gen_[slot] = generation_;
          probe_key_[slot] = key;
          probe_pair_[slot] = static_cast<int>(q);
          break;
        }
        if (probe_key_[slot] == key) {
          canonical = probe_pair_[slot];
          break;
        }
        slot = (slot + 1) & (capacity - 1);
      }
      canon_[q * count + i] = canonical;
      const hnoc::LinkParams& link = network.link(ps, pd);
      latency_[q * count + i] = link.latency_s;
      bandwidth_[q * count + i] = link.bandwidth_bps;
    }
  }
}

void BatchEvaluator::evaluate(const Plan& plan, std::span<const int> procs_soa,
                              std::size_t count,
                              const hnoc::NetworkModel& network,
                              EstimateOptions options, std::span<double> out) {
  if (count == 0) return;
  const auto p = static_cast<std::size_t>(plan.num_procs_);
  support::require(procs_soa.size() == p * count,
                   "batch mapping block must be |slots| x count");
  support::require(out.size() >= count,
                   "batch output span smaller than the candidate count");
  for (int proc : procs_soa) {
    support::require(proc >= 0 && proc < network.size(),
                     "mapping references a processor outside the network");
  }

  // Speeds, gathered once per (slot, candidate).
  speed_.resize(p * count);
  for (std::size_t j = 0; j < p * count; ++j) {
    speed_[j] = network.speed(procs_soa[j]);
  }

  if (!plan.from_scheme_) {
    // The fallback bound, term for term per candidate (cf. Plan::evaluate).
    cost_.assign(p * count, 0.0);
    for (std::size_t a = 0; a < p; ++a) {
      for (std::size_t i = 0; i < count; ++i) {
        cost_[a * count + i] = plan.volumes_[a] / speed_[a * count + i];
      }
    }
    for (const PlanLink& l : plan.links_) {
      const auto s = static_cast<std::size_t>(l.src);
      const auto d = static_cast<std::size_t>(l.dst);
      for (std::size_t i = 0; i < count; ++i) {
        const int ps = procs_soa[s * count + i];
        const int pd = procs_soa[d * count + i];
        const double t = network.link(ps, pd).transfer_time(l.bytes);
        cost_[s * count + i] += t;
        cost_[d * count + i] += t;
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      double makespan = p == 0 ? 0.0 : cost_[i];
      for (std::size_t a = 1; a < p; ++a) {
        makespan = std::max(makespan, cost_[a * count + i]);
      }
      out[i] = makespan;
    }
    return;
  }

  compute_canonical_pairs(plan, procs_soa, count, network);
  const std::size_t q_count = plan.pairs_.size();
  time_.assign(p * count, 0.0);
  busy_.assign(q_count * count, 0.0);
  frame_depth_ = 0;

  const auto merge_rows = [](std::vector<double>& into,
                             const std::vector<double>& from) {
    for (std::size_t j = 0; j < into.size(); ++j) {
      into[j] = std::max(into[j], from[j]);
    }
  };

  for (std::size_t k = 0; k < plan.ops_.size(); ++k) {
    const PlanOp& op = plan.ops_[k];
    switch (op.kind) {
      case PlanOp::Kind::kCompute: {
        const std::size_t base = static_cast<std::size_t>(op.a) * count;
        for (std::size_t i = 0; i < count; ++i) {
          time_[base + i] += op.value / speed_[base + i];
        }
        break;
      }
      case PlanOp::Kind::kTransfer: {
        const std::size_t s = static_cast<std::size_t>(op.a) * count;
        const std::size_t d = static_cast<std::size_t>(op.b) * count;
        const std::size_t q = static_cast<std::size_t>(plan.op_pair_[k]) * count;
        for (std::size_t i = 0; i < count; ++i) {
          double& slot =
              busy_[static_cast<std::size_t>(canon_[q + i]) * count + i];
          const double start = std::max(time_[s + i], slot);
          const double finish =
              start + (latency_[q + i] + op.value / bandwidth_[q + i]);
          slot = finish;
          time_[s + i] += options.send_overhead_s;
          time_[d + i] = std::max(time_[d + i], finish) + options.recv_overhead_s;
        }
        break;
      }
      case PlanOp::Kind::kParBegin: {
        if (frame_depth_ == frames_.size()) frames_.emplace_back();
        Frame& f = frames_[frame_depth_++];
        f.snap_time.assign(time_.begin(), time_.end());
        f.snap_busy.assign(busy_.begin(), busy_.end());
        f.acc_time.assign(time_.begin(), time_.end());
        f.acc_busy.assign(busy_.begin(), busy_.end());
        break;
      }
      case PlanOp::Kind::kParIterBegin: {
        Frame& f = frames_[frame_depth_ - 1];
        merge_rows(f.acc_time, time_);
        merge_rows(f.acc_busy, busy_);
        time_.assign(f.snap_time.begin(), f.snap_time.end());
        busy_.assign(f.snap_busy.begin(), f.snap_busy.end());
        break;
      }
      case PlanOp::Kind::kParEnd: {
        Frame& f = frames_[frame_depth_ - 1];
        merge_rows(f.acc_time, time_);
        merge_rows(f.acc_busy, busy_);
        time_.swap(f.acc_time);
        busy_.swap(f.acc_busy);
        --frame_depth_;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    double makespan = p == 0 ? 0.0 : time_[i];
    for (std::size_t a = 1; a < p; ++a) {
      makespan = std::max(makespan, time_[a * count + i]);
    }
    out[i] = makespan;
  }
}

void Plan::evaluate_batch(std::span<const int> procs_soa, std::size_t count,
                          const hnoc::NetworkModel& network,
                          EstimateOptions options,
                          std::span<double> out) const {
  static thread_local BatchEvaluator evaluator;
  evaluator.evaluate(*this, procs_soa, count, network, options, out);
}

// --- PlanCache --------------------------------------------------------------

std::shared_ptr<const Plan> PlanCache::get(const pmdl::ModelInstance& instance,
                                           bool* compiled,
                                           double* compile_seconds) {
  const std::uint64_t fp = instance_fingerprint(instance);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(fp);
    if (it != table_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (compiled != nullptr) *compiled = false;
      if (compile_seconds != nullptr) *compile_seconds = 0.0;
      return it->second;
    }
  }
  // Compile outside the lock: a scheme replay can be expensive and parallel
  // first sights of different models must not serialise. Concurrent misses
  // of the same instance both compile; the first insert wins and the loser's
  // plan is dropped (plans of one instance are interchangeable).
  const auto begin = std::chrono::steady_clock::now();
  auto plan = std::make_shared<const Plan>(instance);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = table_.emplace(fp, plan);
    if (!inserted) plan = it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (compiled != nullptr) *compiled = true;
  if (compile_seconds != nullptr) *compile_seconds = seconds;
  return plan;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  table_.clear();
}

}  // namespace hmpi::est
