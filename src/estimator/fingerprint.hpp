// Stable fingerprints of model instances and estimate options.
//
// Shared by est::EstimateCache (memoised makespans) and est::PlanCache
// (compiled cost plans): both key on "which model instance is this?" without
// holding a reference to it. The combiner is the SplitMix64 finaliser (the
// mixing step of support::Rng), so fingerprints are identical across
// platforms and standard libraries.
//
// Two instances of the same model and parameters fingerprint identically
// (their schemes replay the same activations); instances that differ in any
// aggregate cannot collide short of a 64-bit hash collision.
#pragma once

#include <bit>
#include <cstdint>

#include "estimator/estimator.hpp"
#include "pmdl/model.hpp"

namespace hmpi::est {

/// SplitMix64 finaliser as a hash combiner.
inline std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t fp_mix_double(std::uint64_t h, double v) {
  return fp_mix(h, std::bit_cast<std::uint64_t>(v));
}

/// Fingerprint of the instance's aggregates: name, shape, parent, scheme
/// presence, node volumes, and link table. Everything an estimate depends on
/// besides the mapping, the network speeds, and the overhead options.
inline std::uint64_t instance_fingerprint(const pmdl::ModelInstance& instance) {
  std::uint64_t h = 0x484d5049ULL;  // "HMPI"
  for (char c : instance.model_name()) {
    h = fp_mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  for (long long d : instance.shape()) {
    h = fp_mix(h, static_cast<std::uint64_t>(d));
  }
  h = fp_mix(h, static_cast<std::uint64_t>(instance.parent_index()));
  h = fp_mix(h, instance.has_scheme() ? 1 : 0);
  for (double v : instance.node_volumes()) h = fp_mix_double(h, v);
  for (const auto& [pair, bytes] : instance.link_bytes()) {
    h = fp_mix(h, static_cast<std::uint64_t>(pair.first));
    h = fp_mix(h, static_cast<std::uint64_t>(pair.second));
    h = fp_mix_double(h, bytes);
  }
  return h;
}

/// Instance fingerprint extended with the overhead options — the
/// EstimateCache key component that does not change per lookup.
inline std::uint64_t estimate_fingerprint(const pmdl::ModelInstance& instance,
                                          EstimateOptions options) {
  std::uint64_t h = instance_fingerprint(instance);
  h = fp_mix_double(h, options.send_overhead_s);
  h = fp_mix_double(h, options.recv_overhead_s);
  return h;
}

}  // namespace hmpi::est
