#include "estimator/estimator.hpp"

#include <algorithm>

#include "coll/cost.hpp"
#include "support/error.hpp"

namespace hmpi::est {

namespace {

void check_mapping(const pmdl::ModelInstance& instance,
                   std::span<const int> mapping,
                   const hnoc::NetworkModel& network) {
  support::require(static_cast<int>(mapping.size()) == instance.size(),
                   "mapping size must equal the number of abstract processors");
  for (int p : mapping) {
    support::require(p >= 0 && p < network.size(),
                     "mapping references a processor outside the network");
  }
}

}  // namespace

TimelineMachine::TimelineMachine(const pmdl::ModelInstance& instance,
                                 std::span<const int> mapping,
                                 const hnoc::NetworkModel& network,
                                 EstimateOptions options)
    : instance_(&instance),
      mapping_(mapping.begin(), mapping.end()),
      network_(&network),
      options_(options) {
  check_mapping(instance, mapping, network);
  state_.time.assign(static_cast<std::size_t>(instance.size()), 0.0);
}

void TimelineMachine::merge_max(State& into, const State& from) {
  for (std::size_t i = 0; i < into.time.size(); ++i) {
    into.time[i] = std::max(into.time[i], from.time[i]);
  }
  for (const auto& [key, busy] : from.link_busy) {
    double& slot = into.link_busy[key];
    slot = std::max(slot, busy);
  }
}

void TimelineMachine::compute(std::span<const long long> coords, double percent) {
  const auto a = static_cast<std::size_t>(instance_->flatten(coords));
  const int proc = mapping_[a];
  const double volume = instance_->node_volumes()[a] * percent / 100.0;
  state_.time[a] += volume / network_->speed(proc);
}

void TimelineMachine::transfer(std::span<const long long> src,
                               std::span<const long long> dst, double percent) {
  const auto s = static_cast<std::size_t>(instance_->flatten(src));
  const auto d = static_cast<std::size_t>(instance_->flatten(dst));
  if (s == d) return;  // self transfer: no cost in the model

  double bytes = 0.0;
  auto it = instance_->link_bytes().find(
      {static_cast<int>(s), static_cast<int>(d)});
  if (it != instance_->link_bytes().end()) bytes = it->second * percent / 100.0;

  const int ps = mapping_[s];
  const int pd = mapping_[d];
  const hnoc::LinkParams& link = network_->link(ps, pd);

  double& busy = state_.link_busy[{ps, pd}];
  const double start = std::max(state_.time[s], busy);
  const double finish = start + link.transfer_time(bytes);
  busy = finish;
  state_.time[s] += options_.send_overhead_s;
  state_.time[d] = std::max(state_.time[d], finish) + options_.recv_overhead_s;
}

void TimelineMachine::par_begin() {
  snapshots_.push_back(state_);
  accumulators_.push_back(state_);
}

void TimelineMachine::par_iter_begin() {
  support::require(!snapshots_.empty(), "par_iter_begin outside a par block");
  merge_max(accumulators_.back(), state_);
  state_ = snapshots_.back();
}

void TimelineMachine::par_end() {
  support::require(!snapshots_.empty(), "par_end outside a par block");
  merge_max(accumulators_.back(), state_);
  state_ = std::move(accumulators_.back());
  accumulators_.pop_back();
  snapshots_.pop_back();
}

double TimelineMachine::makespan() const {
  return state_.time.empty()
             ? 0.0
             : *std::max_element(state_.time.begin(), state_.time.end());
}

double estimate_time(const pmdl::ModelInstance& instance,
                     std::span<const int> mapping,
                     const hnoc::NetworkModel& network,
                     EstimateOptions options) {
  check_mapping(instance, mapping, network);

  if (instance.has_scheme()) {
    TimelineMachine machine(instance, mapping, network, options);
    instance.run_scheme(machine);
    return machine.makespan();
  }

  // No scheme: bound each processor by its computation plus every transfer it
  // participates in, run back to back.
  std::vector<double> cost(static_cast<std::size_t>(instance.size()), 0.0);
  for (int a = 0; a < instance.size(); ++a) {
    cost[static_cast<std::size_t>(a)] =
        instance.node_volume(a) /
        network.speed(mapping[static_cast<std::size_t>(a)]);
  }
  for (const auto& [pair, bytes] : instance.link_bytes()) {
    const int ps = mapping[static_cast<std::size_t>(pair.first)];
    const int pd = mapping[static_cast<std::size_t>(pair.second)];
    const double t = network.link(ps, pd).transfer_time(bytes);
    cost[static_cast<std::size_t>(pair.first)] += t;
    cost[static_cast<std::size_t>(pair.second)] += t;
  }
  return cost.empty() ? 0.0 : *std::max_element(cost.begin(), cost.end());
}

double collective_time(coll::CollOp op, int algo,
                       std::span<const int> member_procs, std::size_t bytes,
                       const hnoc::NetworkModel& network,
                       EstimateOptions options) {
  if (algo == 0) algo = coll::legacy_default(op);
  coll::CostOptions cost;
  cost.send_overhead_s = options.send_overhead_s;
  cost.recv_overhead_s = options.recv_overhead_s;
  return coll::collective_cost(op, algo, member_procs, bytes, network, cost);
}

}  // namespace hmpi::est
