// Compiled cost IR: the estimator's fast path (docs/estimator.md).
//
// est::estimate_time replays the model's scheme through the pmdl
// tree-walking evaluator for EVERY candidate arrangement the mappers score —
// thousands of Env copies, Value boxes, and AST dispatches per selection.
// But a scheme's activation stream cannot depend on the mapping: ScheduleSink
// has no feedback channel, and native scheme functions see only model
// parameters. So the stream can be recorded ONCE and re-priced cheaply:
//
//   Plan          — the model instance lowered to a flat, topologically
//                   ordered op list (compute/transfer/par markers) with the
//                   volume and byte factors pre-resolved per op, plus the
//                   (src, dst, bytes) link terms and per-processor incidence
//                   lists of the no-scheme fallback. Plan::evaluate walks the
//                   array with the exact floating-point operations of
//                   TimelineMachine — compiled and interpreted estimates are
//                   bit-identical by construction.
//   DeltaEvaluator — incremental re-estimation for the hill climbers: when a
//                   move changes the processors of a few abstract slots, only
//                   the op-stream suffix from the first op touching an
//                   affected slot is replayed (from a checkpointed prefix
//                   state), O(affected) instead of O(model). Exact: a
//                   checkpoint before that op is reachable only through ops
//                   whose endpoints kept their processors, so its state is
//                   identical under both mappings and the suffix replay
//                   performs the same float ops a full evaluation would.
//   BatchEvaluator — structure-of-arrays pricing of a whole candidate set in
//                   one pass: the op list is walked once, each op's inner
//                   loop runs contiguously over all candidates (slot-major
//                   speed/time/busy arrays, no per-candidate allocation).
//                   Busy state is kept per *abstract* transfer pair — O(Q)
//                   slots instead of the P x P table Plan::evaluate zeroes —
//                   with per-candidate aliasing of pairs that land on the
//                   same physical link, so P=1000 costs the same per
//                   candidate as P=9. Bit-identical to Plan::evaluate.
//   PlanCache     — compile-once memo keyed like EstimateCache (instance
//                   fingerprint); plans are mapping- and network-independent,
//                   so recon never invalidates them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "estimator/estimator.hpp"
#include "hnoc/network_model.hpp"
#include "pmdl/model.hpp"

namespace hmpi::est {

/// One lowered scheme activation. `value` is pre-multiplied by the
/// activation's percentage: computation units for kCompute, bytes for
/// kTransfer (self transfers are dropped at compile time, exactly as
/// TimelineMachine drops them at run time).
struct PlanOp {
  enum class Kind : std::uint8_t {
    kCompute,       ///< time[a] += value / speed(mapping[a])
    kTransfer,      ///< timeline transfer of `value` bytes a -> b
    kParBegin,      ///< snapshot the timeline (par block entry)
    kParIterBegin,  ///< fold the iteration into the max, rewind to snapshot
    kParEnd,        ///< fold and adopt the element-wise max
  };
  Kind kind = Kind::kCompute;
  int a = -1;        ///< Abstract processor (compute) / source (transfer).
  int b = -1;        ///< Transfer destination.
  double value = 0;  ///< Units (compute) or bytes (transfer), percent applied.
};

/// One directed link term of the no-scheme fallback cost.
struct PlanLink {
  int src = -1;
  int dst = -1;
  double bytes = 0.0;
};

/// A model instance lowered to the flat cost IR (see file comment).
/// Immutable after construction; safe to share across search threads.
class Plan {
 public:
  /// Lowers `instance`: replays the scheme once into the op list (or, for
  /// scheme-less instances, materialises the fallback link terms and
  /// incidence lists). The instance itself is not retained.
  explicit Plan(const pmdl::ModelInstance& instance);

  /// Abstract processors of the instance.
  int size() const noexcept { return num_procs_; }

  /// Whether the IR came from a scheme (vs the fallback aggregate bound).
  bool from_scheme() const noexcept { return from_scheme_; }

  /// Cost of one full evaluation, in IR operations (delta savings are
  /// reported against this).
  std::size_t op_count() const noexcept {
    return from_scheme_ ? ops_.size() : volumes_.size() + 2 * links_.size();
  }

  std::span<const PlanOp> ops() const noexcept { return ops_; }
  std::span<const PlanLink> links() const noexcept { return links_; }

  /// Index of the first op touching abstract processor `a`
  /// (Plan::kNeverTouched when no op does).
  std::size_t first_touch(int a) const {
    return first_touch_[static_cast<std::size_t>(a)];
  }
  static constexpr std::size_t kNeverTouched = static_cast<std::size_t>(-1);

  /// Predicted execution time of the plan under `mapping` — bit-identical to
  /// est::estimate_time on the instance this plan was compiled from.
  double evaluate(std::span<const int> mapping,
                  const hnoc::NetworkModel& network,
                  EstimateOptions options = EstimateOptions()) const;

  /// Prices `count` candidate mappings in one structure-of-arrays pass.
  /// `procs_soa` is slot-major: procs_soa[a * count + i] is the physical
  /// processor of abstract slot `a` in candidate `i`. out[i] is
  /// bit-identical to evaluate() on candidate i (see BatchEvaluator).
  /// Reuses a thread-local BatchEvaluator; callers in a hot loop should own
  /// one directly.
  void evaluate_batch(std::span<const int> procs_soa, std::size_t count,
                      const hnoc::NetworkModel& network,
                      EstimateOptions options, std::span<double> out) const;

  /// Distinct abstract (src, dst) transfer pairs, in first-appearance order.
  /// The batch evaluator keys its compact busy slots by these.
  std::span<const std::pair<int, int>> transfer_pairs() const noexcept {
    return pairs_;
  }

 private:
  friend class DeltaEvaluator;
  friend class BatchEvaluator;

  int num_procs_ = 0;
  bool from_scheme_ = false;

  // Scheme IR.
  std::vector<PlanOp> ops_;
  std::vector<std::size_t> first_touch_;  // per abstract processor
  std::size_t checkpoint_stride_ = 1;     // DeltaEvaluator checkpoint spacing
  std::vector<std::pair<int, int>> pairs_;  // distinct abstract transfer pairs
  std::vector<int> op_pair_;  // per op: index into pairs_ (-1 off transfers)

  // Fallback IR (also used for aggregate queries on scheme plans).
  std::vector<double> volumes_;            // per abstract processor
  std::vector<PlanLink> links_;            // link_bytes map order (sorted)
  std::vector<std::vector<int>> incident_; // per proc: link indices, sorted,
                                           // self links listed twice
};

/// Incremental re-estimation over a Plan (see file comment). Not
/// thread-safe; each search thread owns its own evaluator. The plan and the
/// network must outlive it. Usage:
///
///   DeltaEvaluator delta(plan, network, options);
///   double t = delta.reset(mapping);            // full evaluation
///   delta.stage({{slot_a, proc_x}, {slot_b, proc_y}});
///   double moved = delta.replay();              // O(affected suffix)
///   if (keep) delta.commit();                   // adopt the staged mapping
///
/// The exact-match invariant — replay() == Plan::evaluate(staged mapping)
/// bit for bit — is what lets the hill climbers take this path without
/// perturbing their search trajectory (tests/estimator/plan_test.cpp).
class DeltaEvaluator {
 public:
  DeltaEvaluator(const Plan& plan, const hnoc::NetworkModel& network,
                 EstimateOptions options);

  /// One staged slot change: abstract `slot` moves to physical `processor`.
  struct Move {
    int slot = -1;
    int processor = -1;
  };

  /// Full evaluation of `mapping`; rebuilds the checkpoints. Returns the
  /// makespan (the committed value until the next commit()).
  double reset(std::span<const int> mapping);

  /// Stages the committed mapping with `moves` applied (later moves win on
  /// the same slot) and returns the staged mapping. Does not evaluate.
  std::span<const int> stage(std::span<const Move> moves);

  /// Exact estimate of the staged mapping by suffix replay. May be skipped
  /// when the staged value is already known (set_staged_value).
  double replay();

  /// Records an externally known value (e.g. from an EstimateCache hit) for
  /// the staged mapping; commit() adopts it without replaying anything.
  void set_staged_value(double seconds);

  /// Adopts the staged mapping and value as the committed state. O(1) when
  /// the proposal was priced (replay() or set_staged_value()): the staged
  /// value is bit-exact by the invariant, and checkpoints past the first
  /// touched op — stale under the new mapping — are dropped lazily rather
  /// than re-recorded here. Later replays clamp to the surviving grid and
  /// amortise one full rebuild against the accumulated clamp cost, so
  /// accept-heavy searches (annealing) never pay a per-accept suffix re-run.
  void commit();

  double committed_time() const noexcept { return committed_time_; }
  std::span<const int> mapping() const noexcept { return mapping_; }
  const Plan& plan() const noexcept { return *plan_; }

  /// Cumulative accounting (SearchStats / est.delta.* metrics).
  long long replays() const noexcept { return replays_; }
  long long ops_replayed() const noexcept { return ops_replayed_; }

 private:
  struct Core {
    std::vector<double> time;  // per abstract processor
    std::vector<double> busy;  // dense per physical (src, dst) pair
  };
  /// Reusable stack of Cores (par nesting) that keeps capacity across
  /// evaluations instead of reallocating per par block.
  struct Stack {
    std::vector<Core> pool;
    std::size_t depth = 0;
    void clear() noexcept { depth = 0; }
    Core& push();
    Core& top() { return pool[depth - 1]; }
    void pop() noexcept { --depth; }
  };
  struct Checkpoint {
    std::size_t op_index = 0;
    Core core;
    std::vector<Core> snapshots;
    std::vector<Core> accumulators;
  };

  static void assign_core(Core& into, const Core& from);
  static void merge_max_core(Core& into, const Core& from);
  double makespan_of(const Core& core) const;

  /// Runs ops [from, to) on (core, stacks) under `mapping`; when `record` is
  /// non-null, appends a checkpoint at every stride-aligned index > from.
  void run_ops(std::size_t from, std::size_t to, std::span<const int> mapping,
               Core& core, Stack& snapshots, Stack& accumulators,
               std::vector<Checkpoint>* record);

  /// No-scheme fallback: recompute the per-processor costs of `affected`
  /// under `mapping` into `cost` (other entries must already hold the
  /// committed values).
  void recompute_costs(std::span<const int> affected,
                       std::span<const int> mapping, std::vector<double>& cost);

  double replay_scheme();
  double replay_fallback();

  /// Re-records the checkpoint grid over the stale suffix under the
  /// committed mapping (commit() truncates lazily; see stale_ops_).
  void rebuild_checkpoints();

  const Plan* plan_;
  const hnoc::NetworkModel* network_;
  EstimateOptions options_;
  int num_links_ = 0;  // physical pairs = network size squared

  // Committed state.
  std::vector<int> mapping_;
  double committed_time_ = 0.0;
  Core committed_;                       // scheme plans
  std::vector<double> committed_cost_;   // fallback plans
  std::vector<Checkpoint> checkpoints_;  // scheme plans; stride-aligned

  // Staged proposal.
  std::vector<int> staged_mapping_;
  std::vector<int> staged_slots_;        // slots whose processor changed
  std::size_t staged_first_ = Plan::kNeverTouched;
  double staged_value_ = 0.0;
  bool staged_ = false;
  bool staged_priced_ = false;  // replay()/set_staged_value() ran for it
  bool scratch_valid_ = false;

  // Scratch (reused across proposals).
  Core scratch_;
  Stack scratch_snapshots_;
  Stack scratch_accumulators_;
  std::vector<Checkpoint> scratch_tail_;
  std::vector<double> scratch_cost_;
  std::vector<int> affected_;
  std::vector<char> affected_mark_;

  long long replays_ = 0;
  long long ops_replayed_ = 0;
  // Extra ops replayed because commits truncated the checkpoint grid; once
  // this exceeds one full pass, rebuilding the grid is the cheaper steady
  // state (rebuild_checkpoints).
  long long stale_ops_ = 0;
};

/// Structure-of-arrays batch pricing of a candidate set (see file comment).
/// Holds all scratch across calls, so a search loop pays zero allocation
/// once the high-water batch size is reached. Not thread-safe; each search
/// thread owns its own evaluator (like DeltaEvaluator).
///
/// Exactness: per candidate, the op walk performs the identical sequence of
/// float operations as Plan::evaluate — compute divides by the same speed,
/// a transfer's busy slot is shared between two ops iff they land on the
/// same physical (src, dst) pair (the per-candidate canonical-pair aliasing
/// reproduces the dense table's physical keying), and the par-block merges
/// over the compact slots agree with the dense merge because every slot the
/// batch never touches stays 0.0 on both sides (max(0, 0) == 0) and the
/// makespan reads only the time vector. Pinned by
/// tests/estimator/batch_test.cpp.
class BatchEvaluator {
 public:
  BatchEvaluator() = default;

  /// Prices `count` candidates of `plan` laid out slot-major
  /// (procs_soa[a * count + i], see Plan::evaluate_batch) into out[0..count).
  void evaluate(const Plan& plan, std::span<const int> procs_soa,
                std::size_t count, const hnoc::NetworkModel& network,
                EstimateOptions options, std::span<double> out);

 private:
  /// Per-candidate canonical busy slot of every abstract pair: two pairs
  /// alias iff they map to the same physical (src, dst) under the candidate.
  void compute_canonical_pairs(const Plan& plan,
                               std::span<const int> procs_soa,
                               std::size_t count,
                               const hnoc::NetworkModel& network);

  // Slot-major scratch, all sized (rows x count).
  std::vector<double> speed_;      // per abstract slot: speed of its processor
  std::vector<double> time_;       // per abstract slot
  std::vector<double> busy_;       // per abstract transfer pair (canonical)
  std::vector<int> canon_;         // per pair: canonical pair index
  std::vector<double> latency_;    // per pair: physical link latency
  std::vector<double> bandwidth_;  // per pair: physical link bandwidth
  std::vector<double> cost_;       // fallback plans: per abstract slot

  // Par-block frames (snapshot + running max), pooled across calls.
  struct Frame {
    std::vector<double> snap_time, snap_busy;
    std::vector<double> acc_time, acc_busy;
  };
  std::vector<Frame> frames_;
  std::size_t frame_depth_ = 0;

  // Open-addressing scratch of compute_canonical_pairs (generation-stamped
  // so it never needs clearing between candidates).
  std::vector<std::uint64_t> probe_key_;
  std::vector<std::uint32_t> probe_gen_;
  std::vector<int> probe_pair_;
  std::uint32_t generation_ = 0;
};

/// Compile-once memo: instance fingerprint -> shared immutable Plan.
/// Thread-safe; shared by every process's searches like the EstimateCache.
/// Plans depend only on the instance (not on mapping, speeds, or overheads),
/// so entries never go stale — recon does not invalidate them.
class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for `instance`, compiling it on first sight. Sets *compiled
  /// (when non-null) to whether this call did the compile, and
  /// *compile_seconds to how long it took (0 on a hit).
  std::shared_ptr<const Plan> get(const pmdl::ModelInstance& instance,
                                  bool* compiled = nullptr,
                                  double* compile_seconds = nullptr);

  std::size_t size() const;
  void clear();

  /// Cumulative lookup counters (hits + misses = lookups; a miss compiled).
  long long hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  long long misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Plan>> table_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
};

}  // namespace hmpi::est
