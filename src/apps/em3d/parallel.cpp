#include "apps/em3d/parallel.hpp"

#include <vector>

#include "support/error.hpp"

namespace hmpi::apps::em3d {

namespace {

constexpr int kTagHPhase = 11;
constexpr int kTagEPhase = 12;

/// Exchanges the boundary values of one phase. `use_h` selects which field
/// array is being shipped (H values before the E update, E values before the
/// H update).
void exchange_boundaries(const mp::Comm& comm, System& system, int me,
                         bool use_h, WorkMode mode) {
  const int p = comm.size();
  const auto& needed = use_h ? system.remote_h_needed : system.remote_e_needed;
  const int tag = use_h ? kTagHPhase : kTagEPhase;

  // Send everything first (sends are buffered), then receive.
  for (int dst = 0; dst < p; ++dst) {
    if (dst == me) continue;
    const auto& indices =
        needed(static_cast<std::size_t>(dst), static_cast<std::size_t>(me));
    if (indices.empty()) continue;
    if (mode == WorkMode::kVirtualOnly) {
      comm.send_placeholder(indices.size() * sizeof(double), dst, tag);
      continue;
    }
    const Subbody& mine = system.bodies[static_cast<std::size_t>(me)];
    const auto& values = use_h ? mine.h_values : mine.e_values;
    std::vector<double> packed;
    packed.reserve(indices.size());
    for (int idx : indices) packed.push_back(values[static_cast<std::size_t>(idx)]);
    comm.send(std::span<const double>(packed), dst, tag);
  }

  for (int src = 0; src < p; ++src) {
    if (src == me) continue;
    const auto& indices =
        needed(static_cast<std::size_t>(me), static_cast<std::size_t>(src));
    if (indices.empty()) continue;
    if (mode == WorkMode::kVirtualOnly) {
      comm.recv_placeholder(src, tag);
      continue;
    }
    std::vector<double> packed(indices.size());
    comm.recv(std::span<double>(packed), src, tag);
    Subbody& theirs = system.bodies[static_cast<std::size_t>(src)];
    auto& values = use_h ? theirs.h_values : theirs.e_values;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      values[static_cast<std::size_t>(indices[i])] = packed[i];
    }
  }
}

/// Updates one field array of the owned subbody and charges the virtual
/// cost (one benchmark unit per node).
void compute_phase(mp::Proc& proc, System& system, int me, bool update_e,
                   WorkMode mode) {
  Subbody& body = system.bodies[static_cast<std::size_t>(me)];
  auto& values = update_e ? body.e_values : body.h_values;
  if (mode == WorkMode::kReal) {
    const auto& deps = update_e ? body.e_deps : body.h_deps;
    const auto& weights = update_e ? body.e_weights : body.h_weights;
    for (std::size_t i = 0; i < values.size(); ++i) {
      double v = 0.0;
      for (std::size_t d = 0; d < deps[i].size(); ++d) {
        const NodeRef& ref = deps[i][d];
        const Subbody& target = system.bodies[static_cast<std::size_t>(ref.subbody)];
        const auto& source = update_e ? target.h_values : target.e_values;
        v += weights[i][d] * source[static_cast<std::size_t>(ref.index)];
      }
      values[i] = v;
    }
  }
  proc.compute(static_cast<double>(values.size()));
}

}  // namespace

ParallelResult run_parallel(const mp::Comm& comm, System system, int iterations,
                            WorkMode mode) {
  support::require(comm.valid(), "run_parallel needs a valid communicator");
  support::require(comm.size() == system.subbody_count(),
                   "communicator size must equal the subbody count");
  support::require(iterations >= 0, "iterations must be non-negative");

  const int me = comm.rank();
  mp::Proc& proc = comm.proc();

  // Synchronise, then measure the algorithm proper (the paper's figures
  // report algorithm execution time).
  comm.barrier();
  const double start = proc.clock();

  for (int it = 0; it < iterations; ++it) {
    exchange_boundaries(comm, system, me, /*use_h=*/true, mode);
    compute_phase(proc, system, me, /*update_e=*/true, mode);
    exchange_boundaries(comm, system, me, /*use_h=*/false, mode);
    compute_phase(proc, system, me, /*update_e=*/false, mode);
  }

  // Makespan: everyone agrees on the maximum elapsed time.
  double elapsed = proc.clock() - start;
  double makespan = 0.0;
  comm.allreduce(std::span<const double>(&elapsed, 1),
                 std::span<double>(&makespan, 1),
                 [](double a, double b) { return a > b ? a : b; });

  ParallelResult result;
  result.algorithm_time = makespan;
  if (mode == WorkMode::kReal) {
    // Placement-independent checksum: sum of owned-subbody values.
    const Subbody& mine = system.bodies[static_cast<std::size_t>(me)];
    double local = 0.0;
    for (double v : mine.e_values) local += v;
    for (double v : mine.h_values) local += v;
    double total = 0.0;
    comm.allreduce(std::span<const double>(&local, 1),
                   std::span<double>(&total, 1),
                   [](double a, double b) { return a + b; });
    result.checksum = total;
  }
  return result;
}

}  // namespace hmpi::apps::em3d
