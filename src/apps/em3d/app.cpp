#include "apps/em3d/app.hpp"

#include <mutex>

#include "apps/em3d/parallel.hpp"
#include "hmpi/runtime.hpp"
#include "mpsim/comm.hpp"
#include "support/error.hpp"

namespace hmpi::apps::em3d {

pmdl::Model performance_model() {
  // Verbatim from the paper's Figure 4.
  return pmdl::Model::from_source(R"(
algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
  coord I=p;
  node {I>=0: bench*(d[I]/k);};
  link (L=p) {
    I>=0 && I!=L && (dep[I][L] > 0) :
      length*(dep[I][L]*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int current, owner, remote;
    par (owner = 0; owner < p; owner++)
        par (remote = 0; remote < p; remote++)
             if ((owner != remote) && (dep[owner][remote] > 0))
                100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
};
)");
}

std::vector<pmdl::ParamValue> model_parameters(const System& system, int k) {
  return {pmdl::scalar(system.subbody_count()), pmdl::scalar(k),
          pmdl::array(system.node_counts()), pmdl::array(system.dep_flat())};
}

DriverResult run_mpi(const hnoc::Cluster& cluster, const GeneratorConfig& config,
                     int iterations, WorkMode mode) {
  const System system = generate(config);
  const int p = system.subbody_count();
  support::require(p <= cluster.size(),
                   "more subbodies than machines in the cluster");

  DriverResult result;
  std::mutex result_mutex;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    // Figure 3: ranks [0, p) split off and execute the algorithm; the
    // subbody index is simply the rank.
    mp::Comm world = proc.world_comm();
    const bool executing = proc.rank() < p;
    mp::Comm em3dcomm =
        world.split(executing ? 1 : mp::kUndefinedColor, proc.rank());
    if (!executing) return;

    ParallelResult parallel = run_parallel(em3dcomm, system, iterations, mode);
    if (proc.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.algorithm_time = parallel.algorithm_time;
      result.total_time = proc.clock();
      result.checksum = parallel.checksum;
      result.placement.resize(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        result.placement[static_cast<std::size_t>(i)] = i;
      }
    }
  });
  return result;
}

DriverResult run_hmpi(const hnoc::Cluster& cluster, const GeneratorConfig& config,
                      int iterations, WorkMode mode, int k) {
  const System system = generate(config);
  const int p = system.subbody_count();
  support::require(p <= cluster.size(),
                   "more subbodies than machines in the cluster");

  DriverResult result;
  std::mutex result_mutex;

  pmdl::Model model = performance_model();
  const std::vector<pmdl::ParamValue> params = model_parameters(system, k);

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    // Figure 5 lifecycle.
    Runtime rt(proc);

    // HMPI_Recon with the serial EM3D benchmark (k representative nodes).
    rt.recon([&](mp::Proc& q) { recon_benchmark(q, system, k); });

    auto group = rt.group_create(model, params);
    if (group) {
      ParallelResult parallel =
          run_parallel(group->comm(), system, iterations, mode);
      if (rt.is_host()) {
        // Close the prediction-ledger entry: the model describes one
        // iteration, so the measured time is split over the iterations.
        rt.group_observed(*group, parallel.algorithm_time, iterations);
        std::lock_guard<std::mutex> lock(result_mutex);
        result.algorithm_time = parallel.algorithm_time;
        result.checksum = parallel.checksum;
        // The model describes one iteration; scale the prediction.
        result.predicted_time = group->estimated_time() * iterations;
        result.placement.resize(static_cast<std::size_t>(p));
        for (int a = 0; a < p; ++a) {
          result.placement[static_cast<std::size_t>(a)] =
              proc.world().processor_of(group->members()[static_cast<std::size_t>(a)]);
        }
      }
      rt.group_free(*group);
    }
    rt.finalize();
    if (rt.is_host()) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.total_time = proc.clock();
    }
  });
  return result;
}

}  // namespace hmpi::apps::em3d
