#include "apps/em3d/body.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::apps::em3d {

std::vector<long long> System::node_counts() const {
  std::vector<long long> counts;
  counts.reserve(bodies.size());
  for (const Subbody& b : bodies) counts.push_back(b.nodes());
  return counts;
}

std::vector<long long> System::dep_flat() const {
  std::vector<long long> flat;
  flat.reserve(dep.size());
  for (std::size_t i = 0; i < dep.rows(); ++i) {
    for (std::size_t j = 0; j < dep.cols(); ++j) flat.push_back(dep(i, j));
  }
  return flat;
}

double System::checksum() const {
  double sum = 0.0;
  for (const Subbody& b : bodies) {
    for (double v : b.e_values) sum += v;
    for (double v : b.h_values) sum += v;
  }
  return sum;
}

namespace {

/// Picks the dependency targets for one field array.
void wire_dependencies(System& system, int subbody, bool for_e_nodes,
                       const GeneratorConfig& config, support::Rng& rng) {
  const int p = system.subbody_count();
  Subbody& body = system.bodies[static_cast<std::size_t>(subbody)];
  auto& deps = for_e_nodes ? body.e_deps : body.h_deps;
  auto& weights = for_e_nodes ? body.e_weights : body.h_weights;
  const std::size_t count =
      for_e_nodes ? body.e_values.size() : body.h_values.size();
  deps.resize(count);
  weights.resize(count);

  for (std::size_t node = 0; node < count; ++node) {
    for (int d = 0; d < config.degree; ++d) {
      int target_body = subbody;
      if (p > 1 && rng.next_double() < config.remote_fraction) {
        target_body = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p - 1)));
        if (target_body >= subbody) ++target_body;  // skip self
      }
      const Subbody& target = system.bodies[static_cast<std::size_t>(target_body)];
      // E nodes read H values and vice versa (bipartite).
      const std::size_t pool =
          for_e_nodes ? target.h_values.size() : target.e_values.size();
      if (pool == 0) continue;
      const int idx = static_cast<int>(rng.next_below(pool));
      deps[node].push_back({target_body, idx});
      weights[node].push_back(rng.next_double_in(0.1, 1.0) / config.degree);
    }
  }
}

}  // namespace

System generate(const GeneratorConfig& config) {
  support::require(!config.nodes_per_subbody.empty(),
                   "generator needs at least one subbody");
  support::require(config.degree > 0, "degree must be positive");
  support::require(config.remote_fraction >= 0.0 && config.remote_fraction <= 1.0,
                   "remote_fraction must be in [0, 1]");
  for (int n : config.nodes_per_subbody) {
    support::require(n >= 2, "each subbody needs at least 2 nodes");
  }

  support::Rng rng(config.seed);
  System system;
  const int p = static_cast<int>(config.nodes_per_subbody.size());

  // Allocate field values first (so dependency targets exist everywhere).
  system.bodies.resize(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    const int nodes = config.nodes_per_subbody[static_cast<std::size_t>(i)];
    const int e_count = nodes / 2;
    const int h_count = nodes - e_count;
    Subbody& body = system.bodies[static_cast<std::size_t>(i)];
    body.e_values.resize(static_cast<std::size_t>(e_count));
    body.h_values.resize(static_cast<std::size_t>(h_count));
    for (double& v : body.e_values) v = rng.next_double_in(-1.0, 1.0);
    for (double& v : body.h_values) v = rng.next_double_in(-1.0, 1.0);
  }

  for (int i = 0; i < p; ++i) {
    wire_dependencies(system, i, /*for_e_nodes=*/true, config, rng);
    wire_dependencies(system, i, /*for_e_nodes=*/false, config, rng);
  }

  // Summarise remote needs: which foreign node indices each subbody reads.
  system.remote_h_needed =
      support::Matrix<std::vector<int>>(static_cast<std::size_t>(p),
                                        static_cast<std::size_t>(p));
  system.remote_e_needed =
      support::Matrix<std::vector<int>>(static_cast<std::size_t>(p),
                                        static_cast<std::size_t>(p));
  system.dep = support::Matrix<int>(static_cast<std::size_t>(p),
                                    static_cast<std::size_t>(p), 0);

  for (int i = 0; i < p; ++i) {
    std::vector<std::set<int>> h_needed(static_cast<std::size_t>(p));
    std::vector<std::set<int>> e_needed(static_cast<std::size_t>(p));
    const Subbody& body = system.bodies[static_cast<std::size_t>(i)];
    for (const auto& refs : body.e_deps) {
      for (const NodeRef& ref : refs) {
        if (ref.subbody != i) {
          h_needed[static_cast<std::size_t>(ref.subbody)].insert(ref.index);
        }
      }
    }
    for (const auto& refs : body.h_deps) {
      for (const NodeRef& ref : refs) {
        if (ref.subbody != i) {
          e_needed[static_cast<std::size_t>(ref.subbody)].insert(ref.index);
        }
      }
    }
    for (int j = 0; j < p; ++j) {
      auto& hs = system.remote_h_needed(static_cast<std::size_t>(i),
                                        static_cast<std::size_t>(j));
      auto& es = system.remote_e_needed(static_cast<std::size_t>(i),
                                        static_cast<std::size_t>(j));
      hs.assign(h_needed[static_cast<std::size_t>(j)].begin(),
                h_needed[static_cast<std::size_t>(j)].end());
      es.assign(e_needed[static_cast<std::size_t>(j)].begin(),
                e_needed[static_cast<std::size_t>(j)].end());
      system.dep(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          static_cast<int>(hs.size() + es.size());
    }
  }
  return system;
}

}  // namespace hmpi::apps::em3d
