// EM3D problem representation and workload generator (paper §3).
//
// The application simulates the interaction of electric and magnetic fields
// on a three-dimensional object decomposed into a few large subbodies. Each
// subbody holds E nodes (electric field values) and H nodes (magnetic field
// values); dependencies form a bipartite graph (E nodes depend only on H
// nodes and vice versa). The decomposition keeps most dependencies local;
// the few remote dependencies define the communication pattern, summarised
// by the dep matrix used as the performance-model parameter:
// dep[i][j] = number of nodal values of subbody j that subbody i needs.
#pragma once

#include <cstdint>
#include <vector>

#include "support/matrix.hpp"

namespace hmpi::apps::em3d {

/// Reference to a node in another (or the same) subbody.
struct NodeRef {
  int subbody = 0;
  int index = 0;  ///< Index within the referenced field array.
};

/// One subbody of the decomposed object.
struct Subbody {
  /// Field values; e_values[i] is E node i, h_values[i] is H node i.
  std::vector<double> e_values;
  std::vector<double> h_values;

  /// Bipartite dependencies: e_deps[i] lists the H nodes E node i reads,
  /// h_deps[i] lists the E nodes H node i reads. Parallel arrays of weights.
  std::vector<std::vector<NodeRef>> e_deps;
  std::vector<std::vector<double>> e_weights;
  std::vector<std::vector<NodeRef>> h_deps;
  std::vector<std::vector<double>> h_weights;

  int nodes() const {
    return static_cast<int>(e_values.size() + h_values.size());
  }
};

/// The whole decomposed system plus its communication summary.
struct System {
  std::vector<Subbody> bodies;

  /// dep(i, j) = nodal values of subbody j needed by subbody i per iteration
  /// (E-phase H values + H-phase E values) — the model's dep parameter.
  support::Matrix<int> dep;

  /// For the exchange phases: remote_h_needed(i, j) lists the H-node indices
  /// of subbody j that subbody i's E nodes read (sorted, unique); likewise
  /// remote_e_needed for the H phase.
  support::Matrix<std::vector<int>> remote_h_needed;
  support::Matrix<std::vector<int>> remote_e_needed;

  int subbody_count() const { return static_cast<int>(bodies.size()); }

  /// Node counts per subbody (the model's d parameter).
  std::vector<long long> node_counts() const;

  /// Flattened dep matrix, row-major (the model's dep parameter).
  std::vector<long long> dep_flat() const;

  /// Sum of all field values (placement-independent result check).
  double checksum() const;
};

/// Generator parameters.
struct GeneratorConfig {
  /// Node count per subbody (E and H nodes are split evenly). Sizes may
  /// differ wildly across subbodies — that is what makes EM3D irregular.
  std::vector<int> nodes_per_subbody;
  /// Dependencies per node (bipartite out-degree).
  int degree = 5;
  /// Fraction of dependencies that reference a different subbody.
  double remote_fraction = 0.05;
  std::uint64_t seed = 1;
};

/// Builds a deterministic EM3D system (same seed => same system).
System generate(const GeneratorConfig& config);

}  // namespace hmpi::apps::em3d
