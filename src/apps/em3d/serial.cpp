#include "apps/em3d/serial.hpp"

#include "support/error.hpp"

namespace hmpi::apps::em3d {

namespace {

double gather_value(const System& system, const NodeRef& ref, bool from_h) {
  const Subbody& body = system.bodies[static_cast<std::size_t>(ref.subbody)];
  const auto& values = from_h ? body.h_values : body.e_values;
  return values[static_cast<std::size_t>(ref.index)];
}

}  // namespace

void serial_iteration(System& system) {
  // E phase: every E node from current H values.
  for (Subbody& body : system.bodies) {
    for (std::size_t i = 0; i < body.e_values.size(); ++i) {
      double v = 0.0;
      const auto& deps = body.e_deps[i];
      const auto& weights = body.e_weights[i];
      for (std::size_t d = 0; d < deps.size(); ++d) {
        v += weights[d] * gather_value(system, deps[d], /*from_h=*/true);
      }
      body.e_values[i] = v;
    }
  }
  // H phase: every H node from the new E values.
  for (Subbody& body : system.bodies) {
    for (std::size_t i = 0; i < body.h_values.size(); ++i) {
      double v = 0.0;
      const auto& deps = body.h_deps[i];
      const auto& weights = body.h_weights[i];
      for (std::size_t d = 0; d < deps.size(); ++d) {
        v += weights[d] * gather_value(system, deps[d], /*from_h=*/false);
      }
      body.h_values[i] = v;
    }
  }
}

double serial_run(System system, int iterations) {
  support::require(iterations >= 0, "iterations must be non-negative");
  for (int i = 0; i < iterations; ++i) serial_iteration(system);
  return system.checksum();
}

void recon_benchmark(mp::Proc& proc, const System& system, int k) {
  support::require(k > 0, "recon benchmark needs k > 0");
  // Actually touch the data of subbody 0 (k node updates, wrapping around),
  // then charge the k benchmark units.
  const Subbody& body = system.bodies.front();
  double sink = 0.0;
  const std::size_t e_count = body.e_values.size();
  for (int i = 0; i < k; ++i) {
    const std::size_t node = static_cast<std::size_t>(i) % e_count;
    const auto& deps = body.e_deps[node];
    const auto& weights = body.e_weights[node];
    for (std::size_t d = 0; d < deps.size(); ++d) {
      sink += weights[d];
    }
  }
  (void)sink;
  proc.compute(static_cast<double>(k));
}

}  // namespace hmpi::apps::em3d
