// EM3D application drivers: the plain MPI version (paper Figure 3) and the
// HMPI version (paper Figure 5), both running over a simulated HNOC.
#pragma once

#include <vector>

#include "apps/em3d/body.hpp"
#include "apps/em3d/serial.hpp"
#include "hnoc/cluster.hpp"
#include "pmdl/model.hpp"

namespace hmpi::apps::em3d {

/// The EM3D performance model (the paper's Figure 4, parsed from its PMDL
/// text): algorithm Em3d(int p, int k, int d[p], int dep[p][p]).
pmdl::Model performance_model();

/// Parameter pack for performance_model(): k is the benchmark node count.
std::vector<pmdl::ParamValue> model_parameters(const System& system, int k);

struct DriverResult {
  double algorithm_time = 0.0;  ///< Virtual seconds of the iteration loop.
  double total_time = 0.0;      ///< Host's total virtual time (incl. setup).
  double predicted_time = 0.0;  ///< HMPI only: Timeof-style prediction.
  double checksum = 0.0;        ///< Real mode only.
  std::vector<int> placement;   ///< Processor executing each subbody.
};

/// Plain MPI version: subbody i runs on machine i of the cluster, in order —
/// the "explicitly chosen from an ordered set of processes" baseline.
DriverResult run_mpi(const hnoc::Cluster& cluster, const GeneratorConfig& config,
                     int iterations, WorkMode mode);

/// HMPI version: Recon with the serial EM3D benchmark, Group_create with the
/// Figure-4 model, algorithm on the group communicator. `k` is the benchmark
/// node count used for Recon and the model's k parameter.
DriverResult run_hmpi(const hnoc::Cluster& cluster, const GeneratorConfig& config,
                      int iterations, WorkMode mode, int k = 1000);

}  // namespace hmpi::apps::em3d
