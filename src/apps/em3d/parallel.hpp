// The parallel EM3D algorithm (paper Figure 3): per iteration, gather remote
// H boundary values, compute E, gather remote E boundary values, compute H.
//
// The communicator's rank r owns subbody r — for the plain MPI version that
// is whatever machine happens to have world rank r; for the HMPI version the
// group communicator is ordered by abstract processor, so the runtime has
// matched subbody volumes to machine speeds.
#pragma once

#include "apps/em3d/body.hpp"
#include "apps/em3d/serial.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::apps::em3d {

struct ParallelResult {
  /// Virtual seconds from the post-setup barrier to the last rank's finish
  /// (identical value at every rank).
  double algorithm_time = 0.0;
  /// Sum of all field values after the run (real mode; 0 in virtual mode).
  double checksum = 0.0;
};

/// Executes `iterations` of the algorithm on `comm` (one rank per subbody;
/// comm.size() must equal system.subbody_count()). Every rank passes the
/// full initial `system`; each updates only its own subbody plus received
/// boundary values. Collective over comm.
ParallelResult run_parallel(const mp::Comm& comm, System system, int iterations,
                            WorkMode mode);

}  // namespace hmpi::apps::em3d
