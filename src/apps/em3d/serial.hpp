// Serial EM3D reference kernel.
//
// Also the HMPI_Recon benchmark: the paper uses the serial EM3D program
// computing nodal values for a single subbody as the representative
// benchmark of this application's core computation.
//
// Cost convention: updating one node costs one benchmark unit
// (Proc::compute(1.0)); the performance model's node volumes (d[I]/k) use
// the same unit, which is what makes HMPI_Timeof meaningful.
#pragma once

#include "apps/em3d/body.hpp"
#include "mpsim/world.hpp"

namespace hmpi::apps::em3d {

/// Whether workload drivers actually crunch numbers or only account time.
enum class WorkMode {
  kReal,         ///< Compute field values (verifiable) and charge virtual time.
  kVirtualOnly,  ///< Only charge virtual time (large benchmark sweeps).
};

/// One full iteration, in place: every E node from current H values, then
/// every H node from the *new* E values (matches the parallel phase order).
void serial_iteration(System& system);

/// Runs `iterations` serial iterations and returns the checksum.
double serial_run(System system, int iterations);

/// The HMPI_Recon benchmark: computes the nodal values of `k` nodes of one
/// subbody and charges `k` benchmark units of virtual time.
void recon_benchmark(mp::Proc& proc, const System& system, int k);

}  // namespace hmpi::apps::em3d
