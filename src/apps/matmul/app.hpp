// Matrix-multiplication application drivers: the homogeneous MPI baseline
// (ScaLAPACK-style 2D block-cyclic distribution, rank-order grid) and the
// HMPI version (paper Figure 8: Recon with the rMxM benchmark, Timeof search
// for the optimal generalised block size, Group_create with the Figure-7
// model, heterogeneous distribution).
#pragma once

#include <optional>
#include <vector>

#include "apps/matmul/algorithm.hpp"
#include "coll/policy.hpp"
#include "hnoc/cluster.hpp"
#include "pmdl/model.hpp"

namespace hmpi::apps::matmul {

/// The ParallelAxB performance model (the paper's Figure 7, with its
/// GetProcessor native registered): algorithm ParallelAxB(int m, int r,
/// int n, int l, int w[m], int h[m][m][m][m]).
pmdl::Model performance_model();

/// Parameter pack for performance_model().
std::vector<pmdl::ParamValue> model_parameters(int m, int r, int n,
                                               const Partition& partition);

/// One collective-algorithm pick of the runtime's tuner, recorded by the
/// HMPI driver for its report (docs/collectives.md).
struct MmCollSelection {
  coll::CollOp op = coll::CollOp::kBcast;
  std::size_t bytes = 0;     ///< Payload size the query priced.
  int algo = 0;              ///< Per-op algorithm enum value (coll::algo_name).
  double predicted_s = -1.0; ///< Cost-model prediction; negative when off.
};

struct MmDriverResult {
  double algorithm_time = 0.0;  ///< Virtual seconds of the n-step loop.
  double total_time = 0.0;      ///< Host's total virtual time (incl. setup).
  double predicted_time = 0.0;  ///< HMPI only: the runtime's prediction.
  double checksum = 0.0;        ///< Real mode only.
  int chosen_l = 0;             ///< Generalised block size actually used.
  std::vector<int> grid_placement;  ///< Processor of grid position I*m+J.
  std::vector<MmCollSelection> coll_selections;  ///< HMPI only: tuner picks.
};

struct MmDriverConfig {
  int m = 3;        ///< Process grid is m x m.
  int r = 8;        ///< Element block size.
  int n = 18;       ///< Matrix size in r-blocks.
  int l = 0;        ///< Generalised block size; 0 = HMPI searches with Timeof.
  WorkMode mode = WorkMode::kVirtualOnly;
  std::uint64_t seed = 1;
};

/// Homogeneous baseline: equal-area 2D block-cyclic distribution, grid
/// position I*m+J on machine I*m+J (rank order). `config.l` of 0 defaults
/// to m (plain block-cyclic).
MmDriverResult run_mpi(const hnoc::Cluster& cluster, const MmDriverConfig& config);

/// HMPI version (Figure 8). With config.l == 0 the host searches the
/// generalised block size via HMPI_Timeof over `l_candidates` (defaults to
/// a small sweep of divisors-friendly values in [m, n]).
MmDriverResult run_hmpi(const hnoc::Cluster& cluster, const MmDriverConfig& config,
                        std::vector<int> l_candidates = {});

}  // namespace hmpi::apps::matmul
