#include "apps/matmul/algorithm.hpp"

#include <map>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace hmpi::apps::matmul {

namespace {

constexpr int kTagA = 21;
constexpr int kTagB = 22;
constexpr int kTagCollect = 23;

struct GridSelf {
  int rank;  // comm rank == I*m + J
  int i;     // grid row
  int j;     // grid column
};

}  // namespace

MmResult run_distributed(const mp::Comm& comm, const MmConfig& config,
                         support::Matrix<double>* c_out) {
  const int m = config.m;
  const int n = config.n;
  const int r = config.r;
  const Partition& part = config.partition;
  support::require(comm.valid(), "run_distributed needs a valid communicator");
  support::require(m >= 1 && comm.size() == m * m,
                   "communicator size must be m*m");
  support::require(part.m() == m, "partition grid size mismatch");
  support::require(n >= 1 && r >= 1, "matrix dimensions must be positive");
  const bool real = config.mode == WorkMode::kReal;

  GridSelf self{comm.rank(), comm.rank() / m, comm.rank() % m};
  mp::Proc& proc = comm.proc();
  const std::size_t block_len = static_cast<std::size_t>(r) * static_cast<std::size_t>(r);
  const double unit = block_update_units(r);

  // Owned C blocks (global block coordinates), and their storage.
  std::vector<std::pair<long long, long long>> owned;
  std::map<std::pair<long long, long long>, std::vector<double>> c_blocks;
  for (long long i = 0; i < n; ++i) {
    for (long long j = 0; j < n; ++j) {
      if (part.owner_of_block(i, j) == self.rank) {
        owned.push_back({i, j});
        if (real) c_blocks[{i, j}] = std::vector<double>(block_len, 0.0);
      }
    }
  }

  comm.barrier();
  const double start = proc.clock();

  std::map<long long, std::vector<double>> a_cache;  // row i -> a(i, k)
  std::map<long long, std::vector<double>> b_cache;  // col j -> b(k, j)

  for (long long k = 0; k < n; ++k) {
    a_cache.clear();
    b_cache.clear();

    // --- horizontal broadcast of the pivot column a(., k) ------------------
    // Buffered sends first, then receives, to avoid any ordering dependence.
    for (long long i = 0; i < n; ++i) {
      const int owner = part.owner_of_block(i, k);
      if (owner != self.rank) continue;
      std::vector<double> block;
      if (real) block = make_block(config.seed, /*which=*/0, i, k, r);
      // Receivers: the processor owning row i in every other grid column
      // (columns with no C blocks need no A).
      for (int jc = 0; jc < m; ++jc) {
        if (jc == self.j || part.width(jc) == 0) continue;
        const int dst = part.row_of(jc, static_cast<int>(i % part.l())) * m + jc;
        if (real) {
          comm.send(std::span<const double>(block), dst, kTagA);
        } else {
          comm.send_placeholder(block_len * sizeof(double), dst, kTagA);
        }
      }
      if (real) a_cache[i] = std::move(block);
    }

    // --- vertical broadcast of the pivot row b(k, .) ------------------------
    for (long long j = 0; j < n; ++j) {
      const int col = part.column_of(static_cast<int>(j % part.l()));
      const int owner = part.row_of(col, static_cast<int>(k % part.l())) * m + col;
      if (owner != self.rank) continue;
      std::vector<double> block;
      if (real) block = make_block(config.seed, /*which=*/1, k, j, r);
      for (int ir = 0; ir < m; ++ir) {
        const int dst = ir * m + col;
        if (dst == self.rank || part.height(ir, col) == 0) continue;
        if (real) {
          comm.send(std::span<const double>(block), dst, kTagB);
        } else {
          comm.send_placeholder(block_len * sizeof(double), dst, kTagB);
        }
      }
      if (real) b_cache[j] = std::move(block);
    }

    // --- receives ------------------------------------------------------------
    // A blocks: every row i in which this processor owns C blocks, unless we
    // own a(i, k) ourselves. Senders stream rows in ascending order, so
    // per-sender FIFO keeps this deterministic.
    if (part.width(self.j) > 0 && part.height(self.i, self.j) > 0) {
      for (long long i = 0; i < n; ++i) {
        if (part.row_of(self.j, static_cast<int>(i % part.l())) != self.i) continue;
        const int owner = part.owner_of_block(i, k);
        if (owner == self.rank) continue;
        if (real) {
          std::vector<double> block(block_len);
          comm.recv(std::span<double>(block), owner, kTagA);
          a_cache[i] = std::move(block);
        } else {
          comm.recv_placeholder(owner, kTagA);
        }
      }
      // B blocks: every column j this processor owns, unless we own b(k, j).
      for (long long j = 0; j < n; ++j) {
        if (part.column_of(static_cast<int>(j % part.l())) != self.j) continue;
        const int owner =
            part.row_of(self.j, static_cast<int>(k % part.l())) * m + self.j;
        if (owner == self.rank) continue;
        if (real) {
          std::vector<double> block(block_len);
          comm.recv(std::span<double>(block), owner, kTagB);
          b_cache[j] = std::move(block);
        } else {
          comm.recv_placeholder(owner, kTagB);
        }
      }
    }

    // --- update --------------------------------------------------------------
    if (real) {
      for (auto& [coords, c_block] : c_blocks) {
        const auto& a_block = a_cache.at(coords.first);
        const auto& b_block = b_cache.at(coords.second);
        block_multiply_add(c_block, a_block, b_block, r);
      }
    }
    proc.compute(unit * static_cast<double>(owned.size()));
  }

  double elapsed = proc.clock() - start;
  double makespan = 0.0;
  comm.allreduce(std::span<const double>(&elapsed, 1),
                 std::span<double>(&makespan, 1),
                 [](double a, double b) { return a > b ? a : b; });

  MmResult result;
  result.algorithm_time = makespan;

  if (real) {
    double local = 0.0;
    for (const auto& [coords, block] : c_blocks) {
      for (double v : block) local += v;
    }
    double total = 0.0;
    comm.allreduce(std::span<const double>(&local, 1),
                   std::span<double>(&total, 1),
                   [](double a, double b) { return a + b; });
    result.checksum = total;

    if (c_out != nullptr) {
      // Collect the full product at rank 0 (verification path).
      if (self.rank == 0) {
        *c_out = support::Matrix<double>(static_cast<std::size_t>(n) * static_cast<std::size_t>(r),
                                         static_cast<std::size_t>(n) * static_cast<std::size_t>(r),
                                         0.0);
        auto place = [&](long long bi, long long bj, std::span<const double> block) {
          for (int x = 0; x < r; ++x) {
            for (int y = 0; y < r; ++y) {
              (*c_out)(static_cast<std::size_t>(bi * r + x),
                       static_cast<std::size_t>(bj * r + y)) =
                  block[static_cast<std::size_t>(x * r + y)];
            }
          }
        };
        for (const auto& [coords, block] : c_blocks) {
          place(coords.first, coords.second, block);
        }
        for (int src = 1; src < comm.size(); ++src) {
          const long long count = comm.recv_value<long long>(src, kTagCollect);
          for (long long b = 0; b < count; ++b) {
            long long header[2];
            comm.recv(std::span<long long>(header), src, kTagCollect);
            std::vector<double> block(block_len);
            comm.recv(std::span<double>(block), src, kTagCollect);
            place(header[0], header[1], block);
          }
        }
      } else {
        comm.send_value(static_cast<long long>(c_blocks.size()), 0, kTagCollect);
        for (const auto& [coords, block] : c_blocks) {
          const long long header[2] = {coords.first, coords.second};
          comm.send(std::span<const long long>(header, 2), 0, kTagCollect);
          comm.send(std::span<const double>(block), 0, kTagCollect);
        }
      }
    }
  }
  return result;
}

}  // namespace hmpi::apps::matmul
