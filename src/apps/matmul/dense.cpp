#include "apps/matmul/dense.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::apps::matmul {

double block_update_units(int r) {
  support::require(r > 0, "block size must be positive");
  const double x = static_cast<double>(r) / 8.0;
  return x * x * x;
}

void block_multiply_add(std::span<double> c, std::span<const double> a,
                        std::span<const double> b, int r) {
  const auto rr = static_cast<std::size_t>(r);
  support::require(c.size() == rr * rr && a.size() == rr * rr && b.size() == rr * rr,
                   "block size mismatch");
  for (std::size_t i = 0; i < rr; ++i) {
    for (std::size_t k = 0; k < rr; ++k) {
      const double aik = a[i * rr + k];
      const double* brow = &b[k * rr];
      double* crow = &c[i * rr];
      for (std::size_t j = 0; j < rr; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

double matrix_element(std::uint64_t seed, int which, long long row, long long col) {
  // One SplitMix64 step keyed by (seed, which, row, col): stateless and
  // identical on every rank.
  support::Rng rng(seed ^ (static_cast<std::uint64_t>(which) << 62) ^
                   (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) ^
                   (static_cast<std::uint64_t>(col) + 0x7f4a7c15ULL));
  return rng.next_double_in(-1.0, 1.0);
}

std::vector<double> make_block(std::uint64_t seed, int which, long long brow,
                               long long bcol, int r) {
  std::vector<double> block(static_cast<std::size_t>(r) * static_cast<std::size_t>(r));
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      block[static_cast<std::size_t>(i * r + j)] =
          matrix_element(seed, which, brow * r + i, bcol * r + j);
    }
  }
  return block;
}

support::Matrix<double> make_matrix(std::uint64_t seed, int which, int n, int r) {
  const auto size = static_cast<std::size_t>(n) * static_cast<std::size_t>(r);
  support::Matrix<double> matrix(size, size);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      matrix(i, j) = matrix_element(seed, which, static_cast<long long>(i),
                                    static_cast<long long>(j));
    }
  }
  return matrix;
}

support::Matrix<double> serial_multiply(const support::Matrix<double>& a,
                                        const support::Matrix<double>& b) {
  support::require(a.cols() == b.rows(), "dimension mismatch");
  support::Matrix<double> c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

}  // namespace hmpi::apps::matmul
