// Dense kernels and deterministic matrix material for the MM application.
//
// Cost convention: updating one r x r block (one block multiply-accumulate,
// 2 r^3 flops) costs (r/8)^3 benchmark units — the benchmark unit is one
// 8 x 8 block update, and HMPI_Recon's rMxM benchmark charges the same
// amount, keeping model volumes and measured speeds in one unit system.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/matrix.hpp"

namespace hmpi::apps::matmul {

/// Benchmark units of one r x r block multiply-accumulate.
double block_update_units(int r);

/// c += a * b for r x r row-major blocks.
void block_multiply_add(std::span<double> c, std::span<const double> a,
                        std::span<const double> b, int r);

/// Deterministic value of element (row, col) of matrix A or B for a given
/// seed: every rank can materialise exactly the blocks it owns, without any
/// global allocation.
double matrix_element(std::uint64_t seed, int which, long long row, long long col);

/// Materialises the r x r block at block coordinates (brow, bcol).
std::vector<double> make_block(std::uint64_t seed, int which, long long brow,
                               long long bcol, int r);

/// Full n*r x n*r matrix (verification only; small sizes).
support::Matrix<double> make_matrix(std::uint64_t seed, int which, int n, int r);

/// Naive serial product (verification only).
support::Matrix<double> serial_multiply(const support::Matrix<double>& a,
                                        const support::Matrix<double>& b);

}  // namespace hmpi::apps::matmul
