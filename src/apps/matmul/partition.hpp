// Heterogeneous two-dimensional block-cyclic distribution (paper §4,
// following Kalinov & Lastovetsky [6]).
//
// Matrices are partitioned into generalised blocks of l x l square r-blocks.
// Each generalised block is identically partitioned into m x m rectangles:
//   1. the l columns are split into m vertical slices, slice J's width
//      proportional to the total speed of processor column J;
//   2. each vertical slice is independently split into m horizontal slices,
//      slice I's height proportional to the speed of processor P(I,J).
// The area of P(I,J)'s rectangle is therefore proportional to its speed,
// which balances the per-step work of the multiplication algorithm.
#pragma once

#include <span>
#include <vector>

#include "support/apportion.hpp"
#include "support/matrix.hpp"

namespace hmpi::apps::matmul {

/// The partition of one generalised block (identical for all of them).
class Partition {
 public:
  /// grid_speeds is m*m row-major: speed of grid processor (I, J).
  /// Widths and heights are apportioned by largest remainder so that they
  /// sum to l exactly; a very slow processor may receive width/height 0.
  Partition(int m, int l, std::span<const double> grid_speeds);

  /// Convenience: the homogeneous distribution (the MPI baseline).
  static Partition homogeneous(int m, int l);

  int m() const noexcept { return m_; }
  int l() const noexcept { return l_; }

  /// Width of processor column J (in r-blocks).
  int width(int j) const { return widths_.at(static_cast<std::size_t>(j)); }
  /// Height of P(I, J)'s rectangle.
  int height(int i, int j) const {
    return heights_.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }

  /// Grid column owning block column `c` of a generalised block (0 <= c < l).
  int column_of(int c) const { return col_of_.at(static_cast<std::size_t>(c)); }
  /// Grid row owning block row `rrow` within processor column `j`.
  int row_of(int j, int rrow) const {
    return row_of_.at(static_cast<std::size_t>(j))
        .at(static_cast<std::size_t>(rrow));
  }

  /// Flat grid index (I*m + J) of the processor owning the r-block at
  /// (block_row, block_col) of a matrix (global block coordinates; the
  /// distribution is periodic with period l).
  int owner_of_block(long long block_row, long long block_col) const;

  /// The model's h[I][J][K][L]: the number of rows shared by the rectangles
  /// of P(I,J) and P(K,L) within a generalised block (h[I][J][I][J] is
  /// P(I,J)'s own height).
  int row_overlap(int i, int j, int k, int o) const;

  /// Parameters for the ParallelAxB performance model.
  std::vector<long long> w_param() const;
  /// Flattened m^4 h parameter, index ((I*m + J)*m + K)*m + L.
  std::vector<long long> h_param() const;

 private:
  int m_;
  int l_;
  std::vector<int> widths_;           // per column J
  support::Matrix<int> heights_;      // (I, J)
  std::vector<int> col_tops_;         // first block column of column J
  support::Matrix<int> row_tops_;     // (I, J): first block row of P(I,J)
  std::vector<int> col_of_;           // size l
  std::vector<std::vector<int>> row_of_;  // [J][rrow]
};

/// Proportional integer split (re-exported from support for callers that
/// think of it as part of the partitioning toolkit).
using support::apportion;

}  // namespace hmpi::apps::matmul
