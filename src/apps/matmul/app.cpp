#include "apps/matmul/app.hpp"

#include <algorithm>
#include <mutex>

#include "hmpi/runtime.hpp"
#include "support/error.hpp"

namespace hmpi::apps::matmul {

pmdl::Model performance_model() {
  // The paper's Figure 7 (with its two obvious typos fixed: the h parameter
  // is 4-dimensional, and the B-communication volume uses w[J] per the
  // accompanying text).
  pmdl::Model model = pmdl::Model::from_source(R"(
typedef struct {int I; int J;} Processor;

algorithm ParallelAxB(int m, int r, int n, int l, int w[m],
                      int h[m][m][m][m])
{
  coord I=m, J=m;
  node {I>=0 && J>=0: bench*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*n);};
  link (K=m, L=m)
  {
    I>=0 && J>=0 && I!=K :
      length*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, J];
    I>=0 && J>=0 && J!=L && ((h[I][J][K][L]) > 0) :
      length*(w[J]*(h[I][J][K][L])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, L];
  };
  parent[0,0];
  scheme
  {
    int k;
    Processor Root, Receiver, Current;
    for(k = 0; k < n; k++)
    {
      int Acolumn = k%l, Arow;
      int Brow = k%l, Bcolumn;
      par(Arow = 0; Arow < l; )
      {
        GetProcessor(Arow, Acolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          par(Receiver.J = 0; Receiver.J < m; Receiver.J++)
             if((Root.I != Receiver.I || Root.J != Receiver.J) &&
                Root.J != Receiver.J)
               if((h[Root.I][Root.J][Receiver.I][Receiver.J]) > 0)
                 (100/(w[Root.J]*(n/l)))%%
                        [Root.I, Root.J] -> [Receiver.I, Receiver.J];
        Arow += h[Root.I][Root.J][Root.I][Root.J];
      }
      par(Bcolumn = 0; Bcolumn < l; )
      {
        GetProcessor(Brow, Bcolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          if(Root.I != Receiver.I)
             (100/((h[Root.I][Root.J][Root.I][Root.J])*(n/l))) %%
                   [Root.I, Root.J] -> [Receiver.I, Root.J];
        Bcolumn += w[Root.J];
      }
      par(Current.I = 0; Current.I < m; Current.I++)
        par(Current.J = 0; Current.J < m; Current.J++)
           (100/n) %% [Current.I, Current.J];
    }
  };
};
)");

  // The scheme's GetProcessor: grid coordinates of the abstract processor
  // owning the r-block at (row, col) of a generalised block, derived from
  // the w / h model parameters by a cumulative widths/heights walk.
  model.register_native("GetProcessor", [](std::vector<pmdl::Value>& args) {
    support::require(args.size() == 6, "GetProcessor expects 6 arguments");
    const long long row = pmdl::as_int(args[0]);
    const long long col = pmdl::as_int(args[1]);
    const long long m = pmdl::as_int(args[2]);
    const auto& h = std::get<pmdl::ArrayRef>(args[3]);
    const auto& w = std::get<pmdl::ArrayRef>(args[4]);
    auto& root = std::get<pmdl::StructVal>(args[5]);

    auto w_at = [&](long long j) {
      return w.data->data[static_cast<std::size_t>(j)];
    };
    auto h_diag = [&](long long i, long long j) {
      const long long idx = ((i * m + j) * m + i) * m + j;
      return h.data->data[static_cast<std::size_t>(idx)];
    };

    long long j = 0;
    long long acc = w_at(0);
    while (col >= acc && j + 1 < m) acc += w_at(++j);
    long long i = 0;
    long long hacc = h_diag(0, j);
    while (row >= hacc && i + 1 < m) hacc += h_diag(++i, j);
    root.fields[0] = i;
    root.fields[1] = j;
  });
  return model;
}

std::vector<pmdl::ParamValue> model_parameters(int m, int r, int n,
                                               const Partition& partition) {
  return {pmdl::scalar(m),
          pmdl::scalar(r),
          pmdl::scalar(n),
          pmdl::scalar(partition.l()),
          pmdl::array(partition.w_param()),
          pmdl::array(partition.h_param())};
}

namespace {

/// Recon benchmark: one r x r block multiply-accumulate (the paper's rMxM).
void rmxm_benchmark(mp::Proc& proc, int r) {
  std::vector<double> a(static_cast<std::size_t>(r) * static_cast<std::size_t>(r), 1.0);
  std::vector<double> b = a;
  std::vector<double> c(a.size(), 0.0);
  block_multiply_add(c, a, b, r);
  proc.compute(block_update_units(r));
}

std::vector<int> default_l_candidates(int m, int n) {
  // A coarse sweep of [m, n]: enough resolution for the Timeof search
  // without exploding the prediction cost.
  std::vector<int> ls;
  for (int l = m; l <= n; l = std::max(l + 1, l + (n - m) / 8)) ls.push_back(l);
  if (ls.empty() || ls.back() != n) ls.push_back(n);
  return ls;
}

}  // namespace

MmDriverResult run_mpi(const hnoc::Cluster& cluster, const MmDriverConfig& config) {
  const int m = config.m;
  support::require(m * m <= cluster.size(),
                   "cluster too small for the process grid");
  const int l = config.l > 0 ? config.l : m;

  MmConfig mm;
  mm.m = m;
  mm.r = config.r;
  mm.n = config.n;
  mm.partition = Partition::homogeneous(m, l);
  mm.mode = config.mode;
  mm.seed = config.seed;

  MmDriverResult result;
  result.chosen_l = l;
  std::mutex result_mutex;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    // Grid position I*m+J on machine I*m+J: the "ordered set of processes"
    // baseline of the paper.
    mp::Comm world = proc.world_comm();
    const bool executing = proc.rank() < m * m;
    mp::Comm grid =
        world.split(executing ? 1 : mp::kUndefinedColor, proc.rank());
    if (!executing) return;

    MmResult mm_result = run_distributed(grid, mm);
    if (proc.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.algorithm_time = mm_result.algorithm_time;
      result.total_time = proc.clock();
      result.checksum = mm_result.checksum;
      result.grid_placement.resize(static_cast<std::size_t>(m * m));
      for (int g = 0; g < m * m; ++g) {
        result.grid_placement[static_cast<std::size_t>(g)] = g;
      }
    }
  });
  return result;
}

MmDriverResult run_hmpi(const hnoc::Cluster& cluster, const MmDriverConfig& config,
                        std::vector<int> l_candidates) {
  const int m = config.m;
  support::require(m * m <= cluster.size(),
                   "cluster too small for the process grid");

  pmdl::Model model = performance_model();
  MmDriverResult result;
  std::mutex result_mutex;

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    // Figure 8 lifecycle.
    Runtime rt(proc);

    // HMPI_Recon with the rMxM benchmark.
    rt.recon([&](mp::Proc& q) { rmxm_benchmark(q, config.r); });

    // The host derives the heterogeneous distribution from the estimated
    // speeds. Grid position (0,0) is the model's parent and is therefore
    // pinned to the host's machine: its rectangle must be sized for the
    // host's speed, with the m*m-1 fastest other machines (fastest first,
    // row-major) filling the remaining positions.
    int chosen_l = config.l;
    std::vector<double> grid_speeds;
    std::vector<pmdl::ParamValue> params;
    if (rt.is_host()) {
      std::vector<double> speeds = rt.processor_speeds();
      const double host_speed = speeds.at(static_cast<std::size_t>(proc.processor()));
      speeds.erase(speeds.begin() + proc.processor());
      std::sort(speeds.begin(), speeds.end(), std::greater<double>());
      grid_speeds.push_back(host_speed);
      grid_speeds.insert(grid_speeds.end(), speeds.begin(),
                         speeds.begin() + (m * m - 1));

      auto partition_for = [&](int l) {
        return Partition(m, l, grid_speeds);
      };

      if (chosen_l <= 0) {
        // Figure 8: pick the generalised block size that minimises the
        // predicted execution time.
        std::vector<int> ls = l_candidates.empty()
                                  ? default_l_candidates(m, config.n)
                                  : l_candidates;
        double best_time = 0.0;
        for (int l : ls) {
          Partition candidate = partition_for(l);
          const double t = rt.timeof(
              model, model_parameters(m, config.r, config.n, candidate));
          if (chosen_l <= 0 || t < best_time) {
            chosen_l = l;
            best_time = t;
          }
        }
      }
      params = model_parameters(m, config.r, config.n, partition_for(chosen_l));
    }

    auto group = rt.group_create(model, params);
    if (group) {
      // Members need the partition the host chose; the group communicator
      // is ordered by abstract processor (grid position), parent = (0,0).
      std::vector<long long> meta{chosen_l};
      group->comm().bcast_vector(meta, group->parent_rank());
      chosen_l = static_cast<int>(meta[0]);
      group->comm().bcast_vector(grid_speeds, group->parent_rank());
      Partition dist(m, chosen_l, grid_speeds);

      MmConfig mm;
      mm.m = m;
      mm.r = config.r;
      mm.n = config.n;
      mm.partition = dist;
      mm.mode = config.mode;
      mm.seed = config.seed;
      MmResult mm_result = run_distributed(group->comm(), mm);

      if (rt.is_host()) {
        rt.group_observed(*group, mm_result.algorithm_time);
        // Record the tuner's picks for the collectives this application
        // issues, at their actual payload sizes.
        const std::size_t block_bytes = static_cast<std::size_t>(config.r) *
                                        static_cast<std::size_t>(config.r) *
                                        sizeof(double);
        const std::pair<coll::CollOp, std::size_t> queries[] = {
            {coll::CollOp::kBcast, block_bytes},
            {coll::CollOp::kAllreduce, sizeof(double)},
        };
        std::vector<MmCollSelection> picks;
        for (const auto& [op, bytes] : queries) {
          const Runtime::CollSelection sel = rt.coll_selection(op, bytes);
          picks.push_back({op, bytes, sel.algo, sel.predicted_s});
        }
        std::lock_guard<std::mutex> lock(result_mutex);
        result.coll_selections = std::move(picks);
        result.algorithm_time = mm_result.algorithm_time;
        result.checksum = mm_result.checksum;
        result.predicted_time = group->estimated_time();
        result.chosen_l = chosen_l;
        result.grid_placement.resize(static_cast<std::size_t>(m * m));
        for (int g = 0; g < m * m; ++g) {
          result.grid_placement[static_cast<std::size_t>(g)] =
              proc.world().processor_of(
                  group->members()[static_cast<std::size_t>(g)]);
        }
      }
      rt.group_free(*group);
    }
    rt.finalize();
    if (rt.is_host()) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.total_time = proc.clock();
    }
  });
  return result;
}

}  // namespace hmpi::apps::matmul
