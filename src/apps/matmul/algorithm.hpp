// The distributed matrix-multiplication algorithm (paper §4, Figure 6).
//
// C = A x B on an m x m grid of processors, matrices of n x n square
// r x r blocks distributed by a (possibly heterogeneous) generalised-block
// Partition. At each step k:
//   * each block a(i, k) of the pivot column is sent horizontally to the
//     m-1 processors owning C blocks in row i of the other grid columns;
//   * each block b(k, j) of the pivot row is sent vertically to the m-1
//     other processors of its grid column;
//   * every processor updates each owned block: c(i,j) += a(i,k) * b(k,j).
#pragma once

#include <optional>

#include "apps/em3d/serial.hpp"  // WorkMode
#include "apps/matmul/dense.hpp"
#include "apps/matmul/partition.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::apps::matmul {

using em3d::WorkMode;

struct MmConfig {
  int m = 0;                  ///< Grid is m x m; comm.size() must be m*m.
  int r = 8;                  ///< Element block size.
  int n = 0;                  ///< Matrix size in r-blocks.
  /// Generalised-block distribution (l = partition.l()).
  Partition partition = Partition::homogeneous(1, 1);
  WorkMode mode = WorkMode::kReal;
  std::uint64_t seed = 1;     ///< Matrix material seed.
};

struct MmResult {
  /// Virtual seconds from the post-setup barrier to the last rank's finish.
  double algorithm_time = 0.0;
  /// Sum of all C elements (real mode; 0 in virtual mode).
  double checksum = 0.0;
};

/// Runs the algorithm; grid processor (I, J) is comm rank I*m + J.
/// If `c_out` is non-null, rank 0 receives the full product there
/// (real mode only; for verification).
MmResult run_distributed(const mp::Comm& comm, const MmConfig& config,
                         support::Matrix<double>* c_out = nullptr);

}  // namespace hmpi::apps::matmul
