#include "apps/matmul/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/apportion.hpp"
#include "support/error.hpp"

namespace hmpi::apps::matmul {


Partition::Partition(int m, int l, std::span<const double> grid_speeds)
    : m_(m), l_(l) {
  support::require(m >= 1, "Partition: m must be >= 1");
  support::require(l >= m, "Partition: generalised block size l must be >= m");
  support::require(grid_speeds.size() == static_cast<std::size_t>(m) * static_cast<std::size_t>(m),
                   "Partition: grid_speeds must have m*m entries");

  // Step 1: column widths proportional to column speed sums.
  std::vector<double> column_sums(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      column_sums[static_cast<std::size_t>(j)] +=
          grid_speeds[static_cast<std::size_t>(i * m + j)];
    }
  }
  widths_ = apportion(l, column_sums);

  // Step 2: per-column heights proportional to the processors' speeds.
  heights_ = support::Matrix<int>(static_cast<std::size_t>(m),
                                  static_cast<std::size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    std::vector<double> col(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      col[static_cast<std::size_t>(i)] =
          grid_speeds[static_cast<std::size_t>(i * m + j)];
    }
    const std::vector<int> hs = apportion(l, col);
    for (int i = 0; i < m; ++i) {
      heights_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          hs[static_cast<std::size_t>(i)];
    }
  }

  // Derived lookups.
  col_tops_.assign(static_cast<std::size_t>(m), 0);
  for (int j = 1; j < m; ++j) {
    col_tops_[static_cast<std::size_t>(j)] =
        col_tops_[static_cast<std::size_t>(j - 1)] + widths_[static_cast<std::size_t>(j - 1)];
  }
  row_tops_ = support::Matrix<int>(static_cast<std::size_t>(m),
                                   static_cast<std::size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    for (int i = 1; i < m; ++i) {
      row_tops_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          row_tops_(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j)) +
          heights_(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j));
    }
  }

  col_of_.assign(static_cast<std::size_t>(l), 0);
  for (int j = 0, c = 0; j < m; ++j) {
    for (int w = 0; w < widths_[static_cast<std::size_t>(j)]; ++w, ++c) {
      col_of_[static_cast<std::size_t>(c)] = j;
    }
  }
  row_of_.assign(static_cast<std::size_t>(m), std::vector<int>(static_cast<std::size_t>(l), 0));
  for (int j = 0; j < m; ++j) {
    for (int i = 0, r = 0; i < m; ++i) {
      for (int h = 0; h < heights_(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
           ++h, ++r) {
        row_of_[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] = i;
      }
    }
  }
}

Partition Partition::homogeneous(int m, int l) {
  std::vector<double> equal(static_cast<std::size_t>(m) * static_cast<std::size_t>(m), 1.0);
  return Partition(m, l, equal);
}

int Partition::owner_of_block(long long block_row, long long block_col) const {
  support::require(block_row >= 0 && block_col >= 0, "negative block coordinate");
  const int c = static_cast<int>(block_col % l_);
  const int r = static_cast<int>(block_row % l_);
  const int j = column_of(c);
  const int i = row_of(j, r);
  return i * m_ + j;
}

int Partition::row_overlap(int i, int j, int k, int o) const {
  const int top_a = row_tops_.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  const int bot_a = top_a + height(i, j);
  const int top_b = row_tops_.at(static_cast<std::size_t>(k), static_cast<std::size_t>(o));
  const int bot_b = top_b + height(k, o);
  return std::max(0, std::min(bot_a, bot_b) - std::max(top_a, top_b));
}

std::vector<long long> Partition::w_param() const {
  return std::vector<long long>(widths_.begin(), widths_.end());
}

std::vector<long long> Partition::h_param() const {
  std::vector<long long> h;
  h.reserve(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_) *
            static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    for (int j = 0; j < m_; ++j) {
      for (int k = 0; k < m_; ++k) {
        for (int o = 0; o < m_; ++o) {
          h.push_back(row_overlap(i, j, k, o));
        }
      }
    }
  }
  return h;
}

}  // namespace hmpi::apps::matmul
