#include "apps/jacobi/jacobi.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "hmpi/runtime.hpp"
#include "support/apportion.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::apps::jacobi {

namespace {
constexpr int kTagUp = 31;    // halo row travelling towards lower ranks
constexpr int kTagDown = 32;  // halo row travelling towards higher ranks
}  // namespace

support::Matrix<double> make_grid(const JacobiConfig& config) {
  support::require(config.rows >= 3 && config.cols >= 3,
                   "grid needs at least 3x3 cells");
  support::Rng rng(config.seed);
  support::Matrix<double> grid(static_cast<std::size_t>(config.rows),
                               static_cast<std::size_t>(config.cols));
  for (double& cell : grid.flat()) cell = rng.next_double_in(0.0, 100.0);
  return grid;
}

double grid_checksum(const support::Matrix<double>& grid) {
  double sum = 0.0;
  for (double cell : grid.flat()) sum += cell;
  return sum;
}

namespace {

/// One relaxation step of rows [first, last) of `src` into `dst`.
void relax_rows(const support::Matrix<double>& src, support::Matrix<double>& dst,
                std::size_t first, std::size_t last) {
  const std::size_t cols = src.cols();
  for (std::size_t r = first; r < last; ++r) {
    for (std::size_t c = 1; c + 1 < cols; ++c) {
      dst(r, c) = 0.25 * (src(r - 1, c) + src(r + 1, c) + src(r, c - 1) +
                          src(r, c + 1));
    }
  }
}

}  // namespace

support::Matrix<double> serial_jacobi(const JacobiConfig& config) {
  support::Matrix<double> grid = make_grid(config);
  support::Matrix<double> next = grid;
  for (int it = 0; it < config.iterations; ++it) {
    relax_rows(grid, next, 1, grid.rows() - 1);
    std::swap(grid, next);
  }
  return grid;
}

std::vector<int> distribute_rows(int interior_rows,
                                 std::span<const double> speeds) {
  support::require(interior_rows >= static_cast<int>(speeds.size()),
                   "fewer interior rows than workers");
  std::vector<int> rows = support::apportion(interior_rows, speeds);
  // Every worker needs at least one row (the halo protocol assumes a linear
  // chain); take surplus from the currently largest band.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    while (rows[i] == 0) {
      auto widest = std::max_element(rows.begin(), rows.end());
      *widest -= 1;
      rows[i] += 1;
    }
  }
  return rows;
}

pmdl::Model performance_model() {
  return pmdl::Model::from_source(R"(
algorithm Jacobi(int p, int rows[p], int cols) {
  coord I=p;
  node { I>=0: bench*(rows[I]); };
  link (J=p) {
    I>=0 && (J == I+1 || J == I-1) :
      length*(cols*sizeof(double)) [I]->[J];
  };
  parent[0];
  scheme {
    int i;
    par (i = 0; i < p; i++) {
      if (i > 0) 100%%[i]->[i-1];
      if (i < p-1) 100%%[i]->[i+1];
    }
    par (i = 0; i < p; i++) 100%%[i];
  };
};
)");
}

std::vector<pmdl::ParamValue> model_parameters(std::span<const int> row_counts,
                                               int cols) {
  std::vector<long long> rows(row_counts.begin(), row_counts.end());
  return {pmdl::scalar(static_cast<long long>(row_counts.size())),
          pmdl::array(std::move(rows)), pmdl::scalar(cols)};
}

ParallelResult run_parallel(const mp::Comm& comm, const JacobiConfig& config,
                            std::span<const int> row_counts, WorkMode mode) {
  support::require(comm.valid(), "run_parallel needs a valid communicator");
  const int p = comm.size();
  support::require(static_cast<int>(row_counts.size()) == p,
                   "row_counts must have one entry per rank");
  const int interior = config.rows - 2;
  support::require(std::accumulate(row_counts.begin(), row_counts.end(), 0) ==
                       interior,
                   "row_counts must sum to the interior row count");
  for (int rc : row_counts) support::require(rc >= 1, "empty row band");

  const int me = comm.rank();
  mp::Proc& proc = comm.proc();
  const std::size_t cols = static_cast<std::size_t>(config.cols);
  const std::size_t halo_bytes = cols * sizeof(double);

  // My band: global interior rows [top, top + mine).
  int top = 1;
  for (int r = 0; r < me; ++r) top += row_counts[static_cast<std::size_t>(r)];
  const int mine = row_counts[static_cast<std::size_t>(me)];

  // Local storage: my rows plus one halo row above and below. In real mode
  // initialise from the deterministic global grid.
  const bool real = mode == WorkMode::kReal;
  support::Matrix<double> block;
  support::Matrix<double> next;
  if (real) {
    const support::Matrix<double> grid = make_grid(config);
    block = support::Matrix<double>(static_cast<std::size_t>(mine) + 2, cols);
    for (int r = -1; r <= mine; ++r) {
      const auto src = grid.row(static_cast<std::size_t>(top + r));
      auto dst = block.row(static_cast<std::size_t>(r + 1));
      std::copy(src.begin(), src.end(), dst.begin());
    }
    next = block;
  }

  comm.barrier();
  const double start = proc.clock();

  for (int it = 0; it < config.iterations; ++it) {
    // Halo exchange: my first row goes up, my last row goes down.
    if (me > 0) {
      if (real) {
        comm.send(std::span<const double>(block.row(1)), me - 1, kTagUp);
      } else {
        comm.send_placeholder(halo_bytes, me - 1, kTagUp);
      }
    }
    if (me + 1 < p) {
      if (real) {
        comm.send(std::span<const double>(block.row(static_cast<std::size_t>(mine))),
                  me + 1, kTagDown);
      } else {
        comm.send_placeholder(halo_bytes, me + 1, kTagDown);
      }
    }
    if (me > 0) {
      if (real) {
        comm.recv(std::span<double>(block.row(0)), me - 1, kTagDown);
      } else {
        comm.recv_placeholder(me - 1, kTagDown);
      }
    }
    if (me + 1 < p) {
      if (real) {
        comm.recv(std::span<double>(block.row(static_cast<std::size_t>(mine) + 1)),
                  me + 1, kTagUp);
      } else {
        comm.recv_placeholder(me + 1, kTagUp);
      }
    }

    if (real) {
      relax_rows(block, next, 1, static_cast<std::size_t>(mine) + 1);
      std::swap(block, next);
    }
    proc.compute(static_cast<double>(mine));
  }

  double elapsed = proc.clock() - start;
  double makespan = 0.0;
  comm.allreduce(std::span<const double>(&elapsed, 1),
                 std::span<double>(&makespan, 1),
                 [](double a, double b) { return a > b ? a : b; });

  ParallelResult result;
  result.algorithm_time = makespan;
  if (real) {
    // Checksum as a distributed reduction (docs/collectives.md): every rank
    // holds a full column-sum profile of its own rows (side border cells
    // included; rank 0 also contributes the ownerless top and bottom border
    // rows), reduce_scatter leaves each rank owning the globally reduced
    // profile for a contiguous column slice, and a scalar allreduce of the
    // slice totals yields the plate sum.
    const std::size_t chunk =
        (cols + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
    std::vector<double> profile(chunk * static_cast<std::size_t>(p), 0.0);
    for (int r = 1; r <= mine; ++r) {
      const auto row = block.row(static_cast<std::size_t>(r));
      for (std::size_t c = 0; c < cols; ++c) profile[c] += row[c];
    }
    if (me == 0) {
      const support::Matrix<double> grid = make_grid(config);
      for (std::size_t c = 0; c < cols; ++c) {
        profile[c] += grid(0, c) + grid(grid.rows() - 1, c);
      }
    }
    std::vector<double> slice(chunk, 0.0);
    comm.reduce_scatter(std::span<const double>(profile),
                        std::span<double>(slice),
                        [](double a, double b) { return a + b; });
    double local = 0.0;
    for (double v : slice) local += v;
    double total = 0.0;
    comm.allreduce(std::span<const double>(&local, 1),
                   std::span<double>(&total, 1),
                   [](double a, double b) { return a + b; });
    result.checksum = total;
  }
  return result;
}

DriverResult run_mpi(const hnoc::Cluster& cluster, const JacobiConfig& config,
                     int workers, WorkMode mode) {
  support::require(workers >= 1 && workers <= cluster.size(),
                   "worker count out of range");
  std::vector<double> equal(static_cast<std::size_t>(workers), 1.0);
  const std::vector<int> rows = distribute_rows(config.rows - 2, equal);

  DriverResult result;
  result.row_counts = rows;
  std::mutex mutex;
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    mp::Comm world = proc.world_comm();
    const bool executing = proc.rank() < workers;
    mp::Comm comm = world.split(executing ? 1 : mp::kUndefinedColor, proc.rank());
    if (!executing) return;
    ParallelResult parallel = run_parallel(comm, config, rows, mode);
    if (proc.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      result.algorithm_time = parallel.algorithm_time;
      result.total_time = proc.clock();
      result.checksum = parallel.checksum;
      for (int w = 0; w < workers; ++w) result.placement.push_back(w);
    }
  });
  return result;
}

DriverResult run_hmpi(const hnoc::Cluster& cluster, const JacobiConfig& config,
                      int workers, WorkMode mode) {
  support::require(workers >= 1 && workers <= cluster.size(),
                   "worker count out of range");
  pmdl::Model model = performance_model();

  DriverResult result;
  std::mutex mutex;
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    Runtime rt(proc);
    // One benchmark unit == one row of `cols` cell updates.
    rt.recon([](mp::Proc& q) { q.compute(1.0); });

    std::vector<int> rows;
    std::vector<pmdl::ParamValue> params;
    if (rt.is_host()) {
      // Host-aware speed list: the parent (band 0) runs on the host; the
      // remaining bands go to the fastest other machines.
      std::vector<double> speeds = rt.processor_speeds();
      const double host_speed = speeds.at(static_cast<std::size_t>(proc.processor()));
      speeds.erase(speeds.begin() + proc.processor());
      std::sort(speeds.begin(), speeds.end(), std::greater<double>());
      std::vector<double> band_speeds{host_speed};
      band_speeds.insert(band_speeds.end(), speeds.begin(),
                         speeds.begin() + (workers - 1));
      rows = distribute_rows(config.rows - 2, band_speeds);
      params = model_parameters(rows, config.cols);
    }

    auto group = rt.group_create(model, params);
    if (group) {
      std::vector<long long> meta(rows.begin(), rows.end());
      group->comm().bcast_vector(meta, group->parent_rank());
      rows.assign(meta.begin(), meta.end());

      ParallelResult parallel = run_parallel(group->comm(), config, rows, mode);
      if (rt.is_host()) {
        // Record which algorithm the tuner picks for the collectives this
        // application issues, at their actual payload sizes.
        const std::pair<coll::CollOp, std::size_t> queries[] = {
            {coll::CollOp::kBcast, rows.size() * sizeof(long long)},
            {coll::CollOp::kAllreduce, sizeof(double)},
            {coll::CollOp::kReduceScatter,
             static_cast<std::size_t>(config.cols) * sizeof(double)},
        };
        std::vector<CollSelection> picks;
        for (const auto& [op, bytes] : queries) {
          const Runtime::CollSelection sel = rt.coll_selection(op, bytes);
          picks.push_back({op, bytes, sel.algo, sel.predicted_s});
        }
        std::lock_guard<std::mutex> lock(mutex);
        result.coll_selections = std::move(picks);
        result.algorithm_time = parallel.algorithm_time;
        result.checksum = parallel.checksum;
        result.predicted_time = group->estimated_time() * config.iterations;
        result.row_counts = rows;
        for (int member : group->members()) {
          result.placement.push_back(proc.world().processor_of(member));
        }
      }
      rt.group_free(*group);
    }
    rt.finalize();
    if (rt.is_host()) {
      std::lock_guard<std::mutex> lock(mutex);
      result.total_time = proc.clock();
    }
  });
  return result;
}

}  // namespace hmpi::apps::jacobi
