// Heterogeneous Jacobi stencil — a third application built on the HMPI API.
//
// Not from the paper's evaluation: this is the "downstream user" exercise —
// a regular 2-D heat-diffusion kernel whose row-block decomposition is sized
// to the measured machine speeds, with the HMPI runtime matching blocks to
// machines. It demonstrates the same reduction the paper describes for
// regular problems (§4): turn the regular problem into an irregular one
// whose irregularity mirrors the hardware.
//
// Domain: rows x cols grid of doubles; the border is held fixed; each
// iteration replaces every interior cell by the average of its four
// neighbours (Jacobi relaxation). Worker i owns a contiguous band of
// interior rows and exchanges one halo row per neighbour per iteration.
//
// Cost convention: one benchmark unit == updating one row of `cols` cells.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/em3d/serial.hpp"  // WorkMode
#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "pmdl/model.hpp"
#include "support/matrix.hpp"

namespace hmpi::apps::jacobi {

using em3d::WorkMode;

struct JacobiConfig {
  int rows = 64;        ///< Total grid rows (including the fixed border).
  int cols = 64;        ///< Total grid columns.
  int iterations = 10;
  std::uint64_t seed = 1;
};

/// Deterministic initial grid (border plus interior) for a seed.
support::Matrix<double> make_grid(const JacobiConfig& config);

/// Serial reference: runs the relaxation and returns the final grid.
support::Matrix<double> serial_jacobi(const JacobiConfig& config);

/// Sum of all cells of a grid (placement-independent result check).
double grid_checksum(const support::Matrix<double>& grid);

/// Splits the interior rows proportionally to `speeds`, guaranteeing every
/// worker at least one row (surplus is taken from the largest shares).
std::vector<int> distribute_rows(int interior_rows,
                                 std::span<const double> speeds);

/// The Jacobi performance model:
/// algorithm Jacobi(int p, int rows[p], int cols).
pmdl::Model performance_model();
std::vector<pmdl::ParamValue> model_parameters(std::span<const int> row_counts,
                                               int cols);

struct ParallelResult {
  double algorithm_time = 0.0;
  double checksum = 0.0;  ///< Real mode only.
};

/// Runs the relaxation on `comm`; rank i owns `row_counts[i]` interior rows,
/// top to bottom. Collective over comm (comm.size() == row_counts.size()).
ParallelResult run_parallel(const mp::Comm& comm, const JacobiConfig& config,
                            std::span<const int> row_counts, WorkMode mode);

/// One collective-algorithm pick of the runtime's tuner, recorded by the
/// HMPI driver for its report (docs/collectives.md).
struct CollSelection {
  coll::CollOp op = coll::CollOp::kBcast;
  std::size_t bytes = 0;     ///< Payload size the query priced.
  int algo = 0;              ///< Per-op algorithm enum value (coll::algo_name).
  double predicted_s = -1.0; ///< Cost-model prediction; negative when off.
};

struct DriverResult {
  double algorithm_time = 0.0;
  double total_time = 0.0;
  double predicted_time = 0.0;       ///< HMPI only (per run).
  double checksum = 0.0;             ///< Real mode only.
  std::vector<int> row_counts;       ///< Interior rows per worker.
  std::vector<int> placement;        ///< Machine of each worker.
  std::vector<CollSelection> coll_selections;  ///< HMPI only: tuner picks.
};

/// Homogeneous baseline: equal row bands, worker i on machine i.
DriverResult run_mpi(const hnoc::Cluster& cluster, const JacobiConfig& config,
                     int workers, WorkMode mode);

/// HMPI version: Recon with a one-row benchmark, speed-proportional bands,
/// Group_create with the Jacobi model.
DriverResult run_hmpi(const hnoc::Cluster& cluster, const JacobiConfig& config,
                      int workers, WorkMode mode);

}  // namespace hmpi::apps::jacobi
