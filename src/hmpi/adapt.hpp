// Closed-loop adaptation: drift detection and guarded migration policy.
//
// The paper's runtime selects the fastest group ONCE, from speeds measured
// at HMPI_Recon time. Real networks drift — hnoc's load profiles simulate
// exactly that — and a selection that was optimal at t=0 silently decays.
// This header is the policy half of the closed loop that fixes it:
//
//   observe  -> AdaptationController::note_progress (prediction divergence)
//               AdaptationController::note_drift    (recon speed drift)
//   decide   -> guarded policy: EWMA smoothing, hysteresis (K consecutive
//               violations), cooldown windows, exponential backoff after a
//               failed/rolled-back migration
//   act      -> Runtime::adapt_migrate prices the move with the cost IR and
//               performs a voluntary respawn (runtime.hpp), rolling back to
//               the previous roster when the new one prices worse
//
// The controller itself is pure bookkeeping: no communication, no clocks of
// its own (time advances only through the measured durations fed to it), so
// a fixed input sequence yields a bit-identical decision sequence — the
// property the determinism tests pin down. Decisions are made by the group
// parent and broadcast; see docs/adaptation.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace hmpi::adapt {

/// Why the controller asked for (or logged) an adaptation.
enum class AdaptSignal : std::int32_t {
  kNone = 0,     ///< No violation.
  kDivergence,   ///< Measured makespan diverged from the prediction.
  kSpeedDrift,   ///< Recon-measured speeds drifted from the group snapshot.
  kBlameMachine, ///< Critical-path blame concentrated on one machine's
                 ///< compute (telemetry/critpath.hpp; a "slow machine").
  kBlameLink,    ///< Critical-path blame concentrated on one link's wait +
                 ///< transfer time (a "slow link").
};

/// Stable lower-case name ("none", "divergence", "speed_drift",
/// "blame_machine", "blame_link").
const char* signal_name(AdaptSignal signal);

/// Tunables of the adaptation policy. Identical on every process (like
/// RuntimeConfig). Environment overrides: HMPI_ADAPT (on/off),
/// HMPI_ADAPT_THRESHOLD (relative divergence threshold),
/// HMPI_ADAPT_COOLDOWN (virtual seconds between migrations).
struct AdaptConfig {
  /// Master switch. Off = the runtime behaves exactly as before this
  /// subsystem existed: adapt_observe/adapt_recon are zero-communication
  /// no-ops and adapt_migrate refuses to run.
  bool enabled = false;
  /// Relative error |measured - predicted| / predicted (and relative speed
  /// drift) above which a round counts as a violation.
  double threshold = 0.25;
  /// EWMA smoothing factor for the divergence signal in (0, 1]; 1 disables
  /// smoothing (each round judged on its own).
  double ewma_alpha = 0.5;
  /// Consecutive violating rounds required before a trigger (hysteresis).
  int hysteresis = 2;
  /// Virtual seconds after a migration (or rollback) during which no new
  /// trigger fires. Time advances by the measured durations fed to
  /// note_progress — the synchronized axis every member agrees on.
  double cooldown_s = 0.0;
  /// Minimum predicted gain (seconds) a migration must clear on top of its
  /// estimated cost before the gate opens.
  double min_gain_s = 0.0;
  /// Fixed respawn overhead charged to every candidate migration, on top of
  /// the state-transfer time derived from state_bytes.
  double migration_cost_s = 0.0;
  /// Migrations that rolled back before the controller stops trying
  /// entirely (bounded retry).
  int max_retries = 3;
  /// Cooldown multiplier applied per rollback (exponential backoff).
  double retry_backoff = 2.0;
  /// Feed critical-path blame attribution (telemetry/critpath.hpp) into the
  /// trigger logic: a machine or link owning more than `blame_share` of the
  /// critical path counts as a violation, distinguishing "slow machine"
  /// (kBlameMachine) from "slow link" (kBlameLink). Off by default — blame
  /// triggers change no behaviour unless explicitly enabled. Env:
  /// HMPI_ADAPT_BLAME.
  bool blame = false;
  /// Critical-path share above which one machine/link is blamed (0, 1].
  double blame_share = 0.5;

  /// Applies HMPI_ADAPT / HMPI_ADAPT_THRESHOLD / HMPI_ADAPT_COOLDOWN /
  /// HMPI_ADAPT_BLAME on top of the programmatic values. Unknown values are
  /// ignored.
  AdaptConfig with_env() const;
};

/// What the controller wants done, returned by the observe calls.
struct AdaptDecision {
  bool migrate = false;       ///< Hysteresis satisfied; try adapt_migrate.
  AdaptSignal signal = AdaptSignal::kNone;  ///< Violating signal, if any.
  double severity = 0.0;      ///< Smoothed relative error behind the call.
  /// Set when this observation supplied a pending migration's realized
  /// gain (closing its ledger entry); the gain itself is below.
  bool closed_migration = false;
  double realized_gain_s = 0.0;
};

/// How one adaptation attempt ended.
enum class AdaptOutcomeKind : std::int32_t {
  kMigrated,    ///< New roster adopted and kept.
  kRolledBack,  ///< New roster priced worse; previous roster restored.
  kSuppressed,  ///< Cost/benefit gate rejected the move (group kept).
};

/// Stable lower-case name ("migrated", "rolled_back", "suppressed").
const char* outcome_name(AdaptOutcomeKind outcome);

/// One ledger entry: a decision the runtime acted on (or suppressed), with
/// its predicted and — once the next measured round lands — realized gain.
struct AdaptRecord {
  long long group_id = -1;      ///< Group the decision was made for.
  long long new_group_id = -1;  ///< Successor group (kMigrated only).
  double time_s = 0.0;          ///< Controller virtual time of the decision.
  AdaptSignal signal = AdaptSignal::kNone;
  AdaptOutcomeKind outcome = AdaptOutcomeKind::kSuppressed;
  double severity = 0.0;        ///< Smoothed violation level at trigger.
  double predicted_old_s = 0.0; ///< Re-priced makespan of the old roster.
  double predicted_new_s = 0.0; ///< Predicted makespan of the new roster.
  double cost_s = 0.0;          ///< Respawn + state-transfer estimate.
  double realized_gain_s = 0.0; ///< old round time - first new round time.
  bool has_realized = false;    ///< realized_gain_s is populated.
  std::vector<int> old_members; ///< World ranks before the decision.
  std::vector<int> new_members; ///< World ranks after (empty if unchanged).
};

/// The decision engine. One per Runtime; only the group parent's instance
/// actually decides (members receive the decision by broadcast), so the
/// parent's ledger is the canonical record of the run.
///
/// Thread-compatible, not thread-safe: each simulated process owns its
/// controller and calls it from its own thread only.
class AdaptationController {
 public:
  explicit AdaptationController(AdaptConfig config);

  const AdaptConfig& config() const noexcept { return config_; }

  /// Feeds one measured round of `group_id`: `predicted_s` is the group's
  /// estimated time, `measured_s` what the round actually took. Advances
  /// the controller clock by `measured_s`, updates the EWMA divergence and
  /// the hysteresis streak, and — first call after a migration — closes the
  /// pending ledger entry with the realized gain.
  AdaptDecision note_progress(long long group_id, double predicted_s,
                              double measured_s);

  /// Feeds a recon-measured drift observation: `drift` is the maximum
  /// relative speed change across the group's members since the group was
  /// created. Does not advance the clock (recon is instantaneous on the
  /// round axis). Same hysteresis/cooldown gates as note_progress.
  AdaptDecision note_drift(long long group_id, double drift);

  /// Feeds a critical-path blame observation: `signal` names the dominant
  /// entity kind (kBlameMachine or kBlameLink) and `share` its fraction of
  /// the critical path in [0, 1]. A share above config().blame_share counts
  /// as a violation; hysteresis/cooldown gates as note_drift. No-op
  /// returning a default decision when config().blame is false.
  AdaptDecision note_blame(long long group_id, AdaptSignal signal,
                           double share);

  /// Records a committed migration and arms the cooldown window. The entry
  /// stays open until the next note_progress supplies the realized gain.
  void note_migration(AdaptRecord record);

  /// Records a rollback: arms an extended cooldown (cooldown_s *
  /// retry_backoff^rollbacks) and counts against max_retries.
  void note_rollback(AdaptRecord record);

  /// Records a gate-suppressed attempt (kept group); resets the streak so
  /// the gate is not hammered every subsequent round.
  void note_suppressed(AdaptRecord record);

  /// Cumulative measured virtual time fed through note_progress.
  double now_s() const noexcept { return now_s_; }

  /// Current smoothed divergence of `group_id` (0 when unseen).
  double divergence(long long group_id) const;

  /// Migrations that ended in rollback so far.
  int rollbacks() const noexcept { return rollbacks_; }

  /// True while a cooldown window (possibly backoff-extended) is open.
  bool in_cooldown() const noexcept { return now_s_ < cooldown_until_s_; }

  /// Every decision recorded, in order.
  const std::vector<AdaptRecord>& ledger() const noexcept { return ledger_; }

  /// `{"adaptations": [...]}` (validated by tools/telemetry_check).
  void write_json(std::ostream& os) const;

  void clear();

 private:
  bool gates_open() const;
  void arm_cooldown(double factor);

  struct GroupState {
    double ewma = 0.0;
    bool ewma_seeded = false;
    int divergence_streak = 0;
    int drift_streak = 0;
    int blame_streak = 0;
    double last_measured_s = 0.0;
    bool has_measured = false;
  };

  AdaptConfig config_;
  std::unordered_map<long long, GroupState> groups_;
  std::vector<AdaptRecord> ledger_;
  double now_s_ = 0.0;
  double cooldown_until_s_ = 0.0;
  int rollbacks_ = 0;
  /// Index into ledger_ of a migration awaiting its realized gain; -1 none.
  std::ptrdiff_t open_migration_ = -1;
};

}  // namespace hmpi::adapt
