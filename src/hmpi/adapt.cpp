#include "hmpi/adapt.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <string>

#include "support/error.hpp"
#include "telemetry/json.hpp"

namespace hmpi::adapt {

namespace {

/// Truthy/falsy parsing shared by HMPI_ADAPT ("on"/"1"/"true" vs
/// "off"/"0"/"false"); unrecognised spellings leave the config value alone.
int parse_switch(const char* value) {
  const std::string v(value);
  if (v == "1" || v == "on" || v == "true" || v == "yes") return 1;
  if (v == "0" || v == "off" || v == "false" || v == "no") return 0;
  return -1;
}

void write_members(std::ostream& os, const std::vector<int>& members) {
  os << '[';
  for (std::size_t i = 0; i < members.size(); ++i) {
    os << (i == 0 ? "" : ", ") << members[i];
  }
  os << ']';
}

}  // namespace

const char* signal_name(AdaptSignal signal) {
  switch (signal) {
    case AdaptSignal::kNone: return "none";
    case AdaptSignal::kDivergence: return "divergence";
    case AdaptSignal::kSpeedDrift: return "speed_drift";
    case AdaptSignal::kBlameMachine: return "blame_machine";
    case AdaptSignal::kBlameLink: return "blame_link";
  }
  return "none";
}

const char* outcome_name(AdaptOutcomeKind outcome) {
  switch (outcome) {
    case AdaptOutcomeKind::kMigrated: return "migrated";
    case AdaptOutcomeKind::kRolledBack: return "rolled_back";
    case AdaptOutcomeKind::kSuppressed: return "suppressed";
  }
  return "suppressed";
}

AdaptConfig AdaptConfig::with_env() const {
  AdaptConfig config = *this;
  if (const char* value = std::getenv("HMPI_ADAPT")) {
    const int parsed = parse_switch(value);
    if (parsed >= 0) config.enabled = parsed == 1;
  }
  if (const char* value = std::getenv("HMPI_ADAPT_THRESHOLD")) {
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end != value && parsed > 0.0) config.threshold = parsed;
  }
  if (const char* value = std::getenv("HMPI_ADAPT_COOLDOWN")) {
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end != value && parsed >= 0.0) config.cooldown_s = parsed;
  }
  if (const char* value = std::getenv("HMPI_ADAPT_BLAME")) {
    const int parsed = parse_switch(value);
    if (parsed >= 0) config.blame = parsed == 1;
  }
  return config;
}

AdaptationController::AdaptationController(AdaptConfig config)
    : config_(config) {
  support::require(config_.threshold > 0.0, "adapt threshold must be > 0");
  support::require(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                   "adapt ewma_alpha must be in (0, 1]");
  support::require(config_.hysteresis >= 1, "adapt hysteresis must be >= 1");
  support::require(config_.cooldown_s >= 0.0, "adapt cooldown must be >= 0");
  support::require(config_.retry_backoff >= 1.0,
                   "adapt retry_backoff must be >= 1");
  support::require(config_.max_retries >= 0, "adapt max_retries must be >= 0");
  support::require(config_.blame_share > 0.0 && config_.blame_share <= 1.0,
                   "adapt blame_share must be in (0, 1]");
}

bool AdaptationController::gates_open() const {
  return !in_cooldown() && rollbacks_ < config_.max_retries;
}

void AdaptationController::arm_cooldown(double factor) {
  cooldown_until_s_ = now_s_ + config_.cooldown_s * factor;
}

AdaptDecision AdaptationController::note_progress(long long group_id,
                                                 double predicted_s,
                                                 double measured_s) {
  support::require(predicted_s > 0.0,
                   "adapt note_progress needs a positive prediction");
  support::require(measured_s >= 0.0,
                   "adapt note_progress needs a non-negative measurement");
  GroupState& state = groups_[group_id];

  // First measured round after a committed migration: close its ledger
  // entry. The realized gain compares the last round on the old roster with
  // this round on the new one — the honest "what did the move buy" number.
  bool closed_migration = false;
  double realized_gain_s = 0.0;
  if (open_migration_ >= 0) {
    AdaptRecord& open = ledger_[static_cast<std::size_t>(open_migration_)];
    if (open.new_group_id == group_id && !state.has_measured) {
      open.realized_gain_s = open.predicted_old_s - measured_s;
      // The re-priced old roster stands in for "last old round" when the
      // trigger fired before the old group measured a round (drift-only
      // triggers); otherwise prefer the actually measured round.
      const auto old_state = groups_.find(open.group_id);
      if (old_state != groups_.end() && old_state->second.has_measured) {
        open.realized_gain_s = old_state->second.last_measured_s - measured_s;
      }
      open.has_realized = true;
      closed_migration = true;
      realized_gain_s = open.realized_gain_s;
    }
    open_migration_ = -1;
  }

  now_s_ += measured_s;
  state.last_measured_s = measured_s;
  state.has_measured = true;

  const double rel = std::abs(measured_s - predicted_s) / predicted_s;
  state.ewma = state.ewma_seeded
                   ? config_.ewma_alpha * rel +
                         (1.0 - config_.ewma_alpha) * state.ewma
                   : rel;
  state.ewma_seeded = true;

  AdaptDecision decision;
  decision.severity = state.ewma;
  decision.closed_migration = closed_migration;
  decision.realized_gain_s = realized_gain_s;
  if (state.ewma > config_.threshold) {
    state.divergence_streak += 1;
    decision.signal = AdaptSignal::kDivergence;
    if (state.divergence_streak >= config_.hysteresis && gates_open()) {
      decision.migrate = true;
      state.divergence_streak = 0;
    }
  } else {
    state.divergence_streak = 0;
    decision.signal = AdaptSignal::kNone;
  }
  return decision;
}

AdaptDecision AdaptationController::note_drift(long long group_id,
                                               double drift) {
  support::require(drift >= 0.0, "adapt note_drift needs drift >= 0");
  GroupState& state = groups_[group_id];
  AdaptDecision decision;
  decision.severity = drift;
  if (drift > config_.threshold) {
    state.drift_streak += 1;
    decision.signal = AdaptSignal::kSpeedDrift;
    if (state.drift_streak >= config_.hysteresis && gates_open()) {
      decision.migrate = true;
      state.drift_streak = 0;
    }
  } else {
    state.drift_streak = 0;
  }
  return decision;
}

AdaptDecision AdaptationController::note_blame(long long group_id,
                                               AdaptSignal signal,
                                               double share) {
  support::require(signal == AdaptSignal::kBlameMachine ||
                       signal == AdaptSignal::kBlameLink,
                   "adapt note_blame needs a blame signal");
  support::require(share >= 0.0 && share <= 1.0,
                   "adapt note_blame needs a share in [0, 1]");
  AdaptDecision decision;
  if (!config_.blame) return decision;
  GroupState& state = groups_[group_id];
  decision.severity = share;
  if (share > config_.blame_share) {
    state.blame_streak += 1;
    decision.signal = signal;
    if (state.blame_streak >= config_.hysteresis && gates_open()) {
      decision.migrate = true;
      state.blame_streak = 0;
    }
  } else {
    state.blame_streak = 0;
  }
  return decision;
}

void AdaptationController::note_migration(AdaptRecord record) {
  record.time_s = now_s_;
  record.outcome = AdaptOutcomeKind::kMigrated;
  arm_cooldown(1.0);
  // The successor group gets a fresh id, so it judges divergence from
  // scratch; the old group's state stays (the realized-gain closure reads
  // its last measured round).
  ledger_.push_back(std::move(record));
  open_migration_ = static_cast<std::ptrdiff_t>(ledger_.size()) - 1;
}

void AdaptationController::note_rollback(AdaptRecord record) {
  record.time_s = now_s_;
  record.outcome = AdaptOutcomeKind::kRolledBack;
  rollbacks_ += 1;
  // Exponential backoff: each rollback doubles (retry_backoff) the quiet
  // window, so a persistently wrong cost model cannot thrash the group.
  double factor = 1.0;
  for (int i = 0; i < rollbacks_; ++i) factor *= config_.retry_backoff;
  arm_cooldown(factor);
  open_migration_ = -1;
  ledger_.push_back(std::move(record));
}

void AdaptationController::note_suppressed(AdaptRecord record) {
  record.time_s = now_s_;
  record.outcome = AdaptOutcomeKind::kSuppressed;
  // Re-seed the streaks: the gate said "not worth it" at this severity, so
  // require a fresh run of violations before asking again.
  auto it = groups_.find(record.group_id);
  if (it != groups_.end()) {
    it->second.divergence_streak = 0;
    it->second.drift_streak = 0;
  }
  ledger_.push_back(std::move(record));
}

double AdaptationController::divergence(long long group_id) const {
  const auto it = groups_.find(group_id);
  return it != groups_.end() ? it->second.ewma : 0.0;
}

void AdaptationController::write_json(std::ostream& os) const {
  os << "{\n  \"adaptations\": [";
  for (std::size_t i = 0; i < ledger_.size(); ++i) {
    const AdaptRecord& r = ledger_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"group_id\": " << r.group_id
       << ", \"new_group_id\": " << r.new_group_id
       << ", \"time_s\": " << telemetry::json_number(r.time_s)
       << ", \"signal\": \"" << signal_name(r.signal) << '"'
       << ", \"outcome\": \"" << outcome_name(r.outcome) << '"'
       << ", \"severity\": " << telemetry::json_number(r.severity)
       << ", \"predicted_old_s\": " << telemetry::json_number(r.predicted_old_s)
       << ", \"predicted_new_s\": " << telemetry::json_number(r.predicted_new_s)
       << ", \"cost_s\": " << telemetry::json_number(r.cost_s)
       << ", \"realized_gain_s\": "
       << (r.has_realized ? telemetry::json_number(r.realized_gain_s)
                          : std::string("null"))
       << ", \"old_members\": ";
    write_members(os, r.old_members);
    os << ", \"new_members\": ";
    write_members(os, r.new_members);
    os << "}";
  }
  os << (ledger_.empty() ? "" : "\n  ") << "]\n}\n";
}

void AdaptationController::clear() {
  groups_.clear();
  ledger_.clear();
  now_s_ = 0.0;
  cooldown_until_s_ = 0.0;
  rollbacks_ = 0;
  open_migration_ = -1;
}

}  // namespace hmpi::adapt
