#include "hmpi/hmpi_c.hpp"

#include "support/error.hpp"
#include "support/process_local.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prediction.hpp"

namespace hmpi::capi {
namespace {

// The per-simulated-process Runtime. Process-local (not thread_local): under
// the event engine many process fibers share one host thread, and each must
// see its own Runtime.
constexpr char kRuntimeKey = 0;

std::shared_ptr<void>& runtime_slot() {
  return support::process_local_slot(&kRuntimeKey);
}

}  // namespace

Runtime* current() { return static_cast<Runtime*>(runtime_slot().get()); }

namespace detail {

Runtime& require_runtime() {
  Runtime* runtime = current();
  if (runtime == nullptr) {
    throw RuntimeError("HMPI routine called before HMPI_Init");
  }
  return *runtime;
}

void init(mp::Proc& proc, RuntimeConfig config) {
  if (runtime_slot() != nullptr) {
    throw RuntimeError("HMPI_Init called twice on the same process");
  }
  // Construct before storing: the Runtime constructor opens spans and may
  // touch other process-local slots, which can rehash the table and
  // invalidate a slot reference held across it.
  auto runtime = std::make_shared<Runtime>(proc, std::move(config));
  runtime_slot() = std::move(runtime);
}

void finalize(int exitcode) {
  require_runtime().finalize(exitcode);
  runtime_slot().reset();
}

}  // namespace detail
}  // namespace hmpi::capi

void HMPI_Init(hmpi::mp::Proc& proc, hmpi::RuntimeConfig config) {
  hmpi::capi::detail::init(proc, std::move(config));
}

void HMPI_Finalize(int exitcode) { hmpi::capi::detail::finalize(exitcode); }

bool HMPI_Is_host() { return hmpi::capi::detail::require_runtime().is_host(); }

bool HMPI_Is_free() { return hmpi::capi::detail::require_runtime().is_free(); }

bool HMPI_Is_member(const HMPI_Group& gid) {
  return gid.has_value() && gid->valid();
}

hmpi::mp::Comm HMPI_Comm_world() {
  return hmpi::capi::detail::require_runtime().world_comm();
}

void HMPI_Recon(const std::function<void(hmpi::mp::Proc&)>& benchmark) {
  hmpi::capi::detail::require_runtime().recon(benchmark);
}

void HMPI_Recon_with_timeout(const std::function<void(hmpi::mp::Proc&)>& benchmark,
                             double timeout_s, int max_attempts,
                             double backoff) {
  hmpi::RetryPolicy policy;
  policy.timeout_s = timeout_s;
  policy.max_attempts = max_attempts;
  policy.backoff = backoff;
  hmpi::capi::detail::require_runtime().recon(benchmark, policy);
}

double HMPI_Timeof(const hmpi::pmdl::Model& perf_model,
                   std::span<const hmpi::pmdl::ParamValue> model_parameters) {
  return hmpi::capi::detail::require_runtime().timeof(perf_model,
                                                      model_parameters);
}

std::vector<double> HMPI_Timeof_batch(
    const hmpi::pmdl::Model& perf_model,
    std::span<const std::vector<hmpi::pmdl::ParamValue>> parameter_sets) {
  return hmpi::capi::detail::require_runtime().timeof_batch(perf_model,
                                                            parameter_sets);
}

void HMPI_Group_create(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                       std::span<const hmpi::pmdl::ParamValue> model_parameters) {
  hmpi::support::require(gid != nullptr, "HMPI_Group_create: gid must not be null");
  *gid = hmpi::capi::detail::require_runtime().group_create(perf_model,
                                                            model_parameters);
}

void HMPI_Group_free(HMPI_Group* gid) {
  hmpi::support::require(gid != nullptr && gid->has_value(),
                         "HMPI_Group_free: not a live group");
  hmpi::capi::detail::require_runtime().group_free(**gid);
  gid->reset();
}

int HMPI_Group_is_degraded(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(),
                         "HMPI_Group_is_degraded: not a live group");
  return gid->degraded() ? 1 : 0;
}

double HMPI_Group_degraded_delta(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(),
                         "HMPI_Group_degraded_delta: not a live group");
  return gid->degraded_delta();
}

void HMPI_Group_fail(HMPI_Group* gid) {
  hmpi::support::require(gid != nullptr && gid->has_value(),
                         "HMPI_Group_fail: not a live group");
  hmpi::capi::detail::require_runtime().group_fail(**gid);
  gid->reset();
}

void HMPI_Group_respawn(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                        std::span<const hmpi::pmdl::ParamValue> model_parameters) {
  hmpi::support::require(gid != nullptr && gid->has_value(),
                         "HMPI_Group_respawn: not a live group");
  *gid = hmpi::capi::detail::require_runtime().group_respawn(
      **gid, perf_model, model_parameters);
}

void HMPI_Group_migrate(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                        std::span<const hmpi::pmdl::ParamValue> model_parameters) {
  hmpi::support::require(gid != nullptr && gid->has_value(),
                         "HMPI_Group_migrate: not a live group");
  *gid = hmpi::capi::detail::require_runtime().group_migrate(
      **gid, perf_model, model_parameters);
}

int HMPI_Adapt_enabled() {
  return hmpi::capi::detail::require_runtime().adapt_enabled() ? 1 : 0;
}

int HMPI_Adapt_observe(const HMPI_Group& gid, double measured_s,
                       double* severity) {
  hmpi::support::require(gid.has_value(),
                         "HMPI_Adapt_observe: not a live group");
  const hmpi::adapt::AdaptDecision decision =
      hmpi::capi::detail::require_runtime().adapt_observe(*gid, measured_s);
  if (severity != nullptr) *severity = decision.severity;
  return decision.migrate ? 1 : 0;
}

int HMPI_Adapt_migrate(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                       std::span<const hmpi::pmdl::ParamValue> model_parameters,
                       long long state_bytes) {
  hmpi::support::require(gid != nullptr && gid->has_value(),
                         "HMPI_Adapt_migrate: not a live group");
  hmpi::Runtime::AdaptMigrateOptions options;
  options.state_bytes = state_bytes;
  const hmpi::Runtime::AdaptOutcome outcome =
      hmpi::capi::detail::require_runtime().adapt_migrate(
          **gid, perf_model, model_parameters, options);
  if (!outcome.member) gid->reset();
  return outcome.member ? 1 : 0;
}

void HMPI_Adapt_quiesce() {
  hmpi::capi::detail::require_runtime().adapt_quiesce();
}

int HMPI_Adapt_quiesced() {
  return hmpi::capi::detail::require_runtime().adapt_quiesced() ? 1 : 0;
}

void HMPI_Adapt_ledger_json(std::ostream& os) {
  hmpi::capi::detail::require_runtime().adapt_write_ledger_json(os);
}

int HMPI_Group_rank(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(), "HMPI_Group_rank: not a live group");
  return gid->rank();
}

int HMPI_Group_size(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(), "HMPI_Group_size: not a live group");
  return gid->size();
}

const hmpi::mp::Comm* HMPI_Get_comm(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(), "HMPI_Get_comm: not a live group");
  return &gid->comm();
}

std::vector<long long> HMPI_Group_topology(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(), "HMPI_Group_topology: not a live group");
  return gid->shape();
}

std::vector<long long> HMPI_Group_coordof(const HMPI_Group& gid, int rank) {
  hmpi::support::require(gid.has_value(), "HMPI_Group_coordof: not a live group");
  return gid->coordinates_of(rank);
}

std::vector<double> HMPI_Group_performances(const HMPI_Group& gid) {
  hmpi::support::require(gid.has_value(),
                         "HMPI_Group_performances: not a live group");
  return hmpi::capi::detail::require_runtime().group_performances(*gid);
}

std::vector<hmpi::Runtime::ProcessorInfo> HMPI_Get_processors_info() {
  return hmpi::capi::detail::require_runtime().processors_info();
}

hmpi::map::SearchStats HMPI_Get_mapper_stats() {
  return hmpi::capi::detail::require_runtime().last_search_stats();
}

hmpi::Runtime::EstimatorStats HMPI_Get_estimator_stats() {
  return hmpi::capi::detail::require_runtime().estimator_stats();
}

int HMPI_Coll_set_policy(hmpi::coll::CollOp op, std::string_view algorithm) {
  const int algo = hmpi::coll::algo_from_name(op, std::string(algorithm));
  if (algo < 0) return -1;
  hmpi::Runtime& rt = hmpi::capi::detail::require_runtime();
  hmpi::coll::CollPolicy policy = rt.coll_policy();
  policy.set_choice(op, algo);
  rt.coll_set_policy(policy);
  return 0;
}

std::string_view HMPI_Coll_get_selection(hmpi::coll::CollOp op,
                                         std::size_t bytes,
                                         double* predicted_s) {
  const hmpi::Runtime::CollSelection selection =
      hmpi::capi::detail::require_runtime().coll_selection(op, bytes);
  if (predicted_s != nullptr) *predicted_s = selection.predicted_s;
  return hmpi::coll::algo_name(op, selection.algo);
}

void HMPI_Group_observed(const HMPI_Group& gid, double measured_s, int runs) {
  hmpi::support::require(gid.has_value(),
                         "HMPI_Group_observed: not a live group");
  hmpi::capi::detail::require_runtime().group_observed(*gid, measured_s, runs);
}

void HMPI_Metrics_dump(std::ostream& os) {
  hmpi::telemetry::metrics().write_json(os);
}

void HMPI_Trace_export_json(std::ostream& os) {
  hmpi::capi::detail::require_runtime().trace_export_json(os);
}

void HMPI_Critical_path_json(std::ostream& os) {
  hmpi::capi::detail::require_runtime().critical_path_json(os);
}

std::vector<hmpi::Runtime::BlameEntry> HMPI_Blame_top(int k) {
  return hmpi::capi::detail::require_runtime().blame_top(k);
}

double HMPI_Prediction_error(std::string_view model_name) {
  return hmpi::telemetry::predictions().mean_relative_error(model_name);
}

hmpi::sched::JobId HMPI_Sched_submit(hmpi::sched::JobSpec spec) {
  return hmpi::capi::detail::require_runtime().scheduler().submit(
      std::move(spec));
}

std::optional<hmpi::sched::JobInfo> HMPI_Sched_poll(hmpi::sched::JobId job) {
  return hmpi::capi::detail::require_runtime().scheduler().poll(job);
}

int HMPI_Sched_cancel(hmpi::sched::JobId job) {
  return hmpi::capi::detail::require_runtime().scheduler().cancel(job) ? 1 : 0;
}

void HMPI_Sched_advance() {
  hmpi::capi::detail::require_runtime().scheduler().run_until_idle();
}

hmpi::sched::SchedStats HMPI_Sched_stats() {
  return hmpi::capi::detail::require_runtime().scheduler().stats();
}

void HMPI_Sched_stats_json(std::ostream& os) {
  hmpi::capi::detail::require_runtime().scheduler().stats_json(os);
}
