// Paper-style HMPI interface.
//
// The paper presents HMPI as C functions (HMPI_Init, HMPI_Recon,
// HMPI_Group_create, ...). This header provides those spellings over the
// C++ runtime so that application code can read like the paper's Figures 5
// and 8. The functions operate on a per-thread current runtime: each
// simulated process calls HMPI_Init first, every other call implicitly uses
// that process's runtime, and HMPI_Finalize tears it down.
//
// The C++ API (hmpi::Runtime) remains the primary interface; this layer is a
// thin veneer for familiarity.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string_view>

#include "hmpi/runtime.hpp"

namespace hmpi::capi {

/// The per-thread current runtime (set by HMPI_Init).
Runtime* current();

}  // namespace hmpi::capi

/// Opaque group handle, as in the paper.
using HMPI_Group = std::optional<hmpi::Group>;

/// HMPI_Init: binds this simulated process to a fresh runtime. Collective.
void HMPI_Init(hmpi::mp::Proc& proc, hmpi::RuntimeConfig config = hmpi::RuntimeConfig());

/// HMPI_Finalize: collective; destroys this process's runtime.
void HMPI_Finalize(int exitcode);

/// HMPI_Is_host / HMPI_Is_free / HMPI_Is_member.
bool HMPI_Is_host();
bool HMPI_Is_free();
bool HMPI_Is_member(const HMPI_Group& gid);

/// HMPI_COMM_WORLD accessor (the paper's predefined communication universe).
hmpi::mp::Comm HMPI_Comm_world();

/// HMPI_Recon: refreshes processor speed estimates with a benchmark.
void HMPI_Recon(const std::function<void(hmpi::mp::Proc&)>& benchmark);

/// HMPI_Recon with a failure-detection policy: each benchmark attempt gets a
/// virtual-time budget of `timeout_s` (growing by `backoff` per retry, up to
/// `max_attempts` attempts); a processor that exhausts every attempt is
/// marked suspect and skipped by group-member selection until a later
/// successful recon (docs/faults.md).
void HMPI_Recon_with_timeout(const std::function<void(hmpi::mp::Proc&)>& benchmark,
                             double timeout_s, int max_attempts = 1,
                             double backoff = 2.0);

/// HMPI_Timeof: predicted execution time without running the algorithm.
double HMPI_Timeof(const hmpi::pmdl::Model& perf_model,
                   std::span<const hmpi::pmdl::ParamValue> model_parameters);

/// HMPI_Timeof_batch: prices every parameter set against one model in a
/// single call — the model is compiled once and the candidate/network
/// snapshot is shared, so sweeping N problem sizes costs far less than N
/// HMPI_Timeof calls. Entry i is bit-identical to HMPI_Timeof(perf_model,
/// parameter_sets[i]) made at the same instant. Local operation.
std::vector<double> HMPI_Timeof_batch(
    const hmpi::pmdl::Model& perf_model,
    std::span<const std::vector<hmpi::pmdl::ParamValue>> parameter_sets);

/// HMPI_Group_create: fills `gid` for selected members (empty otherwise).
void HMPI_Group_create(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                       std::span<const hmpi::pmdl::ParamValue> model_parameters);

/// HMPI_Group_free: collective over the group's members.
void HMPI_Group_free(HMPI_Group* gid);

/// HMPI_Group_is_degraded: 1 when the group was created in degraded mode
/// (dead ranks excluded or suspect processors present), 0 otherwise.
int HMPI_Group_is_degraded(const HMPI_Group& gid);

/// HMPI_Group_degraded_delta: predicted extra execution time (seconds) of
/// the degraded group over the one a healthy network would have produced;
/// 0 for a non-degraded group.
double HMPI_Group_degraded_delta(const HMPI_Group& gid);

/// HMPI_Group_fail: abandons a group whose member died, without the
/// group_free barrier; revokes its communicator so blocked survivors unwind.
void HMPI_Group_fail(HMPI_Group* gid);

/// HMPI_Group_respawn: rebuilds the group after member death (collective
/// over the survivors and all free processes). On return `*gid` is the new
/// group for selected processes and empty for the rest.
void HMPI_Group_respawn(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                        std::span<const hmpi::pmdl::ParamValue> model_parameters);

/// HMPI_Group_migrate: voluntary live migration — re-selects the roster
/// from the members plus the free pool at current speed estimates and moves
/// the group there (collective over the members, all alive, and all free
/// processes). On return `*gid` is the new group for selected processes and
/// empty for released ones (docs/adaptation.md).
void HMPI_Group_migrate(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                        std::span<const hmpi::pmdl::ParamValue> model_parameters);

// --- closed-loop adaptation (docs/adaptation.md) ----------------------------

/// HMPI_Adapt_enabled: 1 when the adaptation policy is active (config or
/// HMPI_ADAPT environment override), else 0.
int HMPI_Adapt_enabled();

/// HMPI_Adapt_observe: feeds one measured round of `gid` into the
/// adaptation controller; returns 1 when the (parent-decided, broadcast)
/// verdict asks for HMPI_Adapt_migrate, else 0. Collective over the
/// members when adaptation is enabled; a local no-op returning 0 when
/// disabled. `severity`, when non-null, receives the smoothed violation.
int HMPI_Adapt_observe(const HMPI_Group& gid, double measured_s,
                       double* severity = nullptr);

/// HMPI_Adapt_migrate: prices a re-mapping of `gid` and migrates when the
/// predicted gain clears the respawn + state-transfer cost (rolling back a
/// move that priced worse). Returns 1 if this process is a member of the
/// resulting group, else 0 (it was released to the free pool and should
/// keep serving HMPI_Group_create). Collective like group_migrate.
int HMPI_Adapt_migrate(HMPI_Group* gid, const hmpi::pmdl::Model& perf_model,
                       std::span<const hmpi::pmdl::ParamValue> model_parameters,
                       long long state_bytes = 0);

/// HMPI_Adapt_quiesce: releases every process waiting in the group-creation
/// rendezvous; their pending/future HMPI_Group_create calls return empty.
void HMPI_Adapt_quiesce();

/// HMPI_Adapt_quiesced: 1 after any process called HMPI_Adapt_quiesce.
int HMPI_Adapt_quiesced();

/// HMPI_Adapt_ledger_json: writes this process's adaptation decision ledger
/// as `{"adaptations": [...]}` (the group parent's is the canonical one).
void HMPI_Adapt_ledger_json(std::ostream& os);

/// HMPI_Group_rank / HMPI_Group_size.
int HMPI_Group_rank(const HMPI_Group& gid);
int HMPI_Group_size(const HMPI_Group& gid);

/// HMPI_Get_comm: the MPI communicator of the group (local operation).
const hmpi::mp::Comm* HMPI_Get_comm(const HMPI_Group& gid);

/// HMPI_Group_topology: extents of the model's processor arrangement.
std::vector<long long> HMPI_Group_topology(const HMPI_Group& gid);

/// HMPI_Group_coordof: coordinates of a group rank in that arrangement.
std::vector<long long> HMPI_Group_coordof(const HMPI_Group& gid, int rank);

/// HMPI_Group_performances: speed estimates of the members, by group rank.
std::vector<double> HMPI_Group_performances(const HMPI_Group& gid);

/// HMPI_Get_processors_info: per-machine name/speed/hosted-ranks view.
std::vector<hmpi::Runtime::ProcessorInfo> HMPI_Get_processors_info();

/// HMPI_Get_mapper_stats: cost of the most recent HMPI_Timeof /
/// HMPI_Group_create selection on this process (estimator evaluations,
/// cache hits/misses, wall seconds, worker threads). Zeroes before the
/// first search. Local operation.
hmpi::map::SearchStats HMPI_Get_mapper_stats();

/// HMPI_Get_estimator_stats: cumulative estimator-backend accounting on this
/// process — the effective EstimatorMode, world-shared plan-cache
/// compiles/hits, and the compiled/delta evaluation counters summed over
/// every search this process drove (docs/estimator.md). Local operation.
hmpi::Runtime::EstimatorStats HMPI_Get_estimator_stats();

// --- collective algorithm selection (docs/collectives.md) -------------------

/// HMPI_Coll_set_policy: overrides the algorithm of one collective
/// operation for the whole world ("binomial", "ring", ...; "auto" returns
/// the op to cost-model selection). Returns 0 on success, -1 when the
/// algorithm name is unknown for the op. Takes effect for subsequent
/// collectives on every process; call at a quiescent point.
int HMPI_Coll_set_policy(hmpi::coll::CollOp op, std::string_view algorithm);

/// HMPI_Coll_get_selection: the algorithm the runtime would run for `op`
/// over the whole world with `bytes` of payload, as a stable name, and —
/// when `predicted_s` is non-null — the cost model's predicted virtual
/// duration (negative when the tuner does not predict). Local operation.
std::string_view HMPI_Coll_get_selection(hmpi::coll::CollOp op,
                                         std::size_t bytes,
                                         double* predicted_s = nullptr);

// --- telemetry (docs/observability.md) --------------------------------------

/// HMPI_Group_observed: reports the measured execution time of the algorithm
/// `gid` was created for (over `runs` repetitions), closing the group's
/// prediction-ledger entry. Call before HMPI_Group_free. Local operation.
void HMPI_Group_observed(const HMPI_Group& gid, double measured_s, int runs = 1);

/// HMPI_Metrics_dump: writes the process-wide metrics registry as JSON.
void HMPI_Metrics_dump(std::ostream& os);

/// HMPI_Trace_export_json: writes the combined Chrome `trace_event` JSON
/// (telemetry spans + the world tracer's virtual-time events, when a tracer
/// is attached, + causal send->recv flow arrows). Loads directly in
/// Perfetto / chrome://tracing.
void HMPI_Trace_export_json(std::ostream& os);

/// HMPI_Critical_path_json: writes the `{"critical_path": {...}}` report of
/// the run's causal log — path segments, per-machine / per-link / per-
/// collective blame (docs/observability.md; read by tools/hmpiprof). Local
/// operation; the canonical report is the host's.
void HMPI_Critical_path_json(std::ostream& os);

/// HMPI_Blame_top: the top `k` machines and links by critical-path seconds,
/// most-blamed first. Local operation.
std::vector<hmpi::Runtime::BlameEntry> HMPI_Blame_top(int k);

/// HMPI_Prediction_error: mean relative error |predicted - measured| /
/// measured over the prediction ledger's closed samples for `model_name`
/// (all models when empty). NaN when no sample matches.
double HMPI_Prediction_error(std::string_view model_name = {});

// --- scheduler service (docs/scheduler.md) ----------------------------------

/// HMPI_Sched_submit: enqueues a job on the world-shared hmpictld scheduler
/// service (created on first use from RuntimeConfig::sched + the
/// HMPI_SCHED_* env overrides) and returns its job id. The scheduler runs
/// on its own virtual timeline; advance it with HMPI_Sched_advance. Any
/// process may submit — the service is shared, so ids are world-unique.
hmpi::sched::JobId HMPI_Sched_submit(hmpi::sched::JobSpec spec);

/// HMPI_Sched_poll: status of a submitted job; empty for an unknown id.
std::optional<hmpi::sched::JobInfo> HMPI_Sched_poll(hmpi::sched::JobId job);

/// HMPI_Sched_cancel: cancels a pending or running job. Returns 1 on
/// success, 0 when the id is unknown or the job already completed.
int HMPI_Sched_cancel(hmpi::sched::JobId job);

/// HMPI_Sched_advance: drains the scheduler's event heap — every submitted
/// job arrives, dispatches, and completes — and publishes the sched.*
/// gauges. Deterministic: the virtual timeline depends only on the
/// submitted specs and the speed estimates, never on which process drains.
void HMPI_Sched_advance();

/// HMPI_Sched_stats: aggregate scheduler accounting (queue depths,
/// makespan, utilization, mean wait/turnaround). Local operation.
hmpi::sched::SchedStats HMPI_Sched_stats();

/// HMPI_Sched_stats_json: writes the `{"scheduler": {...}}` summary +
/// per-job records document that tools/telemetry_check validates.
void HMPI_Sched_stats_json(std::ostream& os);
