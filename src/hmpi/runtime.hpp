// The HMPI runtime: the paper's contribution (§2).
//
// Lifecycle of a typical HMPI application (paper Figure 5 / Figure 8):
//
//   hmpi::Runtime rt(proc);                         // HMPI_Init
//   rt.recon(bench);                                // HMPI_Recon
//   double t = rt.timeof(model, params);            // HMPI_Timeof
//   auto group = rt.group_create(model, params);    // HMPI_Group_create
//   if (group) {
//     mp::Comm comm = group->comm();                // HMPI_Get_comm
//     ... standard message-passing code ...
//     rt.group_free(*group);                        // HMPI_Group_free
//   }
//   rt.finalize(0);                                 // HMPI_Finalize
//
// Semantics reproduced from the paper:
//   * HMPI_COMM_WORLD is the world communicator; the host is world rank 0.
//   * A process is *free* iff it is not the host and not a member of any
//     live group. HMPI_Group_create is collective over the parent (a
//     non-free caller) and ALL currently free processes.
//   * The parent belongs to the created group, pinned to the model's
//     `parent` abstract processor; group rank a corresponds to abstract
//     processor a of the performance model.
//   * HMPI_Recon is collective over all world processes: each runs the
//     benchmark function, and the measured (virtual) time refreshes the
//     runtime's speed estimate of its processor, in units of "benchmark
//     executions per second" — the same unit the models' node volumes use.
//   * HMPI_Timeof is local: it predicts the execution time of the group
//     that *would* be created (it runs the same mapper internally).
//
// The runtime state shared across processes (speed estimates, free set,
// pending group creations) lives in a world-level blackboard — the moral
// equivalent of the HMPI daemon processes of the real implementation.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "estimator/estimator.hpp"
#include "hmpi/adapt.hpp"
#include "hnoc/network_model.hpp"
#include "mapper/mapper.hpp"
#include "mpsim/comm.hpp"
#include "pmdl/model.hpp"
#include "sched/scheduler.hpp"
#include "telemetry/critpath.hpp"
#include "telemetry/sinks.hpp"

namespace hmpi {

/// Benchmark times below this are clamped before inverting into a speed so a
/// degenerate (or mis-written) benchmark cannot produce an infinite estimate
/// (docs/faults.md).
inline constexpr double kMinBenchTime = 1e-9;

/// Retry/timeout policy for Recon benchmarks (docs/faults.md). A benchmark
/// attempt whose *virtual* elapsed time exceeds the current budget is
/// considered hung; the budget grows by `backoff` per retry (a slow-but-alive
/// machine gets progressively more headroom). A processor that exhausts every
/// attempt is marked *suspect*: it keeps participating in collectives but is
/// excluded from group-member selection until a later recon succeeds on it.
struct RetryPolicy {
  /// Benchmark attempts before declaring the processor suspect (>= 1).
  int max_attempts = 1;
  /// Virtual-time budget of the first attempt; infinity disables the check
  /// (the default policy is zero-cost: identical traffic to no policy).
  double timeout_s = std::numeric_limits<double>::infinity();
  /// Budget multiplier applied on each retry (exponential backoff).
  double backoff = 2.0;

  /// True when a timeout can actually fire.
  bool enabled() const noexcept {
    return timeout_s != std::numeric_limits<double>::infinity();
  }
};

/// Health of a world rank as the runtime sees it.
enum class Health {
  kAlive,    ///< Participates normally.
  kSuspect,  ///< On a processor that timed out in recon; excluded from
             ///< member selection but still part of every collective.
  kDead,     ///< Killed by an injected fault; excluded from everything.
};

/// Collective-algorithm selection settings (docs/collectives.md).
struct CollConfig {
  /// Fixed per-op algorithm overrides; kAuto entries are resolved by the
  /// tuner's cost search. Each op is overridable via an environment
  /// variable HMPI_COLL_<OP>=<algo-name> (e.g. HMPI_COLL_BCAST=chain,
  /// HMPI_COLL_ALLGATHER=ring).
  coll::CollPolicy policy;
  /// Price every candidate algorithm per (op, roster, size bucket) with the
  /// schedule cost model and run the predicted-fastest. false pins the
  /// legacy defaults (the pre-subsystem behaviour). Env: HMPI_COLL_TUNER.
  bool tuner = true;
  /// Re-rank candidates by the EWMA of measured/predicted durations,
  /// promoted at Recon's quiescent point. Env: HMPI_COLL_FEEDBACK.
  bool feedback = false;
};

/// How Timeof / Group_create searches price candidate arrangements
/// (docs/estimator.md). Every mode returns bit-identical selections and
/// estimates — the estimator determinism contract — so the toggle is a pure
/// CPU trade, safe to A/B via the HMPI_EST_COMPILE environment variable.
enum class EstimatorMode {
  kInterpret,  ///< Walk the pmdl scheme AST per evaluation (pre-IR path).
  kCompiled,   ///< Compile each model once to the flat cost IR
               ///< (estimator/plan.hpp) and evaluate that.
  kDelta,      ///< Compiled, plus incremental suffix replay in the hill
               ///< climbers: a swap/substitution move re-runs only the IR
               ///< ops from the first op touching a changed processor.
};

/// Tunables of the runtime (identical at every process).
struct RuntimeConfig {
  /// Process-selection algorithm; null selects the library default
  /// (swap-refine).
  std::shared_ptr<const map::Mapper> mapper;
  /// Cost-model overheads used by Timeof / Group_create (defaults match the
  /// execution engine).
  est::EstimateOptions estimate;
  /// Default retry/timeout policy applied by recon() (the default never
  /// times out, matching pre-fault-layer behaviour exactly).
  RetryPolicy recon_retry;
  /// Worker threads driving the group-selection search (>= 1). The parallel
  /// mappers return bit-identical selections for every value
  /// (docs/mapper.md); raising this only buys wall-clock time. 1 runs the
  /// search inline with no pool.
  int search_threads = 1;
  /// Memoise estimator calls across Timeof / Group_create through a shared
  /// est::EstimateCache. Entries are keyed by the NetworkModel version
  /// counter, which every recon speed update bumps, so a stale makespan can
  /// never be served (docs/mapper.md).
  bool estimate_cache = true;
  /// Shard count of that cache (clamped to >= 1). Batch searches over large
  /// candidate sets probe thousands of keys per round; more shards cut mutex
  /// contention without changing any value (docs/estimator.md). Env override
  /// HMPI_EST_SHARDS.
  int est_shards = static_cast<int>(est::EstimateCache::kDefaultShards);
  /// Candidate-scoring backend of the selection searches (docs/estimator.md).
  /// Env override HMPI_EST_COMPILE: "0"/"off"/"interpret" -> kInterpret,
  /// "1"/"full"/"compile"/"compiled" -> kCompiled, "2"/"delta" -> kDelta.
  /// Selections are bit-identical across modes; this trades CPU only.
  EstimatorMode estimator = EstimatorMode::kDelta;
  /// Telemetry output files written by the host's finalize()
  /// (docs/observability.md). Environment variables HMPI_METRICS_JSON /
  /// HMPI_TRACE_JSON override these paths; empty = sink disabled.
  telemetry::Sinks telemetry;
  /// Collective algorithm selection (docs/collectives.md). The runtime
  /// installs a coll::CollTuner as the world's selector; these settings
  /// configure it.
  CollConfig coll;
  /// Closed-loop adaptation policy (docs/adaptation.md). Disabled by
  /// default: with adapt.enabled false (or HMPI_ADAPT=off) the runtime's
  /// selections and traces are bit-identical to a build without the
  /// subsystem. Env overrides: HMPI_ADAPT, HMPI_ADAPT_THRESHOLD,
  /// HMPI_ADAPT_COOLDOWN.
  adapt::AdaptConfig adapt;
  /// The hmpictld scheduler service (docs/scheduler.md), world-shared and
  /// lazily created by Runtime::scheduler() on first use. `execute` is
  /// forced off inside the runtime (a nested World::run cannot start from a
  /// simulated process), so jobs are serviced for the estimator's predicted
  /// makespan. Env overrides: HMPI_SCHED_POLICY, HMPI_SCHED_SLOTS,
  /// HMPI_SCHED_BACKFILL, HMPI_SCHED_BACKFILL_DEPTH, HMPI_SCHED_PREEMPT,
  /// HMPI_SCHED_PREEMPT_GAP, HMPI_SCHED_AGING.
  sched::SchedConfig sched;
};

class Runtime;

/// Handle to a group of processes created by Runtime::group_create.
/// Group rank a executes abstract processor a of the performance model.
class Group {
 public:
  Group() = default;

  bool valid() const noexcept { return comm_.valid(); }

  /// Communicator over the group, ordered by abstract processor
  /// (HMPI_Get_comm). Safe to use with all message-passing routines.
  const mp::Comm& comm() const noexcept { return comm_; }

  /// This process's rank in the group (HMPI_Group_rank).
  int rank() const noexcept { return comm_.rank(); }
  /// Number of processes in the group (HMPI_Group_size).
  int size() const noexcept { return comm_.size(); }

  /// Group rank of the parent process.
  int parent_rank() const noexcept { return parent_rank_; }

  /// The execution time the runtime predicted when selecting this group.
  double estimated_time() const noexcept { return estimated_time_; }

  /// True when the group was formed in degraded mode: dead ranks were
  /// excluded from the rendezvous or suspect processors were present, so the
  /// selection drew from fewer candidates than a healthy run would have.
  bool degraded() const noexcept { return degraded_; }

  /// Predicted slowdown of degraded mode: estimated_time() minus the time
  /// the runtime predicts for the group it would have built had every
  /// excluded process been healthy (clamped at 0; 0 when not degraded).
  double degraded_delta() const noexcept { return degraded_delta_; }

  /// World-unique identifier of this group (keys the prediction ledger).
  long long id() const noexcept { return id_; }

  /// Per-processor speed estimates captured when the group was selected —
  /// the baseline Runtime::adapt_recon measures drift against.
  const std::vector<double>& speed_snapshot() const noexcept {
    return speed_snapshot_;
  }

  /// World ranks of the members, by group rank.
  const std::vector<int>& members() const { return comm_.group(); }

  /// Extents of the performance model's coordinate system (e.g. {p} or
  /// {m, m}) — the group's topology (HeteroMPI's HMPI_Group_topology).
  const std::vector<long long>& shape() const noexcept { return shape_; }

  /// Coordinates of group rank `r` in the model's arrangement
  /// (HeteroMPI's HMPI_Group_coordof).
  std::vector<long long> coordinates_of(int r) const;

  /// Group rank at the given coordinates.
  int rank_at(std::span<const long long> coordinates) const;

 private:
  friend class Runtime;

  mp::Comm comm_;
  int parent_rank_ = -1;
  double estimated_time_ = 0.0;
  long long id_ = -1;
  std::vector<long long> shape_;
  bool degraded_ = false;
  double degraded_delta_ = 0.0;
  std::vector<double> speed_snapshot_;
};

/// Per-process handle to the HMPI runtime system (see file comment).
class Runtime {
 public:
  /// HMPI_Init. Collective: every world process must construct a Runtime
  /// before any other HMPI call. `config` must be identical everywhere.
  explicit Runtime(mp::Proc& proc, RuntimeConfig config = RuntimeConfig());

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// HMPI_Finalize. Collective barrier; no HMPI calls may follow.
  void finalize(int exit_code = 0);

  ~Runtime();

  /// HMPI_COMM_WORLD.
  mp::Comm world_comm() const { return proc_->world_comm(); }

  /// HMPI_Is_host: world rank 0.
  bool is_host() const noexcept { return proc_->rank() == 0; }

  /// HMPI_Is_free: not the host and not a member of any live group.
  bool is_free() const;

  /// HMPI_Is_member.
  bool is_member(const Group& group) const noexcept { return group.valid(); }

  /// HMPI_Recon: collective over all world processes. Runs `bench` (which
  /// should execute one benchmark unit of the application's core
  /// computation) and refreshes the speed estimate of this processor, under
  /// the config's default RetryPolicy.
  void recon(const std::function<void(mp::Proc&)>& bench);

  /// HMPI_Recon with an explicit retry/timeout policy: a processor whose
  /// benchmark exceeds the per-attempt budget on every attempt is marked
  /// suspect (excluded from member selection; a later successful recon
  /// recovers it). Collective over all world processes.
  void recon(const std::function<void(mp::Proc&)>& bench,
             const RetryPolicy& policy);

  /// Recon restricted to the members of `comm` (all of them must call it).
  /// This is the failure-aware variant: after a crash, survivors refresh
  /// their estimates over a communicator that excludes the dead, where the
  /// world-collective recon would raise PeerFailedError.
  void recon_on(const mp::Comm& comm, const std::function<void(mp::Proc&)>& bench,
                const RetryPolicy& policy = RetryPolicy());

  /// HMPI_Timeof: local. Predicted execution time (seconds) of the group
  /// that would be created for `model(params)` right now, with this process
  /// as the parent.
  double timeof(const pmdl::Model& model,
                std::span<const pmdl::ParamValue> params) const;
  double timeof(const pmdl::Model& model,
                std::initializer_list<pmdl::ParamValue> params) const {
    return timeof(model, std::span<const pmdl::ParamValue>(params.begin(),
                                                           params.size()));
  }

  /// HMPI_Timeof_batch: prices every parameter set in `param_sets` against
  /// `model` in one call, returning the predicted times in order. The model
  /// is compiled once per distinct instantiation and the network snapshot /
  /// candidate set are taken once, so pricing N problem sizes (the
  /// group_auto_create sweep, application-level autotuning) avoids N times
  /// the per-call setup. Each entry is bit-identical to the corresponding
  /// timeof() call made at the same instant. Local, like timeof.
  std::vector<double> timeof_batch(
      const pmdl::Model& model,
      std::span<const std::vector<pmdl::ParamValue>> param_sets) const;

  /// HMPI_Group_create: collective over the parent (a non-free caller;
  /// exactly one) and all free processes. `model`/`params` are read at the
  /// parent; free callers may pass empty params. Returns the group handle
  /// for selected members, std::nullopt for participants left free.
  std::optional<Group> group_create(const pmdl::Model& model,
                                    std::span<const pmdl::ParamValue> params);
  std::optional<Group> group_create(const pmdl::Model& model,
                                    std::initializer_list<pmdl::ParamValue> params) {
    return group_create(model, std::span<const pmdl::ParamValue>(params.begin(),
                                                                 params.size()));
  }

  /// Extension (HeteroMPI's HMPI_Group_auto_create): searches the number of
  /// processes p in [1, max_p] that minimises the predicted time, then
  /// creates that group. `params_for` builds the parameter pack for a given
  /// p. Collective like group_create; only the parent's arguments are used.
  std::optional<Group> group_auto_create(
      const pmdl::Model& model,
      const std::function<std::vector<pmdl::ParamValue>(int p)>& params_for,
      int max_p);

  /// HMPI_Group_free: collective over the group's members.
  void group_free(Group& group);

  /// Declares a group failed and abandons it without the group_free barrier
  /// (which would hang on dead members). Revokes the group's communicator
  /// context — members still blocked on alive peers of the group unwind with
  /// RevokedError — and releases this process's membership. Call from the
  /// handler of PeerFailedError / RevokedError; every survivor must call
  /// either this or group_respawn.
  void group_fail(Group& group);

  /// Rebuilds a group after member death. Collective over the survivors of
  /// `group` (every one must call it, typically from a PeerFailedError /
  /// RevokedError handler) and all currently free processes. Internally:
  /// revokes the old context, releases the survivors' membership, elects the
  /// parent (the original parent if alive, else the surviving member with
  /// the lowest group rank), and runs a fresh degraded-mode group_create —
  /// so replacement members can be drafted from the free pool. Returns the
  /// new group for selected processes, std::nullopt for the rest (they
  /// become free). `model`/`params` are read at the elected parent. Not
  /// concurrency-safe against unrelated simultaneous group_create calls.
  std::optional<Group> group_respawn(Group& group, const pmdl::Model& model,
                                     std::span<const pmdl::ParamValue> params);
  std::optional<Group> group_respawn(Group& group, const pmdl::Model& model,
                                     std::initializer_list<pmdl::ParamValue> params) {
    return group_respawn(group, model,
                         std::span<const pmdl::ParamValue>(params.begin(),
                                                           params.size()));
  }

  /// Voluntary live migration (HeteroMPI has no analogue; docs/adaptation.md):
  /// re-selects the group's roster from its current members plus the free
  /// pool at TODAY's speed estimates and moves the group there. Collective
  /// over the group's members (all alive — use group_respawn after a death)
  /// and all free processes. Returns the new group for selected processes,
  /// std::nullopt for members the re-selection released to the free pool.
  /// `on_handoff`, when set, is invoked on every OLD member once the new
  /// roster is known, before group_migrate returns — the state handoff
  /// hook (arguments: this process's old group rank, the new member world
  /// ranks); the application moves its data there before resuming.
  using HandoffHook =
      std::function<void(int old_rank, const std::vector<int>& new_members)>;
  std::optional<Group> group_migrate(Group& group, const pmdl::Model& model,
                                     std::span<const pmdl::ParamValue> params,
                                     const HandoffHook& on_handoff = nullptr);

  /// True when the closed-loop adaptation policy is active (config +
  /// HMPI_ADAPT environment override).
  bool adapt_enabled() const noexcept { return adapt_ != nullptr; }

  /// Feeds one measured round into the adaptation controller and returns
  /// the (parent-decided, broadcast) verdict. Collective over the group's
  /// members when adaptation is enabled; a zero-communication no-op
  /// returning a default decision when disabled — so an adaptation-aware
  /// application runs bit-identically with HMPI_ADAPT=off.
  adapt::AdaptDecision adapt_observe(const Group& group, double measured_s);

  /// Re-measures the members' speeds (recon_on over the group) and feeds
  /// the drift vs the group's creation-time snapshot into the controller.
  /// Collective over the group's members. With adaptation disabled the
  /// recon still runs (it is an ordinary recon_on) but no decision is made.
  adapt::AdaptDecision adapt_recon(const Group& group,
                                   const std::function<void(mp::Proc&)>& bench,
                                   const RetryPolicy& policy = RetryPolicy());

  /// Knobs of one adapt_migrate call.
  struct AdaptMigrateOptions {
    /// The decision that led here (the return of adapt_observe /
    /// adapt_recon); its signal and severity annotate the ledger entry and
    /// trace events. Optional — zeros record as a divergence-less entry.
    adapt::AdaptDecision trigger;
    /// Application state a migration must move to the new roster; priced at
    /// the cluster's default link bandwidth and charged to the gate.
    long long state_bytes = 0;
    /// Test hook: bypass the cost/benefit gate and pin the target roster
    /// (world ranks by abstract processor). The rollback guard still runs —
    /// this is how the forced-bad-migration tests exercise it.
    const std::vector<int>* force_roster = nullptr;
    /// State handoff hook, forwarded to group_migrate.
    HandoffHook on_handoff;
  };

  /// How an adapt_migrate call ended, on this process.
  struct AdaptOutcome {
    bool migrated = false;        ///< A new roster was adopted (and kept).
    bool rolled_back = false;     ///< The move was reverted to the old roster.
    bool member = false;          ///< This process is in the resulting group.
    double predicted_gain_s = 0.0;  ///< Gate-time predicted improvement.
  };

  /// The act side of the closed loop: re-prices the group's roster against
  /// the current network model, and when the predicted gain clears the
  /// respawn + state-transfer cost, migrates via group_migrate. A migration
  /// that lands on a WORSE prediction than the old roster is rolled back
  /// (the old roster is re-created) and the controller's backoff is armed.
  /// Collective over the group's members and all free processes whenever
  /// the gate opens; when the gate suppresses the move only the group's
  /// members communicate. On return `group` holds the surviving group for
  /// members (outcome.member), or is invalidated for released processes.
  AdaptOutcome adapt_migrate(Group& group, const pmdl::Model& model,
                             std::span<const pmdl::ParamValue> params,
                             const AdaptMigrateOptions& options);
  AdaptOutcome adapt_migrate(Group& group, const pmdl::Model& model,
                             std::span<const pmdl::ParamValue> params) {
    return adapt_migrate(group, model, params, AdaptMigrateOptions());
  }

  /// Releases every process waiting in the group-creation rendezvous:
  /// subsequent (and pending) group_create calls by free processes return
  /// std::nullopt instead of blocking. The serve-loop pattern
  /// `while (!rt.adapt_quiesced()) { auto g = rt.group_create(...); ... }`
  /// ends when a non-free process calls adapt_quiesce(). Idempotent.
  void adapt_quiesce();

  /// True after any process called adapt_quiesce().
  bool adapt_quiesced() const;

  /// The adaptation decision ledger of THIS process's controller (the
  /// parent's is the canonical record); empty when adaptation is disabled.
  const std::vector<adapt::AdaptRecord>& adapt_ledger() const;

  /// `{"adaptations": [...]}` dump of adapt_ledger() for telemetry_check.
  void adapt_write_ledger_json(std::ostream& os) const;

  /// Health of a world rank: dead (injected crash), suspect (recon timeout
  /// on its processor), or alive.
  Health rank_health(int world_rank) const;

  /// True when `processor` is currently marked suspect.
  bool processor_suspect(int processor) const;

  /// Processors currently marked suspect (diagnostics / tests).
  std::vector<int> suspect_processors() const;

  /// Current speed estimates (diagnostics; the paper's
  /// HMPI_Get_processors_info).
  std::vector<double> processor_speeds() const;

  /// Per-machine view of the executing network: name, current speed
  /// estimate, and the world ranks it hosts (HMPI_Get_processors_info).
  struct ProcessorInfo {
    std::string name;
    double speed_estimate = 0.0;
    std::vector<int> world_ranks;
  };
  std::vector<ProcessorInfo> processors_info() const;

  /// Speed estimates of the group's members, by group rank (HeteroMPI's
  /// HMPI_Group_performances). Local operation.
  std::vector<double> group_performances(const Group& group) const;

  /// Replaces the per-op collective overrides of the world's tuner
  /// (docs/collectives.md). Takes effect for subsequent collectives on
  /// every process (the tuner is world-shared); call it at a quiescent
  /// point — between collectives, e.g. right after recon — or members of an
  /// in-flight collective may disagree on the algorithm.
  void coll_set_policy(const coll::CollPolicy& policy);

  /// The tuner's current per-op overrides (all kAuto unless set).
  coll::CollPolicy coll_policy() const;

  /// What the world's selector would run for `op` over the whole world with
  /// `bytes` of payload right now (HMPI_Coll_get_selection). Local
  /// diagnostics; does not perturb tuner statistics-driven state beyond the
  /// memo.
  struct CollSelection {
    int algo = 0;               ///< Per-op algorithm value (never kAuto).
    double predicted_s = -1.0;  ///< Cost-model prediction; < 0 if not priced.
  };
  CollSelection coll_selection(coll::CollOp op, std::size_t bytes) const;

  /// Cost of the most recent selection search this process drove (timeof or
  /// the parent side of group_create): estimator evaluations, cache
  /// hits/misses, wall time, worker threads. Local diagnostics; zeros
  /// before the first search.
  const map::SearchStats& last_search_stats() const noexcept {
    return last_search_stats_;
  }

  /// Cumulative estimator-backend accounting for this process
  /// (HMPI_Get_estimator_stats; docs/estimator.md). Search counters
  /// accumulate over every search this process drove; the plan-cache
  /// counters are world-shared (every process's compiles land in the same
  /// cache). Local diagnostics.
  struct EstimatorStats {
    EstimatorMode mode = EstimatorMode::kDelta;  ///< Effective (post-env).
    long long plans_compiled = 0;       ///< Plan-cache misses (= compiles).
    long long plan_cache_hits = 0;      ///< Lookups served without compiling.
    long long compiled_evaluations = 0; ///< Arrangements priced on the IR.
    long long delta_evaluations = 0;    ///< ...answered by suffix replay.
    long long delta_ops_replayed = 0;   ///< IR ops the delta path ran.
    long long delta_ops_total = 0;      ///< Ops full evaluation would have run.
  };
  EstimatorStats estimator_stats() const;

  /// Reports the measured execution time of the algorithm a group was
  /// created for, closing that group's entry in the telemetry prediction
  /// ledger (telemetry::predictions()). `measured_s` covers `runs`
  /// repetitions of the modelled computation. Local; call before
  /// group_free, typically from the parent.
  void group_observed(const Group& group, double measured_s, int runs = 1) const;

  /// Writes the combined Chrome `trace_event` JSON: telemetry spans (wall
  /// timeline) merged with the world tracer's virtual-time events when a
  /// tracer is attached, plus send->recv flow arrows derived from the causal
  /// log (docs/observability.md).
  void trace_export_json(std::ostream& os) const;

  /// Critical-path analysis of the run so far, computed over the world's
  /// causal log (telemetry/critpath.hpp; docs/observability.md). Local —
  /// safe mid-run (the log snapshots per-rank under its shard locks), though
  /// the canonical report is the host's at finalize.
  telemetry::CriticalPathReport critical_path_report() const;

  /// Writes the `{"critical_path": {...}}` JSON document of
  /// critical_path_report() with collective names resolved
  /// (HMPI_Critical_path_json; read by tools/hmpiprof).
  void critical_path_json(std::ostream& os) const;

  /// One entry of blame_top: a machine (compute seconds on the critical
  /// path) or a directed machine-pair link (overhead + transfer seconds).
  struct BlameEntry {
    enum class Kind { kMachine, kLink };
    Kind kind = Kind::kMachine;
    int proc = -1;       ///< Machine, or link source machine.
    int peer_proc = -1;  ///< Link destination machine (kLink only).
    double seconds = 0.0;
    double share = 0.0;  ///< seconds / critical-path length.
  };

  /// The top `k` blamed machines and links, by on-path seconds descending
  /// (HMPI_Blame_top). Local, like critical_path_report.
  std::vector<BlameEntry> blame_top(int k) const;

  /// The world-shared hmpictld scheduler service (docs/scheduler.md; C API
  /// HMPI_Sched_*), created on first use from RuntimeConfig::sched with the
  /// HMPI_SCHED_* env overrides applied, its base speeds seeded from the
  /// current (recon-refreshed) network model and re-seeded by every later
  /// recon. Thread-safe: any process may submit/poll/cancel; advance the
  /// virtual queue with sched::Scheduler::step / run_until_idle.
  sched::Scheduler& scheduler();

  /// World ranks currently free (diagnostics / tests).
  std::vector<int> free_ranks() const;

  mp::Proc& proc() const noexcept { return *proc_; }

 private:
  struct Shared;  // world-level blackboard

  /// How a caller enters the group-creation rendezvous: kAuto derives the
  /// role from host/freeness (the normal paper semantics); group_respawn
  /// forces the elected parent to kParent and the other survivors to
  /// kFollower (they may be the host or locally non-free, yet must wait for
  /// the respawn announcement instead of starting their own creation).
  enum class CreateRole { kAuto, kParent, kFollower };

  /// Rollback guard of an adaptation migration, announced by the parent as
  /// part of the creation record. Every participant — members kept, members
  /// released, and freshly drafted free processes alike — compares the
  /// broadcast estimate against `old_pred` and, when the move priced no
  /// better, walks it back by rejoining a follow-up creation pinned to
  /// `restore` (the pre-migration roster). Keeping the verdict derivable
  /// from broadcast state is what makes the protocol symmetric: no
  /// participant needs to know it is inside an adaptation attempt.
  struct MigrationGuard {
    double old_pred = 0.0;      ///< Old roster re-priced at trigger time.
    std::vector<int> restore;   ///< Roster to re-create on rollback.
  };

  /// `forced_members` (world rank per abstract processor, read at the
  /// parent only) skips the mapper and prices the pinned roster as-is — the
  /// adaptation rollback path and the force_roster test hook. `out_members`
  /// receives the selected roster on every participant (state handoff needs
  /// it on processes the selection released). `guard` (parent only) arms
  /// the rollback guard above; `out_rolled_back` reports — on every
  /// participant of the guarded creation — that the guard fired.
  std::optional<Group> group_create_impl(const pmdl::Model& model,
                                         std::span<const pmdl::ParamValue> params,
                                         CreateRole role,
                                         const std::vector<int>* forced_members =
                                             nullptr,
                                         std::vector<int>* out_members = nullptr,
                                         const MigrationGuard* guard = nullptr,
                                         bool* out_rolled_back = nullptr);

  std::optional<Group> group_migrate_impl(Group& group, const pmdl::Model& model,
                                          std::span<const pmdl::ParamValue> params,
                                          const std::vector<int>* forced_members,
                                          const HandoffHook& on_handoff,
                                          const MigrationGuard* guard = nullptr,
                                          bool* out_rolled_back = nullptr);

  /// Emits an adaptation trace instant (kAdaptTrigger / kAdaptMigrate /
  /// kAdaptRollback) when a tracer is attached.
  void note_adapt_event(int trace_kind, long long group_id,
                        adapt::AdaptSignal signal, double severity,
                        double predicted_gain_s) const;

  void recon_impl(const mp::Comm& comm, const std::function<void(mp::Proc&)>& bench,
                  const RetryPolicy& policy);

  std::vector<map::Candidate> candidates_with(int parent_rank,
                                              std::vector<int>* ranks) const;

  /// Search machinery for this process's mapper runs: the lazily created
  /// pool (when search_threads > 1) and the world-shared estimate cache
  /// (when enabled). Const because timeof() is.
  map::SearchContext search_context() const;

  /// Records `stats` as the latest search, accumulates the cumulative
  /// estimator totals, updates the search metrics (estimator_evaluations,
  /// estimate_cache_hits/misses, cache_hit_rate, est.compile.evaluations,
  /// est.delta.*), and emits a kMapperSearch trace event with the named
  /// search payload.
  void note_search(const map::SearchStats& stats) const;

  /// Compiles (or fetches) the plan for `instance` from the world-shared
  /// plan cache ahead of a search, so the compile is attributed here — with
  /// est.compile.* metrics and a kEstCompile trace instant — rather than
  /// inside the first scorer that needs it. No-op under kInterpret.
  void prefetch_plan(const pmdl::ModelInstance& instance) const;

  mp::Proc* proc_;
  RuntimeConfig config_;
  std::shared_ptr<Shared> shared_;
  /// Lazily constructed on the first search so the common case (a process
  /// that never parents a selection) spawns no threads.
  mutable std::unique_ptr<support::ThreadPool> search_pool_;
  mutable map::SearchStats last_search_stats_;
  /// Additive counters of every search this process drove (estimator_stats).
  mutable map::SearchStats search_totals_;
  /// The adaptation decision engine; null when the policy is disabled so
  /// the off path costs nothing (docs/adaptation.md).
  std::unique_ptr<adapt::AdaptationController> adapt_;
  /// Number of live groups THIS process belongs to (local view; see
  /// is_free() for why this is not read off the shared blackboard).
  int live_groups_ = 0;
  bool finalized_ = false;
};

}  // namespace hmpi
