// The HMPI runtime: the paper's contribution (§2).
//
// Lifecycle of a typical HMPI application (paper Figure 5 / Figure 8):
//
//   hmpi::Runtime rt(proc);                         // HMPI_Init
//   rt.recon(bench);                                // HMPI_Recon
//   double t = rt.timeof(model, params);            // HMPI_Timeof
//   auto group = rt.group_create(model, params);    // HMPI_Group_create
//   if (group) {
//     mp::Comm comm = group->comm();                // HMPI_Get_comm
//     ... standard message-passing code ...
//     rt.group_free(*group);                        // HMPI_Group_free
//   }
//   rt.finalize(0);                                 // HMPI_Finalize
//
// Semantics reproduced from the paper:
//   * HMPI_COMM_WORLD is the world communicator; the host is world rank 0.
//   * A process is *free* iff it is not the host and not a member of any
//     live group. HMPI_Group_create is collective over the parent (a
//     non-free caller) and ALL currently free processes.
//   * The parent belongs to the created group, pinned to the model's
//     `parent` abstract processor; group rank a corresponds to abstract
//     processor a of the performance model.
//   * HMPI_Recon is collective over all world processes: each runs the
//     benchmark function, and the measured (virtual) time refreshes the
//     runtime's speed estimate of its processor, in units of "benchmark
//     executions per second" — the same unit the models' node volumes use.
//   * HMPI_Timeof is local: it predicts the execution time of the group
//     that *would* be created (it runs the same mapper internally).
//
// The runtime state shared across processes (speed estimates, free set,
// pending group creations) lives in a world-level blackboard — the moral
// equivalent of the HMPI daemon processes of the real implementation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "estimator/estimator.hpp"
#include "hnoc/network_model.hpp"
#include "mapper/mapper.hpp"
#include "mpsim/comm.hpp"
#include "pmdl/model.hpp"

namespace hmpi {

/// Tunables of the runtime (identical at every process).
struct RuntimeConfig {
  /// Process-selection algorithm; null selects the library default
  /// (swap-refine).
  std::shared_ptr<const map::Mapper> mapper;
  /// Cost-model overheads used by Timeof / Group_create (defaults match the
  /// execution engine).
  est::EstimateOptions estimate;
};

class Runtime;

/// Handle to a group of processes created by Runtime::group_create.
/// Group rank a executes abstract processor a of the performance model.
class Group {
 public:
  Group() = default;

  bool valid() const noexcept { return comm_.valid(); }

  /// Communicator over the group, ordered by abstract processor
  /// (HMPI_Get_comm). Safe to use with all message-passing routines.
  const mp::Comm& comm() const noexcept { return comm_; }

  /// This process's rank in the group (HMPI_Group_rank).
  int rank() const noexcept { return comm_.rank(); }
  /// Number of processes in the group (HMPI_Group_size).
  int size() const noexcept { return comm_.size(); }

  /// Group rank of the parent process.
  int parent_rank() const noexcept { return parent_rank_; }

  /// The execution time the runtime predicted when selecting this group.
  double estimated_time() const noexcept { return estimated_time_; }

  /// World ranks of the members, by group rank.
  const std::vector<int>& members() const { return comm_.group(); }

  /// Extents of the performance model's coordinate system (e.g. {p} or
  /// {m, m}) — the group's topology (HeteroMPI's HMPI_Group_topology).
  const std::vector<long long>& shape() const noexcept { return shape_; }

  /// Coordinates of group rank `r` in the model's arrangement
  /// (HeteroMPI's HMPI_Group_coordof).
  std::vector<long long> coordinates_of(int r) const;

  /// Group rank at the given coordinates.
  int rank_at(std::span<const long long> coordinates) const;

 private:
  friend class Runtime;

  mp::Comm comm_;
  int parent_rank_ = -1;
  double estimated_time_ = 0.0;
  long long id_ = -1;
  std::vector<long long> shape_;
};

/// Per-process handle to the HMPI runtime system (see file comment).
class Runtime {
 public:
  /// HMPI_Init. Collective: every world process must construct a Runtime
  /// before any other HMPI call. `config` must be identical everywhere.
  explicit Runtime(mp::Proc& proc, RuntimeConfig config = RuntimeConfig());

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// HMPI_Finalize. Collective barrier; no HMPI calls may follow.
  void finalize(int exit_code = 0);

  ~Runtime();

  /// HMPI_COMM_WORLD.
  mp::Comm world_comm() const { return proc_->world_comm(); }

  /// HMPI_Is_host: world rank 0.
  bool is_host() const noexcept { return proc_->rank() == 0; }

  /// HMPI_Is_free: not the host and not a member of any live group.
  bool is_free() const;

  /// HMPI_Is_member.
  bool is_member(const Group& group) const noexcept { return group.valid(); }

  /// HMPI_Recon: collective over all world processes. Runs `bench` (which
  /// should execute one benchmark unit of the application's core
  /// computation) and refreshes the speed estimate of this processor.
  void recon(const std::function<void(mp::Proc&)>& bench);

  /// HMPI_Timeof: local. Predicted execution time (seconds) of the group
  /// that would be created for `model(params)` right now, with this process
  /// as the parent.
  double timeof(const pmdl::Model& model,
                std::span<const pmdl::ParamValue> params) const;
  double timeof(const pmdl::Model& model,
                std::initializer_list<pmdl::ParamValue> params) const {
    return timeof(model, std::span<const pmdl::ParamValue>(params.begin(),
                                                           params.size()));
  }

  /// HMPI_Group_create: collective over the parent (a non-free caller;
  /// exactly one) and all free processes. `model`/`params` are read at the
  /// parent; free callers may pass empty params. Returns the group handle
  /// for selected members, std::nullopt for participants left free.
  std::optional<Group> group_create(const pmdl::Model& model,
                                    std::span<const pmdl::ParamValue> params);
  std::optional<Group> group_create(const pmdl::Model& model,
                                    std::initializer_list<pmdl::ParamValue> params) {
    return group_create(model, std::span<const pmdl::ParamValue>(params.begin(),
                                                                 params.size()));
  }

  /// Extension (HeteroMPI's HMPI_Group_auto_create): searches the number of
  /// processes p in [1, max_p] that minimises the predicted time, then
  /// creates that group. `params_for` builds the parameter pack for a given
  /// p. Collective like group_create; only the parent's arguments are used.
  std::optional<Group> group_auto_create(
      const pmdl::Model& model,
      const std::function<std::vector<pmdl::ParamValue>(int p)>& params_for,
      int max_p);

  /// HMPI_Group_free: collective over the group's members.
  void group_free(Group& group);

  /// Current speed estimates (diagnostics; the paper's
  /// HMPI_Get_processors_info).
  std::vector<double> processor_speeds() const;

  /// Per-machine view of the executing network: name, current speed
  /// estimate, and the world ranks it hosts (HMPI_Get_processors_info).
  struct ProcessorInfo {
    std::string name;
    double speed_estimate = 0.0;
    std::vector<int> world_ranks;
  };
  std::vector<ProcessorInfo> processors_info() const;

  /// Speed estimates of the group's members, by group rank (HeteroMPI's
  /// HMPI_Group_performances). Local operation.
  std::vector<double> group_performances(const Group& group) const;

  /// World ranks currently free (diagnostics / tests).
  std::vector<int> free_ranks() const;

  mp::Proc& proc() const noexcept { return *proc_; }

 private:
  struct Shared;  // world-level blackboard

  std::vector<map::Candidate> candidates_with(int parent_rank,
                                              std::vector<int>* ranks) const;

  mp::Proc* proc_;
  RuntimeConfig config_;
  std::shared_ptr<Shared> shared_;
  /// Number of live groups THIS process belongs to (local view; see
  /// is_free() for why this is not read off the shared blackboard).
  int live_groups_ = 0;
  bool finalized_ = false;
};

}  // namespace hmpi
