#include "hmpi/runtime.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <mutex>
#include <set>

#include "coll/tuner.hpp"
#include "estimator/estimate_cache.hpp"
#include "estimator/plan.hpp"
#include "mpsim/engine.hpp"
#include "mpsim/trace.hpp"
#include "support/error.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prediction.hpp"
#include "telemetry/span.hpp"

namespace hmpi {

namespace {

/// telemetry::VirtualClockScope sampler: spans opened inside runtime entry
/// points stamp the owning simulated process's virtual clock.
double sample_proc_clock(const void* ctx) {
  return static_cast<const mp::Proc*>(ctx)->clock();
}

/// HMPI_COLL_* environment overrides (docs/collectives.md): one variable
/// per op naming the algorithm, plus HMPI_COLL_TUNER / HMPI_COLL_FEEDBACK
/// switches. Unknown algorithm names are ignored (the config value stands).
CollConfig coll_config_with_env(CollConfig config) {
  for (int o = 0; o < coll::kNumCollOps; ++o) {
    const auto op = static_cast<coll::CollOp>(o);
    std::string var = "HMPI_COLL_";
    for (const char* p = coll::op_name(op); *p != '\0'; ++p) {
      var.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(*p))));
    }
    if (const char* value = std::getenv(var.c_str())) {
      const int algo = coll::algo_from_name(op, value);
      if (algo >= 0) config.policy.set_choice(op, algo);
    }
  }
  if (const char* value = std::getenv("HMPI_COLL_TUNER")) {
    config.tuner = std::string(value) != "0";
  }
  if (const char* value = std::getenv("HMPI_COLL_FEEDBACK")) {
    config.feedback = std::string(value) == "1";
  }
  return config;
}

/// HMPI_EST_COMPILE override (docs/estimator.md): pick the estimator backend
/// without rebuilding, for A/B runs. Unknown values are ignored (the config
/// value stands) — every mode is bit-identical, so a typo is harmless.
EstimatorMode estimator_mode_with_env(EstimatorMode mode) {
  if (const char* value = std::getenv("HMPI_EST_COMPILE")) {
    const std::string v(value);
    if (v == "0" || v == "off" || v == "interpret") {
      return EstimatorMode::kInterpret;
    }
    if (v == "1" || v == "full" || v == "compile" || v == "compiled") {
      return EstimatorMode::kCompiled;
    }
    if (v == "2" || v == "delta") return EstimatorMode::kDelta;
  }
  return mode;
}

/// HMPI_EST_SHARDS override (docs/estimator.md): shard count of the shared
/// estimate cache. Values are purely a contention knob — every count returns
/// bit-identical results — so malformed or non-positive input is ignored.
int est_shards_with_env(int shards) {
  if (const char* value = std::getenv("HMPI_EST_SHARDS")) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && parsed > 0 &&
        parsed <= (1 << 20)) {
      return static_cast<int>(parsed);
    }
  }
  return shards;
}

/// Resolves (op, algo) pairs to the collective subsystem's stable names for
/// the critical-path report and `crit.coll.*` metrics.
telemetry::CollNamer coll_namer() {
  return [](int op, int algo) -> std::pair<std::string, std::string> {
    if (op < 0 || op >= coll::kNumCollOps) {
      return {"op" + std::to_string(op), "algo" + std::to_string(algo)};
    }
    const auto o = static_cast<coll::CollOp>(op);
    return {coll::op_name(o), coll::algo_name(o, algo)};
  };
}

}  // namespace

/// World-level blackboard shared by all Runtime instances of a run — the
/// moral equivalent of the HMPI daemon: speed estimates, the free set, and
/// the rendezvous queue for group creations.
struct Runtime::Shared {
  explicit Shared(std::size_t est_shards) : estimate_cache(est_shards) {}

  std::mutex mutex;
  /// Rendezvous wakeups; engine-agnostic (condition variable under the
  /// thread engine, fiber parking under the event engine).
  mp::sim::WaitChannel cv;

  std::unique_ptr<hnoc::NetworkModel> network;

  /// Memoised estimator results, shared by every process's searches (the
  /// cache is internally thread-safe). Entries are keyed by the network
  /// model's version counter, so recon speed updates invalidate them
  /// implicitly; recon also clears the table to release the dead entries.
  est::EstimateCache estimate_cache;

  /// Compiled cost-IR plans, shared like the estimate cache. Plans depend
  /// only on the model instance — not on speeds or mapping — so recon does
  /// not invalidate them (estimator/plan.hpp).
  est::PlanCache plan_cache;

  /// Live-group membership count per world rank (a process can be in
  /// several groups when it parents a nested one).
  std::map<int, int> busy_count;

  /// Processors marked suspect by a recon timeout (their last known speed
  /// stays in `network`; suspicion only removes them from member selection).
  std::set<int> suspect_processors;

  /// Processors a migration just evacuated, barred from being re-drafted
  /// until the given virtual time — the ping-pong guard: a machine whose
  /// slowness (or suspect mark) triggered the move must not bounce straight
  /// back into the replacement roster, even if a later recon cleared its
  /// suspect mark in between (docs/adaptation.md).
  std::map<int, double> draft_cooldown;

  /// Whether `processor` is inside its post-migration draft cooldown at
  /// virtual time `now`; expired entries are reaped on the way.
  bool draft_blocked_locked(int processor, double now) {
    auto it = draft_cooldown.find(processor);
    if (it == draft_cooldown.end()) return false;
    if (it->second <= now) {
      draft_cooldown.erase(it);
      return false;
    }
    return true;
  }

  /// Set by adapt_quiesce: pending and future group_create rendezvous by
  /// free processes return std::nullopt instead of blocking (the serve-loop
  /// exit signal).
  bool quiesced = false;

  /// The world's collective-algorithm selector (installed into the World by
  /// the factory; also kept here for policy updates and diagnostics).
  /// Lock-ordering contract: CollTuner::select locks its own mutex and then
  /// the version callback locks `mutex` above — so the runtime must NEVER
  /// call a tuner method while holding `mutex`, or two threads deadlock.
  std::shared_ptr<coll::CollTuner> coll_tuner;

  /// The world-shared hmpictld scheduler service (docs/scheduler.md),
  /// lazily created by Runtime::scheduler(). Same lock-ordering contract as
  /// the tuner: the Scheduler has its own coarse mutex, so never call a
  /// scheduler method while holding `mutex` above.
  std::unique_ptr<sched::Scheduler> scheduler;

  struct Creation {
    std::vector<int> participants;  // sorted world ranks
    int parent_rank = -1;
    bool degraded = false;     // dead ranks excluded or suspects present
    std::vector<int> excluded;  // dead world ranks left out of the rendezvous
    /// Rollback guard of an adaptation migration (NaN = unguarded). Every
    /// participant compares the broadcast estimate against this bound and,
    /// when the move priced no better, rejoins a creation pinned to
    /// `guard_restore` — see Runtime::MigrationGuard.
    double guard_old_pred = std::numeric_limits<double>::quiet_NaN();
    std::vector<int> guard_restore;
  };
  long long creation_seq = 0;
  std::map<long long, Creation> creations;
  std::vector<long long> next_creation;  // per world rank

  long long group_counter = 0;

  bool is_free_locked(int rank) const {
    if (rank == 0) return false;
    auto it = busy_count.find(rank);
    return it == busy_count.end() || it->second == 0;
  }
};

std::vector<long long> Group::coordinates_of(int r) const {
  support::require(valid(), "coordinates_of on an invalid group");
  support::require(r >= 0 && r < size(), "group rank out of range");
  std::vector<long long> coords(shape_.size());
  long long index = r;
  for (std::size_t d = shape_.size(); d-- > 0;) {
    coords[d] = index % shape_[d];
    index /= shape_[d];
  }
  return coords;
}

int Group::rank_at(std::span<const long long> coordinates) const {
  support::require(valid(), "rank_at on an invalid group");
  support::require(coordinates.size() == shape_.size(),
                   "coordinate count does not match the group topology");
  long long index = 0;
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    support::require(coordinates[d] >= 0 && coordinates[d] < shape_[d],
                     "coordinate out of range");
    index = index * shape_[d] + coordinates[d];
  }
  return static_cast<int>(index);
}

Runtime::Runtime(mp::Proc& proc, RuntimeConfig config)
    : proc_(&proc), config_(std::move(config)) {
  support::require(config_.search_threads >= 1,
                   "search_threads must be at least 1");
  config_.telemetry = config_.telemetry.with_env_overrides();
  config_.coll = coll_config_with_env(config_.coll);
  config_.estimator = estimator_mode_with_env(config_.estimator);
  config_.est_shards = std::max(1, est_shards_with_env(config_.est_shards));
  config_.adapt = config_.adapt.with_env();
  if (config_.adapt.enabled) {
    adapt_ = std::make_unique<adapt::AdaptationController>(config_.adapt);
  }
  if (!config_.mapper) {
    config_.mapper = std::shared_ptr<const map::Mapper>(map::make_default_mapper());
  }
  auto shared = proc.world().get_or_create_shared([&]() -> std::shared_ptr<void> {
    auto s = std::make_shared<Shared>(
        static_cast<std::size_t>(config_.est_shards));
    s->cv.debug_name = "rendezvous";
    s->network = std::make_unique<hnoc::NetworkModel>(proc.cluster());
    s->next_creation.assign(static_cast<std::size_t>(proc.nprocs()), 0);
    // The collective tuner: one per world, installed before the init
    // barrier below, so every process's first collective already resolves
    // through it. The config is required to be identical on every process,
    // so whichever process runs the factory builds the same tuner.
    coll::CollTuner::Options topts;
    topts.cost.send_overhead_s = config_.estimate.send_overhead_s;
    topts.cost.recv_overhead_s = config_.estimate.recv_overhead_s;
    topts.predict = config_.coll.tuner;
    topts.feedback = config_.coll.feedback;
    s->coll_tuner = std::make_shared<coll::CollTuner>(proc.cluster(), topts);
    s->coll_tuner->set_policy(config_.coll.policy);
    s->coll_tuner->set_version_source([raw = s.get()]() -> std::uint64_t {
      std::lock_guard<std::mutex> lock(raw->mutex);
      return raw->network->version();
    });
    proc.world().set_coll_selector(s->coll_tuner);
    // Wake rendezvous waiters on any death so they can fail fast instead of
    // sitting out the deadlock timeout. (The Shared outlives every process
    // thread: the World holds it until the run ends.)
    proc.world().on_death([raw = s.get()](int, double) {
      { std::lock_guard<std::mutex> lock(raw->mutex); }
      raw->cv.notify_all();
    });
    return s;
  });
  shared_ = std::static_pointer_cast<Shared>(shared);
  // HMPI_Init is collective; synchronise so no process races ahead.
  proc.world_comm().barrier();
}

void Runtime::finalize(int exit_code) {
  support::require(exit_code == 0, "HMPI application finalised with an error code");
  if (finalized_) return;
  // The shutdown barrier is world-collective; with injected deaths it would
  // block on the dead ranks forever, so survivors simply leave.
  if (!proc_->world().any_failed()) proc_->world_comm().barrier();
  finalized_ = true;
  // Tuner cache statistics become metrics at shutdown (host only, once, so
  // the counters are not multiplied by the process count).
  if (is_host() && shared_->coll_tuner) {
    telemetry::metrics().counter("coll.tuner.hits").add(
        static_cast<double>(shared_->coll_tuner->cache_hits()));
    telemetry::metrics().counter("coll.tuner.misses").add(
        static_cast<double>(shared_->coll_tuner->cache_misses()));
    // Promoted measured-feedback ratios, one gauge per observed (op, algo)
    // (docs/observability.md). Nothing is emitted with feedback off.
    for (int o = 0; o < coll::kNumCollOps; ++o) {
      const auto op = static_cast<coll::CollOp>(o);
      for (int algo = 1; algo <= coll::algo_count(op); ++algo) {
        const double ratio = shared_->coll_tuner->feedback_ratio(op, algo);
        if (ratio > 0.0) {
          telemetry::metrics()
              .gauge(std::string("coll.feedback.") + coll::op_name(op) + "." +
                     coll::algo_name(op, algo))
              .set(ratio);
        }
      }
    }
  }
  // Drain the scheduler service (if the run used it) so its final sched.*
  // gauges land before the metrics dump (host only, once — the service is
  // world-shared, so any process's drain would double the counters).
  if (is_host()) {
    sched::Scheduler* scheduler = nullptr;
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      scheduler = shared_->scheduler.get();
    }
    if (scheduler != nullptr) scheduler->run_until_idle();
  }
  // The host dumps the configured telemetry sinks after the barrier, when
  // every process's records are in (docs/observability.md).
  if (is_host() && config_.telemetry.any()) {
    // Analyze once; the crit.* gauges must land before the metrics dump.
    const telemetry::CriticalPathReport report = critical_path_report();
    telemetry::report_to_metrics(report, telemetry::metrics(), coll_namer());
    if (!config_.telemetry.critpath_json.empty()) {
      std::ofstream os(config_.telemetry.critpath_json);
      if (os) telemetry::write_critpath_json(os, report, coll_namer());
    }
    if (!config_.telemetry.metrics_json.empty()) {
      std::ofstream os(config_.telemetry.metrics_json);
      if (os) telemetry::metrics().write_json(os);
    }
    if (!config_.telemetry.trace_json.empty()) {
      std::ofstream os(config_.telemetry.trace_json);
      if (os) trace_export_json(os);
    }
  }
}

Runtime::~Runtime() = default;

bool Runtime::is_free() const {
  // Deliberately *local*: a process is free until it has itself completed a
  // group_create in which it was selected. The blackboard's busy set may run
  // ahead of this (the parent marks members busy as soon as it decides, and
  // buffered sends let it finish group_create before the members even enter
  // theirs); basing the paper's `HMPI_Is_host() || HMPI_Is_free()` calling
  // convention on the blackboard would make selected processes skip the
  // collective they are required to join.
  return proc_->rank() != 0 && live_groups_ == 0;
}

void Runtime::recon(const std::function<void(mp::Proc&)>& bench) {
  recon_impl(proc_->world_comm(), bench, config_.recon_retry);
}

void Runtime::recon(const std::function<void(mp::Proc&)>& bench,
                    const RetryPolicy& policy) {
  recon_impl(proc_->world_comm(), bench, policy);
}

void Runtime::recon_on(const mp::Comm& comm,
                       const std::function<void(mp::Proc&)>& bench,
                       const RetryPolicy& policy) {
  support::require(comm.valid(), "recon_on needs a valid communicator");
  recon_impl(comm, bench, policy);
}

void Runtime::recon_impl(const mp::Comm& comm,
                         const std::function<void(mp::Proc&)>& bench,
                         const RetryPolicy& policy) {
  support::require(static_cast<bool>(bench), "recon requires a benchmark function");
  support::require(policy.max_attempts >= 1, "recon retry needs max_attempts >= 1");
  support::require(policy.timeout_s > 0.0, "recon timeout must be positive");
  support::require(policy.backoff >= 1.0, "recon backoff must be >= 1");

  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("recon", proc_->rank());
  telemetry::metrics().counter("recons").add();

  // Run the benchmark under the per-attempt virtual-time budget. A processor
  // that blows the budget on every attempt (each retry re-runs the benchmark
  // with `backoff` times more headroom) is reported with the speed-0
  // sentinel, which the update below turns into a suspect mark.
  double budget = policy.timeout_s;
  double elapsed = 0.0;
  bool responsive = false;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) budget *= policy.backoff;
    const double start = proc_->clock();
    bench(*proc_);
    elapsed = proc_->clock() - start;
    support::require(elapsed > 0.0,
                     "the recon benchmark consumed no virtual time; it must call "
                     "Proc::compute");
    // Guard against a degenerate benchmark producing an (almost) infinite
    // speed estimate that would dominate every later mapping decision.
    elapsed = std::max(elapsed, kMinBenchTime);
    if (elapsed <= budget) {
      responsive = true;
      break;
    }
  }
  telemetry::metrics().histogram("recon_seconds").observe(elapsed);

  struct Entry {
    int processor;
    double speed;  // benchmark executions per second; 0 flags a timeout
  };
  Entry mine{proc_->processor(), responsive ? 1.0 / elapsed : 0.0};
  std::vector<Entry> all(static_cast<std::size_t>(comm.size()));
  comm.allgather(std::span<const Entry>(&mine, 1), std::span<Entry>(all));

  // Every process applies the identical update (idempotent): per processor,
  // the best speed any of its processes demonstrated. A processor whose
  // every process timed out keeps its previous estimate but becomes suspect;
  // any demonstrated speed clears the mark.
  bool speeds_changed = false;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    std::map<int, double> best;
    for (const Entry& e : all) {
      double& slot = best[e.processor];
      slot = std::max(slot, e.speed);
    }
    for (const auto& [processor, speed] : best) {
      if (speed > 0.0) {
        shared_->network->set_speed(processor, speed);
        speeds_changed = true;
        if (shared_->suspect_processors.erase(processor) > 0) {
          telemetry::metrics().counter("processors_recovered").add();
          if (mp::Tracer* tracer = proc_->world().options().tracer) {
            mp::TraceEvent event;
            event.kind = mp::TraceEvent::Kind::kRecover;
            event.world_rank = proc_->rank();
            event.processor = processor;
            event.start_time = proc_->clock();
            event.end_time = proc_->clock();
            tracer->record(event);
          }
        }
      } else if (shared_->suspect_processors.insert(processor).second) {
        telemetry::metrics().counter("processors_suspected").add();
        if (mp::Tracer* tracer = proc_->world().options().tracer) {
          mp::TraceEvent event;
          event.kind = mp::TraceEvent::Kind::kSuspect;
          event.world_rank = proc_->rank();
          event.processor = processor;
          event.start_time = proc_->clock();
          event.end_time = proc_->clock();
          tracer->record(event);
        }
      }
    }
  }
  // Version keying already makes the old entries unreachable; drop them so
  // repeated recons do not accumulate dead memory. (Collective call: every
  // process clears, which is an idempotent no-op after the first.)
  if (speeds_changed) shared_->estimate_cache.clear();

  // Re-seed the scheduler service's base speeds from the refreshed network
  // model so residual-capacity pricing tracks recon (idempotent across the
  // collective). Copy the speed vector under the Shared lock, then call out
  // with no lock held (see Shared::scheduler's lock-ordering note).
  if (speeds_changed) {
    sched::Scheduler* scheduler = nullptr;
    std::vector<double> speeds;
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      scheduler = shared_->scheduler.get();
      if (scheduler != nullptr) speeds = shared_->network->speeds();
    }
    if (scheduler != nullptr) scheduler->refresh_speeds(speeds);
  }

  // Feedback mode: promote the staged measured/predicted ratios into the
  // tuner's active ranking, bracketed by two pinned-algorithm barriers.
  // The first barrier quiesces (no member is inside a tuner-selected
  // collective once any member is past it), the second holds every member
  // back until all promotions of this round are done — so tuner-driven
  // selections before and after the bracket each see one consistent
  // ranking on every member. Pinning the bracket's own barrier algorithm
  // keeps it independent of the very ranking being swapped. Note the
  // promotion runs with no Shared lock held (see Shared::coll_tuner).
  if (config_.coll.feedback && shared_->coll_tuner) {
    mp::Comm sync = comm;
    coll::CollPolicy pinned;
    pinned.barrier = coll::BarrierAlgo::kDissemination;
    sync.set_coll_policy(pinned);
    sync.barrier();
    shared_->coll_tuner->promote_feedback();
    sync.barrier();
  }
  comm.barrier();
}

void Runtime::coll_set_policy(const coll::CollPolicy& policy) {
  support::require(static_cast<bool>(shared_->coll_tuner),
                   "coll_set_policy requires the runtime's tuner");
  shared_->coll_tuner->set_policy(policy);
}

coll::CollPolicy Runtime::coll_policy() const {
  return shared_->coll_tuner ? shared_->coll_tuner->policy()
                             : coll::CollPolicy();
}

Runtime::CollSelection Runtime::coll_selection(coll::CollOp op,
                                               std::size_t bytes) const {
  CollSelection out;
  coll::Selector* selector = proc_->world().coll_selector();
  if (selector != nullptr) {
    std::vector<int> procs;
    procs.reserve(static_cast<std::size_t>(proc_->nprocs()));
    for (int r = 0; r < proc_->nprocs(); ++r) {
      procs.push_back(proc_->world().processor_of(r));
    }
    out.algo = selector->select(op, procs, bytes, &out.predicted_s);
  }
  if (out.algo == 0) out.algo = coll::legacy_default(op);
  return out;
}

std::vector<map::Candidate> Runtime::candidates_with(
    int parent_rank, std::vector<int>* ranks) const {
  mp::World& world = proc_->world();
  std::vector<int> participants{parent_rank};
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    for (int r = 0; r < proc_->nprocs(); ++r) {
      if (r != parent_rank && shared_->is_free_locked(r) && world.alive(r) &&
          shared_->suspect_processors.count(world.processor_of(r)) == 0 &&
          !shared_->draft_blocked_locked(world.processor_of(r),
                                         proc_->clock())) {
        participants.push_back(r);
      }
    }
  }
  std::sort(participants.begin(), participants.end());
  std::vector<map::Candidate> candidates;
  candidates.reserve(participants.size());
  for (int r : participants) {
    candidates.push_back({r, world.processor_of(r)});
  }
  if (ranks != nullptr) *ranks = std::move(participants);
  return candidates;
}

map::SearchContext Runtime::search_context() const {
  map::SearchContext context;
  if (config_.search_threads > 1 && !search_pool_) {
    search_pool_ =
        std::make_unique<support::ThreadPool>(config_.search_threads);
  }
  context.pool = search_pool_.get();
  context.cache = config_.estimate_cache ? &shared_->estimate_cache : nullptr;
  context.plans = config_.estimator != EstimatorMode::kInterpret
                      ? &shared_->plan_cache
                      : nullptr;
  context.delta = config_.estimator == EstimatorMode::kDelta;
  return context;
}

void Runtime::prefetch_plan(const pmdl::ModelInstance& instance) const {
  if (config_.estimator == EstimatorMode::kInterpret) return;
  bool compiled = false;
  double seconds = 0.0;
  const std::shared_ptr<const est::Plan> plan =
      shared_->plan_cache.get(instance, &compiled, &seconds);
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  if (!compiled) {
    reg.counter("est.compile.hits").add();
    return;
  }
  reg.counter("est.compile.count").add();
  reg.counter("est.compile.misses").add();
  reg.histogram("est.compile.seconds").observe(seconds);
  if (mp::Tracer* tracer = proc_->world().options().tracer) {
    mp::TraceEvent event;
    event.kind = mp::TraceEvent::Kind::kEstCompile;
    event.world_rank = proc_->rank();
    event.processor = proc_->processor();
    event.compile.ops = static_cast<long long>(plan->op_count());
    event.compile.seconds = seconds;
    event.start_time = proc_->clock();
    event.end_time = proc_->clock();
    tracer->record(event);
  }
}

void Runtime::note_search(const map::SearchStats& stats) const {
  last_search_stats_ = stats;
  search_totals_.add_counters(stats);
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.counter("mapper_searches").add();
  reg.counter("estimator_evaluations").add(static_cast<double>(stats.evaluations));
  reg.counter("estimate_cache_hits").add(static_cast<double>(stats.cache_hits));
  reg.counter("estimate_cache_misses").add(static_cast<double>(stats.cache_misses));
  reg.gauge("cache_hit_rate").set(stats.hit_rate());
  reg.histogram("search_wall_seconds").observe(stats.wall_seconds);
  if (stats.compiled_evaluations > 0) {
    reg.counter("est.compile.evaluations")
        .add(static_cast<double>(stats.compiled_evaluations));
  }
  if (stats.delta_evaluations > 0) {
    reg.counter("est.delta.evaluations")
        .add(static_cast<double>(stats.delta_evaluations));
  }
  if (stats.delta_ops_total > 0) {
    reg.counter("est.delta.ops_replayed")
        .add(static_cast<double>(stats.delta_ops_replayed));
    reg.counter("est.delta.ops_total")
        .add(static_cast<double>(stats.delta_ops_total));
    reg.gauge("est.delta.savings")
        .set(1.0 - static_cast<double>(stats.delta_ops_replayed) /
                       static_cast<double>(stats.delta_ops_total));
  }
  // Namespaced twins of the legacy cache counters (docs/observability.md):
  // est.cache.* keeps the estimator's counters in one namespace alongside
  // est.compile.* / est.delta.* / est.batch.*.
  if (stats.cache_hits > 0 || stats.cache_misses > 0) {
    reg.counter("est.cache.hits").add(static_cast<double>(stats.cache_hits));
    reg.counter("est.cache.misses")
        .add(static_cast<double>(stats.cache_misses));
  }
  if (stats.batch_chunks > 0) {
    reg.counter("mapper.batch.chunks")
        .add(static_cast<double>(stats.batch_chunks));
    reg.counter("mapper.batch.candidates")
        .add(static_cast<double>(stats.batch_candidates));
    reg.counter("est.batch.evaluations")
        .add(static_cast<double>(stats.batch_evaluated));
  }
  if (mp::Tracer* tracer = proc_->world().options().tracer) {
    mp::TraceEvent event;
    event.kind = mp::TraceEvent::Kind::kMapperSearch;
    event.world_rank = proc_->rank();
    event.processor = proc_->processor();
    event.search.evaluations = stats.evaluations;
    event.search.hit_rate = stats.hit_rate();
    event.search.threads = stats.threads;
    event.search.wall_seconds = stats.wall_seconds;
    event.start_time = proc_->clock();
    event.end_time = proc_->clock();
    tracer->record(event);
    if (stats.batch_chunks > 0) {
      mp::TraceEvent batch;
      batch.kind = mp::TraceEvent::Kind::kMapperBatch;
      batch.world_rank = proc_->rank();
      batch.processor = proc_->processor();
      batch.batch.chunks = stats.batch_chunks;
      batch.batch.candidates = stats.batch_candidates;
      batch.batch.evaluated = stats.batch_evaluated;
      batch.start_time = proc_->clock();
      batch.end_time = proc_->clock();
      tracer->record(batch);
    }
  }
}

double Runtime::timeof(const pmdl::Model& model,
                       std::span<const pmdl::ParamValue> params) const {
  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("timeof", proc_->rank());
  span.arg("model", model.name());
  telemetry::metrics().counter("timeof_calls").add();
  const pmdl::ModelInstance instance = model.instantiate(params);
  prefetch_plan(instance);
  std::vector<int> ranks;
  const auto candidates = candidates_with(proc_->rank(), &ranks);
  const auto parent_it = std::find(ranks.begin(), ranks.end(), proc_->rank());
  const int parent_candidate = static_cast<int>(parent_it - ranks.begin());

  hnoc::NetworkModel snapshot = [&] {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    return *shared_->network;
  }();
  const map::MappingResult result =
      config_.mapper->select(instance, candidates, parent_candidate, snapshot,
                             config_.estimate, search_context());
  note_search(result.stats);
  return result.estimated_time;
}

std::vector<double> Runtime::timeof_batch(
    const pmdl::Model& model,
    std::span<const std::vector<pmdl::ParamValue>> param_sets) const {
  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("timeof_batch", proc_->rank());
  span.arg("model", model.name());
  span.arg("sets", static_cast<double>(param_sets.size()));
  telemetry::metrics().counter("timeof_batch_calls").add();
  telemetry::metrics().counter("timeof_calls").add(
      static_cast<double>(param_sets.size()));

  // One snapshot of candidates and network for the whole batch: every set
  // is priced against the same world, exactly as N timeof() calls made at
  // this instant would be (and bit-identical to them). One aggregate stats
  // record covers the batch.
  std::vector<int> ranks;
  const auto candidates = candidates_with(proc_->rank(), &ranks);
  const auto parent_it = std::find(ranks.begin(), ranks.end(), proc_->rank());
  const int parent_candidate = static_cast<int>(parent_it - ranks.begin());
  hnoc::NetworkModel snapshot = [&] {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    return *shared_->network;
  }();
  const map::SearchContext search = search_context();

  std::vector<double> times;
  times.reserve(param_sets.size());
  map::SearchStats batch_stats;
  batch_stats.threads = search.pool != nullptr
                            ? static_cast<int>(search.pool->size())
                            : 1;
  for (const std::vector<pmdl::ParamValue>& params : param_sets) {
    const pmdl::ModelInstance instance = model.instantiate(params);
    prefetch_plan(instance);
    const map::MappingResult result =
        config_.mapper->select(instance, candidates, parent_candidate,
                               snapshot, config_.estimate, search);
    batch_stats.add_counters(result.stats);
    batch_stats.wall_seconds += result.stats.wall_seconds;
    times.push_back(result.estimated_time);
  }
  note_search(batch_stats);
  return times;
}

Runtime::EstimatorStats Runtime::estimator_stats() const {
  EstimatorStats stats;
  stats.mode = config_.estimator;
  stats.plans_compiled = shared_->plan_cache.misses();
  stats.plan_cache_hits = shared_->plan_cache.hits();
  stats.compiled_evaluations = search_totals_.compiled_evaluations;
  stats.delta_evaluations = search_totals_.delta_evaluations;
  stats.delta_ops_replayed = search_totals_.delta_ops_replayed;
  stats.delta_ops_total = search_totals_.delta_ops_total;
  return stats;
}

std::optional<Group> Runtime::group_create(
    const pmdl::Model& model, std::span<const pmdl::ParamValue> params) {
  return group_create_impl(model, params, CreateRole::kAuto);
}

std::optional<Group> Runtime::group_create_impl(
    const pmdl::Model& model, std::span<const pmdl::ParamValue> params,
    CreateRole role, const std::vector<int>* forced_members,
    std::vector<int>* out_members, const MigrationGuard* guard,
    bool* out_rolled_back) {
  support::require(!finalized_, "group_create after finalize");
  const int me = proc_->rank();
  mp::World& world = proc_->world();

  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("group_create", me);
  const auto wall_begin = std::chrono::steady_clock::now();

  // --- rendezvous: agree on the participant set ----------------------------
  // A caller first drains the creation queue from its consumption pointer:
  // if a pending creation lists it as a participant, it joins that creation
  // (this also covers a process that the parent already selected and marked
  // busy before it even entered group_create — its role is decided by the
  // queue, not by its current busy state). Only a non-free caller with no
  // pending creation addressed to it becomes the parent of a new creation.
  // Dead ranks are excluded from the announcement; doing so flags the
  // creation degraded, as does the presence of any suspect processor.
  std::vector<int> participants;
  int parent_world = -1;
  bool degraded = false;
  std::vector<int> excluded;
  double guard_old_pred = std::numeric_limits<double>::quiet_NaN();
  std::vector<int> guard_restore;
  {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(world.options().deadlock_timeout_s));
    for (;;) {
      const long long id = shared_->next_creation[static_cast<std::size_t>(me)];
      auto it = shared_->creations.find(id);
      if (it != shared_->creations.end()) {
        const Shared::Creation& c = it->second;
        if (std::find(c.participants.begin(), c.participants.end(), me) ==
            c.participants.end()) {
          // Announced while this process was busy; not ours to join.
          shared_->next_creation[static_cast<std::size_t>(me)] = id + 1;
          continue;
        }
        participants = c.participants;
        parent_world = c.parent_rank;
        degraded = c.degraded;
        excluded = c.excluded;
        guard_old_pred = c.guard_old_pred;
        guard_restore = c.guard_restore;
        shared_->next_creation[static_cast<std::size_t>(me)] = id + 1;
        break;
      }
      if (role == CreateRole::kParent ||
          (role == CreateRole::kAuto && (me == 0 || live_groups_ > 0))) {
        // Non-free caller with no pending creation addressed to it: it is
        // the parent; announce the creation. (Freeness here is the caller's
        // local view — see is_free().)
        support::require(!shared_->quiesced,
                         "group_create after adapt_quiesce (the rendezvous "
                         "is shut down)");
        parent_world = me;
        participants.push_back(me);
        for (int r = 0; r < world.nprocs(); ++r) {
          if (r == me) continue;
          if (!world.alive(r)) {
            // Dead ranks count as excluded whatever their (possibly stale)
            // busy state says: a crashed group member never releases its
            // membership, yet its loss is exactly what degrades this
            // creation.
            excluded.push_back(r);
          } else if (shared_->is_free_locked(r)) {
            participants.push_back(r);
          }
        }
        std::sort(participants.begin(), participants.end());
        for (int r : participants) {
          if (shared_->suspect_processors.count(world.processor_of(r)) > 0) {
            degraded = true;
          }
        }
        if (!excluded.empty()) degraded = true;
        Shared::Creation creation;
        creation.participants = participants;
        creation.parent_rank = me;
        creation.degraded = degraded;
        creation.excluded = excluded;
        if (guard != nullptr) {
          creation.guard_old_pred = guard->old_pred;
          creation.guard_restore = guard->restore;
          guard_old_pred = guard->old_pred;
          guard_restore = guard->restore;
        }
        shared_->creations[id] = std::move(creation);
        shared_->creation_seq = id + 1;
        shared_->next_creation[static_cast<std::size_t>(me)] = id + 1;
        shared_->cv.notify_all();
        break;
      }
      // Free process (or forced follower) with nothing announced yet: wait.
      if (role == CreateRole::kAuto && shared_->quiesced) {
        // adapt_quiesce shut the rendezvous down: the serve loop is over.
        // (Forced followers keep waiting — their respawn/migration parent
        // WILL announce.)
        return std::nullopt;
      }
      if (world.aborted()) {
        throw MpError("world aborted while waiting for a group creation");
      }
      if (world.any_failed()) {
        // Fail fast when nobody left alive can ever announce a creation.
        bool parent_possible = world.alive(0);
        for (const auto& [r, count] : shared_->busy_count) {
          if (count > 0 && world.alive(r)) parent_possible = true;
        }
        if (!parent_possible) {
          throw PeerFailedError(
              "every process that could parent a group creation has crashed",
              mp::kAnySource, std::numeric_limits<double>::infinity());
        }
      }
      const double remaining =
          std::chrono::duration<double>(deadline - std::chrono::steady_clock::now())
              .count();
      if (!shared_->cv.wait(lock, std::max(remaining, 0.0)) &&
          shared_->creations.find(id) == shared_->creations.end()) {
        throw DeadlockError(
            "free process waited for a group creation that was never "
            "announced (did the parent call HMPI_Group_create?)");
      }
    }
  }

  // --- coordination communicator over the participants ----------------------
  mp::Comm coord = mp::Comm::create_subcomm(*proc_, participants);
  const int parent_coord =
      static_cast<int>(std::find(participants.begin(), participants.end(),
                                 parent_world) -
                       participants.begin());

  // --- the parent solves the selection problem ------------------------------
  std::vector<int> members;  // world rank per abstract processor
  std::vector<long long> shape;
  double estimated = 0.0;
  double ideal = 0.0;  // degraded mode: prediction with everyone healthy
  long long group_id = -1;
  if (me == parent_world) {
    const pmdl::ModelInstance instance = model.instantiate(params);
    shape = instance.shape();
    prefetch_plan(instance);
    hnoc::NetworkModel snapshot = [&] {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      return *shared_->network;
    }();

    // All mapper runs of this creation (preferred set, fallback, degraded
    // hypothetical) share the search machinery and aggregate into one stats
    // record — what this group_create actually cost.
    const map::SearchContext search = search_context();
    map::SearchStats search_stats;
    search_stats.threads = search.pool != nullptr ? search.pool->size() : 1;
    const auto run_mapper = [&](const std::vector<int>& candidate_ranks) {
      std::vector<map::Candidate> candidates;
      candidates.reserve(candidate_ranks.size());
      for (int r : candidate_ranks) {
        candidates.push_back({r, world.processor_of(r)});
      }
      const int pidx = static_cast<int>(
          std::find(candidate_ranks.begin(), candidate_ranks.end(),
                    parent_world) -
          candidate_ranks.begin());
      map::MappingResult mapped = config_.mapper->select(
          instance, candidates, pidx, snapshot, config_.estimate, search);
      search_stats.add_counters(mapped.stats);
      search_stats.wall_seconds += mapped.stats.wall_seconds;
      return mapped;
    };

    if (forced_members != nullptr) {
      // Pinned roster (adaptation rollback / force_roster test hook): skip
      // the mapper and price the given members as-is.
      members = *forced_members;
      support::require(static_cast<int>(members.size()) == instance.size(),
                       "forced roster size does not match the model");
      std::vector<int> mapping(members.size());
      for (std::size_t a = 0; a < members.size(); ++a) {
        support::require(std::find(participants.begin(), participants.end(),
                                   members[a]) != participants.end(),
                         "forced roster names a non-participant process");
        mapping[a] = world.processor_of(members[a]);
      }
      support::require(
          members[static_cast<std::size_t>(instance.parent_index())] ==
              parent_world,
          "forced roster must keep the parent on the model's parent slot");
      estimated = est::estimate_time(instance, mapping, snapshot,
                                     config_.estimate);
      ideal = estimated;
    } else {
    // Suspect processors stay in the rendezvous (they are alive and must
    // join the collective) but are not drafted as members — and neither are
    // processors inside a post-migration draft cooldown — unless that
    // leaves the model infeasible, in which case they are re-admitted (a
    // slow group beats no group). The parent itself is always a candidate.
    std::vector<int> preferred;
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      for (int r : participants) {
        if (r == parent_world ||
            (shared_->suspect_processors.count(world.processor_of(r)) == 0 &&
             !shared_->draft_blocked_locked(world.processor_of(r),
                                            proc_->clock()))) {
          preferred.push_back(r);
        }
      }
    }
    std::vector<int> chosen_from = preferred;
    map::MappingResult result;
    if (preferred.size() == participants.size()) {
      result = run_mapper(participants);
      chosen_from = participants;
    } else {
      try {
        result = run_mapper(preferred);
      } catch (const InvalidArgument&) {
        result = run_mapper(participants);
        chosen_from = participants;
      }
    }
    members.resize(static_cast<std::size_t>(instance.size()));
    for (int a = 0; a < instance.size(); ++a) {
      members[static_cast<std::size_t>(a)] =
          chosen_from[static_cast<std::size_t>(
              result.candidate_for_abstract[static_cast<std::size_t>(a)])];
    }
    estimated = result.estimated_time;
    if (degraded) {
      // What would this creation have looked like with the excluded dead
      // ranks healthy and the suspects trusted? Their last known speeds are
      // still in the snapshot, so the same mapper answers the hypothetical.
      std::vector<int> healthy = participants;
      healthy.insert(healthy.end(), excluded.begin(), excluded.end());
      std::sort(healthy.begin(), healthy.end());
      try {
        ideal = run_mapper(healthy).estimated_time;
      } catch (const Error&) {
        ideal = estimated;  // hypothetical infeasible: report no delta
      }
    }
    note_search(search_stats);
    }
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      group_id = shared_->group_counter++;
      for (int r : members) {
        shared_->busy_count[r] += 1;
      }
    }
    telemetry::metrics().counter("groups_created").add();
    telemetry::metrics().histogram("group_create_seconds")
        .observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               wall_begin)
                     .count());
    telemetry::predictions().record_predicted(model.name(),
                                              static_cast<int>(group_id),
                                              estimated);
    span.arg("model", model.name());
    span.arg("group_id", static_cast<double>(group_id));
    span.arg("estimated_s", estimated);
  }

  coord.bcast_vector(members, parent_coord);
  coord.bcast_vector(shape, parent_coord);
  coord.bcast_value(estimated, parent_coord);
  coord.bcast_value(group_id, parent_coord);
  // Only degraded creations pay for the extra round: every participant knows
  // the flag from the blackboard entry, so the healthy path stays
  // byte-identical to a run without the fault layer.
  if (degraded) coord.bcast_value(ideal, parent_coord);
  if (out_members != nullptr) *out_members = members;

  const bool selected =
      std::find(members.begin(), members.end(), me) != members.end();

  // --- guarded migration: every participant judges the move locally ---------
  // The guard rides in the creation record and the estimate was broadcast,
  // so kept members, released members, and freshly drafted free processes
  // all reach the same verdict with no extra communication — a drafted
  // process never needs to know it walked into an adaptation attempt.
  if (!std::isnan(guard_old_pred) && estimated >= guard_old_pred) {
    if (out_rolled_back != nullptr) *out_rolled_back = true;
    if (selected) {
      // Walk the move back: release the just-formed membership (it was
      // never returned to the application) and rejoin the restore creation.
      {
        std::lock_guard<std::mutex> lock(shared_->mutex);
        auto it = shared_->busy_count.find(me);
        support::require(it != shared_->busy_count.end() && it->second > 0,
                         "guarded-migration rollback without a membership");
        it->second -= 1;
        shared_->next_creation[static_cast<std::size_t>(me)] =
            shared_->creation_seq;
      }
      // Order every release before the parent announces the restoration —
      // the same fence group_migrate enforces with its members barrier.
      mp::Comm members_comm = mp::Comm::create_subcomm(*proc_, members);
      members_comm.barrier();
    }
    const CreateRole restore_role =
        me == parent_world ? CreateRole::kParent : CreateRole::kFollower;
    return group_create_impl(model, params, restore_role,
                             me == parent_world ? &guard_restore : nullptr,
                             out_members);
  }

  // --- selected members form the group (ordered by abstract processor) ------
  if (!selected) return std::nullopt;

  live_groups_ += 1;
  Group group;
  group.comm_ = mp::Comm::create_subcomm(*proc_, members);
  group.parent_rank_ =
      static_cast<int>(std::find(members.begin(), members.end(), parent_world) -
                       members.begin());
  group.estimated_time_ = estimated;
  group.id_ = group_id;
  group.shape_ = std::move(shape);
  group.degraded_ = degraded;
  group.degraded_delta_ = degraded ? std::max(0.0, estimated - ideal) : 0.0;
  {
    // Baseline for the adaptation loop's drift signal: the speed estimates
    // the selection was made from. Speeds change only inside the collective
    // recon, so every member snapshots the same vector here.
    std::lock_guard<std::mutex> lock(shared_->mutex);
    group.speed_snapshot_ = shared_->network->speeds();
  }
  return group;
}

std::optional<Group> Runtime::group_auto_create(
    const pmdl::Model& model,
    const std::function<std::vector<pmdl::ParamValue>(int p)>& params_for,
    int max_p) {
  support::require(max_p >= 1, "group_auto_create needs max_p >= 1");
  if (is_free()) {
    // Free processes only follow the parent's decision.
    return group_create(model, std::span<const pmdl::ParamValue>());
  }
  support::require(static_cast<bool>(params_for),
                   "group_auto_create requires a parameter builder");

  // Parent: search the p that minimises the prediction. Only live free
  // processes (plus the parent) can become members.
  const int available = static_cast<int>(free_ranks().size()) + 1;
  double best_time = 0.0;
  int best_p = -1;
  std::vector<pmdl::ParamValue> best_params;
  for (int p = 1; p <= std::min(max_p, available); ++p) {
    std::vector<pmdl::ParamValue> params = params_for(p);
    double t;
    try {
      t = timeof(model, params);
    } catch (const Error&) {
      continue;  // this p is infeasible for the model
    }
    if (best_p < 0 || t < best_time) {
      best_time = t;
      best_p = p;
      best_params = std::move(params);
    }
  }
  support::require(best_p > 0, "no feasible group size found");
  return group_create(model, best_params);
}

void Runtime::group_free(Group& group) {
  support::require(group.valid(), "group_free on an invalid group");
  support::require(live_groups_ > 0, "group_free by a process with no group membership");
  // Collective: synchronise members before releasing them to the free pool.
  group.comm_.barrier();
  live_groups_ -= 1;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    const int me = proc_->rank();
    auto it = shared_->busy_count.find(me);
    support::require(it != shared_->busy_count.end() && it->second > 0,
                     "group_free by a process with no group membership");
    it->second -= 1;
    // Rejoin the creation queue at the current head.
    shared_->next_creation[static_cast<std::size_t>(me)] = shared_->creation_seq;
  }
  group = Group();
}

std::vector<double> Runtime::processor_speeds() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->network->speeds();
}

std::vector<Runtime::ProcessorInfo> Runtime::processors_info() const {
  const hnoc::Cluster& cluster = proc_->cluster();
  std::vector<ProcessorInfo> info(static_cast<std::size_t>(cluster.size()));
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    for (int p = 0; p < cluster.size(); ++p) {
      info[static_cast<std::size_t>(p)].name = cluster.processor(p).name;
      info[static_cast<std::size_t>(p)].speed_estimate = shared_->network->speed(p);
    }
  }
  for (int r = 0; r < proc_->nprocs(); ++r) {
    info[static_cast<std::size_t>(proc_->world().processor_of(r))]
        .world_ranks.push_back(r);
  }
  return info;
}

std::vector<double> Runtime::group_performances(const Group& group) const {
  support::require(group.valid(), "group_performances on an invalid group");
  std::lock_guard<std::mutex> lock(shared_->mutex);
  std::vector<double> speeds;
  speeds.reserve(group.members().size());
  for (int member : group.members()) {
    speeds.push_back(
        shared_->network->speed(proc_->world().processor_of(member)));
  }
  return speeds;
}

std::vector<int> Runtime::free_ranks() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  std::vector<int> out;
  for (int r = 0; r < proc_->nprocs(); ++r) {
    if (shared_->is_free_locked(r) && proc_->world().alive(r)) out.push_back(r);
  }
  return out;
}

sched::Scheduler& Runtime::scheduler() {
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (shared_->scheduler) return *shared_->scheduler;
  }
  // Build outside the lock (the ctor prices nothing, but it allocates and
  // reads env vars), then install first-wins — the config is required to be
  // identical on every process, so any process's build is the right one.
  sched::SchedConfig config = sched::sched_config_with_env(config_.sched);
  // A nested World::run cannot start from inside a simulated process, so the
  // runtime's scheduler always services jobs for their predicted makespan.
  config.execute = false;
  config.tracer = proc_->world().options().tracer;
  auto built = std::make_unique<sched::Scheduler>(proc_->cluster(), config);
  std::vector<double> speeds;
  sched::Scheduler* scheduler = nullptr;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (!shared_->scheduler) shared_->scheduler = std::move(built);
    scheduler = shared_->scheduler.get();
    speeds = shared_->network->speeds();
  }
  // Seed base speeds from the current (possibly recon-refreshed) estimates;
  // lock released first per Shared::scheduler's ordering note.
  scheduler->refresh_speeds(speeds);
  return *scheduler;
}

Health Runtime::rank_health(int world_rank) const {
  if (!proc_->world().alive(world_rank)) return Health::kDead;
  std::lock_guard<std::mutex> lock(shared_->mutex);
  const int processor = proc_->world().processor_of(world_rank);
  return shared_->suspect_processors.count(processor) > 0 ? Health::kSuspect
                                                          : Health::kAlive;
}

bool Runtime::processor_suspect(int processor) const {
  support::require(processor >= 0 && processor < proc_->cluster().size(),
                   "processor index out of range");
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->suspect_processors.count(processor) > 0;
}

std::vector<int> Runtime::suspect_processors() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return {shared_->suspect_processors.begin(),
          shared_->suspect_processors.end()};
}

void Runtime::group_fail(Group& group) {
  support::require(group.valid(), "group_fail on an invalid group");
  support::require(live_groups_ > 0,
                   "group_fail by a process with no group membership");
  mp::World& world = proc_->world();
  // Propagate: members of this group still blocked on alive peers unwind
  // with RevokedError instead of waiting out the deadlock timeout.
  world.revoke_context(group.comm().context());
  live_groups_ -= 1;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    const int me = proc_->rank();
    auto it = shared_->busy_count.find(me);
    support::require(it != shared_->busy_count.end() && it->second > 0,
                     "group_fail by a process with no group membership");
    it->second -= 1;
    // Rejoin the creation queue at the current head.
    shared_->next_creation[static_cast<std::size_t>(proc_->rank())] =
        shared_->creation_seq;
  }
  group = Group();
}

std::optional<Group> Runtime::group_respawn(
    Group& group, const pmdl::Model& model,
    std::span<const pmdl::ParamValue> params) {
  support::require(group.valid(), "group_respawn on an invalid group");
  mp::World& world = proc_->world();

  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("group_respawn", proc_->rank());
  telemetry::metrics().counter("group_respawns").add();

  // Survivors (in group-rank order) and the elected parent: the original
  // parent if it lives, else the surviving member with the lowest group
  // rank. Every survivor computes this identically from the old member list
  // and the liveness map; liveness cannot regress, and survivors that
  // observe a death *later* still agree because the member they see dead
  // here is dead for everyone by the time any respawn communication happens.
  std::vector<int> survivors;
  for (int member : group.members()) {
    if (world.alive(member)) survivors.push_back(member);
  }
  support::require(static_cast<int>(survivors.size()) < group.size(),
                   "group_respawn needs at least one dead member (use "
                   "group_free on a healthy group)");
  support::require(!survivors.empty(), "group_respawn with no survivors");
  const int old_parent = group.members()[static_cast<std::size_t>(
      group.parent_rank())];
  const int new_parent = world.alive(old_parent) ? old_parent : survivors.front();

  // Release this process's membership (revoking first so survivors blocked
  // inside the dead group unwind and reach their own group_respawn call).
  group_fail(group);

  // All survivors must have released membership before the parent announces
  // the replacement creation, or the announcement would miss the laggards
  // (they would look busy). A barrier over the survivor subgroup enforces
  // exactly that ordering.
  mp::Comm survivors_comm = mp::Comm::create_subcomm(*proc_, survivors);
  survivors_comm.barrier();

  const CreateRole role = proc_->rank() == new_parent ? CreateRole::kParent
                                                      : CreateRole::kFollower;
  return group_create_impl(model, params, role);
}

std::optional<Group> Runtime::group_migrate(
    Group& group, const pmdl::Model& model,
    std::span<const pmdl::ParamValue> params, const HandoffHook& on_handoff) {
  return group_migrate_impl(group, model, params, nullptr, on_handoff);
}

std::optional<Group> Runtime::group_migrate_impl(
    Group& group, const pmdl::Model& model,
    std::span<const pmdl::ParamValue> params,
    const std::vector<int>* forced_members, const HandoffHook& on_handoff,
    const MigrationGuard* guard, bool* out_rolled_back) {
  support::require(group.valid(), "group_migrate on an invalid group");
  support::require(live_groups_ > 0,
                   "group_migrate by a process with no group membership");
  mp::World& world = proc_->world();
  const std::vector<int> members = group.members();
  for (int member : members) {
    support::require(world.alive(member),
                     "group_migrate with a dead member (use group_respawn)");
  }
  const int parent_world =
      members[static_cast<std::size_t>(group.parent_rank())];
  const int old_rank = group.rank();

  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("group_migrate", proc_->rank());
  telemetry::metrics().counter("group_migrations").add();

  // Voluntary respawn: release this membership, then synchronise over the
  // old roster so every member has released before the parent announces the
  // replacement creation (a laggard would look busy and be left out of the
  // rendezvous — the same ordering group_respawn's survivor barrier
  // enforces).
  live_groups_ -= 1;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    const int me = proc_->rank();
    auto it = shared_->busy_count.find(me);
    support::require(it != shared_->busy_count.end() && it->second > 0,
                     "group_migrate by a process with no group membership");
    it->second -= 1;
    // A non-parent member holding further memberships (it parents a nested
    // group) would not be free after the release, so the replacement
    // rendezvous could not list it — refuse rather than deadlock. The
    // parent is exempt: it announces the creation instead of being drafted.
    support::require(it->second == 0 || me == parent_world,
                     "group_migrate with nested group memberships is not "
                     "supported");
    shared_->next_creation[static_cast<std::size_t>(me)] =
        shared_->creation_seq;
  }
  group = Group();
  mp::Comm members_comm = mp::Comm::create_subcomm(*proc_, members);
  members_comm.barrier();

  const CreateRole role = proc_->rank() == parent_world ? CreateRole::kParent
                                                        : CreateRole::kFollower;
  std::vector<int> new_members;
  std::optional<Group> moved = group_create_impl(
      model, params, role, forced_members, &new_members, guard,
      out_rolled_back);
  // State handoff: every old member learns the destination roster, whether
  // or not it was re-selected, so it can ship its partition before the
  // computation resumes. After a guarded rollback `new_members` holds the
  // restored roster — the roster state actually ends up on.
  if (on_handoff) on_handoff(old_rank, new_members);
  return moved;
}

adapt::AdaptDecision Runtime::adapt_observe(const Group& group,
                                            double measured_s) {
  support::require(group.valid(), "adapt_observe on an invalid group");
  support::require(measured_s >= 0.0,
                   "adapt_observe needs a non-negative measurement");
  if (!adapt_) return {};  // disabled: zero communication, zero state
  const int parent_world =
      group.members()[static_cast<std::size_t>(group.parent_rank())];
  adapt::AdaptDecision decision;
  if (proc_->rank() == parent_world) {
    decision = adapt_->note_progress(group.id(), group.estimated_time(),
                                     measured_s);
    telemetry::MetricsRegistry& reg = telemetry::metrics();
    reg.counter("adapt.checks").add();
    reg.gauge("adapt.divergence").set(decision.severity);
    if (decision.closed_migration) {
      reg.histogram("adapt.realized_gain_seconds")
          .observe(decision.realized_gain_s);
    }
    // Blame-informed trigger (default off, docs/observability.md): when the
    // critical path concentrates on one machine or one link, feed that as a
    // distinct signal so the ledger records *why* — slow machine vs slow
    // link — not just "diverged".
    if (!decision.migrate && adapt_->config().blame) {
      const telemetry::CriticalPathReport report = critical_path_report();
      if (report.path_s > 0.0) {
        double machine_best = 0.0;
        for (const auto& [p, s] : report.machine_s) {
          machine_best = std::max(machine_best, s);
        }
        double link_best = 0.0;
        for (const auto& [l, s] : report.link_s) {
          link_best = std::max(link_best, s);
        }
        const bool machine = machine_best >= link_best;
        const double share =
            (machine ? machine_best : link_best) / report.path_s;
        reg.gauge("adapt.blame_share").set(share);
        const adapt::AdaptDecision blame = adapt_->note_blame(
            group.id(),
            machine ? adapt::AdaptSignal::kBlameMachine
                    : adapt::AdaptSignal::kBlameLink,
            share);
        if (blame.signal != adapt::AdaptSignal::kNone &&
            decision.signal == adapt::AdaptSignal::kNone) {
          decision.signal = blame.signal;
          decision.severity = blame.severity;
        }
        if (blame.migrate) decision.migrate = true;
      }
    }
    if (decision.migrate) {
      reg.counter("adapt.triggers").add();
      note_adapt_event(static_cast<int>(mp::TraceEvent::Kind::kAdaptTrigger),
                       group.id(), decision.signal, decision.severity, 0.0);
    }
  }
  // The parent decides; members follow. Broadcasting the verdict (rather
  // than replicating controller state everywhere) keeps re-drafted members
  // — whose controllers missed rounds while they were free — in lockstep.
  group.comm().bcast_value(decision, group.parent_rank());
  return decision;
}

adapt::AdaptDecision Runtime::adapt_recon(
    const Group& group, const std::function<void(mp::Proc&)>& bench,
    const RetryPolicy& policy) {
  support::require(group.valid(), "adapt_recon on an invalid group");
  recon_on(group.comm(), bench, policy);
  if (!adapt_) return {};
  const int parent_world =
      group.members()[static_cast<std::size_t>(group.parent_rank())];
  adapt::AdaptDecision decision;
  if (proc_->rank() == parent_world) {
    // Largest relative speed change across the members' machines since the
    // group was selected (hnoc::NetworkModel::relative_drift).
    const std::vector<double>& baseline = group.speed_snapshot();
    double drift = 0.0;
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      for (int member : group.members()) {
        const int p = proc_->world().processor_of(member);
        const double base =
            static_cast<std::size_t>(p) < baseline.size()
                ? baseline[static_cast<std::size_t>(p)]
                : 0.0;
        drift = std::max(drift, shared_->network->relative_drift(p, base));
      }
    }
    decision = adapt_->note_drift(group.id(), drift);
    telemetry::MetricsRegistry& reg = telemetry::metrics();
    reg.counter("adapt.checks").add();
    reg.gauge("adapt.drift").set(drift);
    if (decision.migrate) {
      reg.counter("adapt.triggers").add();
      note_adapt_event(static_cast<int>(mp::TraceEvent::Kind::kAdaptTrigger),
                       group.id(), decision.signal, decision.severity, 0.0);
    }
  }
  group.comm().bcast_value(decision, group.parent_rank());
  return decision;
}

Runtime::AdaptOutcome Runtime::adapt_migrate(
    Group& group, const pmdl::Model& model,
    std::span<const pmdl::ParamValue> params,
    const AdaptMigrateOptions& options) {
  support::require(group.valid(), "adapt_migrate on an invalid group");
  support::require(adapt_ != nullptr,
                   "adapt_migrate requires the adaptation policy "
                   "(RuntimeConfig::adapt.enabled or HMPI_ADAPT=on)");
  support::require(options.state_bytes >= 0, "state_bytes must be >= 0");
  mp::World& world = proc_->world();
  const std::vector<int> old_members = group.members();
  const long long old_group_id = group.id();
  const int parent_world =
      old_members[static_cast<std::size_t>(group.parent_rank())];
  const bool is_parent = proc_->rank() == parent_world;

  telemetry::VirtualClockScope vclock(sample_proc_clock, proc_);
  telemetry::Span span("adapt_migrate", proc_->rank());

  // --- the parent prices the move -----------------------------------------
  struct Verdict {
    std::int32_t migrate = 0;
    double old_pred = 0.0;  ///< Old roster re-priced at today's speeds.
    double new_pred = 0.0;  ///< Best roster the re-selection found.
    double cost_s = 0.0;    ///< Respawn overhead + state transfer.
  };
  Verdict verdict;
  std::vector<int> proposed;  // world rank per abstract processor (parent)
  if (is_parent) {
    const pmdl::ModelInstance instance = model.instantiate(params);
    prefetch_plan(instance);
    hnoc::NetworkModel snapshot = [&] {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      return *shared_->network;
    }();
    // The creation-time estimate is stale by hypothesis (that staleness is
    // the trigger); the gate compares the old roster re-priced against
    // TODAY's speeds with the best roster a fresh selection can find.
    std::vector<int> old_mapping(old_members.size());
    for (std::size_t a = 0; a < old_members.size(); ++a) {
      old_mapping[a] = world.processor_of(old_members[a]);
    }
    verdict.old_pred = est::estimate_time(instance, old_mapping, snapshot,
                                          config_.estimate);
    if (options.force_roster != nullptr) {
      // Test hook: pin the target and skip the gate — the rollback guard
      // downstream still judges the result.
      proposed = *options.force_roster;
      support::require(static_cast<int>(proposed.size()) == instance.size(),
                       "force_roster size does not match the model");
      std::vector<int> mapping(proposed.size());
      for (std::size_t a = 0; a < proposed.size(); ++a) {
        mapping[a] = world.processor_of(proposed[a]);
      }
      verdict.new_pred = est::estimate_time(instance, mapping, snapshot,
                                            config_.estimate);
      verdict.migrate = 1;
    } else {
      // Candidates: the current members plus every live, unsuspected,
      // non-cooled free process.
      std::vector<int> ranks = old_members;
      {
        std::lock_guard<std::mutex> lock(shared_->mutex);
        for (int r = 0; r < proc_->nprocs(); ++r) {
          if (std::find(old_members.begin(), old_members.end(), r) !=
              old_members.end()) {
            continue;
          }
          if (shared_->is_free_locked(r) && world.alive(r) &&
              shared_->suspect_processors.count(world.processor_of(r)) == 0 &&
              !shared_->draft_blocked_locked(world.processor_of(r),
                                             proc_->clock())) {
            ranks.push_back(r);
          }
        }
      }
      // A suspect member is an evacuation target, not a candidate: drop it
      // as long as the roster stays feasible (the parent always stays — it
      // anchors the selection and announced the rendezvous).
      {
        std::lock_guard<std::mutex> lock(shared_->mutex);
        std::vector<int> trusted;
        for (int r : ranks) {
          if (r == parent_world ||
              shared_->suspect_processors.count(world.processor_of(r)) == 0) {
            trusted.push_back(r);
          }
        }
        if (static_cast<int>(trusted.size()) >= instance.size()) {
          ranks = std::move(trusted);
        }
      }
      std::sort(ranks.begin(), ranks.end());
      std::vector<map::Candidate> candidates;
      candidates.reserve(ranks.size());
      for (int r : ranks) candidates.push_back({r, world.processor_of(r)});
      const int pidx = static_cast<int>(
          std::find(ranks.begin(), ranks.end(), parent_world) - ranks.begin());
      const map::MappingResult result =
          config_.mapper->select(instance, candidates, pidx, snapshot,
                                 config_.estimate, search_context());
      note_search(result.stats);
      proposed.resize(static_cast<std::size_t>(instance.size()));
      for (int a = 0; a < instance.size(); ++a) {
        proposed[static_cast<std::size_t>(a)] = ranks[static_cast<std::size_t>(
            result.candidate_for_abstract[static_cast<std::size_t>(a)])];
      }
      verdict.new_pred = result.estimated_time;
      verdict.cost_s =
          config_.adapt.migration_cost_s +
          proc_->cluster().default_link().transfer_time(
              static_cast<double>(options.state_bytes));
      verdict.migrate =
          proposed != old_members &&
          verdict.old_pred - verdict.new_pred >
              verdict.cost_s + config_.adapt.min_gain_s;
    }
  }
  group.comm().bcast_value(verdict, group.parent_rank());

  AdaptOutcome outcome;
  outcome.predicted_gain_s = verdict.old_pred - verdict.new_pred;
  if (verdict.migrate == 0) {
    // Gate closed: keep the group; the controller logs the suppression and
    // re-seeds its streaks so the gate is not hammered every round.
    if (is_parent) {
      adapt::AdaptRecord record;
      record.group_id = old_group_id;
      record.signal = options.trigger.signal;
      record.severity = options.trigger.severity;
      record.predicted_old_s = verdict.old_pred;
      record.predicted_new_s = verdict.new_pred;
      record.cost_s = verdict.cost_s;
      record.old_members = old_members;
      adapt_->note_suppressed(std::move(record));
      telemetry::metrics().counter("adapt.suppressed").add();
    }
    outcome.member = true;
    return outcome;
  }

  // --- commit: evacuate offenders' machines, then migrate ------------------
  if (is_parent && config_.adapt.cooldown_s > 0.0) {
    // Ping-pong guard: machines this migration walks away from because they
    // are suspect or measurably slower than at selection time must not be
    // re-drafted into the replacement roster (or the next respawn) until
    // the cooldown lapses — even if a recon clears their suspect mark first.
    const std::vector<double>& baseline = group.speed_snapshot();
    std::lock_guard<std::mutex> lock(shared_->mutex);
    for (int member : old_members) {
      if (std::find(proposed.begin(), proposed.end(), member) !=
          proposed.end()) {
        continue;
      }
      const int p = world.processor_of(member);
      const double base = static_cast<std::size_t>(p) < baseline.size()
                              ? baseline[static_cast<std::size_t>(p)]
                              : 0.0;
      const bool offender =
          shared_->suspect_processors.count(p) > 0 ||
          (base > 0.0 && shared_->network->speed(p) <
                             base * (1.0 - config_.adapt.threshold));
      if (offender) {
        double& until = shared_->draft_cooldown[p];
        until = std::max(until, proc_->clock() + config_.adapt.cooldown_s);
      }
    }
  }

  // The rollback guard travels with the creation itself (MigrationGuard):
  // every participant of the guarded creation — kept members, released
  // members, and drafted free processes — re-judges the move against the
  // broadcast estimate and walks it back symmetrically when it priced no
  // better than the roster it left.
  MigrationGuard guard;
  const MigrationGuard* guard_ptr = nullptr;
  if (is_parent) {
    guard.old_pred = verdict.old_pred;
    guard.restore = old_members;
    guard_ptr = &guard;
  }
  bool rolled_back = false;
  std::optional<Group> moved =
      group_migrate_impl(group, model, params, is_parent ? &proposed : nullptr,
                         options.on_handoff, guard_ptr, &rolled_back);

  if (rolled_back) {
    // The move priced no better than the roster it left: the guard restored
    // the old roster and the controller arms its exponential backoff
    // instead of thrashing.
    if (is_parent) {
      adapt::AdaptRecord record;
      record.group_id = old_group_id;
      record.signal = options.trigger.signal;
      record.severity = options.trigger.severity;
      record.predicted_old_s = verdict.old_pred;
      record.predicted_new_s = verdict.new_pred;
      record.cost_s = verdict.cost_s;
      record.old_members = old_members;
      record.new_members = moved ? moved->members() : std::vector<int>();
      adapt_->note_rollback(std::move(record));
      telemetry::metrics().counter("adapt.rollbacks").add();
      note_adapt_event(static_cast<int>(mp::TraceEvent::Kind::kAdaptRollback),
                       old_group_id, options.trigger.signal,
                       options.trigger.severity,
                       verdict.old_pred - verdict.new_pred);
    }
    outcome.rolled_back = true;
    outcome.member = moved.has_value();
    if (moved.has_value()) group = std::move(*moved);
    return outcome;
  }

  outcome.migrated = true;
  if (!moved.has_value()) {
    // Released by the re-selection; this process serves group_create again.
    // The parent owns the ledger.
    outcome.member = false;
    return outcome;
  }
  if (is_parent) {
    adapt::AdaptRecord record;
    record.group_id = old_group_id;
    record.new_group_id = moved->id();
    record.signal = options.trigger.signal;
    record.severity = options.trigger.severity;
    record.predicted_old_s = verdict.old_pred;
    record.predicted_new_s = moved->estimated_time();
    record.cost_s = verdict.cost_s;
    record.old_members = old_members;
    record.new_members = moved->members();
    adapt_->note_migration(std::move(record));
    telemetry::MetricsRegistry& reg = telemetry::metrics();
    reg.counter("adapt.migrations").add();
    reg.histogram("adapt.predicted_gain_seconds")
        .observe(verdict.old_pred - moved->estimated_time());
    note_adapt_event(static_cast<int>(mp::TraceEvent::Kind::kAdaptMigrate),
                     moved->id(), options.trigger.signal,
                     options.trigger.severity,
                     verdict.old_pred - moved->estimated_time());
  }
  group = std::move(*moved);
  outcome.member = true;
  return outcome;
}

void Runtime::adapt_quiesce() {
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    shared_->quiesced = true;
  }
  shared_->cv.notify_all();
}

bool Runtime::adapt_quiesced() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->quiesced;
}

const std::vector<adapt::AdaptRecord>& Runtime::adapt_ledger() const {
  static const std::vector<adapt::AdaptRecord> kEmpty;
  return adapt_ ? adapt_->ledger() : kEmpty;
}

void Runtime::adapt_write_ledger_json(std::ostream& os) const {
  if (adapt_) {
    adapt_->write_json(os);
  } else {
    os << "{\n  \"adaptations\": []\n}\n";
  }
}

void Runtime::note_adapt_event(int trace_kind, long long group_id,
                               adapt::AdaptSignal signal, double severity,
                               double predicted_gain_s) const {
  mp::Tracer* tracer = proc_->world().options().tracer;
  if (tracer == nullptr) return;
  mp::TraceEvent event;
  event.kind = static_cast<mp::TraceEvent::Kind>(trace_kind);
  event.world_rank = proc_->rank();
  event.processor = proc_->processor();
  event.adapt.group_id = group_id;
  event.adapt.signal = static_cast<int>(signal);
  event.adapt.severity = severity;
  event.adapt.predicted_gain_s = predicted_gain_s;
  event.start_time = proc_->clock();
  event.end_time = proc_->clock();
  tracer->record(event);
}

void Runtime::group_observed(const Group& group, double measured_s,
                             int runs) const {
  support::require(group.valid(), "group_observed on an invalid group");
  support::require(runs >= 1, "group_observed needs runs >= 1");
  telemetry::predictions().record_measured(static_cast<int>(group.id()),
                                           measured_s, runs);
}

void Runtime::trace_export_json(std::ostream& os) const {
  std::vector<telemetry::ChromeEvent> events =
      telemetry::spans_to_chrome(telemetry::spans().records());
  if (const mp::Tracer* tracer = proc_->world().options().tracer) {
    std::vector<telemetry::ChromeEvent> virt =
        mp::to_chrome_events(tracer->events());
    events.insert(events.end(), std::make_move_iterator(virt.begin()),
                  std::make_move_iterator(virt.end()));
  }
  std::vector<telemetry::ChromeEvent> flows =
      telemetry::causal_flow_events(proc_->world().causal_log());
  events.insert(events.end(), std::make_move_iterator(flows.begin()),
                std::make_move_iterator(flows.end()));
  telemetry::write_chrome_trace(os, std::move(events));
}

telemetry::CriticalPathReport Runtime::critical_path_report() const {
  return telemetry::analyze_critical_path(proc_->world().causal_log());
}

void Runtime::critical_path_json(std::ostream& os) const {
  telemetry::write_critpath_json(os, critical_path_report(), coll_namer());
}

std::vector<Runtime::BlameEntry> Runtime::blame_top(int k) const {
  support::require(k >= 1, "blame_top needs k >= 1");
  const telemetry::CriticalPathReport report = critical_path_report();
  std::vector<BlameEntry> entries;
  entries.reserve(report.machine_s.size() + report.link_s.size());
  for (const auto& [proc, seconds] : report.machine_s) {
    BlameEntry e;
    e.kind = BlameEntry::Kind::kMachine;
    e.proc = proc;
    e.seconds = seconds;
    entries.push_back(e);
  }
  for (const auto& [link, seconds] : report.link_s) {
    BlameEntry e;
    e.kind = BlameEntry::Kind::kLink;
    e.proc = link.first;
    e.peer_proc = link.second;
    e.seconds = seconds;
    entries.push_back(e);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const BlameEntry& a, const BlameEntry& b) {
                     return a.seconds > b.seconds;
                   });
  if (entries.size() > static_cast<std::size_t>(k)) {
    entries.resize(static_cast<std::size_t>(k));
  }
  for (BlameEntry& e : entries) {
    e.share = report.path_s > 0.0 ? e.seconds / report.path_s : 0.0;
  }
  return entries;
}

}  // namespace hmpi
