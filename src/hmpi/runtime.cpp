#include "hmpi/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>

#include "support/error.hpp"

namespace hmpi {

/// World-level blackboard shared by all Runtime instances of a run — the
/// moral equivalent of the HMPI daemon: speed estimates, the free set, and
/// the rendezvous queue for group creations.
struct Runtime::Shared {
  std::mutex mutex;
  std::condition_variable cv;

  std::unique_ptr<hnoc::NetworkModel> network;

  /// Live-group membership count per world rank (a process can be in
  /// several groups when it parents a nested one).
  std::map<int, int> busy_count;

  struct Creation {
    std::vector<int> participants;  // sorted world ranks
    int parent_rank = -1;
  };
  long long creation_seq = 0;
  std::map<long long, Creation> creations;
  std::vector<long long> next_creation;  // per world rank

  long long group_counter = 0;

  bool is_free_locked(int rank) const {
    if (rank == 0) return false;
    auto it = busy_count.find(rank);
    return it == busy_count.end() || it->second == 0;
  }
};

std::vector<long long> Group::coordinates_of(int r) const {
  support::require(valid(), "coordinates_of on an invalid group");
  support::require(r >= 0 && r < size(), "group rank out of range");
  std::vector<long long> coords(shape_.size());
  long long index = r;
  for (std::size_t d = shape_.size(); d-- > 0;) {
    coords[d] = index % shape_[d];
    index /= shape_[d];
  }
  return coords;
}

int Group::rank_at(std::span<const long long> coordinates) const {
  support::require(valid(), "rank_at on an invalid group");
  support::require(coordinates.size() == shape_.size(),
                   "coordinate count does not match the group topology");
  long long index = 0;
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    support::require(coordinates[d] >= 0 && coordinates[d] < shape_[d],
                     "coordinate out of range");
    index = index * shape_[d] + coordinates[d];
  }
  return static_cast<int>(index);
}

Runtime::Runtime(mp::Proc& proc, RuntimeConfig config)
    : proc_(&proc), config_(std::move(config)) {
  if (!config_.mapper) {
    config_.mapper = std::shared_ptr<const map::Mapper>(map::make_default_mapper());
  }
  auto shared = proc.world().get_or_create_shared([&]() -> std::shared_ptr<void> {
    auto s = std::make_shared<Shared>();
    s->network = std::make_unique<hnoc::NetworkModel>(proc.cluster());
    s->next_creation.assign(static_cast<std::size_t>(proc.nprocs()), 0);
    return s;
  });
  shared_ = std::static_pointer_cast<Shared>(shared);
  // HMPI_Init is collective; synchronise so no process races ahead.
  proc.world_comm().barrier();
}

void Runtime::finalize(int exit_code) {
  support::require(exit_code == 0, "HMPI application finalised with an error code");
  if (finalized_) return;
  proc_->world_comm().barrier();
  finalized_ = true;
}

Runtime::~Runtime() = default;

bool Runtime::is_free() const {
  // Deliberately *local*: a process is free until it has itself completed a
  // group_create in which it was selected. The blackboard's busy set may run
  // ahead of this (the parent marks members busy as soon as it decides, and
  // buffered sends let it finish group_create before the members even enter
  // theirs); basing the paper's `HMPI_Is_host() || HMPI_Is_free()` calling
  // convention on the blackboard would make selected processes skip the
  // collective they are required to join.
  return proc_->rank() != 0 && live_groups_ == 0;
}

void Runtime::recon(const std::function<void(mp::Proc&)>& bench) {
  support::require(static_cast<bool>(bench), "recon requires a benchmark function");
  const double start = proc_->clock();
  bench(*proc_);
  const double elapsed = proc_->clock() - start;
  support::require(elapsed > 0.0,
                   "the recon benchmark consumed no virtual time; it must call "
                   "Proc::compute");

  struct Entry {
    int processor;
    double speed;  // benchmark executions per second
  };
  Entry mine{proc_->processor(), 1.0 / elapsed};
  std::vector<Entry> all(static_cast<std::size_t>(proc_->nprocs()));
  mp::Comm world = proc_->world_comm();
  world.allgather(std::span<const Entry>(&mine, 1), std::span<Entry>(all));

  // Every process applies the identical update (idempotent): per processor,
  // the best speed any of its processes demonstrated.
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    std::map<int, double> best;
    for (const Entry& e : all) {
      double& slot = best[e.processor];
      slot = std::max(slot, e.speed);
    }
    for (const auto& [processor, speed] : best) {
      shared_->network->set_speed(processor, speed);
    }
  }
  world.barrier();
}

std::vector<map::Candidate> Runtime::candidates_with(
    int parent_rank, std::vector<int>* ranks) const {
  std::vector<int> participants{parent_rank};
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    for (int r = 0; r < proc_->nprocs(); ++r) {
      if (r != parent_rank && shared_->is_free_locked(r)) participants.push_back(r);
    }
  }
  std::sort(participants.begin(), participants.end());
  std::vector<map::Candidate> candidates;
  candidates.reserve(participants.size());
  for (int r : participants) {
    candidates.push_back({r, proc_->world().processor_of(r)});
  }
  if (ranks != nullptr) *ranks = std::move(participants);
  return candidates;
}

double Runtime::timeof(const pmdl::Model& model,
                       std::span<const pmdl::ParamValue> params) const {
  const pmdl::ModelInstance instance = model.instantiate(params);
  std::vector<int> ranks;
  const auto candidates = candidates_with(proc_->rank(), &ranks);
  const auto parent_it = std::find(ranks.begin(), ranks.end(), proc_->rank());
  const int parent_candidate = static_cast<int>(parent_it - ranks.begin());

  hnoc::NetworkModel snapshot = [&] {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    return *shared_->network;
  }();
  return config_.mapper
      ->select(instance, candidates, parent_candidate, snapshot,
               config_.estimate)
      .estimated_time;
}

std::optional<Group> Runtime::group_create(
    const pmdl::Model& model, std::span<const pmdl::ParamValue> params) {
  support::require(!finalized_, "group_create after finalize");
  const int me = proc_->rank();
  mp::World& world = proc_->world();

  // --- rendezvous: agree on the participant set ----------------------------
  // A caller first drains the creation queue from its consumption pointer:
  // if a pending creation lists it as a participant, it joins that creation
  // (this also covers a process that the parent already selected and marked
  // busy before it even entered group_create — its role is decided by the
  // queue, not by its current busy state). Only a non-free caller with no
  // pending creation addressed to it becomes the parent of a new creation.
  std::vector<int> participants;
  int parent_world = -1;
  {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(world.options().deadlock_timeout_s));
    for (;;) {
      const long long id = shared_->next_creation[static_cast<std::size_t>(me)];
      auto it = shared_->creations.find(id);
      if (it != shared_->creations.end()) {
        const Shared::Creation& c = it->second;
        if (std::find(c.participants.begin(), c.participants.end(), me) ==
            c.participants.end()) {
          // Announced while this process was busy; not ours to join.
          shared_->next_creation[static_cast<std::size_t>(me)] = id + 1;
          continue;
        }
        participants = c.participants;
        parent_world = c.parent_rank;
        shared_->next_creation[static_cast<std::size_t>(me)] = id + 1;
        break;
      }
      if (me == 0 || live_groups_ > 0) {
        // Non-free caller with no pending creation addressed to it: it is
        // the parent; announce the creation. (Freeness here is the caller's
        // local view — see is_free().)
        parent_world = me;
        participants.push_back(me);
        for (int r = 0; r < world.nprocs(); ++r) {
          if (r != me && shared_->is_free_locked(r)) participants.push_back(r);
        }
        std::sort(participants.begin(), participants.end());
        shared_->creations[id] = {participants, me};
        shared_->creation_seq = id + 1;
        shared_->next_creation[static_cast<std::size_t>(me)] = id + 1;
        shared_->cv.notify_all();
        break;
      }
      // Free process with nothing announced yet: wait.
      if (world.aborted()) {
        throw MpError("world aborted while waiting for a group creation");
      }
      if (shared_->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          shared_->creations.find(id) == shared_->creations.end()) {
        throw DeadlockError(
            "free process waited for a group creation that was never "
            "announced (did the parent call HMPI_Group_create?)");
      }
    }
  }

  // --- coordination communicator over the participants ----------------------
  mp::Comm coord = mp::Comm::create_subcomm(*proc_, participants);
  const int parent_coord =
      static_cast<int>(std::find(participants.begin(), participants.end(),
                                 parent_world) -
                       participants.begin());

  // --- the parent solves the selection problem ------------------------------
  std::vector<int> members;  // world rank per abstract processor
  std::vector<long long> shape;
  double estimated = 0.0;
  long long group_id = -1;
  if (me == parent_world) {
    const pmdl::ModelInstance instance = model.instantiate(params);
    shape = instance.shape();
    std::vector<map::Candidate> candidates;
    candidates.reserve(participants.size());
    for (int r : participants) {
      candidates.push_back({r, world.processor_of(r)});
    }
    hnoc::NetworkModel snapshot = [&] {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      return *shared_->network;
    }();
    const map::MappingResult result = config_.mapper->select(
        instance, candidates, parent_coord, snapshot, config_.estimate);
    members.resize(static_cast<std::size_t>(instance.size()));
    for (int a = 0; a < instance.size(); ++a) {
      members[static_cast<std::size_t>(a)] =
          participants[static_cast<std::size_t>(
              result.candidate_for_abstract[static_cast<std::size_t>(a)])];
    }
    estimated = result.estimated_time;
    {
      std::lock_guard<std::mutex> lock(shared_->mutex);
      group_id = shared_->group_counter++;
      for (int r : members) {
        shared_->busy_count[r] += 1;
      }
    }
  }

  coord.bcast_vector(members, parent_coord);
  coord.bcast_vector(shape, parent_coord);
  coord.bcast_value(estimated, parent_coord);
  coord.bcast_value(group_id, parent_coord);

  // --- selected members form the group (ordered by abstract processor) ------
  const bool selected =
      std::find(members.begin(), members.end(), me) != members.end();
  if (!selected) return std::nullopt;

  live_groups_ += 1;
  Group group;
  group.comm_ = mp::Comm::create_subcomm(*proc_, members);
  group.parent_rank_ =
      static_cast<int>(std::find(members.begin(), members.end(), parent_world) -
                       members.begin());
  group.estimated_time_ = estimated;
  group.id_ = group_id;
  group.shape_ = std::move(shape);
  return group;
}

std::optional<Group> Runtime::group_auto_create(
    const pmdl::Model& model,
    const std::function<std::vector<pmdl::ParamValue>(int p)>& params_for,
    int max_p) {
  support::require(max_p >= 1, "group_auto_create needs max_p >= 1");
  if (is_free()) {
    // Free processes only follow the parent's decision.
    return group_create(model, std::span<const pmdl::ParamValue>());
  }
  support::require(static_cast<bool>(params_for),
                   "group_auto_create requires a parameter builder");

  // Parent: search the p that minimises the prediction.
  const int available = static_cast<int>(free_ranks().size()) + 1;
  double best_time = 0.0;
  int best_p = -1;
  std::vector<pmdl::ParamValue> best_params;
  for (int p = 1; p <= std::min(max_p, available); ++p) {
    std::vector<pmdl::ParamValue> params = params_for(p);
    double t;
    try {
      t = timeof(model, params);
    } catch (const Error&) {
      continue;  // this p is infeasible for the model
    }
    if (best_p < 0 || t < best_time) {
      best_time = t;
      best_p = p;
      best_params = std::move(params);
    }
  }
  support::require(best_p > 0, "no feasible group size found");
  return group_create(model, best_params);
}

void Runtime::group_free(Group& group) {
  support::require(group.valid(), "group_free on an invalid group");
  support::require(live_groups_ > 0, "group_free by a process with no group membership");
  // Collective: synchronise members before releasing them to the free pool.
  group.comm_.barrier();
  live_groups_ -= 1;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    const int me = proc_->rank();
    auto it = shared_->busy_count.find(me);
    support::require(it != shared_->busy_count.end() && it->second > 0,
                     "group_free by a process with no group membership");
    it->second -= 1;
    // Rejoin the creation queue at the current head.
    shared_->next_creation[static_cast<std::size_t>(me)] = shared_->creation_seq;
  }
  group = Group();
}

std::vector<double> Runtime::processor_speeds() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->network->speeds();
}

std::vector<Runtime::ProcessorInfo> Runtime::processors_info() const {
  const hnoc::Cluster& cluster = proc_->cluster();
  std::vector<ProcessorInfo> info(static_cast<std::size_t>(cluster.size()));
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    for (int p = 0; p < cluster.size(); ++p) {
      info[static_cast<std::size_t>(p)].name = cluster.processor(p).name;
      info[static_cast<std::size_t>(p)].speed_estimate = shared_->network->speed(p);
    }
  }
  for (int r = 0; r < proc_->nprocs(); ++r) {
    info[static_cast<std::size_t>(proc_->world().processor_of(r))]
        .world_ranks.push_back(r);
  }
  return info;
}

std::vector<double> Runtime::group_performances(const Group& group) const {
  support::require(group.valid(), "group_performances on an invalid group");
  std::lock_guard<std::mutex> lock(shared_->mutex);
  std::vector<double> speeds;
  speeds.reserve(group.members().size());
  for (int member : group.members()) {
    speeds.push_back(
        shared_->network->speed(proc_->world().processor_of(member)));
  }
  return speeds;
}

std::vector<int> Runtime::free_ranks() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  std::vector<int> out;
  for (int r = 0; r < proc_->nprocs(); ++r) {
    if (shared_->is_free_locked(r)) out.push_back(r);
  }
  return out;
}

}  // namespace hmpi
