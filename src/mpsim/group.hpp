// MPI-style process groups (ordered rank sets) and their algebra.
//
// HMPI deliberately provides no set-like group constructors of its own
// (paper §2): "it is relatively straightforward for application programmers
// to perform such group operations by obtaining the groups associated with
// the MPI communicator given by HMPI_Get_comm". This is the substrate that
// makes that sentence true: MPI_Group-shaped value types with incl/excl,
// union/intersection/difference, rank translation, and communicator creation
// from a group.
#pragma once

#include <span>
#include <vector>

#include "mpsim/comm.hpp"

namespace hmpi::mp {

/// An ordered set of world ranks (the value semantics of MPI_Group).
class ProcessGroup {
 public:
  /// The empty group.
  ProcessGroup() = default;

  /// A group of exactly these world ranks, in this order (must be unique).
  explicit ProcessGroup(std::vector<int> world_ranks);

  /// The group associated with a communicator (MPI_Comm_group).
  static ProcessGroup of(const Comm& comm);

  int size() const noexcept { return static_cast<int>(ranks_.size()); }
  bool empty() const noexcept { return ranks_.empty(); }

  /// World rank of group rank `r` (bounds-checked).
  int world_rank(int r) const;

  /// Group rank of a world rank, or -1 when not a member.
  int rank_of(int world_rank) const noexcept;

  bool contains(int world_rank) const noexcept { return rank_of(world_rank) >= 0; }

  const std::vector<int>& world_ranks() const noexcept { return ranks_; }

  /// Subgroup of the listed group-rank positions, in the listed order
  /// (MPI_Group_incl).
  ProcessGroup incl(std::span<const int> positions) const;

  /// This group without the listed group-rank positions (MPI_Group_excl).
  ProcessGroup excl(std::span<const int> positions) const;

  /// Members of this group followed by members of `other` not already
  /// present (MPI_Group_union ordering).
  ProcessGroup set_union(const ProcessGroup& other) const;

  /// Members of this group that are also in `other`, in this group's order
  /// (MPI_Group_intersection ordering).
  ProcessGroup set_intersection(const ProcessGroup& other) const;

  /// Members of this group that are not in `other` (MPI_Group_difference).
  ProcessGroup set_difference(const ProcessGroup& other) const;

  /// Group ranks in `to` of the given group ranks in `from`; -1 where a
  /// member of `from` is not in `to` (MPI_Group_translate_ranks).
  static std::vector<int> translate(const ProcessGroup& from,
                                    std::span<const int> from_ranks,
                                    const ProcessGroup& to);

  friend bool operator==(const ProcessGroup& a, const ProcessGroup& b) {
    return a.ranks_ == b.ranks_;
  }

 private:
  std::vector<int> ranks_;
};

/// Creates a communicator over `group` (collective over its members only;
/// the analogue of MPI_Comm_create_group). The caller must be a member.
Comm create_comm(Proc& proc, const ProcessGroup& group);

}  // namespace hmpi::mp
