#include "mpsim/comm.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "mpsim/trace.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi::mp {

namespace {

telemetry::Counter& dropped_counter() {
  static telemetry::Counter& c = telemetry::metrics().counter("messages_dropped");
  return c;
}

telemetry::Counter& delayed_counter() {
  static telemetry::Counter& c = telemetry::metrics().counter("messages_delayed");
  return c;
}

}  // namespace

namespace {

std::string describe_recv(const Proc& proc, int src, int tag, int context) {
  std::ostringstream os;
  os << "world rank " << proc.rank() << " (virtual t=" << proc.clock()
     << "s) blocked receiving from src=" << src << " tag=" << tag
     << " context=" << context;
  return os.str();
}

}  // namespace

Comm Proc::world_comm() {
  return Comm(this, /*context=*/0, world_->world_members_, rank_);
}

void Comm::check_member_rank(int r, const char* what) const {
  support::require(valid(), "operation on an invalid communicator");
  support::require(r >= 0 && r < size(),
                   std::string(what) + ": rank " + std::to_string(r) +
                       " out of range for communicator of size " +
                       std::to_string(size()));
}

int Comm::world_rank_of(int r) const {
  check_member_rank(r, "world_rank_of");
  return (*members_)[static_cast<std::size_t>(r)];
}

int Comm::rank_of_world(int wr) const noexcept {
  if (!members_) return -1;
  for (std::size_t i = 0; i < members_->size(); ++i) {
    if ((*members_)[i] == wr) return static_cast<int>(i);
  }
  return -1;
}

void Comm::send_bytes(std::span<const std::byte> data, int dst, int tag) const {
  send_impl(data, data.size(), dst, tag);
}

void Comm::send_placeholder(std::size_t bytes, int dst, int tag) const {
  send_impl({}, bytes, dst, tag);
}

void Comm::send_impl(std::span<const std::byte> data, std::size_t logical_bytes,
                     int dst, int tag) const {
  check_member_rank(dst, "send destination");
  support::require(tag >= 0, "send tag must be non-negative");
  const int dst_world = world_rank_of(dst);
  World& world = proc_->world();
  const FaultPlan& faults = world.options().faults;

  proc_->check_crash();  // a process whose crash time has passed cannot send

  const int src_proc = proc_->processor();
  const int dst_proc = world.processor_of(dst_world);
  const World::LinkReservation link =
      world.reserve_link(src_proc, dst_proc, proc_->clock(), logical_bytes);
  double finish = link.finish;

  // Per-message faults apply to application traffic only (user tags), so the
  // decision stream is insensitive to library-internal collective rounds.
  bool dropped = false;
  bool delayed = false;
  if (faults.message_faults() && tag <= kMaxUserTag) {
    const std::uint64_t seq = proc_->next_fault_sequence(dst_world);
    dropped = faults.drops_message(proc_->rank(), dst_world, seq);
    delayed = !dropped && faults.delays_message(proc_->rank(), dst_world, seq);
    if (delayed) finish += faults.delay_s;
    if (dropped) dropped_counter().add();
    if (delayed) delayed_counter().add();
  }

  Envelope e;
  e.src_world = proc_->rank();
  e.context = context_;
  e.tag = tag;
  e.payload.assign(data.begin(), data.end());
  e.logical_bytes = logical_bytes;
  e.arrival_time = finish;
  e.causal_seq = proc_->next_causal_sequence(dst_world);

  if (Tracer* tracer = world.options().tracer) {
    TraceEvent event;
    event.kind = dropped ? TraceEvent::Kind::kDrop
                         : (delayed ? TraceEvent::Kind::kDelay
                                    : TraceEvent::Kind::kSend);
    event.world_rank = proc_->rank();
    event.processor = src_proc;
    event.peer = dst_world;
    event.tag = tag;
    event.context = context_;
    event.bytes = logical_bytes;
    event.start_time = proc_->clock();
    event.end_time = finish;
    tracer->record(event);
    if (link.outage_deferred) {
      TraceEvent blocked = event;
      blocked.kind = TraceEvent::Kind::kLinkBlocked;
      blocked.end_time = link.start;
      tracer->record(blocked);
    }
  }

  if (world.causal_log().enabled()) {
    telemetry::CausalEvent c = proc_->causal_event();
    c.kind = telemetry::CausalEvent::Kind::kSend;
    c.peer = dst_world;
    c.peer_proc = dst_proc;
    c.seq = e.causal_seq;
    c.bytes = logical_bytes;
    c.t0 = proc_->clock();
    c.t1 = proc_->clock() + world.options().send_overhead_s;
    c.arrival = finish;
    if (dropped) c.flags |= telemetry::CausalEvent::kDropped;
    if (delayed) c.flags |= telemetry::CausalEvent::kDelayed;
    world.causal_log().record(proc_->rank(), c);
  }

  proc_->set_clock(proc_->clock() + world.options().send_overhead_s);
  proc_->stats().msgs_sent += 1;
  proc_->stats().bytes_sent += logical_bytes;
  proc_->note_message_sent(logical_bytes);

  if (!dropped) world.mailbox(dst_world).deliver(std::move(e));
}

Status Comm::recv_bytes(std::span<std::byte> buffer, int src, int tag,
                        double timeout_s) const {
  return recv_impl(&buffer, src, tag, timeout_s);
}

Status Comm::recv_placeholder(int src, int tag, double timeout_s) const {
  return recv_impl(nullptr, src, tag, timeout_s);
}

Status Comm::recv_impl(std::span<std::byte>* buffer, int src, int tag,
                       double timeout_s) const {
  support::require(valid(), "receive on an invalid communicator");
  support::require(src == kAnySource || (src >= 0 && src < size()),
                   "receive source rank out of range");
  support::require(tag == kAnyTag || tag >= 0, "receive tag must be >= 0 or kAnyTag");
  World& world = proc_->world();
  const int src_world = src == kAnySource ? kAnySource : world_rank_of(src);
  if (timeout_s == kUseWorldTimeout) {
    timeout_s = world.options().deadlock_timeout_s;
  }
  support::require(timeout_s > 0.0, "receive timeout must be positive");

  proc_->check_crash();  // a process whose crash time has passed cannot receive

  // A blocked receive is hopeless (no message can ever match) when the
  // communicator's context was revoked, when the named source is dead, or —
  // for kAnySource — when every other member is dead.
  const auto hopeless = [&]() -> bool {
    if (world.context_revoked(context_)) return true;
    if (src_world != kAnySource) return !world.alive(src_world);
    for (int member : *members_) {
      if (member != proc_->rank() && world.alive(member)) return false;
    }
    return true;
  };

  world.note_recv_begin(proc_->rank(), src_world, tag, context_, proc_->clock());
  auto envelope = world.mailbox(proc_->rank())
                      .take_matching(src_world, tag, context_, timeout_s,
                                     hopeless);
  if (!envelope) {
    if (world.aborted()) {
      world.note_recv_end(proc_->rank());
      throw MpError("world aborted while " +
                    describe_recv(*proc_, src, tag, context_));
    }
    if (src_world != kAnySource && !world.alive(src_world)) {
      world.note_recv_end(proc_->rank());
      throw PeerFailedError(
          "peer failed: world rank " + std::to_string(src_world) +
              " crashed at virtual t=" +
              std::to_string(world.death_time(src_world)) + "s while " +
              describe_recv(*proc_, src, tag, context_),
          src_world, world.death_time(src_world));
    }
    if (src_world == kAnySource && hopeless() &&
        !world.context_revoked(context_)) {
      world.note_recv_end(proc_->rank());
      throw PeerFailedError("all potential senders have crashed while " +
                                describe_recv(*proc_, src, tag, context_),
                            kAnySource,
                            std::numeric_limits<double>::infinity());
    }
    if (world.context_revoked(context_)) {
      world.note_recv_end(proc_->rank());
      throw RevokedError("communicator context " + std::to_string(context_) +
                         " revoked while " +
                         describe_recv(*proc_, src, tag, context_));
    }
    // Capture the state dump before clearing this rank's own pending entry
    // so the diagnosis includes the receive that timed out.
    const std::string stuck = world.describe_stuck_state();
    world.note_recv_end(proc_->rank());
    throw DeadlockError("no matching message within the deadlock timeout; " +
                        describe_recv(*proc_, src, tag, context_) + "\n" +
                        stuck);
  }
  world.note_recv_end(proc_->rank());
  if (buffer != nullptr) {
    support::require(buffer->size() >= envelope->payload.size(),
                     "receive buffer smaller than the incoming message");
    std::copy(envelope->payload.begin(), envelope->payload.end(),
              buffer->begin());
  }

  const double before = proc_->clock();
  const double matched =
      std::max(before, envelope->arrival_time) + world.options().recv_overhead_s;
  proc_->stats().wait_time += std::max(0.0, envelope->arrival_time - before);
  if (Tracer* tracer = world.options().tracer) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kRecv;
    event.world_rank = proc_->rank();
    event.processor = proc_->processor();
    event.peer = envelope->src_world;
    event.tag = envelope->tag;
    event.context = context_;
    event.bytes = envelope->logical_bytes;
    event.start_time = before;
    event.end_time = matched;
    tracer->record(event);
  }
  if (world.causal_log().enabled()) {
    telemetry::CausalEvent c = proc_->causal_event();
    c.kind = telemetry::CausalEvent::Kind::kRecv;
    c.peer = envelope->src_world;
    c.peer_proc = world.processor_of(envelope->src_world);
    c.seq = envelope->causal_seq;
    c.bytes = envelope->logical_bytes;
    c.t0 = before;
    c.t1 = matched;
    c.arrival = envelope->arrival_time;
    world.causal_log().record(proc_->rank(), c);
  }
  proc_->set_clock(matched);
  proc_->check_crash();  // waiting may have carried the clock past a crash
  proc_->stats().msgs_received += 1;
  proc_->stats().bytes_received += envelope->logical_bytes;

  Status status;
  status.source = rank_of_world(envelope->src_world);
  status.tag = envelope->tag;
  status.bytes = envelope->logical_bytes;
  status.arrival_time = envelope->arrival_time;
  return status;
}

bool Comm::iprobe(int src, int tag) const {
  support::require(valid(), "probe on an invalid communicator");
  const int src_world = src == kAnySource ? kAnySource : world_rank_of(src);
  return proc_->world().mailbox(proc_->rank()).probe(src_world, tag, context_);
}

Request Comm::isend_bytes(std::span<const std::byte> data, int dst,
                          int tag) const {
  send_bytes(data, dst, tag);  // buffered: completes immediately
  return Request::completed_send();
}

Request Comm::irecv_bytes(std::span<std::byte> buffer, int src, int tag) const {
  support::require(valid(), "irecv on an invalid communicator");
  return Request::pending_recv(*this, buffer, src, tag);
}

Status Request::wait() {
  if (done_) return status_;
  status_ = comm_.recv_bytes(buffer_, src_, tag_);
  done_ = true;
  return status_;
}

bool Request::test(Status* status) {
  if (!done_) {
    if (!comm_.iprobe(src_, tag_)) return false;
    status_ = comm_.recv_bytes(buffer_, src_, tag_);
    done_ = true;
  }
  if (status != nullptr) *status = status_;
  return true;
}

void Request::wait_all(std::span<Request> requests) {
  for (Request& r : requests) r.wait();
}

int Request::wait_any(std::span<Request> requests, Status* status) {
  bool any_pending = false;
  for (const Request& r : requests) {
    if (!r.done()) {
      any_pending = true;
      break;
    }
  }
  if (!any_pending) return -1;

  // Round-robin test; when nothing is ready, block on the first pending one
  // (its completion keeps virtual time consistent with a plain wait).
  for (;;) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].done()) continue;
      if (requests[i].test(status)) return static_cast<int>(i);
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].done()) {
        Status s = requests[i].wait();
        if (status != nullptr) *status = s;
        return static_cast<int>(i);
      }
    }
  }
}

Comm::CollChoice Comm::coll_select(coll::CollOp op, std::size_t bytes) const {
  World& world = proc_->world();
  CollChoice choice;
  choice.algo = coll_policy_.choice(op);
  if (choice.algo == 0) choice.algo = world.options().coll.choice(op);
  if (choice.algo == 0) {
    if (coll::Selector* selector = world.coll_selector()) {
      const std::vector<int> procs = member_procs();
      choice.algo = selector->select(op, procs, bytes, &choice.predicted_s);
    }
  }
  if (choice.algo == 0) choice.algo = coll::legacy_default(op);

  telemetry::metrics()
      .counter(std::string("coll.") + coll::op_name(op) + "." +
               coll::algo_name(op, choice.algo))
      .add();

  // One selection event per collective call, recorded by the communicator's
  // rank 0 (every member resolves the same algorithm by construction).
  Tracer* tracer = world.options().tracer;
  if (tracer != nullptr && rank_ == 0) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kCollSelect;
    event.world_rank = proc_->rank();
    event.processor = proc_->processor();
    event.context = context_;
    event.bytes = bytes;
    event.start_time = proc_->clock();
    event.end_time = proc_->clock();
    event.coll.op = static_cast<int>(op);
    event.coll.algo = choice.algo;
    event.coll.predicted_s = choice.predicted_s;
    tracer->record(event);
  }
  // Annotate every causal event until the matching coll_finish with the
  // (op, algo) pair, so the critical path can attribute collective time.
  proc_->push_coll_note(static_cast<std::int16_t>(op),
                        static_cast<std::int16_t>(choice.algo));
  return choice;
}

std::vector<coll::Step> Comm::coll_schedule(coll::CollOp op, int algo,
                                            int root, std::size_t count,
                                            std::size_t elem_size) const {
  // Only the two-level bcast reads placement; skip the lookup otherwise.
  // On a two-level cluster the placement is collapsed to LAN ids, so the
  // leader election spans whole LANs rather than single machines (flat
  // clusters pass machine ids through unchanged).
  std::vector<int> procs;
  std::span<const int> procs_span;
  if (op == coll::CollOp::kBcast &&
      static_cast<coll::BcastAlgo>(algo) == coll::BcastAlgo::kTwoLevel) {
    procs = coll::two_level_groups(proc_->world().cluster(), member_procs());
    procs_span = procs;
  }
  const std::size_t segment_elems = std::max<std::size_t>(
      1, coll::kChainSegmentBytes / std::max<std::size_t>(1, elem_size));
  return coll::schedule_for(op, algo, size(), root, count, procs_span,
                            segment_elems);
}

void Comm::coll_finish(coll::CollOp op, int algo, std::size_t bytes,
                       double start_clock, double predicted_s) const {
  proc_->pop_coll_note();
  const double elapsed = proc_->clock() - start_clock;
  telemetry::metrics()
      .histogram(std::string("coll.") + coll::op_name(op) + ".seconds")
      .observe(elapsed);
  if (coll::Selector* selector = proc_->world().coll_selector()) {
    selector->observe(op, algo, bytes, elapsed, predicted_s);
  }
}

std::vector<int> Comm::member_procs() const {
  World& world = proc_->world();
  std::vector<int> procs;
  procs.reserve(members_->size());
  for (int wr : *members_) procs.push_back(world.processor_of(wr));
  return procs;
}

void Comm::barrier() const {
  support::require(valid(), "barrier on an invalid communicator");
  if (size() <= 1) return;
  const CollChoice choice = coll_select(coll::CollOp::kBarrier, 0);
  const double start = proc_->clock();
  const std::vector<coll::Step> steps =
      coll_schedule(coll::CollOp::kBarrier, choice.algo, 0, 0, 1);
  coll::run_schedule(*this, std::span<const coll::Step>(steps),
                     std::span<std::byte>(),
                     [](std::byte a, std::byte) { return a; },
                     internal_tag::kBarrierBase);
  coll_finish(coll::CollOp::kBarrier, choice.algo, 0, start,
              choice.predicted_s);
}

void Comm::bcast_bytes(std::span<std::byte> data, int root) const {
  check_member_rank(root, "bcast root");
  if (size() <= 1) return;
  const CollChoice choice = coll_select(coll::CollOp::kBcast, data.size());
  const double start = proc_->clock();
  const std::vector<coll::Step> steps =
      coll_schedule(coll::CollOp::kBcast, choice.algo, root, data.size(), 1);
  coll::run_schedule(*this, std::span<const coll::Step>(steps), data,
                     [](std::byte a, std::byte) { return a; },
                     internal_tag::kBcastBase);
  coll_finish(coll::CollOp::kBcast, choice.algo, data.size(), start,
              choice.predicted_s);
}

Comm Comm::dup() const {
  support::require(valid(), "dup of an invalid communicator");
  int context = 0;
  if (rank() == 0) context = proc_->world().alloc_context();
  bcast_value(context, 0);
  return Comm(proc_, context, members_, rank_);
}

Comm Comm::split(int color, int key) const {
  support::require(valid(), "split of an invalid communicator");
  support::require(color >= 0 || color == kUndefinedColor,
                   "split color must be >= 0 or kUndefinedColor");
  const int n = size();

  // Gather (color, key) pairs at rank 0.
  struct Entry {
    std::int32_t color;
    std::int32_t key;
  };
  Entry mine{color, key};
  std::vector<Entry> all(static_cast<std::size_t>(n));
  gather(std::span<const Entry>(&mine, 1), std::span<Entry>(all), 0);

  // Rank 0 forms the groups and tells each member its new communicator:
  // payload is [context, new_rank, group_size, world ranks...].
  std::vector<std::int32_t> my_info;
  if (rank() == 0) {
    std::vector<int> colors;
    for (const Entry& e : all) {
      if (e.color != kUndefinedColor) colors.push_back(e.color);
    }
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());

    for (int c : colors) {
      std::vector<int> ranks;  // old communicator ranks in this color
      for (int r = 0; r < n; ++r) {
        if (all[static_cast<std::size_t>(r)].color == c) ranks.push_back(r);
      }
      std::stable_sort(ranks.begin(), ranks.end(), [&](int a, int b) {
        return all[static_cast<std::size_t>(a)].key <
               all[static_cast<std::size_t>(b)].key;
      });
      const int context = proc_->world().alloc_context();
      std::vector<std::int32_t> info;
      info.push_back(context);
      info.push_back(0);  // patched per member below
      info.push_back(static_cast<std::int32_t>(ranks.size()));
      for (int r : ranks) info.push_back(world_rank_of(r));
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        info[1] = static_cast<std::int32_t>(i);
        if (ranks[i] == 0) {
          my_info = info;
        } else {
          send(std::span<const std::int32_t>(info), ranks[i],
               internal_tag::kSplit);
        }
      }
    }
    // Excluded members still need an answer.
    for (int r = 0; r < n; ++r) {
      if (all[static_cast<std::size_t>(r)].color == kUndefinedColor) {
        std::int32_t none[3] = {-1, -1, 0};
        if (r == 0) {
          my_info.assign(none, none + 3);
        } else {
          send(std::span<const std::int32_t>(none, 3), r, internal_tag::kSplit);
        }
      }
    }
  } else {
    // Header is fixed-size; the trailing rank list length is bounded by n.
    std::vector<std::int32_t> buffer(static_cast<std::size_t>(3 + n));
    Status s = recv(std::span<std::int32_t>(buffer), 0, internal_tag::kSplit);
    buffer.resize(s.bytes / sizeof(std::int32_t));
    my_info = std::move(buffer);
  }

  if (my_info[0] < 0) return Comm();  // kUndefinedColor
  const int context = my_info[0];
  const int new_rank = my_info[1];
  const int group_size = my_info[2];
  auto members = std::make_shared<std::vector<int>>();
  members->reserve(static_cast<std::size_t>(group_size));
  for (int i = 0; i < group_size; ++i) {
    members->push_back(my_info[static_cast<std::size_t>(3 + i)]);
  }
  return Comm(proc_, context, std::move(members), new_rank);
}

Comm Comm::create_subcomm(Proc& proc, std::vector<int> world_ranks) {
  support::require(!world_ranks.empty(), "create_subcomm needs members");
  {
    std::vector<int> sorted = world_ranks;
    std::sort(sorted.begin(), sorted.end());
    support::require(std::adjacent_find(sorted.begin(), sorted.end()) ==
                         sorted.end(),
                     "create_subcomm members must be unique");
  }
  const auto it =
      std::find(world_ranks.begin(), world_ranks.end(), proc.rank());
  support::require(it != world_ranks.end(),
                   "create_subcomm must be called by a listed member");
  const int my_rank = static_cast<int>(it - world_ranks.begin());

  // The leader (first member) allocates the context and distributes it over
  // the world communicator on a reserved tag.
  Comm world = proc.world_comm();
  int context = 0;
  if (my_rank == 0) {
    context = proc.world().alloc_context();
    for (std::size_t i = 1; i < world_ranks.size(); ++i) {
      world.send_value(context, world_ranks[i], internal_tag::kSubcommCtx);
    }
  } else {
    context = world.recv_value<int>(world_ranks[0], internal_tag::kSubcommCtx);
  }
  auto members = std::make_shared<std::vector<int>>(std::move(world_ranks));
  return Comm(&proc, context, std::move(members), my_rank);
}

}  // namespace hmpi::mp
