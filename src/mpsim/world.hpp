// The simulated world: N processes (std::thread each) running over a
// hnoc::Cluster with deterministic virtual-time accounting.
//
// Time model (DESIGN.md §4):
//   * every process owns a virtual clock, advanced by compute() through the
//     cluster's speed/load model;
//   * a message sent at sender-time t over processor link (i -> j) starts at
//     max(t, link-busy), finishes at start + latency + bytes/bandwidth, and
//     sets the receiver's clock to max(receiver clock, finish) at the
//     matching receive (per-directed-processor-pair FIFO serialisation);
//   * sends are buffered (eager): the sender only pays a small overhead.
//
// For programs with deterministic message matching this yields virtual times
// that are independent of host scheduling, which is what lets a 9-machine
// 2003 testbed be reproduced faithfully on one core.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "coll/policy.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/engine.hpp"
#include "mpsim/fault.hpp"
#include "mpsim/mailbox.hpp"
#include "mpsim/types.hpp"
#include "support/error.hpp"
#include "telemetry/causal.hpp"

namespace hmpi::telemetry {
class Counter;
}  // namespace hmpi::telemetry

namespace hmpi::mp {

class World;
class Comm;

/// Execution context of one simulated process. Created by World::run and
/// passed to the process body; only that process's thread may use it.
class Proc {
 public:
  /// Rank of this process in the world (0..nprocs-1).
  int rank() const noexcept { return rank_; }
  /// Total number of processes in the world.
  int nprocs() const noexcept;
  /// Index of the physical processor this process runs on.
  int processor() const noexcept { return processor_; }

  /// The ground-truth cluster (for workload code that needs topology; the
  /// HMPI runtime itself deliberately reads speeds only via Recon).
  const hnoc::Cluster& cluster() const noexcept;

  /// Current virtual time of this process (seconds).
  double clock() const noexcept { return clock_; }

  /// Executes `units` benchmark units of computation: advances the virtual
  /// clock through the processor's speed/load model.
  void compute(double units);

  /// Advances the virtual clock by raw `seconds` (e.g. modelled I/O).
  void elapse(double seconds);

  /// The world communicator (context 0, all processes).
  Comm world_comm();

  Stats& stats() noexcept { return stats_; }
  const Stats& stats() const noexcept { return stats_; }

  World& world() noexcept { return *world_; }

 private:
  friend class World;
  friend class Comm;

  Proc(World* world, int rank, int processor)
      : world_(world), rank_(rank), processor_(processor) {}

  void set_clock(double t) noexcept { clock_ = t; }

  /// Dies (marks this process dead and unwinds via ProcessKilledError) if the
  /// fault plan scheduled a crash at or before the current virtual clock.
  /// Called at every fault point: compute, elapse, send, receive.
  void check_crash();

  /// Terminates this process at virtual time `t` (never returns).
  [[noreturn]] void die(double t);

  /// Next per-destination message index for deterministic drop/delay
  /// decisions (only the owning thread touches it).
  std::uint64_t next_fault_sequence(int dst_world) {
    return fault_seq_[dst_world]++;
  }

  /// Next per-destination causal sequence number: stamped on every send (and
  /// its Envelope) so the causal log pairs sends with receives. Program
  /// order per destination, hence identical under both engines.
  std::uint64_t next_causal_sequence(int dst_world) {
    return causal_seq_[dst_world]++;
  }

  /// A CausalEvent with this process's identity and the innermost active
  /// collective annotation filled in; the caller sets kind-specific fields.
  telemetry::CausalEvent causal_event() const;

  /// Collective annotation stack, pushed in Comm::coll_select and popped in
  /// Comm::coll_finish so every causal event inside the collective carries
  /// its (op, algo).
  void push_coll_note(std::int16_t op, std::int16_t algo) {
    coll_notes_.emplace_back(op, algo);
  }
  void pop_coll_note() {
    if (!coll_notes_.empty()) coll_notes_.pop_back();
  }

  // Per-machine telemetry (machine.<processor>.*) with the Counter pointers
  // cached so the simulation hot paths skip the registry lookup.
  void note_compute_seconds(double seconds);
  void note_message_sent(std::size_t bytes);

  World* world_;
  int rank_;
  int processor_;
  double clock_ = 0.0;
  /// Scheduled crash time from the fault plan (infinity when none); cached
  /// here so fault points are one comparison in the common case.
  double crash_time_ = std::numeric_limits<double>::infinity();
  std::map<int, std::uint64_t> fault_seq_;
  std::map<int, std::uint64_t> causal_seq_;
  std::vector<std::pair<std::int16_t, std::int16_t>> coll_notes_;
  Stats stats_;
  telemetry::Counter* compute_seconds_counter_ = nullptr;
  telemetry::Counter* sent_bytes_counter_ = nullptr;
  telemetry::Counter* messages_sent_counter_ = nullptr;
};

class Tracer;

/// Tunables of a simulated run. (Namespace-scope so it can be used as a
/// defaulted argument of World's member functions.)
struct WorldOptions {
  /// Execution engine (docs/simulator.md): kThread runs one OS thread per
  /// simulated process, kEvent multiplexes fibers over a virtual-time event
  /// queue. kAuto resolves the HMPI_SIM_ENGINE env var (default: thread).
  /// Both engines produce bit-identical virtual timestamps, results, and
  /// trace streams for deterministic programs.
  sim::SimEngine engine = sim::SimEngine::kAuto;
  /// Event-engine worker threads hosting the fiber stacks (dispatch stays
  /// sequential, so every worker count gives identical results). 0 resolves
  /// HMPI_SIM_WORKERS, default 1 (fibers run on the calling thread).
  int event_workers = 0;
  /// Event-engine stack size per fiber. 0 resolves HMPI_SIM_STACK_KB,
  /// default 512 KiB (virtual; guard-paged, so RSS only covers touched pages).
  std::size_t fiber_stack_bytes = 0;
  /// Real-time silence after which a blocked receive is declared deadlocked.
  /// (The event engine has no real-time waits; it raises the same deadlock
  /// diagnosis when no fiber is runnable, using this value only to order
  /// simultaneous stall victims.)
  double deadlock_timeout_s = 30.0;
  /// Virtual per-message sender-side overhead (LogP's "o").
  double send_overhead_s = 5e-6;
  /// Virtual per-message receiver-side overhead.
  double recv_overhead_s = 5e-6;
  /// Optional event recorder (not owned; must outlive the run).
  Tracer* tracer = nullptr;
  /// Faults to inject (crashes, link outages, message drop/delay). The
  /// default (empty) plan is zero-cost: no virtual time or traffic differs
  /// from a run without the fault layer. Calendars from the cluster's
  /// per-processor Availability are merged in at World construction.
  FaultPlan faults;
  /// World-wide collective algorithm overrides (docs/collectives.md). The
  /// default (all kAuto) defers to the installed selector, or — when none is
  /// installed — to the legacy hard-coded algorithms, reproducing their
  /// virtual timing exactly.
  coll::CollPolicy coll;
  /// Causal-log retention (docs/observability.md): kAuto resolves HMPI_PROF
  /// (unset -> the always-on per-rank ring, "1"/"full" -> unbounded full
  /// mode, "0"/"off" -> disabled). The log never changes virtual timing or
  /// the trace stream — only how much causal history a report can walk.
  telemetry::ProfMode prof = telemetry::ProfMode::kAuto;
};

/// Owns the processes, mailboxes, and link state of one simulated run.
class World {
 public:
  using Options = WorldOptions;

  struct RunResult {
    std::vector<double> clocks;  ///< Final virtual clock per process.
    std::vector<Stats> stats;    ///< Counters per process.
    double makespan = 0.0;       ///< max(clocks).
    /// World ranks killed by injected faults (crash time == their clock).
    std::vector<int> failed_ranks;
    /// The run's causal log (shared: the World itself is destroyed when run
    /// returns). Feed to telemetry::analyze_critical_path.
    std::shared_ptr<const telemetry::CausalLog> causal;
  };

  /// Runs `nprocs = placement.size()` processes; process i executes `body`
  /// on processor `placement[i]` of `cluster`. Blocks until every process
  /// returns; rethrows the first process exception (after releasing the
  /// others). The cluster must outlive the call.
  static RunResult run(const hnoc::Cluster& cluster, std::vector<int> placement,
                       const std::function<void(Proc&)>& body,
                       Options options = Options());

  /// Convenience: one process per processor, in cluster order.
  static RunResult run_one_per_processor(
      const hnoc::Cluster& cluster, const std::function<void(Proc&)>& body,
      Options options = Options());

  // --- internals used by Comm and the HMPI runtime -------------------------

  const hnoc::Cluster& cluster() const noexcept { return *cluster_; }
  const Options& options() const noexcept { return options_; }
  int nprocs() const noexcept { return static_cast<int>(placement_.size()); }
  int processor_of(int world_rank) const {
    support::require(world_rank >= 0 && world_rank < nprocs(),
                     "world rank out of range");
    return placement_[static_cast<std::size_t>(world_rank)];
  }

  Mailbox& mailbox(int world_rank) {
    support::require(world_rank >= 0 && world_rank < nprocs(),
                     "world rank out of range");
    return *mailboxes_[static_cast<std::size_t>(world_rank)];
  }

  struct LinkReservation {
    double start = 0.0;
    double finish = 0.0;
    bool outage_deferred = false;  ///< Start was pushed past a link outage.
  };

  /// Reserves the directed link between two processors for a transfer of
  /// `bytes` that is ready at `ready_time`. Honours fault-plan link outages:
  /// a transfer may not start inside an outage window.
  LinkReservation reserve_link(int src_proc, int dst_proc, double ready_time,
                               std::size_t bytes);

  /// Allocates a fresh communicator context id (world-unique).
  int alloc_context() { return next_context_.fetch_add(1); }

  /// True once any process has failed with a real error (not an injected
  /// crash); blocked receives then unblock.
  bool aborted() const noexcept { return aborted_.load(); }

  // --- per-process liveness (injected faults) -------------------------------

  /// False once `world_rank` was killed by the fault plan. (A process that
  /// exits its body normally stays "alive" — liveness tracks failures, not
  /// completion.)
  bool alive(int world_rank) const {
    support::require(world_rank >= 0 && world_rank < nprocs(),
                     "world rank out of range");
    return alive_[static_cast<std::size_t>(world_rank)].load();
  }

  /// Virtual time `world_rank` died, or infinity while it lives.
  double death_time(int world_rank) const;

  /// True once any process was killed by the fault plan.
  bool any_failed() const noexcept { return failed_count_.load() > 0; }

  /// Kills `world_rank` at virtual time `t`: flips liveness, records a crash
  /// trace event, wakes every blocked receiver and death watcher. Called by
  /// the dying process itself at a fault point; idempotent.
  void mark_dead(int world_rank, double t);

  /// Registers a callback invoked (once per death, from the dying thread)
  /// after liveness flips — used by higher layers to wake their own waiters.
  /// Callbacks must be registered before processes start communicating and
  /// must not throw.
  void on_death(std::function<void(int world_rank, double t)> callback);

  // --- context revocation (failure propagation) -----------------------------

  /// Revokes a communicator context: every receive blocked on it (and every
  /// future receive posted on it with no matching message already queued)
  /// raises RevokedError. The ULFM MPI_Comm_revoke analogue; idempotent.
  void revoke_context(int context);

  bool context_revoked(int context) const;

  // --- deadlock diagnosis ---------------------------------------------------

  /// Registers/clears the receive `world_rank` is currently blocked in so a
  /// deadlock diagnosis can enumerate who waits for what.
  void note_recv_begin(int world_rank, int src, int tag, int context,
                       double clock);
  void note_recv_end(int world_rank);

  /// Human-readable dump of every rank's blocked receive and queued
  /// (delivered but unreceived) envelopes. Appended to DeadlockError.
  std::string describe_stuck_state() const;

  /// Type-erased shared slot for higher layers (the HMPI runtime state).
  /// The factory runs exactly once across all processes.
  std::shared_ptr<void> get_or_create_shared(
      const std::function<std::shared_ptr<void>()>& factory);

  // --- collective algorithm selection (docs/collectives.md) ----------------

  /// Installs the selector consulted by every collective whose per-comm and
  /// world policies are kAuto (the runtime installs its CollTuner here from
  /// the get_or_create_shared factory). Install before processes start
  /// communicating: the factory runs once under the shared-slot mutex and
  /// every process synchronises on the runtime barrier before its first
  /// collective, so later reads need no lock.
  void set_coll_selector(std::shared_ptr<coll::Selector> selector) {
    coll_selector_ = std::move(selector);
  }

  coll::Selector* coll_selector() const noexcept {
    return coll_selector_.get();
  }

  /// The run's causal log (docs/observability.md). Always present; mode kOff
  /// makes record() a no-op.
  telemetry::CausalLog& causal_log() noexcept { return *causal_; }
  const telemetry::CausalLog& causal_log() const noexcept { return *causal_; }

 private:
  World(const hnoc::Cluster& cluster, std::vector<int> placement,
        Options options);

  void abort_all();

  const hnoc::Cluster* cluster_;
  std::vector<int> placement_;
  Options options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::shared_ptr<const std::vector<int>> world_members_;

  std::mutex link_mutex_;
  std::map<std::pair<int, int>, double> link_busy_;

  std::atomic<int> next_context_{1};  // context 0 is the world communicator
  std::atomic<bool> aborted_{false};

  // Per-process liveness; atomics so fault points and hopeless-predicates
  // read it lock-free. Everything else fault-related sits behind fault_mutex_.
  std::unique_ptr<std::atomic<bool>[]> alive_;
  std::atomic<int> failed_count_{0};
  mutable std::mutex fault_mutex_;
  std::map<int, double> death_times_;
  std::set<int> revoked_contexts_;
  std::vector<std::function<void(int, double)>> death_callbacks_;

  struct PendingRecv {
    int src = kAnySource;
    int tag = kAnyTag;
    int context = 0;
    double clock = 0.0;
  };
  mutable std::mutex pending_mutex_;
  std::map<int, PendingRecv> pending_recvs_;

  std::mutex shared_mutex_;
  std::shared_ptr<void> shared_;
  std::shared_ptr<coll::Selector> coll_selector_;

  /// Shared so RunResult can export it past the World's destruction.
  std::shared_ptr<telemetry::CausalLog> causal_;

  friend class Comm;
  friend class Proc;
};

}  // namespace hmpi::mp
