// Shared constants and small value types of the message-passing substrate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hmpi::mp {

/// Wildcard source rank for receives (like MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receives (like MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Highest user tag; tags above it (and all negative tags) are reserved for
/// the library's internal collective algorithms.
inline constexpr int kMaxUserTag = (1 << 20) - 1;

/// Completion information of a receive (like MPI_Status).
struct Status {
  int source = kAnySource;     ///< Rank of the sender within the communicator.
  int tag = kAnyTag;           ///< Tag of the matched message.
  std::size_t bytes = 0;       ///< Payload size in bytes.
  double arrival_time = 0.0;   ///< Virtual time the message fully arrived.
};

/// Per-process counters accumulated over a run.
struct Stats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_received = 0;
  double compute_units = 0.0;  ///< Total benchmark units executed.
  double compute_time = 0.0;   ///< Virtual seconds spent computing.
  double wait_time = 0.0;      ///< Virtual seconds the clock jumped at receives.
};

}  // namespace hmpi::mp
