// Per-process message queue with MPI-style matching.
//
// Every simulated process owns one Mailbox. Senders deliver envelopes from
// their own thread; the receiver blocks until an envelope matching
// (source, tag, context) is present. Matching scans the queue in delivery
// order, which preserves MPI's non-overtaking guarantee for messages of one
// sender on one communicator (a sender delivers in program order).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "mpsim/engine.hpp"
#include "mpsim/types.hpp"

namespace hmpi::mp {

/// One in-flight message.
struct Envelope {
  int src_world = 0;               ///< World rank of the sender.
  int context = 0;                 ///< Communicator context id.
  int tag = 0;
  std::vector<std::byte> payload;
  /// Size the transfer was costed at. Equals payload.size() for ordinary
  /// messages; placeholder messages carry no payload but a logical size
  /// (used by workload drivers running in virtual-only mode).
  std::size_t logical_bytes = 0;
  double arrival_time = 0.0;       ///< Virtual time the transfer completes.
  /// Per-(sender, destination) message index, stamped at the send so the
  /// causal log can pair the receive with its send (docs/observability.md).
  std::uint64_t causal_seq = 0;
};

/// Thread-safe matching queue for one process.
class Mailbox {
 public:
  Mailbox() { channel_.debug_name = "mailbox"; }

  /// Enqueues an envelope and wakes any blocked receiver.
  void deliver(Envelope e);

  /// Blocks until an envelope matching (src_world, tag, context) is present,
  /// removes and returns it. Wildcards: src_world == kAnySource,
  /// tag == kAnyTag. Returns std::nullopt on timeout (`timeout_s` of real
  /// time with no queue activity), which the caller turns into a deadlock
  /// diagnosis.
  ///
  /// `hopeless`, when provided, is evaluated under the mailbox lock after
  /// every failed match: returning true unblocks the wait immediately with
  /// std::nullopt (the caller re-derives *why* — dead peer, revoked context).
  /// Wake-ups for it are driven by poke().
  std::optional<Envelope> take_matching(
      int src_world, int tag, int context, double timeout_s,
      const std::function<bool()>& hopeless = nullptr);

  /// Non-blocking: removes and returns a matching envelope if present.
  std::optional<Envelope> try_take_matching(int src_world, int tag, int context);

  /// Non-destructive test for a matching envelope.
  bool probe(int src_world, int tag, int context) const;

  /// Number of queued envelopes (diagnostics only).
  std::size_t pending() const;

  /// Metadata of one queued envelope (diagnostics only).
  struct EnvelopeInfo {
    int src_world = 0;
    int context = 0;
    int tag = 0;
    std::size_t logical_bytes = 0;
    double arrival_time = 0.0;
  };

  /// Metadata of every queued (delivered but unreceived) envelope, in
  /// delivery order. Used by the deadlock diagnosis.
  std::vector<EnvelopeInfo> snapshot() const;

  /// Wakes any blocked receiver so it re-evaluates its `hopeless` predicate
  /// (e.g. after a peer died or a context was revoked).
  void poke();

  /// Unblocks any waiting receiver permanently (world abort). Subsequent
  /// take_matching calls return std::nullopt immediately when no matching
  /// envelope is queued.
  void shutdown();

  bool is_shutdown() const noexcept { return shutdown_.load(); }

 private:
  static bool matches(const Envelope& e, int src_world, int tag, int context);
  std::optional<Envelope> extract_locked(int src_world, int tag, int context);

  mutable std::mutex mutex_;
  /// Blocking receivers wait here; engine-agnostic (condition variable under
  /// the thread engine, fiber parking under the event engine).
  sim::WaitChannel channel_;
  std::deque<Envelope> queue_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace hmpi::mp
