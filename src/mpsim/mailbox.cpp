#include "mpsim/mailbox.hpp"

namespace hmpi::mp {

void Mailbox::deliver(Envelope e) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(e));
  }
  channel_.notify_all();
}

bool Mailbox::matches(const Envelope& e, int src_world, int tag, int context) {
  if (e.context != context) return false;
  if (src_world != kAnySource && e.src_world != src_world) return false;
  if (tag != kAnyTag && e.tag != tag) return false;
  return true;
}

std::optional<Envelope> Mailbox::extract_locked(int src_world, int tag,
                                                int context) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, src_world, tag, context)) {
      Envelope e = std::move(*it);
      queue_.erase(it);
      return e;
    }
  }
  return std::nullopt;
}

std::optional<Envelope> Mailbox::take_matching(
    int src_world, int tag, int context, double timeout_s,
    const std::function<bool()>& hopeless) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto e = extract_locked(src_world, tag, context)) return e;
    if (shutdown_.load()) return std::nullopt;
    // Checked only after a failed match and under the lock: a sender always
    // delivers before it can die, so a dead peer observed here really has
    // nothing more in flight for us.
    if (hopeless && hopeless()) return std::nullopt;
    // Wait for new deliveries; restart the timeout whenever anything arrives
    // (only total silence counts as a potential deadlock). Under the event
    // engine the wait parks the fiber and a false return means the engine
    // picked it as a structural-stall victim.
    if (!channel_.wait(lock, timeout_s)) {
      if (auto e = extract_locked(src_world, tag, context)) return e;
      return std::nullopt;
    }
  }
}

void Mailbox::shutdown() {
  shutdown_.store(true);
  channel_.notify_all();
}

std::optional<Envelope> Mailbox::try_take_matching(int src_world, int tag,
                                                   int context) {
  std::lock_guard<std::mutex> lock(mutex_);
  return extract_locked(src_world, tag, context);
}

bool Mailbox::probe(int src_world, int tag, int context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Envelope& e : queue_) {
    if (matches(e, src_world, tag, context)) return true;
  }
  return false;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<Mailbox::EnvelopeInfo> Mailbox::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EnvelopeInfo> out;
  out.reserve(queue_.size());
  for (const Envelope& e : queue_) {
    out.push_back({e.src_world, e.context, e.tag, e.logical_bytes, e.arrival_time});
  }
  return out;
}

void Mailbox::poke() { channel_.notify_all(); }

}  // namespace hmpi::mp
