// Fault injection for simulated runs (docs/faults.md).
//
// A FaultPlan attached to WorldOptions turns failure into a first-class,
// deterministic event of the virtual-time model:
//   * a process crashes when its virtual clock reaches the scheduled time
//     (checked at every fault point: compute, elapse, send, receive);
//   * a directed processor link can be taken down for a virtual-time
//     interval — transfers that would start inside the outage are deferred
//     to its end, as if a lower transport layer retried until the partition
//     healed;
//   * individual application messages (user tags only; library-internal
//     collective traffic is exempt) can be dropped or delayed, decided by a
//     seeded counter-based hash of (seed, sender, receiver, message index),
//     so the set of affected messages is independent of host scheduling.
//
// The plan is zero-cost when empty: every hook first checks active(), and no
// virtual-time quantity is touched unless a fault actually fires.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace hmpi::hnoc {
class Cluster;
}

namespace hmpi::mp {

/// Declarative description of the faults to inject into one run.
struct FaultPlan {
  /// Kills a process when its virtual clock reaches `time`.
  struct Crash {
    int world_rank = -1;
    double time = 0.0;  ///< Virtual seconds.
  };

  /// Directed processor link unusable during [start, end): transfers that
  /// would start inside the window are deferred to `end`.
  struct LinkOutage {
    int src_proc = -1;
    int dst_proc = -1;
    double start = 0.0;
    double end = 0.0;
  };

  std::vector<Crash> crashes;
  std::vector<LinkOutage> outages;

  /// Per-message probability that an application message (tag <= kMaxUserTag)
  /// is silently dropped after the sender pays its costs.
  double drop_probability = 0.0;
  /// Per-message probability that an application message is delayed by
  /// `delay_s` on top of the modelled transfer time.
  double delay_probability = 0.0;
  /// Extra arrival delay applied to delayed messages (virtual seconds).
  double delay_s = 0.0;
  /// Seed of the drop/delay decisions (deterministic per message index).
  std::uint64_t seed = 0;

  /// True when any fault can fire; all hooks are skipped otherwise.
  bool active() const noexcept {
    return !crashes.empty() || !outages.empty() || drop_probability > 0.0 ||
           delay_probability > 0.0;
  }

  /// True when per-message drop/delay decisions are in play.
  bool message_faults() const noexcept {
    return drop_probability > 0.0 || delay_probability > 0.0;
  }

  /// Earliest scheduled crash time of `world_rank`, if any.
  std::optional<double> crash_time(int world_rank) const;

  /// First virtual time >= `start` at which a transfer over the directed
  /// processor link may begin (skips past any covering outage windows).
  double link_ready_after(int src_proc, int dst_proc, double start) const;

  /// Deterministic drop decision for the `sequence`-th faultable message
  /// from `src_world` to `dst_world`.
  bool drops_message(int src_world, int dst_world,
                     std::uint64_t sequence) const;

  /// Deterministic delay decision (independent of the drop stream).
  bool delays_message(int src_world, int dst_world,
                      std::uint64_t sequence) const;

  /// Derives a plan from the cluster's per-processor Availability calendars:
  /// a finite down interval becomes outages of every directed link touching
  /// the processor; a permanent failure crashes every process placed on it.
  /// `placement` maps world rank -> processor, as passed to World::run.
  static FaultPlan from_cluster(const hnoc::Cluster& cluster,
                                const std::vector<int>& placement);
};

}  // namespace hmpi::mp
