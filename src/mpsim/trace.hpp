// Virtual-time event tracing for simulated runs.
//
// Attach a Tracer through WorldOptions::tracer to record every message and
// computation with its virtual start/end times. Useful for debugging
// schedules, for the protocol ablation bench, and for post-hoc analysis
// (write_csv emits one line per event).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace hmpi::mp {

/// One recorded event.
struct TraceEvent {
  enum class Kind {
    kSend,
    kRecv,
    kCompute,
    kCrash,        ///< Process killed by an injected fault (FaultPlan).
    kDrop,         ///< Message silently dropped by the fault plan.
    kDelay,        ///< Message delayed by the fault plan.
    kLinkBlocked,  ///< Transfer deferred past a link outage window.
    kSuspect,      ///< Runtime marked a processor suspect (recon timeout).
    kRecover,      ///< Runtime cleared a processor's suspect mark.
    kMapperSearch, ///< A group-selection search finished (timeof or the
                   ///< parent side of group_create). bytes = estimator
                   ///< evaluations, units = search wall seconds, tag = cache
                   ///< hit rate in percent, peer = worker threads.
  };

  Kind kind = Kind::kCompute;
  int world_rank = -1;  ///< Acting process.
  int processor = -1;   ///< Its machine.
  int peer = -1;        ///< Destination (send) / source (recv) world rank.
  int tag = 0;
  int context = 0;
  std::size_t bytes = 0;   ///< Message size (logical bytes).
  double units = 0.0;      ///< Computation volume (kCompute only).
  double start_time = 0.0; ///< Virtual time the event began.
  double end_time = 0.0;   ///< Virtual completion (message arrival for sends).
};

/// Thread-safe collector of TraceEvents for one run.
class Tracer {
 public:
  void record(const TraceEvent& event);

  /// All events, sorted by (start_time, world_rank). Call after World::run.
  std::vector<TraceEvent> events() const;

  /// `kind,world_rank,processor,peer,tag,context,bytes,units,start,end`
  /// lines, header included.
  void write_csv(std::ostream& os) const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace hmpi::mp
