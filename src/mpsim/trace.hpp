// Virtual-time event tracing for simulated runs.
//
// Attach a Tracer through WorldOptions::tracer to record every message and
// computation with its virtual start/end times. Useful for debugging
// schedules, for the protocol ablation bench, and for post-hoc analysis:
// write_csv emits one line per event, and to_chrome_events /
// write_chrome_json export the same timeline in Chrome `trace_event` format
// for Perfetto (docs/observability.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <span>
#include <vector>

namespace hmpi::telemetry {
struct ChromeEvent;
}  // namespace hmpi::telemetry

namespace hmpi::mp {

/// One recorded event.
struct TraceEvent {
  enum class Kind {
    kSend,
    kRecv,
    kCompute,
    kCrash,        ///< Process killed by an injected fault (FaultPlan).
    kDrop,         ///< Message silently dropped by the fault plan.
    kDelay,        ///< Message delayed by the fault plan.
    kLinkBlocked,  ///< Transfer deferred past a link outage window.
    kSuspect,      ///< Runtime marked a processor suspect (recon timeout).
    kRecover,      ///< Runtime cleared a processor's suspect mark.
    kMapperSearch, ///< A group-selection search finished (timeof or the
                   ///< parent side of group_create); details in `search`.
    kMapperBatch,  ///< That search used the batch-scoring path (SoA
                   ///< estimation); details in `batch`. Emitted alongside
                   ///< kMapperSearch, never instead of it.
    kCollSelect,   ///< A collective resolved its algorithm (recorded by the
                   ///< communicator's rank 0 only); details in `coll`.
    kEstCompile,   ///< A performance model was compiled to the cost IR
                   ///< (estimator/plan.hpp); details in `compile`.
    kAdaptTrigger, ///< The adaptation controller asked for a migration
                   ///< (hmpi/adapt.hpp); details in `adapt`.
    kAdaptMigrate, ///< A guarded live migration committed; `adapt` carries
                   ///< the predicted gain.
    kAdaptRollback,///< A migration priced worse than the old roster and was
                   ///< rolled back; details in `adapt`.
    kSchedDispatch,///< The scheduler dispatched (or re-dispatched) a job
                   ///< (sched/scheduler.hpp); details in `sched`.
    kSchedPreempt, ///< The scheduler revoked a running job's leases and
                   ///< requeued it; details in `sched`.
  };

  /// Named payload for kMapperSearch (peer/tag/bytes/units are unused —
  /// search cost lives here and in the telemetry metrics registry).
  struct MapperSearch {
    long long evaluations = 0;  ///< Estimator evaluations performed.
    double hit_rate = 0.0;      ///< Estimate-cache hit rate in [0, 1].
    int threads = 1;            ///< Worker threads used by the search.
    double wall_seconds = 0.0;  ///< Real (not virtual) search duration.
  };

  /// Named payload for kMapperBatch (one instant per batch search; the
  /// per-chunk breakdown lives in the metrics registry).
  struct MapperBatch {
    long long chunks = 0;      ///< Batch scoring requests issued.
    long long candidates = 0;  ///< Selections scored through the batch path.
    long long evaluated = 0;   ///< Of those, priced by the SoA evaluator
                               ///< (cache hits and fallbacks excluded).
  };

  /// Named payload for kEstCompile.
  struct EstCompile {
    long long ops = 0;      ///< Scheme ops in the compiled plan (op_count()).
    double seconds = 0.0;   ///< Real (not virtual) compile duration.
  };

  /// Named payload for the kAdapt* kinds (recorded by the group parent
  /// only; the signal integer is hmpi::adapt::AdaptSignal).
  struct Adapt {
    long long group_id = -1;       ///< Group the decision concerned.
    int signal = 0;                ///< adapt::AdaptSignal that fired.
    double severity = 0.0;         ///< Smoothed violation level.
    double predicted_gain_s = 0.0; ///< Gate-time predicted improvement.
  };

  /// Named payload for the kSched* kinds (recorded by the scheduler on the
  /// virtual timeline; world_rank/processor stay -1 — the acting entity is
  /// the scheduler service, not a simulated process).
  struct Sched {
    long long job = -1;        ///< Scheduler job id.
    int priority = 0;          ///< Static priority of the job.
    int procs = 0;             ///< Abstract processors (slots leased).
    double predicted_s = 0.0;  ///< Segment service length at dispatch time.
    double progress = 0.0;     ///< kSchedPreempt: completed segment fraction.
  };

  /// Named payload for kCollSelect (`bytes` carries the payload size; the
  /// op/algo integers are hmpi::coll::CollOp and its per-op algorithm enum,
  /// exported by name in the Chrome-trace args).
  struct CollSelect {
    int op = -1;                ///< coll::CollOp of the collective.
    int algo = 0;               ///< Selected per-op algorithm value.
    double predicted_s = -1.0;  ///< Tuner-predicted duration; < 0 if none.
  };

  Kind kind = Kind::kCompute;
  int world_rank = -1;  ///< Acting process.
  int processor = -1;   ///< Its machine.
  int peer = -1;        ///< Destination (send) / source (recv) world rank.
  int tag = 0;
  int context = 0;
  std::size_t bytes = 0;   ///< Message size (logical bytes).
  double units = 0.0;      ///< Computation volume (kCompute only).
  double start_time = 0.0; ///< Virtual time the event began.
  double end_time = 0.0;   ///< Virtual completion (message arrival for sends).
  MapperSearch search;     ///< kMapperSearch only.
  MapperBatch batch;       ///< kMapperBatch only.
  EstCompile compile;      ///< kEstCompile only.
  CollSelect coll;         ///< kCollSelect only.
  Adapt adapt;             ///< kAdaptTrigger/kAdaptMigrate/kAdaptRollback.
  Sched sched;             ///< kSchedDispatch/kSchedPreempt only.
};

/// Stable lower-case name for an event kind ("send", "mapper_search", ...).
const char* kind_name(TraceEvent::Kind kind);

/// Converts events to Chrome-trace form on the virtual timeline
/// (pid = telemetry::kVirtualPid, tid = world_rank, ts = virtual seconds
/// scaled to microseconds). Instantaneous kinds (crash, drop, suspect,
/// recover, mapper_search, est_compile, adapt_*, sched_*) become 'i'
/// events; the rest are 'X'.
std::vector<telemetry::ChromeEvent> to_chrome_events(
    std::span<const TraceEvent> events);

/// Thread-safe collector of TraceEvents for one run.
class Tracer {
 public:
  void record(const TraceEvent& event);

  /// All events, sorted by (start_time, world_rank). Call after World::run.
  std::vector<TraceEvent> events() const;

  /// `kind,world_rank,processor,peer,tag,context,bytes,units,start,end`
  /// lines, header included.
  void write_csv(std::ostream& os) const;

  /// Chrome `trace_event` JSON of events() (virtual timeline only; the
  /// runtime's combined exporter also merges wall-clock spans).
  void write_chrome_json(std::ostream& os) const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace hmpi::mp
