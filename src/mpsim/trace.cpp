#include "mpsim/trace.hpp"

#include <algorithm>
#include <ostream>

namespace hmpi::mp {

void Tracer::record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    return a.world_rank < b.world_rank;
  });
  return out;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "kind,world_rank,processor,peer,tag,context,bytes,units,start,end\n";
  for (const TraceEvent& e : events()) {
    const char* kind = "compute";
    switch (e.kind) {
      case TraceEvent::Kind::kSend: kind = "send"; break;
      case TraceEvent::Kind::kRecv: kind = "recv"; break;
      case TraceEvent::Kind::kCompute: kind = "compute"; break;
      case TraceEvent::Kind::kCrash: kind = "crash"; break;
      case TraceEvent::Kind::kDrop: kind = "drop"; break;
      case TraceEvent::Kind::kDelay: kind = "delay"; break;
      case TraceEvent::Kind::kLinkBlocked: kind = "link_blocked"; break;
      case TraceEvent::Kind::kSuspect: kind = "suspect"; break;
      case TraceEvent::Kind::kRecover: kind = "recover"; break;
      case TraceEvent::Kind::kMapperSearch: kind = "mapper_search"; break;
    }
    os << kind << ',' << e.world_rank << ',' << e.processor << ',' << e.peer
       << ',' << e.tag << ',' << e.context << ',' << e.bytes << ',' << e.units
       << ',' << e.start_time << ',' << e.end_time << '\n';
  }
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace hmpi::mp
