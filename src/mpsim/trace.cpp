#include "mpsim/trace.hpp"

#include <algorithm>
#include <ostream>

#include "coll/policy.hpp"
#include "telemetry/chrome_trace.hpp"

namespace hmpi::mp {

const char* kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kRecv: return "recv";
    case TraceEvent::Kind::kCompute: return "compute";
    case TraceEvent::Kind::kCrash: return "crash";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kDelay: return "delay";
    case TraceEvent::Kind::kLinkBlocked: return "link_blocked";
    case TraceEvent::Kind::kSuspect: return "suspect";
    case TraceEvent::Kind::kRecover: return "recover";
    case TraceEvent::Kind::kMapperSearch: return "mapper_search";
    case TraceEvent::Kind::kMapperBatch: return "mapper_batch";
    case TraceEvent::Kind::kCollSelect: return "coll_select";
    case TraceEvent::Kind::kEstCompile: return "est_compile";
    case TraceEvent::Kind::kAdaptTrigger: return "adapt_trigger";
    case TraceEvent::Kind::kAdaptMigrate: return "adapt_migrate";
    case TraceEvent::Kind::kAdaptRollback: return "adapt_rollback";
    case TraceEvent::Kind::kSchedDispatch: return "sched_dispatch";
    case TraceEvent::Kind::kSchedPreempt: return "sched_preempt";
  }
  return "compute";
}

namespace {

bool is_instant(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kCrash:
    case TraceEvent::Kind::kDrop:
    case TraceEvent::Kind::kSuspect:
    case TraceEvent::Kind::kRecover:
    case TraceEvent::Kind::kMapperSearch:
    case TraceEvent::Kind::kMapperBatch:
    case TraceEvent::Kind::kCollSelect:
    case TraceEvent::Kind::kEstCompile:
    case TraceEvent::Kind::kAdaptTrigger:
    case TraceEvent::Kind::kAdaptMigrate:
    case TraceEvent::Kind::kAdaptRollback:
    case TraceEvent::Kind::kSchedDispatch:
    case TraceEvent::Kind::kSchedPreempt:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<telemetry::ChromeEvent> to_chrome_events(
    std::span<const TraceEvent> events) {
  std::vector<telemetry::ChromeEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    telemetry::ChromeEvent c;
    c.name = kind_name(e.kind);
    c.pid = telemetry::kVirtualPid;
    c.tid = e.world_rank;
    c.ts_us = e.start_time * 1e6;
    if (is_instant(e.kind)) {
      c.ph = 'i';
    } else {
      c.ph = 'X';
      c.dur_us = (e.end_time - e.start_time) * 1e6;
    }
    c.arg("processor", static_cast<double>(e.processor));
    switch (e.kind) {
      case TraceEvent::Kind::kSend:
      case TraceEvent::Kind::kRecv:
      case TraceEvent::Kind::kDrop:
      case TraceEvent::Kind::kDelay:
      case TraceEvent::Kind::kLinkBlocked:
        c.arg("peer", static_cast<double>(e.peer));
        c.arg("tag", static_cast<double>(e.tag));
        c.arg("bytes", static_cast<double>(e.bytes));
        break;
      case TraceEvent::Kind::kCompute:
        c.arg("units", e.units);
        break;
      case TraceEvent::Kind::kMapperSearch:
        c.arg("evaluations", static_cast<double>(e.search.evaluations));
        c.arg("hit_rate", e.search.hit_rate);
        c.arg("threads", static_cast<double>(e.search.threads));
        c.arg("wall_seconds", e.search.wall_seconds);
        break;
      case TraceEvent::Kind::kMapperBatch:
        c.arg("chunks", static_cast<double>(e.batch.chunks));
        c.arg("candidates", static_cast<double>(e.batch.candidates));
        c.arg("evaluated", static_cast<double>(e.batch.evaluated));
        break;
      case TraceEvent::Kind::kEstCompile:
        c.arg("ops", static_cast<double>(e.compile.ops));
        c.arg("seconds", e.compile.seconds);
        break;
      case TraceEvent::Kind::kCollSelect:
        c.arg("op", coll::op_name(static_cast<coll::CollOp>(e.coll.op)));
        c.arg("algo",
              coll::algo_name(static_cast<coll::CollOp>(e.coll.op), e.coll.algo));
        c.arg("bytes", static_cast<double>(e.bytes));
        c.arg("predicted_s", e.coll.predicted_s);
        break;
      case TraceEvent::Kind::kAdaptTrigger:
      case TraceEvent::Kind::kAdaptMigrate:
      case TraceEvent::Kind::kAdaptRollback:
        c.arg("group_id", static_cast<double>(e.adapt.group_id));
        c.arg("signal", static_cast<double>(e.adapt.signal));
        c.arg("severity", e.adapt.severity);
        c.arg("predicted_gain_s", e.adapt.predicted_gain_s);
        break;
      case TraceEvent::Kind::kSchedDispatch:
      case TraceEvent::Kind::kSchedPreempt:
        c.arg("job", static_cast<double>(e.sched.job));
        c.arg("priority", static_cast<double>(e.sched.priority));
        c.arg("procs", static_cast<double>(e.sched.procs));
        c.arg("predicted_s", e.sched.predicted_s);
        c.arg("progress", e.sched.progress);
        break;
      default:
        break;
    }
    out.push_back(std::move(c));
  }
  return out;
}

void Tracer::record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  // Stable: events tied on (start_time, world_rank) come from one process
  // thread and keep their program order, so the sorted stream is independent
  // of the wall-clock interleaving in which threads recorded them.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_time != b.start_time) {
                       return a.start_time < b.start_time;
                     }
                     return a.world_rank < b.world_rank;
                   });
  return out;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "kind,world_rank,processor,peer,tag,context,bytes,units,start,end\n";
  for (const TraceEvent& e : events()) {
    // kMapperSearch keeps its historical column encoding (threads in peer,
    // hit rate percent in tag, evaluations in bytes, wall seconds in units)
    // so downstream CSV consumers keep working; the honest representation is
    // TraceEvent::search and the Chrome-trace args.
    int peer = e.peer;
    int tag = e.tag;
    std::size_t bytes = e.bytes;
    double units = e.units;
    if (e.kind == TraceEvent::Kind::kMapperSearch) {
      peer = e.search.threads;
      tag = static_cast<int>(e.search.hit_rate * 100.0);
      bytes = static_cast<std::size_t>(e.search.evaluations);
      units = e.search.wall_seconds;
    }
    // kCollSelect packs the same way: algorithm in peer, op in tag,
    // prediction in units; the honest form is TraceEvent::coll / the
    // Chrome-trace args.
    if (e.kind == TraceEvent::Kind::kCollSelect) {
      peer = e.coll.algo;
      tag = e.coll.op;
      units = e.coll.predicted_s;
    }
    // kMapperBatch packs the chunk count in peer, the SoA-evaluated count in
    // bytes and the candidate count in units; the honest form is
    // TraceEvent::batch / the Chrome-trace args.
    if (e.kind == TraceEvent::Kind::kMapperBatch) {
      peer = static_cast<int>(e.batch.chunks);
      bytes = static_cast<std::size_t>(e.batch.evaluated);
      units = static_cast<double>(e.batch.candidates);
    }
    // kEstCompile likewise: plan ops in bytes, compile seconds in units.
    if (e.kind == TraceEvent::Kind::kEstCompile) {
      bytes = static_cast<std::size_t>(e.compile.ops);
      units = e.compile.seconds;
    }
    // The kAdapt* kinds pack the signal in peer, the group id in bytes and
    // the predicted gain in units; the honest form is TraceEvent::adapt /
    // the Chrome-trace args (severity is trace-args-only).
    if (e.kind == TraceEvent::Kind::kAdaptTrigger ||
        e.kind == TraceEvent::Kind::kAdaptMigrate ||
        e.kind == TraceEvent::Kind::kAdaptRollback) {
      peer = e.adapt.signal;
      bytes = static_cast<std::size_t>(e.adapt.group_id);
      units = e.adapt.predicted_gain_s;
    }
    // The kSched* kinds pack the priority in peer, the abstract-processor
    // count in tag, the job id in bytes, and the predicted segment length
    // in units; the honest form is TraceEvent::sched / the Chrome-trace
    // args (progress is trace-args-only).
    if (e.kind == TraceEvent::Kind::kSchedDispatch ||
        e.kind == TraceEvent::Kind::kSchedPreempt) {
      peer = e.sched.priority;
      tag = e.sched.procs;
      bytes = static_cast<std::size_t>(e.sched.job);
      units = e.sched.predicted_s;
    }
    os << kind_name(e.kind) << ',' << e.world_rank << ',' << e.processor
       << ',' << peer << ',' << tag << ',' << e.context << ',' << bytes << ','
       << units << ',' << e.start_time << ',' << e.end_time << '\n';
  }
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> all = events();
  telemetry::write_chrome_trace(os, to_chrome_events(all));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace hmpi::mp
