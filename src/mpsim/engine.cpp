#include "mpsim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "mpsim/fiber.hpp"
#include "support/error.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi::mp::sim {

namespace {

// Which engine/fiber the calling thread is currently executing. Set by the
// scheduler and worker threads around fiber resumes; threads the simulation
// spawns for real host work (e.g. the mapper's ThreadPool) never inherit it,
// so their waits stay ordinary condition-variable waits.
thread_local EventEngine* tl_engine = nullptr;
thread_local Fiber* tl_fiber = nullptr;

}  // namespace

SimEngine resolve_engine(SimEngine configured) {
  if (configured != SimEngine::kAuto) return configured;
  if (const char* value = std::getenv("HMPI_SIM_ENGINE")) {
    const std::string v(value);
    if (v == "event" || v == "fiber") return SimEngine::kEvent;
  }
  return SimEngine::kThread;
}

int resolve_workers(int configured) {
  if (configured > 0) return configured;
  if (const char* value = std::getenv("HMPI_SIM_WORKERS")) {
    const int v = std::atoi(value);
    if (v > 0) return v;
  }
  return 1;
}

std::size_t resolve_stack_bytes(std::size_t configured) {
  if (configured > 0) return configured;
  if (const char* value = std::getenv("HMPI_SIM_STACK_KB")) {
    const long v = std::atol(value);
    if (v > 0) return static_cast<std::size_t>(v) * 1024;
  }
  return 512 * 1024;
}

bool on_fiber() noexcept { return tl_fiber != nullptr; }

bool WaitChannel::wait(std::unique_lock<std::mutex>& lock, double timeout_s) {
  if (tl_fiber != nullptr && tl_engine != nullptr) {
    return tl_engine->park(*this, lock, timeout_s);
  }
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout_s)) ==
         std::cv_status::no_timeout;
}

void WaitChannel::notify_all() {
  std::vector<Fiber*> woken;
  {
    std::lock_guard<std::mutex> guard(fiber_mutex_);
    woken.swap(fibers_);
  }
  for (Fiber* f : woken) f->engine()->make_ready(f);
  cv_.notify_all();
}

EventEngine::EventEngine(Config config) : config_(std::move(config)) {
  support::require(config_.workers >= 1, "event engine needs >= 1 worker");
  support::require(static_cast<bool>(config_.clock_of),
                   "event engine needs a clock_of callback");
}

EventEngine::~EventEngine() { stop_workers(); }

bool EventEngine::park(WaitChannel& channel, std::unique_lock<std::mutex>& lock,
                       double timeout_s) {
  Fiber* f = tl_fiber;
  {
    std::lock_guard<std::mutex> guard(channel.fiber_mutex_);
    f->timed_out = false;
    f->park_timeout_s = timeout_s;
    f->parked_on = &channel;
    channel.fibers_.push_back(f);
  }
  f->state = Fiber::State::kParked;
  lock.unlock();
  f->yield();
  lock.lock();
  return !f->timed_out;
}

void EventEngine::make_ready(Fiber* fiber) {
  std::lock_guard<std::mutex> guard(mutex_);
  fiber->parked_on = nullptr;
  fiber->state = Fiber::State::kReady;
  ready_.push({config_.clock_of(fiber->rank()), fiber->rank()});
  metrics_.ready_peak = std::max(metrics_.ready_peak, ready_.size());
}

Fiber* EventEngine::pop_ready() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (ready_.empty()) return nullptr;
  const int rank = ready_.top().second;
  ready_.pop();
  return fibers_[static_cast<std::size_t>(rank)].get();
}

void EventEngine::wake_stall_victim() {
  // No fiber is runnable and none is running: every live fiber is parked.
  // Wake the one the thread engine would have timed out first — smallest
  // wait timeout, ties broken by ascending world rank — flagged timed_out so
  // its wait returns false and the caller raises its deadlock diagnosis.
  Fiber* victim = nullptr;
  for (const auto& f : fibers_) {
    if (f->state != Fiber::State::kParked) continue;
    if (victim == nullptr || f->park_timeout_s < victim->park_timeout_s) {
      victim = f.get();
    }
  }
  support::require(victim != nullptr,
                   "event engine stalled with no parked fiber (internal error)");
  static const bool debug = std::getenv("HMPI_SIM_DEBUG") != nullptr;
  if (debug) {
    std::fprintf(stderr, "[sim] stall: victim rank=%d timeout=%.9f; parked:",
                 victim->rank(), victim->park_timeout_s);
    for (const auto& f : fibers_) {
      if (f->state == Fiber::State::kParked) {
        std::fprintf(stderr, " %d(%s,t=%.9f)", f->rank(),
                     f->parked_on->debug_name, f->park_timeout_s);
      } else if (f->state != Fiber::State::kFinished) {
        std::fprintf(stderr, " %d(state=%d)", f->rank(),
                     static_cast<int>(f->state));
      }
    }
    std::fprintf(stderr, "\n");
  }
  WaitChannel* channel = victim->parked_on;
  {
    std::lock_guard<std::mutex> guard(channel->fiber_mutex_);
    auto& waiters = channel->fibers_;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), victim),
                  waiters.end());
  }
  victim->timed_out = true;
  make_ready(victim);
  ++metrics_.stalls;
}

void EventEngine::run_fiber(Fiber* fiber) {
  EventEngine* prev_engine = tl_engine;
  Fiber* prev_fiber = tl_fiber;
  tl_engine = this;
  tl_fiber = fiber;
  fiber->state = Fiber::State::kRunning;
  {
    // Redirect process-local storage (the engine-agnostic thread_local
    // replacement) to this fiber's table for the duration of the resume.
    support::ProcessLocalsGuard locals_guard(&fiber->locals);
    fiber->resume();
  }
  tl_engine = prev_engine;
  tl_fiber = prev_fiber;
}

void EventEngine::dispatch(Fiber* fiber) {
  support::require(fiber->state == Fiber::State::kReady,
                   "event engine dispatched a fiber that is not ready");
  ++metrics_.dispatches;
  if (workers_.empty()) {
    run_fiber(fiber);
  } else {
    // Fibers are pinned to worker rank % W: a fiber's stack only ever
    // executes on one thread, and dispatch stays sequential (the scheduler
    // waits for the yield before picking the next fiber).
    Worker& w = *workers_[static_cast<std::size_t>(fiber->rank()) %
                          workers_.size()];
    std::unique_lock<std::mutex> lock(w.mutex);
    w.assigned = fiber;
    w.done = false;
    w.cv.notify_one();
    w.cv.wait(lock, [&] { return w.done; });
  }
  if (fiber->state == Fiber::State::kFinished) ++finished_;
}

void EventEngine::start_workers() {
  if (config_.workers <= 1) return;  // fast path: fibers run on this thread
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    Worker* w = worker.get();
    w->thread = std::thread([this, w] {
      std::unique_lock<std::mutex> lock(w->mutex);
      for (;;) {
        w->cv.wait(lock, [&] { return w->assigned != nullptr || w->stop; });
        if (w->stop) return;
        Fiber* fiber = w->assigned;
        w->assigned = nullptr;
        lock.unlock();
        run_fiber(fiber);
        lock.lock();
        w->done = true;
        w->cv.notify_one();
      }
    });
    workers_.push_back(std::move(worker));
  }
}

void EventEngine::stop_workers() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->stop = true;
    }
    worker->cv.notify_one();
    worker->thread.join();
  }
  workers_.clear();
}

void EventEngine::run(int nprocs, const std::function<void(int)>& body) {
  support::require(nprocs >= 1, "event engine needs at least one process");
  support::require(fibers_.empty(), "EventEngine::run is single-use");
  const std::size_t stack_bytes = config_.stack_bytes;
  fibers_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    fibers_.push_back(std::make_unique<Fiber>(this, r, stack_bytes,
                                              [&body, r] { body(r); }));
  }
  {
    // All clocks start equal, so the initial dispatch order is rank order.
    std::lock_guard<std::mutex> guard(mutex_);
    for (int r = 0; r < nprocs; ++r) {
      ready_.push({config_.clock_of(r), r});
    }
    metrics_.ready_peak = ready_.size();
  }
  start_workers();

  while (finished_ < nprocs) {
    Fiber* next = pop_ready();
    if (next == nullptr) {
      wake_stall_victim();
      continue;
    }
    dispatch(next);
  }
  stop_workers();

  auto& metrics = telemetry::metrics();
  metrics.counter("sim.dispatches").add(static_cast<double>(metrics_.dispatches));
  metrics.counter("sim.stalls").add(static_cast<double>(metrics_.stalls));
  metrics.gauge("sim.fibers").set(static_cast<double>(nprocs));
  metrics.gauge("sim.workers").set(static_cast<double>(config_.workers));
  metrics.gauge("sim.ready_peak").set(static_cast<double>(metrics_.ready_peak));
  metrics.gauge("sim.stack_bytes").set(static_cast<double>(stack_bytes));
}

}  // namespace hmpi::mp::sim
