#include "mpsim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <utility>

#include "support/error.hpp"

// Sanitizer fiber support: without these annotations TSan/ASan see one OS
// thread jumping between stacks and report false positives (or crash while
// unwinding fake stacks).
#if defined(__SANITIZE_THREAD__)
#define HMPI_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMPI_FIBER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define HMPI_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HMPI_FIBER_ASAN 1
#endif
#endif

#if defined(HMPI_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif
#if defined(HMPI_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

namespace hmpi::mp::sim {

namespace {

std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return ((bytes + page - 1) / page) * page;
}

}  // namespace

Fiber::Fiber(EventEngine* engine, int rank, std::size_t stack_bytes,
             std::function<void()> entry)
    : engine_(engine), rank_(rank), entry_(std::move(entry)) {
  const std::size_t page = page_size();
  stack_bytes_ = round_up_pages(stack_bytes < 4 * page ? 4 * page : stack_bytes);
  map_bytes_ = stack_bytes_ + page;  // one guard page below the stack
  // MAP_NORESERVE: 10k+ fibers only pay RSS for the stack pages they touch.
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  support::require(map != MAP_FAILED, "fiber stack mmap failed");
  map_base_ = map;
  ::mprotect(map_base_, page, PROT_NONE);  // overflow traps instead of corrupting
  stack_base_ = static_cast<char*>(map_base_) + page;

#if defined(HMPI_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif

  support::require(::getcontext(&ctx_) == 0, "getcontext failed");
  ctx_.uc_stack.ss_sp = stack_base_;
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = nullptr;  // a finished fiber yields explicitly, never returns
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
#if defined(HMPI_FIBER_TSAN)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t self = (static_cast<std::uintptr_t>(hi) << 32) |
                              static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->entry_point();
}

void Fiber::entry_point() {
#if defined(HMPI_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, &asan_host_stack_base_,
                                  &asan_host_stack_size_);
#endif
  entry_();
  state = State::kFinished;
  yield();
  // A finished fiber must never be resumed again.
  std::abort();
}

void Fiber::resume() {
#if defined(HMPI_FIBER_ASAN)
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_base_, stack_bytes_);
#endif
#if defined(HMPI_FIBER_TSAN)
  tsan_host_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  ::swapcontext(&host_, &ctx_);
  // Back on the host thread: the fiber parked or finished.
#if defined(HMPI_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void Fiber::yield() {
#if defined(HMPI_FIBER_ASAN)
  // Passing nullptr on the final switch lets ASan release the fake stack.
  __sanitizer_start_switch_fiber(
      state == State::kFinished ? nullptr : &asan_fake_stack_,
      asan_host_stack_base_, asan_host_stack_size_);
#endif
#if defined(HMPI_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_host_, 0);
#endif
  ::swapcontext(&ctx_, &host_);
  // Resumed again (possibly from a different resume() call of the host).
#if defined(HMPI_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &asan_host_stack_base_,
                                  &asan_host_stack_size_);
#endif
}

}  // namespace hmpi::mp::sim
