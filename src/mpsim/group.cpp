#include "mpsim/group.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hmpi::mp {

ProcessGroup::ProcessGroup(std::vector<int> world_ranks)
    : ranks_(std::move(world_ranks)) {
  std::vector<int> sorted = ranks_;
  std::sort(sorted.begin(), sorted.end());
  support::require(std::adjacent_find(sorted.begin(), sorted.end()) ==
                       sorted.end(),
                   "ProcessGroup members must be unique");
  for (int r : ranks_) {
    support::require(r >= 0, "ProcessGroup members must be non-negative");
  }
}

ProcessGroup ProcessGroup::of(const Comm& comm) {
  support::require(comm.valid(), "group of an invalid communicator");
  return ProcessGroup(comm.group());
}

int ProcessGroup::world_rank(int r) const {
  support::require(r >= 0 && r < size(), "group rank out of range");
  return ranks_[static_cast<std::size_t>(r)];
}

int ProcessGroup::rank_of(int world_rank) const noexcept {
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (ranks_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

ProcessGroup ProcessGroup::incl(std::span<const int> positions) const {
  std::vector<int> picked;
  picked.reserve(positions.size());
  for (int p : positions) picked.push_back(world_rank(p));
  return ProcessGroup(std::move(picked));
}

ProcessGroup ProcessGroup::excl(std::span<const int> positions) const {
  std::vector<bool> dropped(ranks_.size(), false);
  for (int p : positions) {
    support::require(p >= 0 && p < size(), "group rank out of range");
    dropped[static_cast<std::size_t>(p)] = true;
  }
  std::vector<int> kept;
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (!dropped[i]) kept.push_back(ranks_[i]);
  }
  return ProcessGroup(std::move(kept));
}

ProcessGroup ProcessGroup::set_union(const ProcessGroup& other) const {
  std::vector<int> merged = ranks_;
  for (int r : other.ranks_) {
    if (!contains(r)) merged.push_back(r);
  }
  return ProcessGroup(std::move(merged));
}

ProcessGroup ProcessGroup::set_intersection(const ProcessGroup& other) const {
  std::vector<int> common;
  for (int r : ranks_) {
    if (other.contains(r)) common.push_back(r);
  }
  return ProcessGroup(std::move(common));
}

ProcessGroup ProcessGroup::set_difference(const ProcessGroup& other) const {
  std::vector<int> remaining;
  for (int r : ranks_) {
    if (!other.contains(r)) remaining.push_back(r);
  }
  return ProcessGroup(std::move(remaining));
}

std::vector<int> ProcessGroup::translate(const ProcessGroup& from,
                                         std::span<const int> from_ranks,
                                         const ProcessGroup& to) {
  std::vector<int> out;
  out.reserve(from_ranks.size());
  for (int r : from_ranks) {
    out.push_back(to.rank_of(from.world_rank(r)));
  }
  return out;
}

Comm create_comm(Proc& proc, const ProcessGroup& group) {
  support::require(!group.empty(), "create_comm needs a non-empty group");
  return Comm::create_subcomm(proc, group.world_ranks());
}

}  // namespace hmpi::mp
