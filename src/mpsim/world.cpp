#include "mpsim/world.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <thread>

#include "mpsim/trace.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi::mp {

int Proc::nprocs() const noexcept { return world_->nprocs(); }

void Proc::note_compute_seconds(double seconds) {
  if (compute_seconds_counter_ == nullptr) {
    compute_seconds_counter_ = &telemetry::metrics().counter(
        "machine." + std::to_string(processor_) + ".compute_seconds");
  }
  compute_seconds_counter_->add(seconds);
}

void Proc::note_message_sent(std::size_t bytes) {
  if (messages_sent_counter_ == nullptr) {
    const std::string prefix = "machine." + std::to_string(processor_) + ".";
    messages_sent_counter_ =
        &telemetry::metrics().counter(prefix + "messages_sent");
    sent_bytes_counter_ = &telemetry::metrics().counter(prefix + "sent_bytes");
  }
  messages_sent_counter_->add(1.0);
  sent_bytes_counter_->add(static_cast<double>(bytes));
}

const hnoc::Cluster& Proc::cluster() const noexcept { return world_->cluster(); }

telemetry::CausalEvent Proc::causal_event() const {
  telemetry::CausalEvent e;
  e.rank = rank_;
  e.proc = processor_;
  if (!coll_notes_.empty()) {
    e.coll_op = coll_notes_.back().first;
    e.coll_algo = coll_notes_.back().second;
  }
  return e;
}

void Proc::check_crash() {
  if (crash_time_ <= clock_) die(std::max(clock_, crash_time_));
}

void Proc::die(double t) {
  clock_ = std::max(clock_, t);
  world_->mark_dead(rank_, clock_);
  throw ProcessKilledError("process " + std::to_string(rank_) +
                           " killed by injected fault at virtual t=" +
                           std::to_string(clock_) + "s");
}

void Proc::compute(double units) {
  support::require(units >= 0.0, "compute volume must be non-negative");
  check_crash();
  const double finish = world_->cluster().compute_finish(processor_, clock_, units);
  if (crash_time_ <= finish) die(crash_time_);  // dies mid-computation
  stats_.compute_units += units;
  stats_.compute_time += finish - clock_;
  note_compute_seconds(finish - clock_);
  if (Tracer* tracer = world_->options().tracer) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kCompute;
    event.world_rank = rank_;
    event.processor = processor_;
    event.units = units;
    event.start_time = clock_;
    event.end_time = finish;
    tracer->record(event);
  }
  if (world_->causal_log().enabled()) {
    telemetry::CausalEvent e = causal_event();
    e.kind = telemetry::CausalEvent::Kind::kCompute;
    e.t0 = clock_;
    e.t1 = finish;
    world_->causal_log().record(rank_, e);
  }
  clock_ = finish;
}

void Proc::elapse(double seconds) {
  support::require(seconds >= 0.0, "elapse duration must be non-negative");
  check_crash();
  if (crash_time_ <= clock_ + seconds) die(crash_time_);
  if (world_->causal_log().enabled() && seconds > 0.0) {
    telemetry::CausalEvent e = causal_event();
    e.kind = telemetry::CausalEvent::Kind::kElapse;
    e.t0 = clock_;
    e.t1 = clock_ + seconds;
    world_->causal_log().record(rank_, e);
  }
  clock_ += seconds;
}

World::World(const hnoc::Cluster& cluster, std::vector<int> placement,
             Options options)
    : cluster_(&cluster), placement_(std::move(placement)), options_(std::move(options)) {
  support::require(!placement_.empty(), "World needs at least one process");
  for (int p : placement_) {
    support::require(p >= 0 && p < cluster.size(),
                     "placement references processor outside the cluster");
  }
  mailboxes_.reserve(placement_.size());
  for (std::size_t i = 0; i < placement_.size(); ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  auto members = std::make_shared<std::vector<int>>(placement_.size());
  std::iota(members->begin(), members->end(), 0);
  world_members_ = std::move(members);

  alive_ = std::make_unique<std::atomic<bool>[]>(placement_.size());
  for (std::size_t i = 0; i < placement_.size(); ++i) alive_[i].store(true);

  // Merge the cluster's availability calendars into the fault plan.
  bool any_calendar = false;
  for (int p = 0; p < cluster.size(); ++p) {
    if (!cluster.processor(p).availability.always_up()) any_calendar = true;
  }
  if (any_calendar) {
    FaultPlan derived = FaultPlan::from_cluster(cluster, placement_);
    options_.faults.crashes.insert(options_.faults.crashes.end(),
                                   derived.crashes.begin(), derived.crashes.end());
    options_.faults.outages.insert(options_.faults.outages.end(),
                                   derived.outages.begin(), derived.outages.end());
  }
  for (const FaultPlan::Crash& c : options_.faults.crashes) {
    support::require(c.world_rank >= 0 && c.world_rank < nprocs(),
                     "fault plan crashes a world rank outside the run");
    support::require(c.time >= 0.0, "fault plan crash time must be >= 0");
  }

  causal_ = std::make_shared<telemetry::CausalLog>(
      nprocs(), telemetry::resolve_prof_mode(options_.prof));
}

World::LinkReservation World::reserve_link(int src_proc, int dst_proc,
                                           double ready_time,
                                           std::size_t bytes) {
  const hnoc::LinkParams& link = cluster_->link(src_proc, dst_proc);
  LinkReservation r;
  std::lock_guard<std::mutex> lock(link_mutex_);
  double& busy = link_busy_[{src_proc, dst_proc}];
  double start = std::max(ready_time, busy);
  if (!options_.faults.outages.empty()) {
    const double clear = options_.faults.link_ready_after(src_proc, dst_proc, start);
    r.outage_deferred = clear > start;
    start = clear;
  }
  r.start = start;
  r.finish = start + link.transfer_time(static_cast<double>(bytes));
  busy = r.finish;
  return r;
}

double World::death_time(int world_rank) const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  auto it = death_times_.find(world_rank);
  return it == death_times_.end() ? std::numeric_limits<double>::infinity()
                                  : it->second;
}

void World::mark_dead(int world_rank, double t) {
  support::require(world_rank >= 0 && world_rank < nprocs(),
                   "world rank out of range");
  if (!alive_[static_cast<std::size_t>(world_rank)].exchange(false)) return;
  failed_count_.fetch_add(1);
  std::vector<std::function<void(int, double)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    death_times_.emplace(world_rank, t);
    callbacks = death_callbacks_;
  }
  if (Tracer* tracer = options_.tracer) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kCrash;
    event.world_rank = world_rank;
    event.processor = processor_of(world_rank);
    event.start_time = t;
    event.end_time = t;
    tracer->record(event);
  }
  if (causal_->enabled()) {
    // Recorded from the dying rank's own thread (die() runs on it), so the
    // per-rank sharding invariant holds.
    telemetry::CausalEvent e;
    e.kind = telemetry::CausalEvent::Kind::kMark;
    e.flags = telemetry::CausalEvent::kCrash;
    e.rank = world_rank;
    e.proc = processor_of(world_rank);
    e.t0 = t;
    e.t1 = t;
    causal_->record(world_rank, e);
  }
  // Wake every blocked receiver so hopeless-predicates re-evaluate, then the
  // registered higher-layer watchers (e.g. the HMPI rendezvous queue).
  for (auto& mb : mailboxes_) mb->poke();
  for (const auto& cb : callbacks) cb(world_rank, t);
}

void World::on_death(std::function<void(int, double)> callback) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  death_callbacks_.push_back(std::move(callback));
}

void World::revoke_context(int context) {
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (!revoked_contexts_.insert(context).second) return;
  }
  for (auto& mb : mailboxes_) mb->poke();
}

bool World::context_revoked(int context) const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return revoked_contexts_.count(context) != 0;
}

void World::note_recv_begin(int world_rank, int src, int tag, int context,
                            double clock) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_recvs_[world_rank] = {src, tag, context, clock};
}

void World::note_recv_end(int world_rank) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_recvs_.erase(world_rank);
}

std::string World::describe_stuck_state() const {
  constexpr std::size_t kMaxShown = 4;
  std::ostringstream os;
  os << "pending state per rank:";
  for (int r = 0; r < nprocs(); ++r) {
    os << "\n  rank " << r << ": ";
    if (!alive(r)) {
      os << "dead (crashed at t=" << death_time(r) << "s)";
    } else {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      auto it = pending_recvs_.find(r);
      if (it == pending_recvs_.end()) {
        os << "not blocked in a receive";
      } else {
        os << "blocked recv(src=" << it->second.src << ", tag=" << it->second.tag
           << ", context=" << it->second.context << ") since virtual t="
           << it->second.clock << "s";
      }
    }
    const auto queued = mailboxes_[static_cast<std::size_t>(r)]->snapshot();
    if (queued.empty()) {
      os << "; no unmatched incoming sends";
    } else {
      os << "; " << queued.size() << " unmatched incoming send(s):";
      for (std::size_t i = 0; i < queued.size() && i < kMaxShown; ++i) {
        const auto& e = queued[i];
        os << " [from=" << e.src_world << " tag=" << e.tag << " context="
           << e.context << " bytes=" << e.logical_bytes << "]";
      }
      if (queued.size() > kMaxShown) {
        os << " ... (" << queued.size() - kMaxShown << " more)";
      }
    }
  }
  return os.str();
}

std::shared_ptr<void> World::get_or_create_shared(
    const std::function<std::shared_ptr<void>()>& factory) {
  std::lock_guard<std::mutex> lock(shared_mutex_);
  if (!shared_) shared_ = factory();
  return shared_;
}

void World::abort_all() {
  aborted_.store(true);
  for (auto& mb : mailboxes_) mb->shutdown();
}

World::RunResult World::run(const hnoc::Cluster& cluster,
                            std::vector<int> placement,
                            const std::function<void(Proc&)>& body,
                            Options options) {
  // Nested worlds (a simulated process starting its own World::run) fall
  // back to the thread engine: a fiber must not host a second scheduler.
  const sim::SimEngine engine = sim::on_fiber()
                                    ? sim::SimEngine::kThread
                                    : sim::resolve_engine(options.engine);
  World world(cluster, std::move(placement), std::move(options));
  const int n = world.nprocs();

  std::vector<Proc> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    procs.push_back(Proc(&world, r, world.processor_of(r)));
    if (auto crash = world.options().faults.crash_time(r)) {
      procs.back().crash_time_ = *crash;
    }
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::atomic<int> first_error{-1};
  const auto guarded_body = [&](int r) {
    try {
      body(procs[static_cast<std::size_t>(r)]);
    } catch (const ProcessKilledError&) {
      // Injected crash: an expected event of the fault model, not a run
      // failure. The process is already marked dead; survivors continue.
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      int expected = -1;
      first_error.compare_exchange_strong(expected, r);
      world.abort_all();
    }
  };

  if (engine == sim::SimEngine::kEvent) {
    telemetry::metrics().counter("sim.runs.event").add();
    sim::EventEngine::Config config;
    config.workers = sim::resolve_workers(world.options().event_workers);
    config.stack_bytes =
        sim::resolve_stack_bytes(world.options().fiber_stack_bytes);
    config.clock_of = [&procs](int r) {
      return procs[static_cast<std::size_t>(r)].clock();
    };
    sim::EventEngine(std::move(config)).run(n, guarded_body);
  } else {
    telemetry::metrics().counter("sim.runs.thread").add();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([&guarded_body, r] { guarded_body(r); });
    }
    for (std::thread& t : threads) t.join();
  }

  if (int fe = first_error.load(); fe >= 0) {
    std::rethrow_exception(errors[static_cast<std::size_t>(fe)]);
  }

  RunResult result;
  result.clocks.reserve(static_cast<std::size_t>(n));
  result.stats.reserve(static_cast<std::size_t>(n));
  for (const Proc& p : procs) {
    result.clocks.push_back(p.clock());
    result.stats.push_back(p.stats());
  }
  result.makespan = *std::max_element(result.clocks.begin(), result.clocks.end());
  for (int r = 0; r < n; ++r) {
    if (!world.alive(r)) result.failed_ranks.push_back(r);
  }
  result.causal = world.causal_;  // outlives the World (destroyed on return)
  return result;
}

World::RunResult World::run_one_per_processor(
    const hnoc::Cluster& cluster, const std::function<void(Proc&)>& body,
    Options options) {
  std::vector<int> placement(static_cast<std::size_t>(cluster.size()));
  std::iota(placement.begin(), placement.end(), 0);
  return run(cluster, std::move(placement), body, options);
}

}  // namespace hmpi::mp
