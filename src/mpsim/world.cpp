#include "mpsim/world.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "mpsim/trace.hpp"

namespace hmpi::mp {

int Proc::nprocs() const noexcept { return world_->nprocs(); }

const hnoc::Cluster& Proc::cluster() const noexcept { return world_->cluster(); }

void Proc::compute(double units) {
  support::require(units >= 0.0, "compute volume must be non-negative");
  const double finish = world_->cluster().compute_finish(processor_, clock_, units);
  stats_.compute_units += units;
  stats_.compute_time += finish - clock_;
  if (Tracer* tracer = world_->options().tracer) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kCompute;
    event.world_rank = rank_;
    event.processor = processor_;
    event.units = units;
    event.start_time = clock_;
    event.end_time = finish;
    tracer->record(event);
  }
  clock_ = finish;
}

void Proc::elapse(double seconds) {
  support::require(seconds >= 0.0, "elapse duration must be non-negative");
  clock_ += seconds;
}

World::World(const hnoc::Cluster& cluster, std::vector<int> placement,
             Options options)
    : cluster_(&cluster), placement_(std::move(placement)), options_(options) {
  support::require(!placement_.empty(), "World needs at least one process");
  for (int p : placement_) {
    support::require(p >= 0 && p < cluster.size(),
                     "placement references processor outside the cluster");
  }
  mailboxes_.reserve(placement_.size());
  for (std::size_t i = 0; i < placement_.size(); ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  auto members = std::make_shared<std::vector<int>>(placement_.size());
  std::iota(members->begin(), members->end(), 0);
  world_members_ = std::move(members);
}

std::pair<double, double> World::reserve_link(int src_proc, int dst_proc,
                                              double ready_time,
                                              std::size_t bytes) {
  const hnoc::LinkParams& link = cluster_->link(src_proc, dst_proc);
  std::lock_guard<std::mutex> lock(link_mutex_);
  double& busy = link_busy_[{src_proc, dst_proc}];
  const double start = std::max(ready_time, busy);
  const double finish = start + link.transfer_time(static_cast<double>(bytes));
  busy = finish;
  return {start, finish};
}

std::shared_ptr<void> World::get_or_create_shared(
    const std::function<std::shared_ptr<void>()>& factory) {
  std::lock_guard<std::mutex> lock(shared_mutex_);
  if (!shared_) shared_ = factory();
  return shared_;
}

void World::abort_all() {
  aborted_.store(true);
  for (auto& mb : mailboxes_) mb->shutdown();
}

World::RunResult World::run(const hnoc::Cluster& cluster,
                            std::vector<int> placement,
                            const std::function<void(Proc&)>& body,
                            Options options) {
  World world(cluster, std::move(placement), options);
  const int n = world.nprocs();

  std::vector<Proc> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    procs.push_back(Proc(&world, r, world.processor_of(r)));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::atomic<int> first_error{-1};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(procs[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        int expected = -1;
        first_error.compare_exchange_strong(expected, r);
        world.abort_all();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  if (int fe = first_error.load(); fe >= 0) {
    std::rethrow_exception(errors[static_cast<std::size_t>(fe)]);
  }

  RunResult result;
  result.clocks.reserve(static_cast<std::size_t>(n));
  result.stats.reserve(static_cast<std::size_t>(n));
  for (const Proc& p : procs) {
    result.clocks.push_back(p.clock());
    result.stats.push_back(p.stats());
  }
  result.makespan = *std::max_element(result.clocks.begin(), result.clocks.end());
  return result;
}

World::RunResult World::run_one_per_processor(
    const hnoc::Cluster& cluster, const std::function<void(Proc&)>& body,
    Options options) {
  std::vector<int> placement(static_cast<std::size_t>(cluster.size()));
  std::iota(placement.begin(), placement.end(), 0);
  return run(cluster, std::move(placement), body, options);
}

}  // namespace hmpi::mp
