// Stackful fiber for the event-driven simulation engine (docs/simulator.md).
//
// A Fiber is one resumable simulated-process task: a private mmap'd stack
// (with a PROT_NONE guard page below it) plus a ucontext. Execution is
// cooperative — the fiber runs on a host thread until it parks on a
// sim::WaitChannel or its entry returns; resume()/yield() switch between the
// host thread's context and the fiber's. All scheduling state (state,
// timed_out, parked_on) is owned by the EventEngine, which dispatches at
// most one fiber at a time.
#pragma once

#include <cstddef>
#include <functional>
#include <ucontext.h>

#include "support/process_local.hpp"

namespace hmpi::mp::sim {

class EventEngine;
class WaitChannel;

class Fiber {
 public:
  enum class State { kReady, kRunning, kParked, kFinished };

  /// `stack_bytes` is rounded up to whole pages; the entry must not throw
  /// (the engine wraps process bodies in a catch-all).
  Fiber(EventEngine* engine, int rank, std::size_t stack_bytes,
        std::function<void()> entry);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches the calling host thread into the fiber; returns at the fiber's
  /// next yield() (park or finish). Only the engine calls this.
  void resume();

  /// Switches from inside the fiber back to the host thread that resumed it.
  void yield();

  int rank() const noexcept { return rank_; }
  EventEngine* engine() const noexcept { return engine_; }
  std::size_t stack_bytes() const noexcept { return stack_bytes_; }

  State state = State::kReady;
  /// Set when the engine wakes the fiber as a structural-stall victim rather
  /// than through a notify; WaitChannel::wait returns false in that case.
  bool timed_out = false;
  /// Timeout of the wait the fiber is parked in (stall-victim priority).
  double park_timeout_s = 0.0;
  /// Channel the fiber is parked on (so a stall can deregister it).
  WaitChannel* parked_on = nullptr;
  /// This simulated process's thread_local-replacement slots (the engine
  /// installs the table around every resume; see support/process_local.hpp).
  support::ProcessLocals locals;

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void entry_point();

  EventEngine* engine_;
  int rank_;
  std::function<void()> entry_;

  void* map_base_ = nullptr;  ///< mmap base: guard page + stack.
  std::size_t map_bytes_ = 0;
  void* stack_base_ = nullptr;  ///< Usable stack low address.
  std::size_t stack_bytes_ = 0;

  ucontext_t ctx_;
  ucontext_t host_;

  // Sanitizer bookkeeping (no-ops outside TSan/ASan builds).
  void* tsan_fiber_ = nullptr;
  void* tsan_host_ = nullptr;
  void* asan_fake_stack_ = nullptr;
  const void* asan_host_stack_base_ = nullptr;
  std::size_t asan_host_stack_size_ = 0;
};

}  // namespace hmpi::mp::sim
