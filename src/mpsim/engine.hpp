// The event-driven virtual-time engine of mpsim (docs/simulator.md).
//
// The classic engine runs one OS thread per simulated process; this one runs
// each process body as a stackful fiber and dispatches fibers one at a time
// from a central ready queue ordered by (virtual clock, world rank). That
// ordering is the engine's determinism contract: of all runnable processes
// the one with the smallest virtual clock runs next, and simultaneous
// events break the tie by ascending world rank. Blocking sites (the mailbox,
// the runtime rendezvous) park the fiber on a WaitChannel instead of a
// condition variable; when no fiber is runnable the engine declares a
// structural stall and wakes the parked fiber with the smallest
// (timeout, rank) as "timed out" — the virtual-time equivalent of the
// thread engine's real-time deadlock timeout.
//
// Worker threads host the fiber stacks (fiber r is pinned to worker
// r % workers); dispatch remains globally sequential, so results are
// identical for every worker count by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hmpi::mp::sim {

class EventEngine;
class Fiber;

/// Which execution engine World::run uses (WorldOptions::engine).
enum class SimEngine {
  kAuto,    ///< HMPI_SIM_ENGINE env var, defaulting to kThread.
  kThread,  ///< One OS thread per simulated process (the classic engine).
  kEvent,   ///< Fibers over a virtual-time event queue.
};

/// Resolves kAuto against the HMPI_SIM_ENGINE env var ("thread" | "event");
/// unknown values fall back to kThread.
SimEngine resolve_engine(SimEngine configured);

/// Resolves the event-engine worker count: a positive configured value wins,
/// else HMPI_SIM_WORKERS, else 1.
int resolve_workers(int configured);

/// Resolves the fiber stack size: a positive configured value wins, else
/// HMPI_SIM_STACK_KB, else 512 KiB.
std::size_t resolve_stack_bytes(std::size_t configured);

/// True when the calling thread is currently executing a simulation fiber.
bool on_fiber() noexcept;

/// Engine-agnostic blocking primitive. Under the thread engine it is a plain
/// condition variable; under the event engine wait() parks the calling fiber
/// and notify_all() moves every parked fiber back to the ready queue.
/// Callers use it exactly like a condition variable with an external mutex.
class WaitChannel {
 public:
  /// Releases `lock`, blocks until notified (true) or timed out (false),
  /// reacquires `lock` before returning. On a fiber, "timed out" means the
  /// engine picked this fiber as a structural-stall victim.
  bool wait(std::unique_lock<std::mutex>& lock, double timeout_s);

  /// Wakes every waiter (threads and fibers).
  void notify_all();

  const char* debug_name = "channel";  ///< HMPI_SIM_DEBUG stall dumps only.

 private:
  friend class EventEngine;
  std::condition_variable cv_;
  std::mutex fiber_mutex_;
  std::vector<Fiber*> fibers_;
};

/// Dispatches N process-body fibers to completion in virtual-time order.
class EventEngine {
 public:
  struct Config {
    int workers = 1;
    std::size_t stack_bytes = 512 * 1024;
    /// Current virtual clock of rank r; sampled when a fiber becomes ready
    /// (its clock cannot advance while it is parked).
    std::function<double(int)> clock_of;
  };

  struct Metrics {
    std::uint64_t dispatches = 0;  ///< Fiber resumes.
    std::uint64_t stalls = 0;      ///< Structural-stall victim wakeups.
    std::size_t ready_peak = 0;    ///< High-water mark of the ready queue.
  };

  explicit EventEngine(Config config);
  ~EventEngine();
  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// Runs fibers 0..nprocs-1, each executing body(rank), until all finish.
  /// `body` must not throw (wrap process bodies in a catch-all first).
  void run(int nprocs, const std::function<void(int)>& body);

  const Metrics& metrics() const noexcept { return metrics_; }

 private:
  friend class WaitChannel;

  /// Parks the current fiber on `channel` (WaitChannel::wait, fiber path).
  bool park(WaitChannel& channel, std::unique_lock<std::mutex>& lock,
            double timeout_s);

  /// Moves a parked fiber to the ready queue (notify or stall wakeup).
  void make_ready(Fiber* fiber);

  Fiber* pop_ready();
  void dispatch(Fiber* fiber);
  void run_fiber(Fiber* fiber);
  void wake_stall_victim();
  void start_workers();
  void stop_workers();

  Config config_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  int finished_ = 0;

  // Ready queue: min-heap on (virtual clock at wake, world rank).
  std::mutex mutex_;
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<std::pair<double, int>>>
      ready_;

  // Worker pool (baton handoff: the scheduler hands one fiber to its pinned
  // worker and waits for the yield, so dispatch stays sequential).
  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    Fiber* assigned = nullptr;
    bool done = false;
    bool stop = false;
  };
  std::vector<std::unique_ptr<Worker>> workers_;

  Metrics metrics_;
};

}  // namespace hmpi::mp::sim
