#include "mpsim/fault.hpp"

#include <algorithm>

#include "hnoc/cluster.hpp"

namespace hmpi::mp {

namespace {

/// SplitMix64 finaliser: one round is enough to decorrelate the packed
/// (seed, src, dst, sequence) key into a uniform 64-bit value.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t message_hash(std::uint64_t seed, int src, int dst,
                           std::uint64_t sequence, std::uint64_t salt) {
  std::uint64_t key = seed + 0x9e3779b97f4a7c15ULL * (sequence + 1);
  key ^= mix64(static_cast<std::uint64_t>(src) * 0xd1b54a32d192ed03ULL +
               static_cast<std::uint64_t>(dst) + salt);
  return mix64(key);
}

bool coin(double probability, std::uint64_t hash) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const double unit = static_cast<double>(hash >> 11) * 0x1.0p-53;
  return unit < probability;
}

}  // namespace

std::optional<double> FaultPlan::crash_time(int world_rank) const {
  std::optional<double> earliest;
  for (const Crash& c : crashes) {
    if (c.world_rank != world_rank) continue;
    if (!earliest || c.time < *earliest) earliest = c.time;
  }
  return earliest;
}

double FaultPlan::link_ready_after(int src_proc, int dst_proc,
                                   double start) const {
  // Windows may abut or overlap; iterate until no window covers `start`.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const LinkOutage& o : outages) {
      if (o.src_proc != src_proc || o.dst_proc != dst_proc) continue;
      if (start >= o.start && start < o.end) {
        start = o.end;
        moved = true;
      }
    }
  }
  return start;
}

bool FaultPlan::drops_message(int src_world, int dst_world,
                              std::uint64_t sequence) const {
  return coin(drop_probability,
              message_hash(seed, src_world, dst_world, sequence, 0x44524f50));
}

bool FaultPlan::delays_message(int src_world, int dst_world,
                               std::uint64_t sequence) const {
  return coin(delay_probability,
              message_hash(seed, src_world, dst_world, sequence, 0x44454c59));
}

FaultPlan FaultPlan::from_cluster(const hnoc::Cluster& cluster,
                                  const std::vector<int>& placement) {
  FaultPlan plan;
  for (int p = 0; p < cluster.size(); ++p) {
    const hnoc::Availability& avail = cluster.processor(p).availability;
    for (const hnoc::Availability::Outage& o : avail.outages()) {
      if (o.to == std::numeric_limits<double>::infinity()) {
        // Permanent failure: every process placed on p crashes at o.from.
        for (std::size_t r = 0; r < placement.size(); ++r) {
          if (placement[r] == p) {
            plan.crashes.push_back({static_cast<int>(r), o.from});
          }
        }
      } else {
        // Transient outage: the machine is unreachable — every directed
        // link touching it is down for the window.
        for (int q = 0; q < cluster.size(); ++q) {
          if (q == p) continue;
          plan.outages.push_back({p, q, o.from, o.to});
          plan.outages.push_back({q, p, o.from, o.to});
        }
      }
    }
  }
  return plan;
}

}  // namespace hmpi::mp
