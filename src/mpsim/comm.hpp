// Communicators: MPI-style point-to-point and collective operations over the
// simulated world.
//
// A Comm is a per-process handle: (process, context id, ordered member list).
// Context 0 is the world communicator. All collectives are built from the
// point-to-point primitives, so their virtual cost emerges from the same link
// model the estimator uses. Each collective runs one of a family of pluggable
// algorithms (src/coll/, docs/collectives.md): bcast may be flat, binomial,
// chain-pipelined, or two-level cluster-aware; reduce flat, binomial, or
// Rabenseifner; allgather composes gather+bcast (the historical default) or
// runs ring / recursive-doubling; barrier is dissemination or tournament;
// alltoall is pairwise rounds. The algorithm is resolved per call — per-comm
// policy, then WorldOptions::coll, then the installed coll::Selector (the
// runtime's cost-model tuner), then the legacy default, whose message
// schedule and virtual timing match the old hard-coded implementations
// exactly.
//
// Internal collective traffic uses tags above kMaxUserTag; correctness across
// back-to-back collectives relies on the substrate's per-(sender, context)
// FIFO ordering, exactly as MPI implementations rely on non-overtaking.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "coll/algorithms.hpp"
#include "mpsim/world.hpp"

namespace hmpi::mp {

/// Color value excluding a process from the communicator made by split().
inline constexpr int kUndefinedColor = -1;

/// Sentinel for per-receive timeout parameters: use the world-wide
/// WorldOptions::deadlock_timeout_s.
inline constexpr double kUseWorldTimeout = -1.0;

namespace internal_tag {
// Reserved tag space for library-internal traffic (all above kMaxUserTag).
inline constexpr int kBarrierBase = kMaxUserTag + 0x0100;  // + round
inline constexpr int kBcastBase = kMaxUserTag + 0x0200;
inline constexpr int kReduceBase = kMaxUserTag + 0x0300;
inline constexpr int kGather = kMaxUserTag + 0x0400;
inline constexpr int kScatter = kMaxUserTag + 0x0500;
inline constexpr int kAllgatherBase = kMaxUserTag + 0x0600;  // + round
inline constexpr int kAlltoallBase = kMaxUserTag + 0x0700;   // + (round & 0xff)
inline constexpr int kSplit = kMaxUserTag + 0x0800;
inline constexpr int kSubcommCtx = kMaxUserTag + 0x0900;
inline constexpr int kDup = kMaxUserTag + 0x0a00;
inline constexpr int kGatherv = kMaxUserTag + 0x0b00;
inline constexpr int kScatterv = kMaxUserTag + 0x0c00;
inline constexpr int kScan = kMaxUserTag + 0x0d00;
inline constexpr int kAllreduceBase = kMaxUserTag + 0x0e00;      // + round
inline constexpr int kReduceScatterBase = kMaxUserTag + 0x0f00;  // + round
}  // namespace internal_tag

class Request;

/// Per-process communicator handle. Cheap to copy.
class Comm {
 public:
  /// Invalid handle (e.g. a process excluded by split()).
  Comm() = default;

  bool valid() const noexcept { return proc_ != nullptr; }
  int rank() const noexcept { return rank_; }
  int size() const noexcept {
    return members_ ? static_cast<int>(members_->size()) : 0;
  }
  int context() const noexcept { return context_; }

  /// Ordered member list as world ranks (the communicator's group).
  const std::vector<int>& group() const { return *members_; }

  /// World rank of communicator rank `r`.
  int world_rank_of(int r) const;
  /// Communicator rank of world rank `wr`, or -1 if not a member.
  int rank_of_world(int wr) const noexcept;

  Proc& proc() const noexcept { return *proc_; }

  // --- point-to-point -------------------------------------------------------

  /// Blocking buffered send of raw bytes to communicator rank `dst`.
  void send_bytes(std::span<const std::byte> data, int dst, int tag) const;

  /// Blocking receive into `buffer` (must be at least the message size) from
  /// communicator rank `src` (or kAnySource), tag `tag` (or kAnyTag).
  /// `timeout_s` overrides the world-wide deadlock timeout for this receive
  /// only (kUseWorldTimeout selects the world default). Raises
  /// PeerFailedError fast when `src` has crashed, RevokedError when the
  /// communicator's context was revoked, DeadlockError on timeout.
  Status recv_bytes(std::span<std::byte> buffer, int src, int tag,
                    double timeout_s = kUseWorldTimeout) const;

  /// Sends a zero-payload message costed as `bytes` on the wire. Used by
  /// workload drivers in virtual-only mode: the timing (and the receiver's
  /// blocking behaviour) is identical to a real `bytes`-sized message, but
  /// nothing is copied. Received with recv_placeholder (or recv_bytes with
  /// an empty buffer).
  void send_placeholder(std::size_t bytes, int dst, int tag) const;

  /// Receives a message without reading its payload (the Status reports the
  /// logical size). Pairs with send_placeholder; also accepts ordinary
  /// messages (their payload is discarded).
  Status recv_placeholder(int src, int tag,
                          double timeout_s = kUseWorldTimeout) const;

  /// Non-destructive test for an available matching message.
  bool iprobe(int src, int tag) const;

  /// Nonblocking send: the transfer is initiated immediately (buffered
  /// semantics), the returned request is already complete.
  Request isend_bytes(std::span<const std::byte> data, int dst, int tag) const;

  /// Nonblocking receive: matching and the clock update happen at wait/test.
  Request irecv_bytes(std::span<std::byte> buffer, int src, int tag) const;

  // --- typed wrappers -------------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(data), dst, tag);
  }

  template <typename T>
  Status recv(std::span<T> buffer, int src, int tag,
              double timeout_s = kUseWorldTimeout) const {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_bytes(std::as_writable_bytes(buffer), src, tag, timeout_s);
  }

  template <typename T>
  void send_value(const T& value, int dst, int tag) const {
    send(std::span<const T>(&value, 1), dst, tag);
  }

  template <typename T>
  T recv_value(int src, int tag, Status* status = nullptr,
               double timeout_s = kUseWorldTimeout) const {
    T value{};
    Status s = recv(std::span<T>(&value, 1), src, tag, timeout_s);
    if (status != nullptr) *status = s;
    return value;
  }

  /// Typed isend/irecv; defined after Request below.
  template <typename T>
  Request isend(std::span<const T> data, int dst, int tag) const;

  template <typename T>
  Request irecv(std::span<T> buffer, int src, int tag) const;

  /// Combined send+receive (deadlock-free by construction here, since sends
  /// are buffered; provided for MPI_Sendrecv-shaped code).
  template <typename T>
  Status sendrecv(std::span<const T> send_data, int dst, int send_tag,
                  std::span<T> recv_buffer, int src, int recv_tag) const {
    send(send_data, dst, send_tag);
    return recv(recv_buffer, src, recv_tag);
  }

  // --- collectives (must be called by every member, in the same order) -----

  /// Per-communicator algorithm overrides. Every member must install the
  /// same policy (it is local state of this handle, like an MPI info key);
  /// kAuto entries fall through to WorldOptions::coll, then the installed
  /// coll::Selector, then the legacy defaults.
  void set_coll_policy(const coll::CollPolicy& policy) { coll_policy_ = policy; }
  const coll::CollPolicy& coll_policy() const noexcept { return coll_policy_; }

  /// Barrier; synchronises virtual clocks to a common point (dissemination
  /// by default, tournament selectable).
  void barrier() const;

  /// Broadcast of `data` from `root` to all members (binomial tree by
  /// default; flat, chain-pipelined and two-level selectable).
  template <typename T>
  void bcast(std::span<T> data, int root) const {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(std::as_writable_bytes(data), root);
  }

  template <typename T>
  void bcast_value(T& value, int root) const {
    bcast(std::span<T>(&value, 1), root);
  }

  /// Broadcast of a vector whose size only the root knows.
  template <typename T>
  void bcast_vector(std::vector<T>& data, int root) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = data.size();
    bcast_value(n, root);
    if (rank() != root) data.resize(n);
    if (n > 0) bcast(std::span<T>(data), root);
  }

  /// Reduction (binomial tree by default; flat and Rabenseifner
  /// selectable); `out` is significant at root only. `op` must be
  /// associative — and commutative under the non-binomial algorithms, which
  /// combine in rank-dependent order; evaluation order is deterministic for
  /// a given (member count, algorithm).
  template <typename T, typename Op>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root) const;

  /// Native allreduce (reduce+bcast composition by default; recursive
  /// doubling and Rabenseifner selectable). `out` significant on every
  /// member; same `op` requirements as reduce.
  template <typename T, typename Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op) const;

  /// Reduce-scatter of size() equal blocks: `in` holds size() * block
  /// elements, rank r gets the element-wise reduction of every member's
  /// block r in `out` (first block elements). Pairwise exchange by default;
  /// recursive halving selectable. Same `op` requirements as reduce.
  template <typename T, typename Op>
  void reduce_scatter(std::span<const T> in, std::span<T> out, Op op) const;

  /// Linear gather of equal-sized contributions. `recv` (root only) must hold
  /// size() * send.size() elements, grouped by rank.
  template <typename T>
  void gather(std::span<const T> send, std::span<T> recv, int root) const;

  /// Allgather of equal-sized contributions into `recv` (size() * send.size()
  /// elements on every member). Gather-to-0 + bcast by default (the
  /// historical composition); ring and recursive doubling selectable.
  template <typename T>
  void allgather(std::span<const T> send, std::span<T> recv) const;

  /// Linear scatter of equal-sized pieces from root. `send` (root only) must
  /// hold size() * recv.size() elements.
  template <typename T>
  void scatter(std::span<const T> send, std::span<T> recv, int root) const;

  /// Pairwise-rounds all-to-all of equal-sized pieces.
  template <typename T>
  void alltoall(std::span<const T> send, std::span<T> recv) const;

  /// Variable-count gather: rank r contributes send.size() elements, placed
  /// at recv[displs[r]..] at root. `counts`/`displs` are significant at the
  /// root only (like MPI_Gatherv).
  template <typename T>
  void gatherv(std::span<const T> send, std::span<T> recv,
               std::span<const int> counts, std::span<const int> displs,
               int root) const;

  /// Variable-count scatter: rank r receives counts[r] elements from
  /// send[displs[r]..] at the root (like MPI_Scatterv). `recv` must have
  /// exactly this rank's count (communicated out of band or known a priori).
  template <typename T>
  void scatterv(std::span<const T> send, std::span<const int> counts,
                std::span<const int> displs, std::span<T> recv, int root) const;

  /// Inclusive prefix reduction: out[r] = op(in[0], ..., in[r]) elementwise
  /// (like MPI_Scan). Linear chain; deterministic evaluation order.
  template <typename T, typename Op>
  void scan(std::span<const T> in, std::span<T> out, Op op) const;

  // --- communicator management ---------------------------------------------

  /// MPI_Comm_split: members with the same non-negative `color` form a new
  /// communicator, ordered by (key, old rank). Color kUndefinedColor yields
  /// an invalid Comm. Collective over all members.
  Comm split(int color, int key) const;

  /// Duplicate with a fresh context. Collective over all members.
  Comm dup() const;

  /// Creates a communicator over exactly `world_ranks` (unique; the list
  /// order defines the new ranks, and every caller must pass the same list).
  /// Collective over the listed processes only — the analogue of MPI-3's
  /// MPI_Comm_create_group, which is what lets HMPI groups form without
  /// involving busy processes.
  static Comm create_subcomm(Proc& proc, std::vector<int> world_ranks);

  friend bool operator==(const Comm& a, const Comm& b) noexcept {
    return a.proc_ == b.proc_ && a.context_ == b.context_;
  }

 private:
  friend class Proc;
  friend class Request;

  Comm(Proc* proc, int context, std::shared_ptr<const std::vector<int>> members,
       int rank)
      : proc_(proc), context_(context), members_(std::move(members)), rank_(rank) {}

  void bcast_bytes(std::span<std::byte> data, int root) const;
  void check_member_rank(int r, const char* what) const;
  void send_impl(std::span<const std::byte> data, std::size_t logical_bytes,
                 int dst, int tag) const;
  Status recv_impl(std::span<std::byte>* buffer, int src, int tag,
                   double timeout_s) const;

  // --- collective dispatch (shared by the templates and comm.cpp) ----------

  struct CollChoice {
    int algo = 0;               ///< Resolved per-op algorithm (never kAuto).
    double predicted_s = -1.0;  ///< Selector prediction; < 0 when none.
  };

  /// Resolves the algorithm for one collective call (per-comm policy ->
  /// world policy -> selector -> legacy default), bumps the
  /// coll.<op>.<algo> counter, and records a kCollSelect trace event at
  /// communicator rank 0. Must be called identically by every member.
  CollChoice coll_select(coll::CollOp op, std::size_t bytes) const;

  /// Builds the message schedule for the resolved algorithm (count follows
  /// the coll::schedule_for convention: elements for bcast/reduce/allreduce,
  /// block elements for reduce_scatter/allgather, ignored for barrier).
  std::vector<coll::Step> coll_schedule(coll::CollOp op, int algo, int root,
                                        std::size_t count,
                                        std::size_t elem_size) const;

  /// Closes the books on a finished collective: observes the
  /// coll.<op>.seconds histogram and feeds measured-vs-predicted back to the
  /// selector.
  void coll_finish(coll::CollOp op, int algo, std::size_t bytes,
                   double start_clock, double predicted_s) const;

  /// Physical processor of each member, in communicator-rank order.
  std::vector<int> member_procs() const;

  Proc* proc_ = nullptr;
  int context_ = -1;
  std::shared_ptr<const std::vector<int>> members_;
  int rank_ = -1;
  coll::CollPolicy coll_policy_;
};

/// Handle for a nonblocking operation.
class Request {
 public:
  Request() = default;

  /// Blocks until completion; returns receive status (sends return a
  /// default-constructed Status).
  Status wait();

  /// Completes without blocking if possible; true on completion.
  bool test(Status* status = nullptr);

  bool done() const noexcept { return done_; }

  /// Waits on every request in order.
  static void wait_all(std::span<Request> requests);

  /// Completes one not-yet-done request and returns its index (round-robin
  /// polling over pending receives; like MPI_Waitany). Returns -1 when every
  /// request is already done.
  static int wait_any(std::span<Request> requests, Status* status = nullptr);

 private:
  friend class Comm;

  static Request completed_send() {
    Request r;
    r.done_ = true;
    return r;
  }

  static Request pending_recv(const Comm& comm, std::span<std::byte> buffer,
                              int src, int tag) {
    Request r;
    r.comm_ = comm;
    r.buffer_ = buffer;
    r.src_ = src;
    r.tag_ = tag;
    return r;
  }

  Comm comm_;
  std::span<std::byte> buffer_;
  int src_ = kAnySource;
  int tag_ = kAnyTag;
  bool done_ = false;
  Status status_;
};

// --- template implementations ----------------------------------------------

template <typename T>
Request Comm::isend(std::span<const T> data, int dst, int tag) const {
  static_assert(std::is_trivially_copyable_v<T>);
  return isend_bytes(std::as_bytes(data), dst, tag);
}

template <typename T>
Request Comm::irecv(std::span<T> buffer, int src, int tag) const {
  static_assert(std::is_trivially_copyable_v<T>);
  return irecv_bytes(std::as_writable_bytes(buffer), src, tag);
}

template <typename T, typename Op>
void Comm::reduce(std::span<const T> in, std::span<T> out, Op op,
                  int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  check_member_rank(root, "reduce root");
  support::require(rank() != root || out.size() >= in.size(),
                   "reduce: output buffer too small at root");
  if (size() == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  const std::size_t bytes = in.size() * sizeof(T);
  const CollChoice choice = coll_select(coll::CollOp::kReduce, bytes);
  const double start = proc_->clock();
  std::vector<T> acc(in.begin(), in.end());
  const std::vector<coll::Step> steps =
      coll_schedule(coll::CollOp::kReduce, choice.algo, root, in.size(),
                    sizeof(T));
  coll::run_schedule(*this, std::span<const coll::Step>(steps),
                     std::span<T>(acc), op, internal_tag::kReduceBase);
  if (rank() == root) {
    std::copy(acc.begin(), acc.end(), out.begin());
  }
  coll_finish(coll::CollOp::kReduce, choice.algo, bytes, start,
              choice.predicted_s);
}

template <typename T, typename Op>
void Comm::allreduce(std::span<const T> in, std::span<T> out, Op op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  support::require(out.size() >= in.size(),
                   "allreduce: output buffer too small");
  if (size() == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  const std::size_t bytes = in.size() * sizeof(T);
  const CollChoice choice = coll_select(coll::CollOp::kAllreduce, bytes);
  const double start = proc_->clock();
  std::vector<T> acc(in.begin(), in.end());
  const std::vector<coll::Step> steps =
      coll_schedule(coll::CollOp::kAllreduce, choice.algo, 0, in.size(),
                    sizeof(T));
  coll::run_schedule(*this, std::span<const coll::Step>(steps),
                     std::span<T>(acc), op, internal_tag::kAllreduceBase);
  std::copy(acc.begin(), acc.end(), out.begin());
  coll_finish(coll::CollOp::kAllreduce, choice.algo, bytes, start,
              choice.predicted_s);
}

template <typename T, typename Op>
void Comm::reduce_scatter(std::span<const T> in, std::span<T> out,
                          Op op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = size();
  support::require(in.size() % static_cast<std::size_t>(n) == 0,
                   "reduce_scatter: input size not divisible by size()");
  const std::size_t block = in.size() / static_cast<std::size_t>(n);
  support::require(out.size() >= block,
                   "reduce_scatter: output buffer too small");
  if (n == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  const std::size_t bytes = in.size() * sizeof(T);
  const CollChoice choice = coll_select(coll::CollOp::kReduceScatter, bytes);
  const double start = proc_->clock();
  std::vector<T> acc(in.begin(), in.end());
  const std::vector<coll::Step> steps =
      coll_schedule(coll::CollOp::kReduceScatter, choice.algo, 0, block,
                    sizeof(T));
  coll::run_schedule(*this, std::span<const coll::Step>(steps),
                     std::span<T>(acc), op, internal_tag::kReduceScatterBase);
  const auto mine = std::span<const T>(acc).subspan(
      block * static_cast<std::size_t>(rank()), block);
  std::copy(mine.begin(), mine.end(), out.begin());
  coll_finish(coll::CollOp::kReduceScatter, choice.algo, bytes, start,
              choice.predicted_s);
}

template <typename T>
void Comm::allgather(std::span<const T> send_data, std::span<T> recv_data) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = size();
  const std::size_t block = send_data.size();
  support::require(recv_data.size() >= block * static_cast<std::size_t>(n),
                   "allgather: receive buffer too small");
  std::copy(send_data.begin(), send_data.end(),
            recv_data.begin() + static_cast<std::ptrdiff_t>(
                                    block * static_cast<std::size_t>(rank())));
  if (n == 1) return;
  const std::size_t bytes = block * static_cast<std::size_t>(n) * sizeof(T);
  const CollChoice choice = coll_select(coll::CollOp::kAllgather, bytes);
  const double start = proc_->clock();
  const std::vector<coll::Step> steps = coll_schedule(
      coll::CollOp::kAllgather, choice.algo, 0, block, sizeof(T));
  // Allgather schedules only copy blocks around; the combiner is never used.
  coll::run_schedule(*this, std::span<const coll::Step>(steps), recv_data,
                     [](const T& a, const T&) { return a; },
                     internal_tag::kAllgatherBase);
  coll_finish(coll::CollOp::kAllgather, choice.algo, bytes, start,
              choice.predicted_s);
}

template <typename T>
void Comm::gather(std::span<const T> send_data, std::span<T> recv_data,
                  int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  check_member_rank(root, "gather root");
  const std::size_t count = send_data.size();
  if (rank() == root) {
    support::require(recv_data.size() >= count * static_cast<std::size_t>(size()),
                     "gather: receive buffer too small at root");
    std::copy(send_data.begin(), send_data.end(),
              recv_data.begin() + static_cast<std::ptrdiff_t>(
                                      count * static_cast<std::size_t>(root)));
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(recv_data.subspan(count * static_cast<std::size_t>(r), count), r,
           internal_tag::kGather);
    }
  } else {
    send(send_data, root, internal_tag::kGather);
  }
}

template <typename T>
void Comm::scatter(std::span<const T> send_data, std::span<T> recv_data,
                   int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  check_member_rank(root, "scatter root");
  const std::size_t count = recv_data.size();
  if (rank() == root) {
    support::require(send_data.size() >= count * static_cast<std::size_t>(size()),
                     "scatter: send buffer too small at root");
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(send_data.subspan(count * static_cast<std::size_t>(r), count), r,
           internal_tag::kScatter);
    }
    auto self = send_data.subspan(count * static_cast<std::size_t>(root), count);
    std::copy(self.begin(), self.end(), recv_data.begin());
  } else {
    recv(recv_data, root, internal_tag::kScatter);
  }
}

template <typename T>
void Comm::alltoall(std::span<const T> send_data, std::span<T> recv_data) const {
  static_assert(std::is_trivially_copyable_v<T>);
  const int n = size();
  support::require(send_data.size() % static_cast<std::size_t>(n) == 0,
                   "alltoall: send size not divisible by communicator size");
  const std::size_t count = send_data.size() / static_cast<std::size_t>(n);
  support::require(recv_data.size() >= send_data.size(),
                   "alltoall: receive buffer too small");
  // Self piece.
  {
    auto self = send_data.subspan(count * static_cast<std::size_t>(rank()), count);
    std::copy(self.begin(), self.end(),
              recv_data.begin() +
                  static_cast<std::ptrdiff_t>(count * static_cast<std::size_t>(rank())));
  }
  // Pairwise rounds: in round s, send to rank+s, receive from rank-s. Each
  // round is a cyclic-shift permutation, so every ordered pair is covered
  // exactly once for any n — including odd n and the even-n round s == n/2
  // where dst == src (send-then-recv with the buffered substrate). The tag
  // wraps at 256 to stay inside the reserved block; per-sender FIFO keeps
  // reused tags matched in order.
  for (int s = 1; s < n; ++s) {
    const int dst = (rank() + s) % n;
    const int src = (rank() - s + n) % n;
    send(send_data.subspan(count * static_cast<std::size_t>(dst), count), dst,
         internal_tag::kAlltoallBase + (s & 0xff));
    recv(recv_data.subspan(count * static_cast<std::size_t>(src), count), src,
         internal_tag::kAlltoallBase + (s & 0xff));
  }
}

template <typename T>
void Comm::gatherv(std::span<const T> send_data, std::span<T> recv_data,
                   std::span<const int> counts, std::span<const int> displs,
                   int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  check_member_rank(root, "gatherv root");
  if (rank() == root) {
    support::require(counts.size() == static_cast<std::size_t>(size()) &&
                         displs.size() == static_cast<std::size_t>(size()),
                     "gatherv: counts/displs must have one entry per rank");
    for (int r = 0; r < size(); ++r) {
      const auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
      const auto displ = static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]);
      support::require(displ + count <= recv_data.size(),
                       "gatherv: receive buffer too small");
      auto slot = recv_data.subspan(displ, count);
      if (r == root) {
        support::require(send_data.size() == count,
                         "gatherv: root contribution size mismatch");
        std::copy(send_data.begin(), send_data.end(), slot.begin());
      } else {
        Status s = recv(slot, r, internal_tag::kGatherv);
        support::require(s.bytes == count * sizeof(T),
                         "gatherv: contribution size mismatch");
      }
    }
  } else {
    send(send_data, root, internal_tag::kGatherv);
  }
}

template <typename T>
void Comm::scatterv(std::span<const T> send_data, std::span<const int> counts,
                    std::span<const int> displs, std::span<T> recv_data,
                    int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  check_member_rank(root, "scatterv root");
  if (rank() == root) {
    support::require(counts.size() == static_cast<std::size_t>(size()) &&
                         displs.size() == static_cast<std::size_t>(size()),
                     "scatterv: counts/displs must have one entry per rank");
    for (int r = 0; r < size(); ++r) {
      const auto count = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]);
      const auto displ = static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]);
      support::require(displ + count <= send_data.size(),
                       "scatterv: send buffer too small");
      auto piece = send_data.subspan(displ, count);
      if (r == root) {
        support::require(recv_data.size() == count,
                         "scatterv: root receive size mismatch");
        std::copy(piece.begin(), piece.end(), recv_data.begin());
      } else {
        send(piece, r, internal_tag::kScatterv);
      }
    }
  } else {
    recv(recv_data, root, internal_tag::kScatterv);
  }
}

template <typename T, typename Op>
void Comm::scan(std::span<const T> in, std::span<T> out, Op op) const {
  static_assert(std::is_trivially_copyable_v<T>);
  support::require(out.size() >= in.size(), "scan: output buffer too small");
  std::vector<T> acc(in.begin(), in.end());
  if (rank() > 0) {
    std::vector<T> incoming(in.size());
    recv(std::span<T>(incoming), rank() - 1, internal_tag::kScan);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] = op(incoming[i], acc[i]);
    }
  }
  if (rank() + 1 < size()) {
    send(std::span<const T>(acc), rank() + 1, internal_tag::kScan);
  }
  std::copy(acc.begin(), acc.end(), out.begin());
}

}  // namespace hmpi::mp
