// Performance models: the artefacts the HMPI runtime consumes.
//
// The paper's toolchain compiles a performance-model definition into "a set
// of functions [that] make up an algorithm-specific part of the HMPI runtime
// system" (§2). Here that artefact is a ModelInstance: the model evaluated
// for concrete parameter values, exposing
//   * the abstract-processor arrangement (shape),
//   * per-processor computation volumes in benchmark units (node),
//   * per-pair communication volumes in bytes (link),
//   * the parent's coordinates, and
//   * the scheme, replayable against any ScheduleSink (the estimator's
//     timeline machine, or a recorder in tests).
//
// A Model is the reusable definition: either parsed from PMDL text (the
// paper's language) or built programmatically (the "embedded" alternative).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "pmdl/ast.hpp"
#include "pmdl/env.hpp"
#include "pmdl/value.hpp"

namespace hmpi::pmdl {

/// Native (host C++) function callable from a scheme, e.g. the paper's
/// GetProcessor. Arguments are passed in `args`; `&x` arguments are written
/// back to the caller's variable after the call.
using NativeFn = std::function<void(std::vector<Value>& args)>;

/// Receiver of scheme activations. The evaluator walks the scheme AST and
/// reports computations, transfers, and parallel-composition structure.
class ScheduleSink {
 public:
  virtual ~ScheduleSink() = default;

  /// `percent %% [coords]` — the processor at `coords` performs `percent`
  /// percent of its total computation volume.
  virtual void compute(std::span<const long long> coords, double percent) = 0;

  /// `percent %% [src] -> [dst]` — `percent` percent of the total volume on
  /// link src->dst is transferred.
  virtual void transfer(std::span<const long long> src,
                        std::span<const long long> dst, double percent) = 0;

  /// A `par` loop begins: subsequent iterations are parallel alternatives.
  virtual void par_begin() = 0;
  /// The next `par` iteration begins (reset to the loop-entry timeline).
  virtual void par_iter_begin() = 0;
  /// The `par` loop ends: merge all iteration timelines.
  virtual void par_end() = 0;
};

/// A positional model parameter: an int scalar or a flattened int array.
using ParamValue = std::variant<long long, std::vector<long long>>;

/// Convenience constructors for parameter packs.
inline ParamValue scalar(long long v) { return ParamValue(v); }
inline ParamValue array(std::vector<long long> v) { return ParamValue(std::move(v)); }

class Model;
class InstanceBuilder;

/// A performance model evaluated for concrete parameters (see file comment).
class ModelInstance {
 public:
  /// Extents of the coordinate system (e.g. {p} or {m, m}).
  const std::vector<long long>& shape() const noexcept { return shape_; }

  /// Total number of abstract processors (product of shape).
  int size() const noexcept { return static_cast<int>(volumes_.size()); }

  /// Computation volume of abstract processor `index` in benchmark units.
  double node_volume(int index) const;
  const std::vector<double>& node_volumes() const noexcept { return volumes_; }

  /// Total bytes transferred per directed abstract-processor pair.
  const std::map<std::pair<int, int>, double>& link_bytes() const noexcept {
    return links_;
  }

  /// Flattened index of the parent abstract processor.
  int parent_index() const noexcept { return parent_; }

  bool has_scheme() const noexcept { return static_cast<bool>(scheme_); }

  /// Replays the scheme against `sink`. Throws PmdlError if there is none.
  void run_scheme(ScheduleSink& sink) const;

  /// Row-major flattening of coordinates (bounds-checked).
  long long flatten(std::span<const long long> coords) const;
  std::vector<long long> unflatten(long long index) const;

  const std::string& model_name() const noexcept { return name_; }

  /// Human-readable summary: shape, per-processor volumes, link table,
  /// parent, aggregate totals. For diagnostics and tooling.
  std::string summary() const;

 private:
  friend class Model;
  friend class InstanceBuilder;

  ModelInstance() = default;

  std::string name_;
  std::vector<long long> shape_;
  std::vector<double> volumes_;
  std::map<std::pair<int, int>, double> links_;
  int parent_ = 0;
  std::function<void(ScheduleSink&)> scheme_;
};

/// A reusable performance-model definition.
class Model {
 public:
  /// Factory signature for programmatic models.
  using Factory = std::function<ModelInstance(std::span<const ParamValue>)>;

  /// Compiles a PMDL source text (the paper's model definition language).
  static Model from_source(std::string_view source);

  /// Wraps a C++ factory producing instances directly (embedded alternative
  /// to the DSL; `param_count` is the expected number of parameters).
  static Model from_factory(std::string name, std::size_t param_count,
                            Factory factory);

  const std::string& name() const noexcept { return name_; }
  std::size_t param_count() const noexcept { return param_count_; }

  /// Registers a host function callable from the scheme (e.g. GetProcessor).
  /// Must be called before instantiate().
  void register_native(const std::string& name, NativeFn fn);

  /// Evaluates the model for concrete parameters.
  ModelInstance instantiate(std::span<const ParamValue> params) const;
  ModelInstance instantiate(std::initializer_list<ParamValue> params) const {
    return instantiate(std::span<const ParamValue>(params.begin(), params.size()));
  }

 private:
  Model() = default;

  std::string name_;
  std::size_t param_count_ = 0;
  std::shared_ptr<const ast::Algorithm> ast_;  // null for factory models
  Factory factory_;                            // null for AST models
  std::shared_ptr<std::map<std::string, NativeFn>> natives_ =
      std::make_shared<std::map<std::string, NativeFn>>();
  std::map<std::string, std::shared_ptr<const StructInfo>> structs_;
};

/// Builds a ModelInstance directly (programmatic models and tests).
class InstanceBuilder {
 public:
  explicit InstanceBuilder(std::string name);

  InstanceBuilder& shape(std::vector<long long> dims);
  /// Sets the computation volume of the processor at flat `index`.
  InstanceBuilder& node_volume(int index, double units);
  /// Adds (or raises to) `bytes` on the directed link src->dst (flat indices).
  InstanceBuilder& link(int src, int dst, double bytes);
  InstanceBuilder& parent(int index);
  /// Scheme as a C++ callable; optional (estimation falls back to a default).
  InstanceBuilder& scheme(std::function<void(ScheduleSink&)> fn);

  ModelInstance build();

 private:
  ModelInstance instance_;
  bool shape_set_ = false;
};

}  // namespace hmpi::pmdl
