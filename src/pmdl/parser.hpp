// Recursive-descent parser for the performance-model definition language.
#pragma once

#include <memory>
#include <string_view>

#include "pmdl/ast.hpp"

namespace hmpi::pmdl {

/// Parses a PMDL source text (optional typedefs followed by one `algorithm`
/// definition). Throws PmdlError with source positions on syntax errors.
std::shared_ptr<const ast::Algorithm> parse(std::string_view source);

}  // namespace hmpi::pmdl
