#include "pmdl/value.hpp"

#include <cmath>

namespace hmpi::pmdl {

double as_double(const Value& v) {
  if (const auto* i = std::get_if<long long>(&v)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  throw PmdlError("expected a numeric value, got " + value_kind_name(v));
}

long long as_int(const Value& v) {
  if (const auto* i = std::get_if<long long>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) {
    const double r = std::nearbyint(*d);
    if (std::abs(*d - r) > 1e-9) {
      throw PmdlError("expected an integer value, got non-integral double");
    }
    return static_cast<long long>(r);
  }
  throw PmdlError("expected an integer value, got " + value_kind_name(v));
}

bool truthy(const Value& v) {
  if (const auto* i = std::get_if<long long>(&v)) return *i != 0;
  if (const auto* d = std::get_if<double>(&v)) return *d != 0.0;
  throw PmdlError("expected a boolean (numeric) value, got " + value_kind_name(v));
}

std::string value_kind_name(const Value& v) {
  struct Visitor {
    std::string operator()(long long) const { return "int"; }
    std::string operator()(double) const { return "double"; }
    std::string operator()(const ArrayRef& a) const {
      return "array(" + std::to_string(a.remaining_dims()) + "d)";
    }
    std::string operator()(const StructVal& s) const {
      return "struct " + (s.type ? s.type->name : std::string("?"));
    }
  };
  return std::visit(Visitor{}, v);
}

}  // namespace hmpi::pmdl
