#include "pmdl/eval.hpp"

#include <cmath>
#include <string>
#include <vector>

namespace hmpi::pmdl {

namespace {

using ast::Expr;
using ast::ExprKind;
using ast::Stmt;
using ast::StmtKind;

[[noreturn]] void fail(const ast::Pos& pos, const std::string& message) {
  throw PmdlError(message, pos.line, pos.column);
}

/// Upper bound on loop iterations: catches runaway schemes (missing step or
/// non-terminating condition) instead of hanging the runtime.
constexpr long long kMaxLoopIterations = 1 << 24;

// RAII scope guard.
class ScopeGuard {
 public:
  explicit ScopeGuard(Env& env) : env_(env) { env_.push_scope(); }
  ~ScopeGuard() { env_.pop_scope(); }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  Env& env_;
};

bool is_int(const Value& v) { return std::holds_alternative<long long>(v); }

Value index_array(const Expr& expr, const ArrayRef& base, long long idx) {
  const std::size_t dim = base.dim_index;
  if (dim >= base.data->dims.size()) {
    fail(expr.pos, "too many subscripts for array");
  }
  const long long extent = base.data->dims[dim];
  if (idx < 0 || idx >= extent) {
    fail(expr.pos, "array index " + std::to_string(idx) +
                       " out of range [0, " + std::to_string(extent) + ")");
  }
  // Stride of this dimension = product of later extents.
  std::size_t stride = 1;
  for (std::size_t d = dim + 1; d < base.data->dims.size(); ++d) {
    stride *= static_cast<std::size_t>(base.data->dims[d]);
  }
  ArrayRef sub = base;
  sub.offset += static_cast<std::size_t>(idx) * stride;
  sub.dim_index += 1;
  if (sub.remaining_dims() == 0) {
    return Value(sub.data->data[sub.offset]);
  }
  return Value(sub);
}

/// Resolves an expression to the int slot it denotes (int variable or struct
/// field of a variable).
long long* eval_int_lvalue(const Expr& expr, EvalCtx& ctx) {
  switch (expr.kind) {
    case ExprKind::kIdent: {
      Value* v = ctx.env->lookup(expr.name);
      if (v == nullptr) fail(expr.pos, "use of undeclared identifier '" + expr.name + "'");
      if (auto* i = std::get_if<long long>(v)) return i;
      fail(expr.pos, "'" + expr.name + "' is not an assignable int variable");
    }
    case ExprKind::kMember: {
      if (expr.lhs->kind != ExprKind::kIdent) {
        fail(expr.pos, "assignable member access must be of the form var.field");
      }
      Value* v = ctx.env->lookup(expr.lhs->name);
      if (v == nullptr) {
        fail(expr.lhs->pos,
             "use of undeclared identifier '" + expr.lhs->name + "'");
      }
      auto* sv = std::get_if<StructVal>(v);
      if (sv == nullptr) fail(expr.pos, "'" + expr.lhs->name + "' is not a struct");
      const int field = sv->type->field_index(expr.name);
      if (field < 0) {
        fail(expr.pos, "struct " + sv->type->name + " has no field '" +
                           expr.name + "'");
      }
      return &sv->fields[static_cast<std::size_t>(field)];
    }
    default:
      fail(expr.pos, "expression is not assignable");
  }
}

Value eval_binary(const Expr& expr, EvalCtx& ctx) {
  // Short-circuit logical operators first.
  if (expr.op == Tok::kAndAnd) {
    if (!truthy(eval_expr(*expr.lhs, ctx))) return Value(0LL);
    return Value(static_cast<long long>(truthy(eval_expr(*expr.rhs, ctx))));
  }
  if (expr.op == Tok::kOrOr) {
    if (truthy(eval_expr(*expr.lhs, ctx))) return Value(1LL);
    return Value(static_cast<long long>(truthy(eval_expr(*expr.rhs, ctx))));
  }

  const Value lv = eval_expr(*expr.lhs, ctx);
  const Value rv = eval_expr(*expr.rhs, ctx);

  switch (expr.op) {
    case Tok::kEq: return Value(static_cast<long long>(as_double(lv) == as_double(rv)));
    case Tok::kNe: return Value(static_cast<long long>(as_double(lv) != as_double(rv)));
    case Tok::kLt: return Value(static_cast<long long>(as_double(lv) < as_double(rv)));
    case Tok::kGt: return Value(static_cast<long long>(as_double(lv) > as_double(rv)));
    case Tok::kLe: return Value(static_cast<long long>(as_double(lv) <= as_double(rv)));
    case Tok::kGe: return Value(static_cast<long long>(as_double(lv) >= as_double(rv)));
    default: break;
  }

  const bool both_int = is_int(lv) && is_int(rv);
  switch (expr.op) {
    case Tok::kPlus:
      if (both_int) return Value(std::get<long long>(lv) + std::get<long long>(rv));
      return Value(as_double(lv) + as_double(rv));
    case Tok::kMinus:
      if (both_int) return Value(std::get<long long>(lv) - std::get<long long>(rv));
      return Value(as_double(lv) - as_double(rv));
    case Tok::kStar:
      if (both_int) return Value(std::get<long long>(lv) * std::get<long long>(rv));
      return Value(as_double(lv) * as_double(rv));
    case Tok::kSlash:
      if (both_int) {
        const long long d = std::get<long long>(rv);
        if (d == 0) fail(expr.pos, "integer division by zero");
        return Value(std::get<long long>(lv) / d);
      } else {
        const double d = as_double(rv);
        if (d == 0.0) fail(expr.pos, "division by zero");
        return Value(as_double(lv) / d);
      }
    case Tok::kPercent: {
      if (!both_int) fail(expr.pos, "operands of % must be integers");
      const long long d = std::get<long long>(rv);
      if (d == 0) fail(expr.pos, "modulo by zero");
      return Value(std::get<long long>(lv) % d);
    }
    default:
      fail(expr.pos, std::string("unsupported binary operator ") + tok_name(expr.op));
  }
}

Value eval_call(const Expr& expr, EvalCtx& ctx) {
  if (ctx.natives == nullptr) {
    fail(expr.pos, "no native functions are registered");
  }
  auto it = ctx.natives->find(expr.name);
  if (it == ctx.natives->end()) {
    fail(expr.pos, "call to unregistered function '" + expr.name + "'");
  }

  // Evaluate arguments; remember write-back targets for &x arguments.
  struct WriteBack {
    std::size_t arg_index;
    Value* value_slot;     // whole-variable reference (ident)
    long long* int_slot;   // int slot (member access)
  };
  std::vector<Value> args;
  std::vector<WriteBack> write_backs;
  args.reserve(expr.args.size());
  for (std::size_t i = 0; i < expr.args.size(); ++i) {
    const Expr& arg = *expr.args[i];
    if (arg.kind == ExprKind::kAddressOf) {
      const Expr& target = *arg.lhs;
      if (target.kind == ExprKind::kIdent) {
        Value* slot = ctx.env->lookup(target.name);
        if (slot == nullptr) {
          fail(target.pos, "use of undeclared identifier '" + target.name + "'");
        }
        args.push_back(*slot);
        write_backs.push_back({i, slot, nullptr});
      } else {
        long long* slot = eval_int_lvalue(target, ctx);
        args.push_back(Value(*slot));
        write_backs.push_back({i, nullptr, slot});
      }
    } else {
      args.push_back(eval_expr(arg, ctx));
    }
  }

  it->second(args);

  for (const WriteBack& wb : write_backs) {
    if (wb.value_slot != nullptr) {
      *wb.value_slot = args[wb.arg_index];
    } else {
      *wb.int_slot = as_int(args[wb.arg_index]);
    }
  }
  return Value(0LL);  // calls are statements in practice; value unused
}

}  // namespace

Value eval_expr(const Expr& expr, EvalCtx& ctx) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return Value(expr.int_value);

    case ExprKind::kIdent: {
      Value* v = ctx.env->lookup(expr.name);
      if (v == nullptr) fail(expr.pos, "use of undeclared identifier '" + expr.name + "'");
      return *v;
    }

    case ExprKind::kBinary:
      return eval_binary(expr, ctx);

    case ExprKind::kUnary: {
      const Value v = eval_expr(*expr.lhs, ctx);
      if (expr.op == Tok::kMinus) {
        if (is_int(v)) return Value(-std::get<long long>(v));
        return Value(-as_double(v));
      }
      if (expr.op == Tok::kNot) return Value(static_cast<long long>(!truthy(v)));
      fail(expr.pos, "unsupported unary operator");
    }

    case ExprKind::kPostfix: {
      long long* slot = eval_int_lvalue(*expr.lhs, ctx);
      const long long old = *slot;
      *slot += expr.op == Tok::kPlusPlus ? 1 : -1;
      return Value(old);
    }

    case ExprKind::kAssign: {
      long long* slot = eval_int_lvalue(*expr.lhs, ctx);
      const long long rhs = as_int(eval_expr(*expr.rhs, ctx));
      switch (expr.op) {
        case Tok::kAssign: *slot = rhs; break;
        case Tok::kPlusAssign: *slot += rhs; break;
        case Tok::kMinusAssign: *slot -= rhs; break;
        default: fail(expr.pos, "unsupported assignment operator");
      }
      return Value(*slot);
    }

    case ExprKind::kIndex: {
      const Value base = eval_expr(*expr.lhs, ctx);
      const auto* arr = std::get_if<ArrayRef>(&base);
      if (arr == nullptr) {
        fail(expr.pos, "subscripted value is not an array (got " +
                           value_kind_name(base) + ")");
      }
      const long long idx = as_int(eval_expr(*expr.rhs, ctx));
      return index_array(expr, *arr, idx);
    }

    case ExprKind::kMember: {
      const Value base = eval_expr(*expr.lhs, ctx);
      const auto* sv = std::get_if<StructVal>(&base);
      if (sv == nullptr) {
        fail(expr.pos, "member access on non-struct value (" +
                           value_kind_name(base) + ")");
      }
      const int field = sv->type->field_index(expr.name);
      if (field < 0) {
        fail(expr.pos,
             "struct " + sv->type->name + " has no field '" + expr.name + "'");
      }
      return Value(sv->fields[static_cast<std::size_t>(field)]);
    }

    case ExprKind::kCall:
      return eval_call(expr, ctx);

    case ExprKind::kSizeof: {
      if (expr.name == "double") return Value(8LL);
      if (expr.name == "int" || expr.name == "float") return Value(4LL);
      if (ctx.structs != nullptr) {
        auto it = ctx.structs->find(expr.name);
        if (it != ctx.structs->end()) {
          return Value(static_cast<long long>(4 * it->second->fields.size()));
        }
      }
      fail(expr.pos, "sizeof of unknown type '" + expr.name + "'");
    }

    case ExprKind::kAddressOf:
      fail(expr.pos, "'&' is only valid on call arguments");
  }
  fail(expr.pos, "internal: unhandled expression kind");
}

namespace {

void exec_decl(const Stmt& stmt, EvalCtx& ctx) {
  for (const ast::DeclItem& item : stmt.decls) {
    if (stmt.decl_type == "int") {
      long long init = 0;
      if (item.init) init = as_int(eval_expr(*item.init, ctx));
      ctx.env->define(item.name, Value(init));
    } else {
      if (ctx.structs == nullptr) fail(stmt.pos, "no struct types declared");
      auto it = ctx.structs->find(stmt.decl_type);
      if (it == ctx.structs->end()) {
        fail(stmt.pos, "unknown type '" + stmt.decl_type + "'");
      }
      if (item.init) {
        fail(stmt.pos, "struct variables cannot have initialisers");
      }
      StructVal sv;
      sv.type = it->second;
      sv.fields.assign(it->second->fields.size(), 0);
      ctx.env->define(item.name, Value(std::move(sv)));
    }
  }
}

std::vector<long long> eval_coords(const std::vector<ast::ExprPtr>& exprs,
                                   EvalCtx& ctx, const ast::Pos& pos) {
  if (ctx.shape.empty()) fail(pos, "internal: no coordinate shape in context");
  if (exprs.size() != ctx.shape.size()) {
    fail(pos, "activation uses " + std::to_string(exprs.size()) +
                  " coordinates, the model declares " +
                  std::to_string(ctx.shape.size()));
  }
  std::vector<long long> coords;
  coords.reserve(exprs.size());
  for (std::size_t d = 0; d < exprs.size(); ++d) {
    const long long c = as_int(eval_expr(*exprs[d], ctx));
    if (c < 0 || c >= ctx.shape[d]) {
      fail(pos, "coordinate " + std::to_string(c) + " out of range [0, " +
                    std::to_string(ctx.shape[d]) + ") in dimension " +
                    std::to_string(d));
    }
    coords.push_back(c);
  }
  return coords;
}

void exec_loop(const Stmt& stmt, EvalCtx& ctx) {
  const bool parallel = stmt.kind == StmtKind::kPar;
  if (parallel && ctx.sink == nullptr) {
    fail(stmt.pos, "par statement outside a scheme evaluation");
  }
  if (!stmt.expr) {
    fail(stmt.pos, "loop requires a termination condition");
  }
  ScopeGuard scope(*ctx.env);
  if (stmt.init_stmt) exec_stmt(*stmt.init_stmt, ctx);

  if (parallel) ctx.sink->par_begin();
  long long iterations = 0;
  while (truthy(eval_expr(*stmt.expr, ctx))) {
    if (++iterations > kMaxLoopIterations) {
      fail(stmt.pos, "loop exceeded the iteration limit (runaway scheme?)");
    }
    if (parallel) ctx.sink->par_iter_begin();
    exec_stmt(*stmt.loop_body, ctx);
    if (stmt.step) eval_expr(*stmt.step, ctx);
  }
  if (parallel) ctx.sink->par_end();
}

}  // namespace

void exec_stmt(const Stmt& stmt, EvalCtx& ctx) {
  switch (stmt.kind) {
    case StmtKind::kBlock: {
      ScopeGuard scope(*ctx.env);
      for (const ast::StmtPtr& s : stmt.body) exec_stmt(*s, ctx);
      return;
    }
    case StmtKind::kDecl:
      exec_decl(stmt, ctx);
      return;
    case StmtKind::kExpr:
      eval_expr(*stmt.expr, ctx);
      return;
    case StmtKind::kIf:
      if (truthy(eval_expr(*stmt.expr, ctx))) {
        exec_stmt(*stmt.then_branch, ctx);
      } else if (stmt.else_branch) {
        exec_stmt(*stmt.else_branch, ctx);
      }
      return;
    case StmtKind::kFor:
    case StmtKind::kPar:
      exec_loop(stmt, ctx);
      return;
    case StmtKind::kComp: {
      if (ctx.sink == nullptr) fail(stmt.pos, "activation outside a scheme evaluation");
      const double percent = as_double(eval_expr(*stmt.expr, ctx));
      if (percent < 0.0) fail(stmt.pos, "negative activation percentage");
      const auto coords = eval_coords(stmt.src_coords, ctx, stmt.pos);
      ctx.sink->compute(coords, percent);
      return;
    }
    case StmtKind::kComm: {
      if (ctx.sink == nullptr) fail(stmt.pos, "activation outside a scheme evaluation");
      const double percent = as_double(eval_expr(*stmt.expr, ctx));
      if (percent < 0.0) fail(stmt.pos, "negative activation percentage");
      const auto src = eval_coords(stmt.src_coords, ctx, stmt.pos);
      const auto dst = eval_coords(stmt.dst_coords, ctx, stmt.pos);
      ctx.sink->transfer(src, dst, percent);
      return;
    }
  }
  fail(stmt.pos, "internal: unhandled statement kind");
}

}  // namespace hmpi::pmdl
