#include "pmdl/lexer.hpp"

#include <cctype>
#include <map>

#include "support/error.hpp"

namespace hmpi::pmdl {

const char* tok_name(Tok kind) {
  switch (kind) {
    case Tok::kEnd: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kAlgorithm: return "'algorithm'";
    case Tok::kCoord: return "'coord'";
    case Tok::kNode: return "'node'";
    case Tok::kLink: return "'link'";
    case Tok::kParent: return "'parent'";
    case Tok::kScheme: return "'scheme'";
    case Tok::kBench: return "'bench'";
    case Tok::kLength: return "'length'";
    case Tok::kPar: return "'par'";
    case Tok::kFor: return "'for'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kInt: return "'int'";
    case Tok::kDouble: return "'double'";
    case Tok::kFloat: return "'float'";
    case Tok::kTypedef: return "'typedef'";
    case Tok::kStruct: return "'struct'";
    case Tok::kSizeof: return "'sizeof'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kDot: return "'.'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kPercent2: return "'%%'";
    case Tok::kArrow: return "'->'";
    case Tok::kAmp: return "'&'";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'!'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
  }
  return "?";
}

namespace {

const std::map<std::string_view, Tok>& keywords() {
  static const std::map<std::string_view, Tok> kw = {
      {"algorithm", Tok::kAlgorithm}, {"coord", Tok::kCoord},
      {"node", Tok::kNode},           {"link", Tok::kLink},
      {"parent", Tok::kParent},       {"scheme", Tok::kScheme},
      {"bench", Tok::kBench},         {"length", Tok::kLength},
      {"par", Tok::kPar},             {"for", Tok::kFor},
      {"if", Tok::kIf},               {"else", Tok::kElse},
      {"int", Tok::kInt},             {"double", Tok::kDouble},
      {"float", Tok::kFloat},         {"typedef", Tok::kTypedef},
      {"struct", Tok::kStruct},       {"sizeof", Tok::kSizeof},
  };
  return kw;
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  auto push = [&](Tok kind, std::string text, int line, int column) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    tokens.push_back(std::move(t));
  };

  while (!cur.done()) {
    const int line = cur.line();
    const int column = cur.column();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) {
        cur.advance();
      }
      if (cur.done()) throw PmdlError("unterminated block comment", line, column);
      cur.advance();
      cur.advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                             cur.peek() == '_')) {
        word.push_back(cur.advance());
      }
      auto it = keywords().find(word);
      push(it != keywords().end() ? it->second : Tok::kIdent, std::move(word),
           line, column);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        digits.push_back(cur.advance());
      }
      Token t;
      t.kind = Tok::kIntLit;
      t.int_value = std::stoll(digits);
      t.text = std::move(digits);
      t.line = line;
      t.column = column;
      tokens.push_back(std::move(t));
      continue;
    }

    // Operators and punctuation (longest match first).
    auto two = [&](char a, char b) { return c == a && cur.peek(1) == b; };
    Tok kind;
    int length = 2;
    if (two('%', '%')) kind = Tok::kPercent2;
    else if (two('-', '>')) kind = Tok::kArrow;
    else if (two('&', '&')) kind = Tok::kAndAnd;
    else if (two('|', '|')) kind = Tok::kOrOr;
    else if (two('=', '=')) kind = Tok::kEq;
    else if (two('!', '=')) kind = Tok::kNe;
    else if (two('<', '=')) kind = Tok::kLe;
    else if (two('>', '=')) kind = Tok::kGe;
    else if (two('+', '+')) kind = Tok::kPlusPlus;
    else if (two('-', '-')) kind = Tok::kMinusMinus;
    else if (two('+', '=')) kind = Tok::kPlusAssign;
    else if (two('-', '=')) kind = Tok::kMinusAssign;
    else {
      length = 1;
      switch (c) {
        case '(': kind = Tok::kLParen; break;
        case ')': kind = Tok::kRParen; break;
        case '{': kind = Tok::kLBrace; break;
        case '}': kind = Tok::kRBrace; break;
        case '[': kind = Tok::kLBracket; break;
        case ']': kind = Tok::kRBracket; break;
        case ',': kind = Tok::kComma; break;
        case ';': kind = Tok::kSemicolon; break;
        case ':': kind = Tok::kColon; break;
        case '.': kind = Tok::kDot; break;
        case '=': kind = Tok::kAssign; break;
        case '+': kind = Tok::kPlus; break;
        case '-': kind = Tok::kMinus; break;
        case '*': kind = Tok::kStar; break;
        case '/': kind = Tok::kSlash; break;
        case '%': kind = Tok::kPercent; break;
        case '&': kind = Tok::kAmp; break;
        case '!': kind = Tok::kNot; break;
        case '<': kind = Tok::kLt; break;
        case '>': kind = Tok::kGt; break;
        default:
          throw PmdlError(std::string("unexpected character '") + c + "'", line,
                          column);
      }
    }
    std::string text;
    for (int i = 0; i < length; ++i) text.push_back(cur.advance());
    push(kind, std::move(text), line, column);
  }

  push(Tok::kEnd, "", cur.line(), cur.column());
  return tokens;
}

}  // namespace hmpi::pmdl
