// Tokens of the performance-model definition language (PMDL).
//
// The language is the subset of mpC's network-type definition language used
// by the paper's Figures 4 and 7: `algorithm` definitions with coord / node /
// link / parent / scheme sections, C-like expressions, `par` loops, and the
// `e %% [i] -> [j]` / `e %% [i]` activation statements.
#pragma once

#include <string>

namespace hmpi::pmdl {

enum class Tok {
  kEnd,
  kIdent,
  kIntLit,
  // keywords
  kAlgorithm,
  kCoord,
  kNode,
  kLink,
  kParent,
  kScheme,
  kBench,
  kLength,
  kPar,
  kFor,
  kIf,
  kElse,
  kInt,
  kDouble,
  kFloat,
  kTypedef,
  kStruct,
  kSizeof,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  // operators
  kAssign,      // =
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kPercent2,    // %%
  kArrow,       // ->
  kAmp,         // &
  kAndAnd,      // &&
  kOrOr,        // ||
  kNot,         // !
  kEq,          // ==
  kNe,          // !=
  kLt,          // <
  kGt,          // >
  kLe,          // <=
  kGe,          // >=
  kPlusPlus,    // ++
  kMinusMinus,  // --
  kPlusAssign,  // +=
  kMinusAssign, // -=
};

/// One lexed token with its 1-based source position.
struct Token {
  Tok kind = Tok::kEnd;
  std::string text;     // identifier spelling or literal digits
  long long int_value = 0;
  int line = 0;
  int column = 0;
};

/// Human-readable token-kind name for diagnostics.
const char* tok_name(Tok kind);

}  // namespace hmpi::pmdl
