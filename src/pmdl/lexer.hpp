// Lexer for the performance-model definition language.
#pragma once

#include <string_view>
#include <vector>

#include "pmdl/token.hpp"

namespace hmpi::pmdl {

/// Tokenises `source`; throws PmdlError on malformed input. Supports // line
/// and /* block */ comments. The returned vector ends with a kEnd token.
std::vector<Token> lex(std::string_view source);

}  // namespace hmpi::pmdl
