#include "pmdl/model.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "pmdl/eval.hpp"
#include "pmdl/parser.hpp"
#include "pmdl/sema.hpp"

namespace hmpi::pmdl {

// --- ModelInstance -----------------------------------------------------------

double ModelInstance::node_volume(int index) const {
  support::require(index >= 0 && index < size(), "abstract processor index out of range");
  return volumes_[static_cast<std::size_t>(index)];
}

void ModelInstance::run_scheme(ScheduleSink& sink) const {
  if (!scheme_) throw PmdlError("model '" + name_ + "' has no scheme");
  scheme_(sink);
}

long long ModelInstance::flatten(std::span<const long long> coords) const {
  support::require(coords.size() == shape_.size(),
                   "coordinate count does not match the model shape");
  long long index = 0;
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    support::require(coords[d] >= 0 && coords[d] < shape_[d],
                     "coordinate out of range");
    index = index * shape_[d] + coords[d];
  }
  return index;
}

std::vector<long long> ModelInstance::unflatten(long long index) const {
  support::require(index >= 0 && index < size(), "flat index out of range");
  std::vector<long long> coords(shape_.size());
  for (std::size_t d = shape_.size(); d-- > 0;) {
    coords[d] = index % shape_[d];
    index /= shape_[d];
  }
  return coords;
}

std::string ModelInstance::summary() const {
  std::ostringstream os;
  os << "model " << name_ << ": shape (";
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    os << (d ? " x " : "") << shape_[d];
  }
  os << "), " << size() << " abstract processor(s), parent #" << parent_
     << ", scheme " << (scheme_ ? "present" : "absent") << "\n";

  double total_volume = 0.0;
  for (int a = 0; a < size(); ++a) {
    const auto coords = unflatten(a);
    os << "  node #" << a << " [";
    for (std::size_t d = 0; d < coords.size(); ++d) {
      os << (d ? "," : "") << coords[d];
    }
    os << "]: " << volumes_[static_cast<std::size_t>(a)] << " units\n";
    total_volume += volumes_[static_cast<std::size_t>(a)];
  }
  double total_bytes = 0.0;
  for (const auto& [pair, bytes] : links_) {
    os << "  link #" << pair.first << " -> #" << pair.second << ": " << bytes
       << " bytes\n";
    total_bytes += bytes;
  }
  os << "  totals: " << total_volume << " units computed, " << total_bytes
     << " bytes transferred\n";
  return os.str();
}

// --- Model -------------------------------------------------------------------

Model Model::from_source(std::string_view source) {
  Model m;
  m.ast_ = parse(source);
  validate(*m.ast_);
  m.name_ = m.ast_->name;
  m.param_count_ = m.ast_->params.size();
  for (const ast::StructDef& def : m.ast_->structs) {
    auto info = std::make_shared<StructInfo>();
    info->name = def.name;
    info->fields = def.fields;
    m.structs_[def.name] = std::move(info);
  }
  return m;
}

Model Model::from_factory(std::string name, std::size_t param_count,
                          Factory factory) {
  support::require(static_cast<bool>(factory), "factory must not be empty");
  Model m;
  m.name_ = std::move(name);
  m.param_count_ = param_count;
  m.factory_ = std::move(factory);
  return m;
}

void Model::register_native(const std::string& name, NativeFn fn) {
  support::require(static_cast<bool>(fn), "native function must not be empty");
  (*natives_)[name] = std::move(fn);
}

namespace {

/// Iterates all coordinate tuples of `extents` in row-major order.
template <typename Fn>
void for_each_tuple(std::span<const long long> extents, Fn&& fn) {
  std::vector<long long> tuple(extents.size(), 0);
  for (;;) {
    fn(std::span<const long long>(tuple));
    std::size_t d = extents.size();
    while (d-- > 0) {
      if (++tuple[d] < extents[d]) break;
      tuple[d] = 0;
      if (d == 0) return;
    }
    if (extents.empty()) return;
  }
}

std::vector<long long> eval_clause_coords(const std::vector<ast::ExprPtr>& exprs,
                                          EvalCtx& ctx,
                                          std::span<const long long> shape,
                                          const ast::Pos& pos) {
  if (exprs.size() != shape.size()) {
    throw PmdlError("link endpoint uses " + std::to_string(exprs.size()) +
                        " coordinates, the model declares " +
                        std::to_string(shape.size()),
                    pos.line, pos.column);
  }
  std::vector<long long> coords(exprs.size());
  for (std::size_t d = 0; d < exprs.size(); ++d) {
    coords[d] = as_int(eval_expr(*exprs[d], ctx));
    if (coords[d] < 0 || coords[d] >= shape[d]) {
      throw PmdlError("link endpoint coordinate " + std::to_string(coords[d]) +
                          " out of range [0, " + std::to_string(shape[d]) + ")",
                      pos.line, pos.column);
    }
  }
  return coords;
}

long long flatten_coords(std::span<const long long> coords,
                         std::span<const long long> shape) {
  long long index = 0;
  for (std::size_t d = 0; d < shape.size(); ++d) index = index * shape[d] + coords[d];
  return index;
}

}  // namespace

ModelInstance Model::instantiate(std::span<const ParamValue> params) const {
  if (params.size() != param_count_) {
    throw PmdlError("model '" + name_ + "' expects " +
                    std::to_string(param_count_) + " parameters, got " +
                    std::to_string(params.size()));
  }
  if (factory_) return factory_(params);

  const ast::Algorithm& algo = *ast_;

  // Bind parameters. Array dimension expressions may reference earlier
  // parameters (e.g. `int d[p]`).
  auto param_env = std::make_shared<Env>();
  EvalCtx bind_ctx;
  bind_ctx.env = param_env.get();
  bind_ctx.natives = natives_.get();
  bind_ctx.structs = &structs_;

  for (std::size_t i = 0; i < algo.params.size(); ++i) {
    const ast::Param& decl = algo.params[i];
    if (decl.dims.empty()) {
      const auto* scalar_value = std::get_if<long long>(&params[i]);
      if (scalar_value == nullptr) {
        throw PmdlError("parameter '" + decl.name + "' expects a scalar",
                        decl.pos.line, decl.pos.column);
      }
      param_env->define(decl.name, Value(*scalar_value));
    } else {
      const auto* array_value = std::get_if<std::vector<long long>>(&params[i]);
      if (array_value == nullptr) {
        throw PmdlError("parameter '" + decl.name + "' expects an array",
                        decl.pos.line, decl.pos.column);
      }
      auto data = std::make_shared<ArrayData>();
      long long expected = 1;
      for (const ast::ExprPtr& dim : decl.dims) {
        const long long extent = as_int(eval_expr(*dim, bind_ctx));
        if (extent <= 0) {
          throw PmdlError("parameter '" + decl.name + "' has non-positive dimension",
                          decl.pos.line, decl.pos.column);
        }
        data->dims.push_back(extent);
        expected *= extent;
      }
      if (static_cast<long long>(array_value->size()) != expected) {
        throw PmdlError("parameter '" + decl.name + "' expects " +
                            std::to_string(expected) + " elements, got " +
                            std::to_string(array_value->size()),
                        decl.pos.line, decl.pos.column);
      }
      data->data = *array_value;
      param_env->define(decl.name, Value(ArrayRef{std::move(data), 0, 0}));
    }
  }

  ModelInstance instance;
  instance.name_ = name_;

  // Coordinate system.
  for (const ast::CoordVar& cv : algo.coords) {
    const long long extent = as_int(eval_expr(*cv.extent, bind_ctx));
    if (extent <= 0) {
      throw PmdlError("coordinate '" + cv.name + "' has non-positive extent " +
                          std::to_string(extent),
                      cv.pos.line, cv.pos.column);
    }
    instance.shape_.push_back(extent);
  }
  long long total = 1;
  for (long long e : instance.shape_) total *= e;

  // Node volumes: first matching clause wins; no match means zero volume.
  instance.volumes_.assign(static_cast<std::size_t>(total), 0.0);
  for_each_tuple(instance.shape_, [&](std::span<const long long> tuple) {
    param_env->push_scope();
    for (std::size_t d = 0; d < algo.coords.size(); ++d) {
      param_env->define(algo.coords[d].name, Value(tuple[d]));
    }
    for (const ast::NodeClause& clause : algo.node_clauses) {
      if (truthy(eval_expr(*clause.cond, bind_ctx))) {
        const double volume = as_double(eval_expr(*clause.volume, bind_ctx));
        if (volume < 0.0) {
          throw PmdlError("negative node volume", clause.pos.line,
                          clause.pos.column);
        }
        instance.volumes_[static_cast<std::size_t>(
            flatten_coords(tuple, instance.shape_))] = volume;
        break;
      }
    }
    param_env->pop_scope();
  });

  // Links: iterate coordinates x link-iterator variables; a matching clause
  // *defines* the volume for the (src, dst) pair (max on re-definition).
  if (!algo.link_clauses.empty()) {
    std::vector<long long> iter_extents;
    for (const ast::CoordVar& iv : algo.link_iters) {
      const long long extent = as_int(eval_expr(*iv.extent, bind_ctx));
      if (extent <= 0) {
        throw PmdlError("link iterator '" + iv.name + "' has non-positive extent",
                        iv.pos.line, iv.pos.column);
      }
      iter_extents.push_back(extent);
    }
    for_each_tuple(instance.shape_, [&](std::span<const long long> tuple) {
      param_env->push_scope();
      for (std::size_t d = 0; d < algo.coords.size(); ++d) {
        param_env->define(algo.coords[d].name, Value(tuple[d]));
      }
      for_each_tuple(iter_extents, [&](std::span<const long long> iters) {
        param_env->push_scope();
        for (std::size_t d = 0; d < algo.link_iters.size(); ++d) {
          param_env->define(algo.link_iters[d].name, Value(iters[d]));
        }
        for (const ast::LinkClause& clause : algo.link_clauses) {
          if (!truthy(eval_expr(*clause.cond, bind_ctx))) continue;
          const auto src = eval_clause_coords(clause.src_coords, bind_ctx,
                                              instance.shape_, clause.pos);
          const auto dst = eval_clause_coords(clause.dst_coords, bind_ctx,
                                              instance.shape_, clause.pos);
          const double bytes = as_double(eval_expr(*clause.bytes, bind_ctx));
          if (bytes < 0.0) {
            throw PmdlError("negative link volume", clause.pos.line,
                            clause.pos.column);
          }
          const auto key = std::make_pair(
              static_cast<int>(flatten_coords(src, instance.shape_)),
              static_cast<int>(flatten_coords(dst, instance.shape_)));
          if (key.first != key.second && bytes > 0.0) {
            double& slot = instance.links_[key];
            slot = std::max(slot, bytes);
          }
        }
        param_env->pop_scope();
      });
      param_env->pop_scope();
    });
  }

  // Parent (defaults to the processor at all-zero coordinates).
  if (!algo.parent_coords.empty()) {
    if (algo.parent_coords.size() != instance.shape_.size()) {
      throw PmdlError("parent coordinate count does not match coord rank",
                      algo.pos.line, algo.pos.column);
    }
    std::vector<long long> coords(algo.parent_coords.size());
    for (std::size_t d = 0; d < coords.size(); ++d) {
      coords[d] = as_int(eval_expr(*algo.parent_coords[d], bind_ctx));
      if (coords[d] < 0 || coords[d] >= instance.shape_[d]) {
        throw PmdlError("parent coordinate out of range", algo.pos.line,
                        algo.pos.column);
      }
    }
    instance.parent_ = static_cast<int>(flatten_coords(coords, instance.shape_));
  }

  // Scheme: replay the AST against the sink on demand. The closure keeps the
  // algorithm, parameter bindings, natives, and struct table alive.
  if (algo.scheme) {
    auto ast = ast_;
    auto natives = natives_;
    auto structs = structs_;
    auto shape = instance.shape_;
    instance.scheme_ = [ast, param_env, natives, structs,
                        shape](ScheduleSink& sink) {
      Env env = *param_env;  // fresh copy per replay: schemes mutate locals
      EvalCtx ctx;
      ctx.env = &env;
      ctx.natives = natives.get();
      ctx.structs = &structs;
      ctx.sink = &sink;
      ctx.shape = shape;
      exec_stmt(*ast->scheme, ctx);
    };
  }

  return instance;
}

// --- InstanceBuilder ----------------------------------------------------------

InstanceBuilder::InstanceBuilder(std::string name) {
  instance_.name_ = std::move(name);
}

InstanceBuilder& InstanceBuilder::shape(std::vector<long long> dims) {
  support::require(!dims.empty(), "shape needs at least one dimension");
  long long total = 1;
  for (long long d : dims) {
    support::require(d > 0, "shape extents must be positive");
    total *= d;
  }
  instance_.shape_ = std::move(dims);
  instance_.volumes_.assign(static_cast<std::size_t>(total), 0.0);
  shape_set_ = true;
  return *this;
}

InstanceBuilder& InstanceBuilder::node_volume(int index, double units) {
  support::require(shape_set_, "set the shape before node volumes");
  support::require(index >= 0 && index < instance_.size(), "node index out of range");
  support::require(units >= 0.0, "node volume must be non-negative");
  instance_.volumes_[static_cast<std::size_t>(index)] = units;
  return *this;
}

InstanceBuilder& InstanceBuilder::link(int src, int dst, double bytes) {
  support::require(shape_set_, "set the shape before links");
  support::require(src >= 0 && src < instance_.size() && dst >= 0 &&
                       dst < instance_.size(),
                   "link endpoint out of range");
  support::require(src != dst, "self links are not allowed");
  support::require(bytes >= 0.0, "link volume must be non-negative");
  if (bytes > 0.0) {
    double& slot = instance_.links_[{src, dst}];
    slot = std::max(slot, bytes);
  }
  return *this;
}

InstanceBuilder& InstanceBuilder::parent(int index) {
  support::require(shape_set_, "set the shape before the parent");
  support::require(index >= 0 && index < instance_.size(), "parent index out of range");
  instance_.parent_ = index;
  return *this;
}

InstanceBuilder& InstanceBuilder::scheme(std::function<void(ScheduleSink&)> fn) {
  instance_.scheme_ = std::move(fn);
  return *this;
}

ModelInstance InstanceBuilder::build() {
  support::require(shape_set_, "InstanceBuilder requires a shape");
  return std::move(instance_);
}

}  // namespace hmpi::pmdl
