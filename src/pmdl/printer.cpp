#include "pmdl/printer.hpp"

#include <sstream>

#include "support/error.hpp"

namespace hmpi::pmdl {

namespace {

using namespace ast;

const char* op_text(Tok op) {
  switch (op) {
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kNot: return "!";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    default: throw PmdlError("printer: unexpected operator token");
  }
}

class Printer {
 public:
  std::string render(const Algorithm& algo) {
    for (const StructDef& def : algo.structs) {
      out_ << "typedef struct {";
      for (const std::string& field : def.fields) out_ << "int " << field << "; ";
      out_ << "} " << def.name << ";\n\n";
    }

    out_ << "algorithm " << algo.name << "(";
    for (std::size_t i = 0; i < algo.params.size(); ++i) {
      if (i > 0) out_ << ", ";
      out_ << "int " << algo.params[i].name;
      for (const ExprPtr& dim : algo.params[i].dims) {
        out_ << "[" << expr(*dim) << "]";
      }
    }
    out_ << ") {\n";

    out_ << "  coord ";
    for (std::size_t i = 0; i < algo.coords.size(); ++i) {
      if (i > 0) out_ << ", ";
      out_ << algo.coords[i].name << "=" << expr(*algo.coords[i].extent);
    }
    out_ << ";\n";

    if (!algo.node_clauses.empty()) {
      out_ << "  node {\n";
      for (const NodeClause& clause : algo.node_clauses) {
        out_ << "    " << expr(*clause.cond) << ": bench*(" << expr(*clause.volume)
             << ");\n";
      }
      out_ << "  };\n";
    }

    if (!algo.link_clauses.empty()) {
      out_ << "  link";
      if (!algo.link_iters.empty()) {
        out_ << " (";
        for (std::size_t i = 0; i < algo.link_iters.size(); ++i) {
          if (i > 0) out_ << ", ";
          out_ << algo.link_iters[i].name << "=" << expr(*algo.link_iters[i].extent);
        }
        out_ << ")";
      }
      out_ << " {\n";
      for (const LinkClause& clause : algo.link_clauses) {
        out_ << "    " << expr(*clause.cond) << ": length*(" << expr(*clause.bytes)
             << ") " << coords(clause.src_coords) << " -> "
             << coords(clause.dst_coords) << ";\n";
      }
      out_ << "  };\n";
    }

    if (!algo.parent_coords.empty()) {
      out_ << "  parent" << coords(algo.parent_coords) << ";\n";
    }

    if (algo.scheme) {
      out_ << "  scheme ";
      stmt(*algo.scheme, 1);
      out_ << ";\n";
    }

    out_ << "};\n";
    return out_.str();
  }

 private:
  std::string coords(const std::vector<ExprPtr>& list) {
    std::string s = "[";
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) s += ", ";
      s += expr(*list[i]);
    }
    return s + "]";
  }

  /// Fully parenthesised expression rendering (round-trip safe without
  /// tracking precedence).
  std::string expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return std::to_string(e.int_value);
      case ExprKind::kIdent:
        return e.name;
      case ExprKind::kBinary:
        return "(" + expr(*e.lhs) + " " + op_text(e.op) + " " + expr(*e.rhs) + ")";
      case ExprKind::kUnary:
        return std::string("(") + op_text(e.op) + expr(*e.lhs) + ")";
      case ExprKind::kPostfix:
        return expr(*e.lhs) + op_text(e.op);
      case ExprKind::kAssign:
        return expr(*e.lhs) + " " + op_text(e.op) + " " + expr(*e.rhs);
      case ExprKind::kIndex:
        return expr(*e.lhs) + "[" + expr(*e.rhs) + "]";
      case ExprKind::kMember:
        return expr(*e.lhs) + "." + e.name;
      case ExprKind::kCall: {
        std::string s = e.name + "(";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) s += ", ";
          s += expr(*e.args[i]);
        }
        return s + ")";
      }
      case ExprKind::kSizeof:
        return "sizeof(" + e.name + ")";
      case ExprKind::kAddressOf:
        return "&" + expr(*e.lhs);
    }
    throw PmdlError("printer: unhandled expression kind");
  }

  void indent(int depth) {
    for (int i = 0; i < depth; ++i) out_ << "  ";
  }

  void stmt(const Stmt& s, int depth) {
    switch (s.kind) {
      case StmtKind::kBlock:
        out_ << "{\n";
        for (const StmtPtr& child : s.body) {
          indent(depth + 1);
          stmt(*child, depth + 1);
          out_ << "\n";
        }
        indent(depth);
        out_ << "}";
        return;
      case StmtKind::kDecl: {
        out_ << s.decl_type << " ";
        for (std::size_t i = 0; i < s.decls.size(); ++i) {
          if (i > 0) out_ << ", ";
          out_ << s.decls[i].name;
          if (s.decls[i].init) out_ << " = " << expr(*s.decls[i].init);
        }
        out_ << ";";
        return;
      }
      case StmtKind::kExpr:
        out_ << expr(*s.expr) << ";";
        return;
      case StmtKind::kIf:
        out_ << "if (" << expr(*s.expr) << ") ";
        stmt(*s.then_branch, depth);
        if (s.else_branch) {
          out_ << " else ";
          stmt(*s.else_branch, depth);
        }
        return;
      case StmtKind::kFor:
      case StmtKind::kPar:
        out_ << (s.kind == StmtKind::kFor ? "for (" : "par (");
        if (s.init_stmt) {
          // The init is a kDecl or kExpr statement; re-render without the
          // line break it would normally get.
          std::ostringstream saved;
          saved.swap(out_);
          stmt(*s.init_stmt, depth);
          std::string init_text = out_.str();
          out_.swap(saved);
          if (!init_text.empty() && init_text.back() == ';') init_text.pop_back();
          out_ << init_text;
        }
        out_ << "; ";
        if (s.expr) out_ << expr(*s.expr);
        out_ << "; ";
        if (s.step) out_ << expr(*s.step);
        out_ << ") ";
        stmt(*s.loop_body, depth);
        return;
      case StmtKind::kComp:
        out_ << "(" << expr(*s.expr) << ") %% " << coords(s.src_coords) << ";";
        return;
      case StmtKind::kComm:
        out_ << "(" << expr(*s.expr) << ") %% " << coords(s.src_coords) << " -> "
             << coords(s.dst_coords) << ";";
        return;
    }
    throw PmdlError("printer: unhandled statement kind");
  }

  std::ostringstream out_;
};

}  // namespace

std::string to_source(const ast::Algorithm& algorithm) {
  Printer printer;
  return printer.render(algorithm);
}

}  // namespace hmpi::pmdl
