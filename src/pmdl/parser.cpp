#include "pmdl/parser.hpp"

#include <set>
#include <string>
#include <utility>

#include "pmdl/lexer.hpp"
#include "support/error.hpp"

namespace hmpi::pmdl {

namespace {

using namespace ast;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::shared_ptr<const Algorithm> parse_model() {
    auto algo = std::make_shared<Algorithm>();
    while (check(Tok::kTypedef)) {
      algo->structs.push_back(parse_typedef());
      struct_names_.insert(algo->structs.back().name);
    }
    parse_algorithm(*algo);
    accept(Tok::kSemicolon);
    expect(Tok::kEnd);
    return algo;
  }

 private:
  // --- token helpers --------------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool accept(Tok kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(Tok kind) {
    if (!check(kind)) {
      throw PmdlError(std::string("expected ") + tok_name(kind) + ", found " +
                          tok_name(peek().kind) +
                          (peek().text.empty() ? "" : " '" + peek().text + "'"),
                      peek().line, peek().column);
    }
    return tokens_[pos_++];
  }
  Pos here() const { return {peek().line, peek().column}; }

  [[noreturn]] void fail(const std::string& message) const {
    throw PmdlError(message, peek().line, peek().column);
  }

  bool is_type_name(const Token& t) const {
    return t.kind == Tok::kInt ||
           (t.kind == Tok::kIdent && struct_names_.count(t.text) > 0);
  }

  // --- declarations ---------------------------------------------------------

  StructDef parse_typedef() {
    StructDef def;
    def.pos = here();
    expect(Tok::kTypedef);
    expect(Tok::kStruct);
    expect(Tok::kLBrace);
    while (!accept(Tok::kRBrace)) {
      expect(Tok::kInt);
      def.fields.push_back(expect(Tok::kIdent).text);
      while (accept(Tok::kComma)) def.fields.push_back(expect(Tok::kIdent).text);
      expect(Tok::kSemicolon);
    }
    def.name = expect(Tok::kIdent).text;
    expect(Tok::kSemicolon);
    if (def.fields.empty()) {
      throw PmdlError("struct '" + def.name + "' has no fields", def.pos.line,
                      def.pos.column);
    }
    return def;
  }

  void parse_algorithm(Algorithm& algo) {
    algo.pos = here();
    expect(Tok::kAlgorithm);
    algo.name = expect(Tok::kIdent).text;
    expect(Tok::kLParen);
    if (!check(Tok::kRParen)) {
      algo.params.push_back(parse_param());
      while (accept(Tok::kComma)) algo.params.push_back(parse_param());
    }
    expect(Tok::kRParen);
    expect(Tok::kLBrace);
    while (!accept(Tok::kRBrace)) parse_section(algo);
    if (algo.coords.empty()) {
      throw PmdlError("algorithm '" + algo.name + "' has no coord declaration",
                      algo.pos.line, algo.pos.column);
    }
  }

  Param parse_param() {
    Param p;
    p.pos = here();
    expect(Tok::kInt);
    p.name = expect(Tok::kIdent).text;
    while (accept(Tok::kLBracket)) {
      p.dims.push_back(parse_expr());
      expect(Tok::kRBracket);
    }
    return p;
  }

  void parse_section(Algorithm& algo) {
    switch (peek().kind) {
      case Tok::kCoord: parse_coord(algo); break;
      case Tok::kNode: parse_node(algo); break;
      case Tok::kLink: parse_link(algo); break;
      case Tok::kParent: parse_parent(algo); break;
      case Tok::kScheme: parse_scheme(algo); break;
      default:
        fail(std::string("expected a section (coord/node/link/parent/scheme), "
                         "found ") +
             tok_name(peek().kind));
    }
  }

  CoordVar parse_coord_var() {
    CoordVar cv;
    cv.pos = here();
    cv.name = expect(Tok::kIdent).text;
    expect(Tok::kAssign);
    cv.extent = parse_expr();
    return cv;
  }

  void parse_coord(Algorithm& algo) {
    expect(Tok::kCoord);
    algo.coords.push_back(parse_coord_var());
    while (accept(Tok::kComma)) algo.coords.push_back(parse_coord_var());
    expect(Tok::kSemicolon);
  }

  void parse_node(Algorithm& algo) {
    expect(Tok::kNode);
    expect(Tok::kLBrace);
    while (!accept(Tok::kRBrace)) {
      NodeClause clause;
      clause.pos = here();
      clause.cond = parse_expr();
      expect(Tok::kColon);
      expect(Tok::kBench);
      expect(Tok::kStar);
      expect(Tok::kLParen);
      clause.volume = parse_expr();
      expect(Tok::kRParen);
      expect(Tok::kSemicolon);
      algo.node_clauses.push_back(std::move(clause));
    }
    accept(Tok::kSemicolon);
  }

  std::vector<ExprPtr> parse_coord_list() {
    std::vector<ExprPtr> coords;
    expect(Tok::kLBracket);
    coords.push_back(parse_expr());
    while (accept(Tok::kComma)) coords.push_back(parse_expr());
    expect(Tok::kRBracket);
    return coords;
  }

  void parse_link(Algorithm& algo) {
    expect(Tok::kLink);
    if (accept(Tok::kLParen)) {
      algo.link_iters.push_back(parse_coord_var());
      while (accept(Tok::kComma)) algo.link_iters.push_back(parse_coord_var());
      expect(Tok::kRParen);
    }
    expect(Tok::kLBrace);
    while (!accept(Tok::kRBrace)) {
      LinkClause clause;
      clause.pos = here();
      clause.cond = parse_expr();
      expect(Tok::kColon);
      expect(Tok::kLength);
      expect(Tok::kStar);
      expect(Tok::kLParen);
      clause.bytes = parse_expr();
      expect(Tok::kRParen);
      clause.src_coords = parse_coord_list();
      expect(Tok::kArrow);
      clause.dst_coords = parse_coord_list();
      expect(Tok::kSemicolon);
      algo.link_clauses.push_back(std::move(clause));
    }
    accept(Tok::kSemicolon);
  }

  void parse_parent(Algorithm& algo) {
    expect(Tok::kParent);
    algo.parent_coords = parse_coord_list();
    expect(Tok::kSemicolon);
  }

  void parse_scheme(Algorithm& algo) {
    const Token& kw = expect(Tok::kScheme);
    if (algo.scheme) {
      throw PmdlError("duplicate scheme section", kw.line, kw.column);
    }
    algo.scheme = parse_block();
    accept(Tok::kSemicolon);
  }

  // --- statements -----------------------------------------------------------

  StmtPtr parse_block() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kBlock;
    stmt->pos = here();
    expect(Tok::kLBrace);
    while (!accept(Tok::kRBrace)) stmt->body.push_back(parse_stmt());
    return stmt;
  }

  /// `type item (, item)*` without the trailing semicolon.
  StmtPtr parse_decl_no_semi() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->pos = here();
    if (accept(Tok::kInt)) {
      stmt->decl_type = "int";
    } else {
      stmt->decl_type = expect(Tok::kIdent).text;
    }
    for (;;) {
      DeclItem item;
      item.name = expect(Tok::kIdent).text;
      if (accept(Tok::kAssign)) item.init = parse_expr();
      stmt->decls.push_back(std::move(item));
      if (!accept(Tok::kComma)) break;
    }
    return stmt;
  }

  StmtPtr parse_stmt() {
    switch (peek().kind) {
      case Tok::kLBrace: return parse_block();
      case Tok::kIf: return parse_if();
      case Tok::kFor: return parse_loop(StmtKind::kFor);
      case Tok::kPar: return parse_loop(StmtKind::kPar);
      default: break;
    }
    if (is_type_name(peek()) && peek(1).kind == Tok::kIdent) {
      StmtPtr decl = parse_decl_no_semi();
      expect(Tok::kSemicolon);
      return decl;
    }
    return parse_expr_or_activation();
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->pos = here();
    expect(Tok::kIf);
    expect(Tok::kLParen);
    stmt->expr = parse_expr();
    expect(Tok::kRParen);
    stmt->then_branch = parse_stmt();
    if (accept(Tok::kElse)) stmt->else_branch = parse_stmt();
    return stmt;
  }

  StmtPtr parse_loop(StmtKind kind) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->pos = here();
    expect(kind == StmtKind::kFor ? Tok::kFor : Tok::kPar);
    expect(Tok::kLParen);
    if (!check(Tok::kSemicolon)) {
      if (is_type_name(peek()) && peek(1).kind == Tok::kIdent) {
        stmt->init_stmt = parse_decl_no_semi();
      } else {
        auto init = std::make_unique<Stmt>();
        init->kind = StmtKind::kExpr;
        init->pos = here();
        init->expr = parse_expr();
        stmt->init_stmt = std::move(init);
      }
    }
    expect(Tok::kSemicolon);
    if (!check(Tok::kSemicolon)) stmt->expr = parse_expr();
    expect(Tok::kSemicolon);
    if (!check(Tok::kRParen)) stmt->step = parse_expr();
    expect(Tok::kRParen);
    stmt->loop_body = parse_stmt();
    return stmt;
  }

  /// Either `expr ;` or an activation: `expr %% [coords] (-> [coords])? ;`
  StmtPtr parse_expr_or_activation() {
    auto stmt = std::make_unique<Stmt>();
    stmt->pos = here();
    stmt->expr = parse_expr();
    if (accept(Tok::kPercent2)) {
      stmt->src_coords = parse_coord_list();
      if (accept(Tok::kArrow)) {
        stmt->kind = StmtKind::kComm;
        stmt->dst_coords = parse_coord_list();
      } else {
        stmt->kind = StmtKind::kComp;
      }
    } else {
      stmt->kind = StmtKind::kExpr;
    }
    expect(Tok::kSemicolon);
    return stmt;
  }

  // --- expressions ----------------------------------------------------------

  ExprPtr make_expr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->pos = here();
    return e;
  }

  ExprPtr parse_expr() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_logic_or();
    if (check(Tok::kAssign) || check(Tok::kPlusAssign) ||
        check(Tok::kMinusAssign)) {
      auto e = make_expr(ExprKind::kAssign);
      e->op = tokens_[pos_++].kind;
      e->lhs = std::move(lhs);
      e->rhs = parse_assignment();  // right-associative
      return e;
    }
    return lhs;
  }

  ExprPtr parse_binary_chain(ExprPtr (Parser::*next)(),
                             std::initializer_list<Tok> ops) {
    ExprPtr lhs = (this->*next)();
    for (;;) {
      bool matched = false;
      for (Tok op : ops) {
        if (check(op)) {
          auto e = make_expr(ExprKind::kBinary);
          e->op = tokens_[pos_++].kind;
          e->lhs = std::move(lhs);
          e->rhs = (this->*next)();
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_logic_or() {
    return parse_binary_chain(&Parser::parse_logic_and, {Tok::kOrOr});
  }
  ExprPtr parse_logic_and() {
    return parse_binary_chain(&Parser::parse_equality, {Tok::kAndAnd});
  }
  ExprPtr parse_equality() {
    return parse_binary_chain(&Parser::parse_relational, {Tok::kEq, Tok::kNe});
  }
  ExprPtr parse_relational() {
    return parse_binary_chain(&Parser::parse_additive,
                              {Tok::kLt, Tok::kGt, Tok::kLe, Tok::kGe});
  }
  ExprPtr parse_additive() {
    return parse_binary_chain(&Parser::parse_multiplicative,
                              {Tok::kPlus, Tok::kMinus});
  }
  ExprPtr parse_multiplicative() {
    return parse_binary_chain(&Parser::parse_unary,
                              {Tok::kStar, Tok::kSlash, Tok::kPercent});
  }

  ExprPtr parse_unary() {
    if (check(Tok::kMinus) || check(Tok::kNot)) {
      auto e = make_expr(ExprKind::kUnary);
      e->op = tokens_[pos_++].kind;
      e->lhs = parse_unary();
      return e;
    }
    if (check(Tok::kAmp)) {
      auto e = make_expr(ExprKind::kAddressOf);
      ++pos_;
      e->lhs = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (accept(Tok::kLBracket)) {
        auto idx = make_expr(ExprKind::kIndex);
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        expect(Tok::kRBracket);
        e = std::move(idx);
      } else if (accept(Tok::kDot)) {
        auto mem = make_expr(ExprKind::kMember);
        mem->lhs = std::move(e);
        mem->name = expect(Tok::kIdent).text;
        e = std::move(mem);
      } else if (check(Tok::kPlusPlus) || check(Tok::kMinusMinus)) {
        auto post = make_expr(ExprKind::kPostfix);
        post->op = tokens_[pos_++].kind;
        post->lhs = std::move(e);
        e = std::move(post);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    if (check(Tok::kIntLit)) {
      auto e = make_expr(ExprKind::kIntLit);
      e->int_value = tokens_[pos_++].int_value;
      return e;
    }
    if (check(Tok::kSizeof)) {
      auto e = make_expr(ExprKind::kSizeof);
      ++pos_;
      expect(Tok::kLParen);
      switch (peek().kind) {
        case Tok::kInt:
        case Tok::kDouble:
        case Tok::kFloat:
          e->name = tokens_[pos_++].text;
          break;
        case Tok::kIdent:
          e->name = tokens_[pos_++].text;
          break;
        default:
          fail("expected a type name in sizeof");
      }
      expect(Tok::kRParen);
      return e;
    }
    if (check(Tok::kIdent)) {
      if (peek(1).kind == Tok::kLParen) {
        auto e = make_expr(ExprKind::kCall);
        e->name = tokens_[pos_++].text;
        expect(Tok::kLParen);
        if (!check(Tok::kRParen)) {
          e->args.push_back(parse_expr());
          while (accept(Tok::kComma)) e->args.push_back(parse_expr());
        }
        expect(Tok::kRParen);
        return e;
      }
      auto e = make_expr(ExprKind::kIdent);
      e->name = tokens_[pos_++].text;
      return e;
    }
    if (accept(Tok::kLParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::kRParen);
      return e;
    }
    fail(std::string("expected an expression, found ") + tok_name(peek().kind));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::set<std::string> struct_names_;
};

}  // namespace

std::shared_ptr<const ast::Algorithm> parse(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_model();
}

}  // namespace hmpi::pmdl
