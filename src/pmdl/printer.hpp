// Pretty-printer: renders a parsed algorithm back to PMDL source text.
//
// Useful for diagnostics ("what did the compiler actually see?"), for
// documenting programmatically assembled models, and as a parser test
// oracle: print(parse(text)) re-parses to the same structure.
#pragma once

#include <string>

#include "pmdl/ast.hpp"

namespace hmpi::pmdl {

/// Renders `algorithm` (and its typedefs) as canonical PMDL source.
std::string to_source(const ast::Algorithm& algorithm);

}  // namespace hmpi::pmdl
