// Expression and statement evaluation for PMDL (internal to the module;
// exposed for white-box testing).
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>

#include "pmdl/ast.hpp"
#include "pmdl/env.hpp"
#include "pmdl/model.hpp"
#include "pmdl/value.hpp"

namespace hmpi::pmdl {

/// Evaluation context threaded through the tree walk.
struct EvalCtx {
  Env* env = nullptr;
  const std::map<std::string, NativeFn>* natives = nullptr;
  const std::map<std::string, std::shared_ptr<const StructInfo>>* structs = nullptr;
  /// Scheme-only: activation receiver and coordinate extents for bounds checks.
  ScheduleSink* sink = nullptr;
  std::span<const long long> shape;
};

/// Evaluates an expression to a value (C arithmetic semantics; see value.hpp).
Value eval_expr(const ast::Expr& expr, EvalCtx& ctx);

/// Executes a statement (scheme bodies). Requires ctx.sink for kPar/kComm/kComp.
void exec_stmt(const ast::Stmt& stmt, EvalCtx& ctx);

}  // namespace hmpi::pmdl
