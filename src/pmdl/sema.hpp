// Static semantic analysis of a parsed PMDL algorithm.
//
// The paper's toolchain compiles model definitions ahead of time, so errors
// like an unknown identifier or a mis-dimensioned activation should surface
// at compile time with a source position — not on first instantiation.
// validate() walks the whole definition with a typed symbol table:
//   * parameter names are unique; array dimensions reference earlier
//     parameters only;
//   * coord/link-iterator names do not collide with parameters;
//   * every expression type-checks (indexing stays within an array's rank,
//     member access targets a struct with that field, arithmetic operates
//     on scalars, assignment targets int lvalues);
//   * activations use exactly coord-rank coordinates; link clauses and the
//     parent declaration match the coordinate rank;
//   * par/for loops carry a termination condition.
// Function calls are checked structurally (argument expressions; `&x` on
// lvalues); their names bind to natives at instantiation time.
#pragma once

#include "pmdl/ast.hpp"

namespace hmpi::pmdl {

/// Throws PmdlError (with source position) on the first violation.
void validate(const ast::Algorithm& algorithm);

}  // namespace hmpi::pmdl
