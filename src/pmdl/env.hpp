// Lexically scoped symbol environment for PMDL evaluation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pmdl/value.hpp"

namespace hmpi::pmdl {

/// Stack of scopes mapping names to values. Copyable (a ModelInstance keeps
/// the parameter bindings as an Env copy).
class Env {
 public:
  Env() { scopes_.emplace_back(); }

  void push_scope() { scopes_.emplace_back(); }

  void pop_scope() {
    if (scopes_.size() <= 1) throw PmdlError("internal: popping the global scope");
    scopes_.pop_back();
  }

  /// Defines `name` in the innermost scope; redefinition in the same scope
  /// is an error (shadowing an outer scope is allowed).
  void define(const std::string& name, Value value) {
    auto [it, inserted] = scopes_.back().emplace(name, std::move(value));
    (void)it;
    if (!inserted) throw PmdlError("redefinition of '" + name + "'");
  }

  /// Innermost binding of `name`, or nullptr.
  Value* lookup(const std::string& name) {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      auto it = scope->find(name);
      if (it != scope->end()) return &it->second;
    }
    return nullptr;
  }

  const Value* lookup(const std::string& name) const {
    return const_cast<Env*>(this)->lookup(name);
  }

  /// Binding that must exist.
  Value& require(const std::string& name) {
    Value* v = lookup(name);
    if (v == nullptr) throw PmdlError("use of undeclared identifier '" + name + "'");
    return *v;
  }

 private:
  std::vector<std::map<std::string, Value>> scopes_;
};

}  // namespace hmpi::pmdl
