// Runtime values of the performance-model definition language.
//
// Arithmetic follows C semantics (the language is a C dialect): integer
// literals and int parameters are integers, int/int division truncates, `%`
// requires integers, and any double operand promotes the result to double.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/error.hpp"

namespace hmpi::pmdl {

/// Immutable N-dimensional integer array (model parameters).
struct ArrayData {
  std::vector<long long> dims;
  std::vector<long long> data;  // row-major

  long long element_count() const {
    long long n = 1;
    for (long long d : dims) n *= d;
    return n;
  }
};

/// A (possibly partially indexed) view into an ArrayData.
struct ArrayRef {
  std::shared_ptr<const ArrayData> data;
  std::size_t offset = 0;     // flat offset of the viewed sub-array
  std::size_t dim_index = 0;  // how many leading dimensions are consumed

  std::size_t remaining_dims() const { return data->dims.size() - dim_index; }
};

/// Field layout of a struct type declared via typedef.
struct StructInfo {
  std::string name;
  std::vector<std::string> fields;

  int field_index(const std::string& field) const {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i] == field) return static_cast<int>(i);
    }
    return -1;
  }
};

/// A struct variable's storage (int fields only, value semantics).
struct StructVal {
  std::shared_ptr<const StructInfo> type;
  std::vector<long long> fields;
};

/// Any PMDL runtime value.
using Value = std::variant<long long, double, ArrayRef, StructVal>;

/// Numeric coercions (throw PmdlError when the value is not numeric).
double as_double(const Value& v);
long long as_int(const Value& v);
bool truthy(const Value& v);

/// Short value description for diagnostics ("int", "double", "array", ...).
std::string value_kind_name(const Value& v);

}  // namespace hmpi::pmdl
