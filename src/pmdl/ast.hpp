// Abstract syntax tree of the performance-model definition language.
//
// Nodes are enum-tagged structs rather than a class hierarchy: the language
// is small and the evaluator dispatches with a switch, keeping the whole
// front end easy to audit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pmdl/token.hpp"

namespace hmpi::pmdl::ast {

struct Pos {
  int line = 0;
  int column = 0;
};

enum class ExprKind {
  kIntLit,     // 42
  kIdent,      // name
  kBinary,     // lhs op rhs
  kUnary,      // op lhs          (-x, !x)
  kPostfix,    // lhs op          (x++, x--)
  kAssign,     // lhs op rhs      (=, +=, -=)
  kIndex,      // lhs [ rhs ]
  kMember,     // lhs . name
  kCall,       // name ( args )
  kSizeof,     // sizeof ( type-name )
  kAddressOf,  // & lhs           (only valid as a call argument)
};

struct Expr {
  ExprKind kind{};
  Pos pos;
  long long int_value = 0;             // kIntLit
  std::string name;                    // kIdent / kMember / kCall / kSizeof
  Tok op{};                            // kBinary / kUnary / kPostfix / kAssign
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  std::vector<std::unique_ptr<Expr>> args;  // kCall
};

using ExprPtr = std::unique_ptr<Expr>;

enum class StmtKind {
  kBlock,  // { ... }
  kDecl,   // int a = 0, b;  |  Processor Root;
  kExpr,   // expression;
  kIf,     // if (cond) stmt [else stmt]
  kFor,    // for (init; cond; step) stmt      -- sequential composition
  kPar,    // par (init; cond; step) stmt      -- parallel composition
  kComm,   // expr %% [src] -> [dst];
  kComp,   // expr %% [coords];
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct DeclItem {
  std::string name;
  ExprPtr init;  // may be null
};

struct Stmt {
  StmtKind kind{};
  Pos pos;

  std::vector<StmtPtr> body;  // kBlock

  std::string decl_type;         // kDecl: "int" or a struct type name
  std::vector<DeclItem> decls;   // kDecl

  ExprPtr expr;  // kExpr; kIf/kFor/kPar condition; kComm/kComp percent

  StmtPtr init_stmt;  // kFor/kPar (kDecl or kExpr; may be null)
  ExprPtr step;       // kFor/kPar (may be null)
  StmtPtr loop_body;  // kFor/kPar

  StmtPtr then_branch;  // kIf
  StmtPtr else_branch;  // kIf (may be null)

  std::vector<ExprPtr> src_coords;  // kComm source, kComp coordinates
  std::vector<ExprPtr> dst_coords;  // kComm destination
};

/// `typedef struct {int I; int J;} Processor;`
struct StructDef {
  std::string name;
  std::vector<std::string> fields;  // int fields only
  Pos pos;
};

/// One formal parameter: `int p` or `int dep[p][p]`.
struct Param {
  std::string name;
  std::vector<ExprPtr> dims;  // empty for scalars
  Pos pos;
};

/// One coordinate variable: `I = p`.
struct CoordVar {
  std::string name;
  ExprPtr extent;
  Pos pos;
};

/// `cond : bench * ( volume ) ;`
struct NodeClause {
  ExprPtr cond;
  ExprPtr volume;
  Pos pos;
};

/// `cond : length * ( bytes ) [src] -> [dst] ;`
struct LinkClause {
  ExprPtr cond;
  ExprPtr bytes;
  std::vector<ExprPtr> src_coords;
  std::vector<ExprPtr> dst_coords;
  Pos pos;
};

/// A parsed `algorithm` definition (plus preceding typedefs).
struct Algorithm {
  std::string name;
  Pos pos;
  std::vector<StructDef> structs;
  std::vector<Param> params;
  std::vector<CoordVar> coords;
  std::vector<NodeClause> node_clauses;
  std::vector<CoordVar> link_iters;  // `link (K=m, L=m)` iterator variables
  std::vector<LinkClause> link_clauses;
  std::vector<ExprPtr> parent_coords;  // empty -> defaults to all-zero
  StmtPtr scheme;                      // kBlock; may be null
};

}  // namespace hmpi::pmdl::ast
