#include "pmdl/sema.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace hmpi::pmdl {

namespace {

using namespace ast;

/// Static type of a name or expression.
struct Type {
  enum Kind { kInt, kArray, kStruct } kind = kInt;
  int array_rank = 0;       // kArray: remaining dimensions
  std::string struct_name;  // kStruct
};

[[noreturn]] void fail(const Pos& pos, const std::string& message) {
  throw PmdlError(message, pos.line, pos.column);
}

class Checker {
 public:
  explicit Checker(const Algorithm& algo) : algo_(algo) {
    for (const StructDef& def : algo.structs) {
      if (!structs_.emplace(def.name, &def).second) {
        fail(def.pos, "duplicate struct type '" + def.name + "'");
      }
      std::set<std::string> fields;
      for (const std::string& f : def.fields) {
        if (!fields.insert(f).second) {
          fail(def.pos, "duplicate field '" + f + "' in struct " + def.name);
        }
      }
    }
  }

  void run() {
    check_params();
    // Coordinate variables are visible in node/link clauses only; the
    // scheme addresses processors through expressions over its own locals
    // and the parameters (matching the evaluator's scoping).
    push_scope();
    check_coords();
    check_node();
    check_link();
    pop_scope();
    check_parent();
    if (algo_.scheme) {
      push_scope();
      check_stmt(*algo_.scheme);
      pop_scope();
    }
  }

 private:
  // --- scopes ---------------------------------------------------------------

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void define(const std::string& name, Type type, const Pos& pos) {
    if (!scopes_.back().emplace(name, type).second) {
      fail(pos, "redefinition of '" + name + "'");
    }
  }

  const Type* lookup(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      auto it = scope->find(name);
      if (it != scope->end()) return &it->second;
    }
    return nullptr;
  }

  // --- sections --------------------------------------------------------------

  void check_params() {
    push_scope();  // global scope: parameters
    for (const Param& param : algo_.params) {
      // Dimensions may reference earlier parameters only.
      for (const ExprPtr& dim : param.dims) {
        expect_scalar(check_expr(*dim), dim->pos, "array dimension");
      }
      Type type;
      if (param.dims.empty()) {
        type.kind = Type::kInt;
      } else {
        type.kind = Type::kArray;
        type.array_rank = static_cast<int>(param.dims.size());
      }
      define(param.name, type, param.pos);
    }
  }

  void check_coords() {
    for (const CoordVar& cv : algo_.coords) {
      expect_scalar(check_expr(*cv.extent), cv.pos, "coordinate extent");
      define(cv.name, Type{Type::kInt, 0, {}}, cv.pos);
    }
  }

  void check_node() {
    for (const NodeClause& clause : algo_.node_clauses) {
      expect_scalar(check_expr(*clause.cond), clause.pos, "node condition");
      expect_scalar(check_expr(*clause.volume), clause.pos, "node volume");
    }
  }

  void check_link() {
    push_scope();  // link iterator variables
    for (const CoordVar& iv : algo_.link_iters) {
      expect_scalar(check_expr(*iv.extent), iv.pos, "link iterator extent");
      define(iv.name, Type{Type::kInt, 0, {}}, iv.pos);
    }
    const std::size_t rank = algo_.coords.size();
    for (const LinkClause& clause : algo_.link_clauses) {
      expect_scalar(check_expr(*clause.cond), clause.pos, "link condition");
      expect_scalar(check_expr(*clause.bytes), clause.pos, "link volume");
      if (clause.src_coords.size() != rank || clause.dst_coords.size() != rank) {
        fail(clause.pos, "link endpoints must use " + std::to_string(rank) +
                             " coordinate(s)");
      }
      for (const ExprPtr& c : clause.src_coords) {
        expect_scalar(check_expr(*c), c->pos, "link coordinate");
      }
      for (const ExprPtr& c : clause.dst_coords) {
        expect_scalar(check_expr(*c), c->pos, "link coordinate");
      }
    }
    pop_scope();
  }

  void check_parent() {
    if (algo_.parent_coords.empty()) return;
    if (algo_.parent_coords.size() != algo_.coords.size()) {
      fail(algo_.pos, "parent declaration must use " +
                          std::to_string(algo_.coords.size()) +
                          " coordinate(s)");
    }
    for (const ExprPtr& c : algo_.parent_coords) {
      expect_scalar(check_expr(*c), c->pos, "parent coordinate");
    }
  }

  // --- statements -------------------------------------------------------------

  void check_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        push_scope();
        for (const StmtPtr& s : stmt.body) check_stmt(*s);
        pop_scope();
        return;

      case StmtKind::kDecl: {
        Type type;
        if (stmt.decl_type == "int") {
          type.kind = Type::kInt;
        } else {
          auto it = structs_.find(stmt.decl_type);
          if (it == structs_.end()) {
            fail(stmt.pos, "unknown type '" + stmt.decl_type + "'");
          }
          type.kind = Type::kStruct;
          type.struct_name = stmt.decl_type;
        }
        for (const DeclItem& item : stmt.decls) {
          if (item.init) {
            if (type.kind == Type::kStruct) {
              fail(stmt.pos, "struct variables cannot have initialisers");
            }
            expect_scalar(check_expr(*item.init), item.init->pos, "initialiser");
          }
          define(item.name, type, stmt.pos);
        }
        return;
      }

      case StmtKind::kExpr:
        check_expr(*stmt.expr);
        return;

      case StmtKind::kIf:
        expect_scalar(check_expr(*stmt.expr), stmt.expr->pos, "if condition");
        check_stmt(*stmt.then_branch);
        if (stmt.else_branch) check_stmt(*stmt.else_branch);
        return;

      case StmtKind::kFor:
      case StmtKind::kPar: {
        push_scope();
        if (stmt.init_stmt) check_stmt(*stmt.init_stmt);
        if (!stmt.expr) {
          fail(stmt.pos, "loop requires a termination condition");
        }
        expect_scalar(check_expr(*stmt.expr), stmt.expr->pos, "loop condition");
        if (stmt.step) check_expr(*stmt.step);
        check_stmt(*stmt.loop_body);
        pop_scope();
        return;
      }

      case StmtKind::kComp:
      case StmtKind::kComm: {
        expect_scalar(check_expr(*stmt.expr), stmt.expr->pos,
                      "activation percentage");
        const std::size_t rank = algo_.coords.size();
        auto check_coords = [&](const std::vector<ExprPtr>& coords) {
          if (coords.size() != rank) {
            fail(stmt.pos, "activation must use " + std::to_string(rank) +
                               " coordinate(s), found " +
                               std::to_string(coords.size()));
          }
          for (const ExprPtr& c : coords) {
            expect_scalar(check_expr(*c), c->pos, "activation coordinate");
          }
        };
        check_coords(stmt.src_coords);
        if (stmt.kind == StmtKind::kComm) check_coords(stmt.dst_coords);
        return;
      }
    }
    fail(stmt.pos, "internal: unhandled statement kind");
  }

  // --- expressions --------------------------------------------------------------

  static void expect_scalar(const Type& type, const Pos& pos, const char* what) {
    if (type.kind != Type::kInt) {
      fail(pos, std::string(what) + " must be a scalar expression");
    }
  }

  Type check_lvalue(const Expr& expr) {
    if (expr.kind == ExprKind::kIdent) {
      const Type* type = lookup(expr.name);
      if (type == nullptr) {
        fail(expr.pos, "use of undeclared identifier '" + expr.name + "'");
      }
      if (type->kind != Type::kInt) {
        fail(expr.pos, "'" + expr.name + "' is not an assignable int variable");
      }
      return *type;
    }
    if (expr.kind == ExprKind::kMember) {
      if (expr.lhs->kind != ExprKind::kIdent) {
        fail(expr.pos, "assignable member access must be of the form var.field");
      }
      return check_expr(expr);  // validates the base type and the field
    }
    fail(expr.pos, "expression is not assignable");
  }

  Type check_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kSizeof:
        if (expr.kind == ExprKind::kSizeof && expr.name != "int" &&
            expr.name != "double" && expr.name != "float" &&
            structs_.find(expr.name) == structs_.end()) {
          fail(expr.pos, "sizeof of unknown type '" + expr.name + "'");
        }
        return Type{Type::kInt, 0, {}};

      case ExprKind::kIdent: {
        const Type* type = lookup(expr.name);
        if (type == nullptr) {
          fail(expr.pos, "use of undeclared identifier '" + expr.name + "'");
        }
        return *type;
      }

      case ExprKind::kBinary: {
        expect_scalar(check_expr(*expr.lhs), expr.lhs->pos, "operand");
        expect_scalar(check_expr(*expr.rhs), expr.rhs->pos, "operand");
        return Type{Type::kInt, 0, {}};
      }

      case ExprKind::kUnary:
        expect_scalar(check_expr(*expr.lhs), expr.lhs->pos, "operand");
        return Type{Type::kInt, 0, {}};

      case ExprKind::kPostfix:
        check_lvalue(*expr.lhs);
        return Type{Type::kInt, 0, {}};

      case ExprKind::kAssign: {
        check_lvalue(*expr.lhs);
        expect_scalar(check_expr(*expr.rhs), expr.rhs->pos, "assigned value");
        return Type{Type::kInt, 0, {}};
      }

      case ExprKind::kIndex: {
        const Type base = check_expr(*expr.lhs);
        if (base.kind != Type::kArray) {
          fail(expr.pos, "subscripted value is not an array");
        }
        expect_scalar(check_expr(*expr.rhs), expr.rhs->pos, "array index");
        Type result = base;
        result.array_rank -= 1;
        if (result.array_rank == 0) return Type{Type::kInt, 0, {}};
        return result;
      }

      case ExprKind::kMember: {
        const Type base = check_expr(*expr.lhs);
        if (base.kind != Type::kStruct) {
          fail(expr.pos, "member access on a non-struct value");
        }
        const StructDef* def = structs_.at(base.struct_name);
        for (const std::string& field : def->fields) {
          if (field == expr.name) return Type{Type::kInt, 0, {}};
        }
        fail(expr.pos, "struct " + base.struct_name + " has no field '" +
                           expr.name + "'");
      }

      case ExprKind::kCall: {
        for (const ExprPtr& arg : expr.args) {
          if (arg->kind == ExprKind::kAddressOf) {
            // `&x` requires an lvalue-ish target: variable or member.
            const Expr& target = *arg->lhs;
            if (target.kind == ExprKind::kIdent) {
              if (lookup(target.name) == nullptr) {
                fail(target.pos,
                     "use of undeclared identifier '" + target.name + "'");
              }
            } else {
              check_lvalue(target);
            }
          } else {
            check_expr(*arg);
          }
        }
        return Type{Type::kInt, 0, {}};
      }

      case ExprKind::kAddressOf:
        fail(expr.pos, "'&' is only valid on call arguments");
    }
    fail(expr.pos, "internal: unhandled expression kind");
  }

  const Algorithm& algo_;
  std::map<std::string, const StructDef*> structs_;
  std::vector<std::map<std::string, Type>> scopes_;
};

}  // namespace

void validate(const ast::Algorithm& algorithm) {
  Checker checker(algorithm);
  checker.run();
}

}  // namespace hmpi::pmdl
