// Process-selection algorithms behind HMPI_Group_create.
//
// The problem (paper §2): given the performance model of the algorithm and
// the model of the executing network, select — out of the parent process and
// the currently free processes — the set of processes, and their arrangement
// as abstract processors, that minimises the estimated execution time. The
// paper defers to the mpC mapping algorithms [7]; we implement the standard
// family and benchmark them against each other (ablation A1):
//   * ExhaustiveMapper — optimal by enumeration; small instances only.
//   * GreedyMapper     — largest computation volume onto fastest estimated
//                        processor (linear-time baseline).
//   * SwapRefineMapper — greedy start, then hill-climbing over pairwise
//                        swaps and substitutions of unused candidates,
//                        scored by the estimator.
//   * AnnealingMapper  — simulated annealing over the same move set.
//   * BeamMapper       — width-bounded frontier over the swap/substitution
//                        neighborhood, every round's neighbors scored in one
//                        SoA batch (est::BatchEvaluator); the scalable
//                        hill climber for large candidate sets.
//   * WorkStealingAnnealingMapper — independent deterministic annealing
//                        chains claimed dynamically off the thread pool
//                        (work stealing), each speculatively batch-scoring a
//                        chunk of proposals per step.
//   * PortfolioMapper  — greedy + swap-refine + multi-seed annealing
//                        restarts raced concurrently; best result wins.
//                        Above PortfolioOptions::scale_threshold candidates
//                        it swaps the quadratic members for the scalable
//                        pair (beam + work-stealing annealing).
//
// The scalable searches restrict substitution moves to the top-k fastest
// candidates (LocalityOptions) once the candidate set is large: on a
// 1000-machine network the interesting substitutions overwhelmingly target
// the fast tail, and k bounds each round's neighborhood at O(slots x k)
// instead of O(slots x P). Below the threshold nothing is restricted.
//
// Every mapper accepts a SearchContext carrying a thread pool and an
// estimate cache. Determinism guarantee (docs/mapper.md): for a fixed input,
// select() returns a bit-identical MappingResult (selection and
// estimated_time) for any thread count and regardless of whether a cache is
// supplied. Parallel searches partition their work into chunks whose results
// are reduced in a fixed order with a lexicographic tie-break, so thread
// scheduling can never change the winner.
//
// The model's parent abstract processor is pinned to the parent process
// (HMPI semantics: every group shares exactly one process with its creator).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "estimator/estimate_cache.hpp"
#include "estimator/estimator.hpp"
#include "estimator/plan.hpp"
#include "hnoc/network_model.hpp"
#include "pmdl/model.hpp"
#include "support/thread_pool.hpp"

namespace hmpi::map {

/// One selectable process.
struct Candidate {
  int world_rank = -1;  ///< Opaque id reported back in the result.
  int processor = -1;   ///< Physical processor the process runs on.
};

/// Cost accounting of one select() run.
struct SearchStats {
  long long evaluations = 0;   ///< Arrangements scored (cache hits included).
  long long cache_hits = 0;    ///< Evaluations answered from the cache.
  long long cache_misses = 0;  ///< Evaluations the estimator had to replay.
  /// Evaluations priced on the compiled cost IR (full or suffix replay;
  /// cache hits excluded — nothing was evaluated).
  long long compiled_evaluations = 0;
  /// Compiled evaluations answered by a delta suffix replay.
  long long delta_evaluations = 0;
  /// IR ops the delta path actually ran (replays, including the amortised
  /// checkpoint-grid rebuilds commits defer to them)...
  long long delta_ops_replayed = 0;
  /// ...versus what the same evaluations would have cost done fully; the
  /// ratio is the est.delta.savings gauge.
  long long delta_ops_total = 0;
  /// Batch scoring requests the scalable searches issued (mapper.batch.*).
  long long batch_chunks = 0;
  /// Selections scored through the batch path (cache hits included).
  long long batch_candidates = 0;
  /// Batch candidates the SoA evaluator priced (cache hits and interpreter
  /// fallbacks excluded; est.batch.* metrics).
  long long batch_evaluated = 0;
  double wall_seconds = 0.0;   ///< Host wall-clock time of the search.
  int threads = 1;             ///< Workers the search ran with.

  /// cache_hits / (cache_hits + cache_misses); 0 when uncached.
  double hit_rate() const noexcept {
    const long long lookups = cache_hits + cache_misses;
    return lookups > 0 ? static_cast<double>(cache_hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  }

  /// Accumulates the additive counters of `other` (reductions over chunks,
  /// portfolio members, and runtime searches; wall_seconds/threads are
  /// owned by the aggregating search and left alone).
  void add_counters(const SearchStats& other) noexcept {
    evaluations += other.evaluations;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    compiled_evaluations += other.compiled_evaluations;
    delta_evaluations += other.delta_evaluations;
    delta_ops_replayed += other.delta_ops_replayed;
    delta_ops_total += other.delta_ops_total;
    batch_chunks += other.batch_chunks;
    batch_candidates += other.batch_candidates;
    batch_evaluated += other.batch_evaluated;
  }
};

/// Shared machinery a caller may hand to a search. The pointer members are
/// borrowed, optional, and independent: a null pool runs serially, a null
/// cache scores every arrangement through the estimator directly, a null
/// plan cache scores through the pmdl interpreter instead of the compiled
/// cost IR. `delta` enables incremental suffix-replay re-estimation in the
/// hill climbers (needs `plans`; estimator/plan.hpp). Every combination
/// returns bit-identical selections — the toggles trade CPU only.
struct SearchContext {
  support::ThreadPool* pool = nullptr;
  est::EstimateCache* cache = nullptr;
  est::PlanCache* plans = nullptr;
  bool delta = true;
};

/// A selection: which candidate plays each abstract processor.
struct MappingResult {
  /// candidate_for_abstract[a] indexes the `candidates` span.
  std::vector<int> candidate_for_abstract;
  /// Estimated execution time of this arrangement.
  double estimated_time = 0.0;
  /// What the search cost (populated by every mapper).
  SearchStats stats;
};

/// Common interface of the selection algorithms.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Selects |instance| candidates (injectively). `parent_candidate` indexes
  /// `candidates` and is pinned to the model's parent abstract processor.
  /// Throws InvalidArgument when fewer candidates than abstract processors.
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options) const {
    return select(instance, candidates, parent_candidate, network, options,
                  SearchContext{});
  }

  /// As above, with explicit search machinery (thread pool, estimate cache).
  /// The result is bit-identical for every SearchContext (see file comment).
  virtual MappingResult select(const pmdl::ModelInstance& instance,
                               std::span<const Candidate> candidates,
                               int parent_candidate,
                               const hnoc::NetworkModel& network,
                               est::EstimateOptions options,
                               const SearchContext& context) const = 0;

  virtual std::string name() const = 0;

 protected:
  /// Shared validation; returns instance.size().
  static int check(const pmdl::ModelInstance& instance,
                   std::span<const Candidate> candidates, int parent_candidate,
                   const hnoc::NetworkModel& network);

  /// Estimated time of `selection` (candidate indices per abstract proc),
  /// through the context's cache when present; bumps `stats`.
  static double score(const pmdl::ModelInstance& instance,
                      std::span<const Candidate> candidates,
                      std::span<const int> selection,
                      const hnoc::NetworkModel& network,
                      est::EstimateOptions options, const SearchContext& context,
                      SearchStats* stats);

  /// Uncached, unaccounted variant (compatibility helper).
  static double score(const pmdl::ModelInstance& instance,
                      std::span<const Candidate> candidates,
                      std::span<const int> selection,
                      const hnoc::NetworkModel& network,
                      est::EstimateOptions options) {
    SearchStats stats;
    return score(instance, candidates, selection, network, options,
                 SearchContext{}, &stats);
  }
};

/// Optimal by enumeration of all injective assignments with the parent
/// pinned. Throws InvalidArgument when the search space exceeds
/// `max_combinations` (guard against accidental blow-up).
///
/// Parallel: the assignment tree is partitioned by the first free abstract
/// slot's candidate into independent chunks; each chunk enumerates serially
/// in lexicographic order, and the per-chunk minima are reduced in chunk
/// order with ties broken towards the lexicographically smallest selection —
/// the same winner the serial enumeration finds first.
class ExhaustiveMapper : public Mapper {
 public:
  explicit ExhaustiveMapper(long long max_combinations = 2'000'000)
      : max_combinations_(max_combinations) {}

  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "exhaustive"; }

 private:
  long long max_combinations_;
};

/// Largest node volume onto the fastest estimated processor.
class GreedyMapper : public Mapper {
 public:
  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "greedy"; }

  /// The raw greedy selection without the final scoring (shared with
  /// SwapRefineMapper).
  static std::vector<int> greedy_selection(const pmdl::ModelInstance& instance,
                                           std::span<const Candidate> candidates,
                                           int parent_candidate,
                                           const hnoc::NetworkModel& network);
};

/// Tunables of AnnealingMapper (namespace scope: see WorldOptions for why).
struct AnnealingOptions {
  int iterations = 2000;
  double initial_temperature_factor = 0.05;  ///< x the greedy makespan.
  double cooling = 0.995;                    ///< Geometric schedule.
  std::uint64_t seed = 0x48'4d'50'49;        ///< "HMPI"
};

/// Simulated annealing over swap/substitution moves, seeded deterministically
/// (same inputs -> same selection). Escapes the local optima hill climbing
/// can get stuck in on communication-shaped landscapes, at higher cost.
class AnnealingMapper : public Mapper {
 public:
  using Options = AnnealingOptions;

  explicit AnnealingMapper(Options options = AnnealingOptions())
      : options_(options) {}

  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "annealing"; }

 private:
  Options options_;
};

/// Greedy start + estimator-scored hill climbing (swaps and substitutions).
class SwapRefineMapper : public Mapper {
 public:
  explicit SwapRefineMapper(int max_rounds = 64) : max_rounds_(max_rounds) {}

  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "swap-refine"; }

 private:
  int max_rounds_;
};

/// Locality-aware neighborhood restriction of the scalable searches (see
/// file comment). Substitution moves consider only the `top_k` fastest
/// candidates (by estimated processor speed, ties towards the lower
/// candidate index) once more than `threshold` candidates are offered;
/// below the threshold every unused candidate is a target.
struct LocalityOptions {
  int top_k = 32;
  int threshold = 64;
};

/// Tunables of BeamMapper.
struct BeamOptions {
  /// Frontier states kept per round (distinct selections).
  int width = 8;
  /// Rounds without improvement end the search earlier.
  int max_rounds = 32;
  LocalityOptions locality;
};

/// Width-bounded beam search over the swap/substitution neighborhood,
/// started from the greedy selection. Every round expands each frontier
/// state's full neighborhood, scores all neighbors in one batch
/// (est::BatchEvaluator through the bulk estimate-cache path), and keeps the
/// `width` best distinct selections under a (time, selection) lexicographic
/// order — so the frontier, and therefore the result, is bit-identical for
/// any thread count (parallel batch chunks write disjoint ranges and the
/// merge walks a fixed order).
class BeamMapper : public Mapper {
 public:
  using Options = BeamOptions;

  explicit BeamMapper(Options options = BeamOptions());

  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "beam"; }

 private:
  Options options_;
};

/// Tunables of WorkStealingAnnealingMapper.
struct WorkStealingOptions {
  /// Independent annealing chains; idle workers steal the next unclaimed
  /// chain off the pool's dynamic index.
  int chains = 8;
  /// Per-chain schedule; the seed field is the chain_seed derivation base.
  AnnealingOptions annealing;
  /// Speculative proposals drawn and batch-scored per step; on the first
  /// accepted proposal the rest of the chunk is discarded (stale against the
  /// new state).
  int chunk = 8;
  LocalityOptions locality;
};

/// Work-stealing parallel annealing: `chains` deterministic annealing runs
/// (greedy start, geometric cooling, locality-restricted substitution /
/// swap moves) claimed dynamically over the context's ThreadPool. Each
/// chain draws a chunk of proposals i.i.d. from its current state, prices
/// the whole chunk in one SoA batch, then walks it in order under the
/// Metropolis rule — a chain is a fixed serial computation, so the
/// chain-order reduction (ties keep the earliest chain) is bit-identical
/// for any thread count.
class WorkStealingAnnealingMapper : public Mapper {
 public:
  using Options = WorkStealingOptions;

  explicit WorkStealingAnnealingMapper(Options options = WorkStealingOptions());

  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "annealing-ws"; }

  /// Deterministic per-chain RNG seed (SplitMix64-style decorrelation of the
  /// base). Pinned by tests — changing this derivation changes every
  /// work-stealing selection.
  static std::uint64_t chain_seed(std::uint64_t base_seed, int chain) noexcept {
    return base_seed ^
           (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chain) + 1));
  }

 private:
  Options options_;
};

/// Tunables of PortfolioMapper.
struct PortfolioOptions {
  /// Concurrent annealing members; each runs with a seed derived by
  /// PortfolioMapper::restart_seed so no two retrace the same trajectory.
  int annealing_restarts = 4;
  /// Base annealing tunables (the seed field is the derivation base).
  AnnealingOptions annealing;
  /// Hill-climbing rounds of the swap-refine member.
  int swap_refine_rounds = 64;
  /// Candidate count above which the portfolio enrolls the scalable members
  /// (beam + work-stealing annealing) instead of the quadratic ones. At or
  /// below the threshold the member list — and therefore the selection — is
  /// exactly the pre-scaling portfolio's, bit for bit.
  int scale_threshold = 64;
  BeamOptions beam;
  WorkStealingOptions work_stealing;
};

/// Races greedy, swap-refine, and `annealing_restarts` differently-seeded
/// annealing runs — concurrently when the context has a pool — and returns
/// the best result. Every member runs to completion and the reduction walks
/// members in a fixed order (ties keep the earliest member), so the outcome
/// is identical for 1 or N threads. Above scale_threshold candidates the
/// member list becomes {greedy, beam, work-stealing annealing}, run in
/// sequence with the pool handed *into* each member (they parallelise
/// internally over batch chunks / chains) instead of racing serial members.
class PortfolioMapper : public Mapper {
 public:
  using Options = PortfolioOptions;

  explicit PortfolioMapper(Options options = PortfolioOptions());

  using Mapper::select;
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options,
                       const SearchContext& context) const override;
  std::string name() const override { return "portfolio"; }

  /// Deterministic per-restart RNG seed: base xor the restart index, so
  /// restart 0 reproduces a plain AnnealingMapper with the base seed and
  /// every restart diverges immediately (SplitMix64 decorrelates adjacent
  /// seeds from the first draw). Pinned by tests — changing this derivation
  /// changes every portfolio selection.
  static std::uint64_t restart_seed(std::uint64_t base_seed, int restart) noexcept {
    return base_seed ^ static_cast<std::uint64_t>(restart);
  }

 private:
  Options options_;
};

/// The library default (what HMPI_Group_create uses).
std::unique_ptr<Mapper> make_default_mapper();

}  // namespace hmpi::map
