// Process-selection algorithms behind HMPI_Group_create.
//
// The problem (paper §2): given the performance model of the algorithm and
// the model of the executing network, select — out of the parent process and
// the currently free processes — the set of processes, and their arrangement
// as abstract processors, that minimises the estimated execution time. The
// paper defers to the mpC mapping algorithms [7]; we implement the standard
// family and benchmark them against each other (ablation A1):
//   * ExhaustiveMapper — optimal by enumeration; small instances only.
//   * GreedyMapper     — largest computation volume onto fastest estimated
//                        processor (linear-time baseline).
//   * SwapRefineMapper — greedy start, then hill-climbing over pairwise
//                        swaps and substitutions of unused candidates,
//                        scored by the estimator.
//
// The model's parent abstract processor is pinned to the parent process
// (HMPI semantics: every group shares exactly one process with its creator).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "estimator/estimator.hpp"
#include "hnoc/network_model.hpp"
#include "pmdl/model.hpp"

namespace hmpi::map {

/// One selectable process.
struct Candidate {
  int world_rank = -1;  ///< Opaque id reported back in the result.
  int processor = -1;   ///< Physical processor the process runs on.
};

/// A selection: which candidate plays each abstract processor.
struct MappingResult {
  /// candidate_for_abstract[a] indexes the `candidates` span.
  std::vector<int> candidate_for_abstract;
  /// Estimated execution time of this arrangement.
  double estimated_time = 0.0;
};

/// Common interface of the selection algorithms.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Selects |instance| candidates (injectively). `parent_candidate` indexes
  /// `candidates` and is pinned to the model's parent abstract processor.
  /// Throws InvalidArgument when fewer candidates than abstract processors.
  virtual MappingResult select(const pmdl::ModelInstance& instance,
                               std::span<const Candidate> candidates,
                               int parent_candidate,
                               const hnoc::NetworkModel& network,
                               est::EstimateOptions options) const = 0;

  virtual std::string name() const = 0;

 protected:
  /// Shared validation; returns instance.size().
  static int check(const pmdl::ModelInstance& instance,
                   std::span<const Candidate> candidates, int parent_candidate,
                   const hnoc::NetworkModel& network);

  /// Estimated time of `selection` (candidate indices per abstract proc).
  static double score(const pmdl::ModelInstance& instance,
                      std::span<const Candidate> candidates,
                      std::span<const int> selection,
                      const hnoc::NetworkModel& network,
                      est::EstimateOptions options);
};

/// Optimal by enumeration of all injective assignments with the parent
/// pinned. Throws InvalidArgument when the search space exceeds
/// `max_combinations` (guard against accidental blow-up).
class ExhaustiveMapper : public Mapper {
 public:
  explicit ExhaustiveMapper(long long max_combinations = 2'000'000)
      : max_combinations_(max_combinations) {}

  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options) const override;
  std::string name() const override { return "exhaustive"; }

 private:
  long long max_combinations_;
};

/// Largest node volume onto the fastest estimated processor.
class GreedyMapper : public Mapper {
 public:
  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options) const override;
  std::string name() const override { return "greedy"; }

  /// The raw greedy selection without the final scoring (shared with
  /// SwapRefineMapper).
  static std::vector<int> greedy_selection(const pmdl::ModelInstance& instance,
                                           std::span<const Candidate> candidates,
                                           int parent_candidate,
                                           const hnoc::NetworkModel& network);
};

/// Tunables of AnnealingMapper (namespace scope: see WorldOptions for why).
struct AnnealingOptions {
  int iterations = 2000;
  double initial_temperature_factor = 0.05;  ///< x the greedy makespan.
  double cooling = 0.995;                    ///< Geometric schedule.
  std::uint64_t seed = 0x48'4d'50'49;        ///< "HMPI"
};

/// Simulated annealing over swap/substitution moves, seeded deterministically
/// (same inputs -> same selection). Escapes the local optima hill climbing
/// can get stuck in on communication-shaped landscapes, at higher cost.
class AnnealingMapper : public Mapper {
 public:
  using Options = AnnealingOptions;

  explicit AnnealingMapper(Options options = AnnealingOptions())
      : options_(options) {}

  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options) const override;
  std::string name() const override { return "annealing"; }

 private:
  Options options_;
};

/// Greedy start + estimator-scored hill climbing (swaps and substitutions).
class SwapRefineMapper : public Mapper {
 public:
  explicit SwapRefineMapper(int max_rounds = 64) : max_rounds_(max_rounds) {}

  MappingResult select(const pmdl::ModelInstance& instance,
                       std::span<const Candidate> candidates,
                       int parent_candidate, const hnoc::NetworkModel& network,
                       est::EstimateOptions options) const override;
  std::string name() const override { return "swap-refine"; }

 private:
  int max_rounds_;
};

/// The library default (what HMPI_Group_create uses).
std::unique_ptr<Mapper> make_default_mapper();

}  // namespace hmpi::map
