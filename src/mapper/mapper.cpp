#include "mapper/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::map {

int Mapper::check(const pmdl::ModelInstance& instance,
                  std::span<const Candidate> candidates, int parent_candidate,
                  const hnoc::NetworkModel& network) {
  const int p = instance.size();
  support::require(static_cast<int>(candidates.size()) >= p,
                   "not enough candidate processes (" +
                       std::to_string(candidates.size()) + ") for " +
                       std::to_string(p) + " abstract processors");
  support::require(parent_candidate >= 0 &&
                       parent_candidate < static_cast<int>(candidates.size()),
                   "parent candidate index out of range");
  for (const Candidate& c : candidates) {
    support::require(c.processor >= 0 && c.processor < network.size(),
                     "candidate references a processor outside the network");
  }
  return p;
}

double Mapper::score(const pmdl::ModelInstance& instance,
                     std::span<const Candidate> candidates,
                     std::span<const int> selection,
                     const hnoc::NetworkModel& network,
                     est::EstimateOptions options) {
  std::vector<int> processors(selection.size());
  for (std::size_t a = 0; a < selection.size(); ++a) {
    processors[a] = candidates[static_cast<std::size_t>(selection[a])].processor;
  }
  return est::estimate_time(instance, processors, network, options);
}

// --- ExhaustiveMapper ---------------------------------------------------------

MappingResult ExhaustiveMapper::select(const pmdl::ModelInstance& instance,
                                       std::span<const Candidate> candidates,
                                       int parent_candidate,
                                       const hnoc::NetworkModel& network,
                                       est::EstimateOptions options) const {
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  // Search-space size: P(n-1, p-1) ordered selections of the free slots.
  long long combos = 1;
  for (int i = 0; i < p - 1; ++i) {
    combos *= (n - 1 - i);
    if (combos > max_combinations_) {
      throw InvalidArgument(
          "exhaustive mapping space exceeds the configured limit; use the "
          "greedy or swap-refine mapper");
    }
  }

  std::vector<int> selection(static_cast<std::size_t>(p), -1);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  selection[static_cast<std::size_t>(parent_abstract)] = parent_candidate;
  used[static_cast<std::size_t>(parent_candidate)] = true;

  MappingResult best;
  best.estimated_time = std::numeric_limits<double>::infinity();

  // Depth-first over abstract processors, skipping the pinned parent slot.
  auto recurse = [&](auto&& self, int a) -> void {
    if (a == p) {
      const double t = score(instance, candidates, selection, network, options);
      if (t < best.estimated_time) {
        best.estimated_time = t;
        best.candidate_for_abstract = selection;
      }
      return;
    }
    if (a == parent_abstract) {
      self(self, a + 1);
      return;
    }
    for (int c = 0; c < n; ++c) {
      if (used[static_cast<std::size_t>(c)]) continue;
      used[static_cast<std::size_t>(c)] = true;
      selection[static_cast<std::size_t>(a)] = c;
      self(self, a + 1);
      selection[static_cast<std::size_t>(a)] = -1;
      used[static_cast<std::size_t>(c)] = false;
    }
  };
  recurse(recurse, 0);
  return best;
}

// --- GreedyMapper --------------------------------------------------------------

std::vector<int> GreedyMapper::greedy_selection(
    const pmdl::ModelInstance& instance, std::span<const Candidate> candidates,
    int parent_candidate, const hnoc::NetworkModel& network) {
  const int p = instance.size();
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  // Abstract processors by descending volume; ties by index (determinism).
  std::vector<int> abstract_order;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) abstract_order.push_back(a);
  }
  std::stable_sort(abstract_order.begin(), abstract_order.end(),
                   [&](int a, int b) {
                     return instance.node_volume(a) > instance.node_volume(b);
                   });

  // Candidates by descending estimated speed; ties by index.
  std::vector<int> candidate_order;
  for (int c = 0; c < n; ++c) {
    if (c != parent_candidate) candidate_order.push_back(c);
  }
  std::stable_sort(candidate_order.begin(), candidate_order.end(),
                   [&](int a, int b) {
                     return network.speed(candidates[static_cast<std::size_t>(a)]
                                              .processor) >
                            network.speed(candidates[static_cast<std::size_t>(b)]
                                              .processor);
                   });

  std::vector<int> selection(static_cast<std::size_t>(p), -1);
  selection[static_cast<std::size_t>(parent_abstract)] = parent_candidate;
  for (std::size_t i = 0; i < abstract_order.size(); ++i) {
    selection[static_cast<std::size_t>(abstract_order[i])] = candidate_order[i];
  }
  return selection;
}

MappingResult GreedyMapper::select(const pmdl::ModelInstance& instance,
                                   std::span<const Candidate> candidates,
                                   int parent_candidate,
                                   const hnoc::NetworkModel& network,
                                   est::EstimateOptions options) const {
  check(instance, candidates, parent_candidate, network);
  MappingResult result;
  result.candidate_for_abstract =
      greedy_selection(instance, candidates, parent_candidate, network);
  result.estimated_time = score(instance, candidates,
                                result.candidate_for_abstract, network, options);
  return result;
}

// --- SwapRefineMapper -----------------------------------------------------------

MappingResult SwapRefineMapper::select(const pmdl::ModelInstance& instance,
                                       std::span<const Candidate> candidates,
                                       int parent_candidate,
                                       const hnoc::NetworkModel& network,
                                       est::EstimateOptions options) const {
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  std::vector<int> selection =
      GreedyMapper::greedy_selection(instance, candidates, parent_candidate,
                                     network);
  double best = score(instance, candidates, selection, network, options);

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int c : selection) used[static_cast<std::size_t>(c)] = true;

  for (int round = 0; round < max_rounds_; ++round) {
    bool improved = false;

    // Pairwise swaps of assigned candidates (parent slot stays pinned).
    for (int a = 0; a < p; ++a) {
      if (a == parent_abstract) continue;
      for (int b = a + 1; b < p; ++b) {
        if (b == parent_abstract) continue;
        std::swap(selection[static_cast<std::size_t>(a)],
                  selection[static_cast<std::size_t>(b)]);
        const double t = score(instance, candidates, selection, network, options);
        if (t + 1e-15 < best) {
          best = t;
          improved = true;
        } else {
          std::swap(selection[static_cast<std::size_t>(a)],
                    selection[static_cast<std::size_t>(b)]);
        }
      }
    }

    // Substitutions: replace an assigned candidate with an unused one.
    for (int a = 0; a < p; ++a) {
      if (a == parent_abstract) continue;
      for (int c = 0; c < n; ++c) {
        if (used[static_cast<std::size_t>(c)]) continue;
        const int old = selection[static_cast<std::size_t>(a)];
        selection[static_cast<std::size_t>(a)] = c;
        const double t = score(instance, candidates, selection, network, options);
        if (t + 1e-15 < best) {
          best = t;
          improved = true;
          used[static_cast<std::size_t>(old)] = false;
          used[static_cast<std::size_t>(c)] = true;
        } else {
          selection[static_cast<std::size_t>(a)] = old;
        }
      }
    }

    if (!improved) break;
  }

  MappingResult result;
  result.candidate_for_abstract = std::move(selection);
  result.estimated_time = best;
  return result;
}

// --- AnnealingMapper -------------------------------------------------------------

MappingResult AnnealingMapper::select(const pmdl::ModelInstance& instance,
                                      std::span<const Candidate> candidates,
                                      int parent_candidate,
                                      const hnoc::NetworkModel& network,
                                      est::EstimateOptions options) const {
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  std::vector<int> current = GreedyMapper::greedy_selection(
      instance, candidates, parent_candidate, network);
  double current_score = score(instance, candidates, current, network, options);
  std::vector<int> best = current;
  double best_score = current_score;

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int c : current) used[static_cast<std::size_t>(c)] = true;

  support::Rng rng(options_.seed);
  double temperature = std::max(1e-12, options_.initial_temperature_factor *
                                           current_score);

  // Mutable non-parent slots.
  std::vector<int> slots;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) slots.push_back(a);
  }
  if (slots.empty()) {
    return {std::move(best), best_score};
  }

  for (int iter = 0; iter < options_.iterations; ++iter, temperature *= options_.cooling) {
    // Propose a move: swap two slots, or substitute an unused candidate.
    const bool substitute =
        n > p && (slots.size() < 2 || rng.next_double() < 0.5);
    int slot_a = slots[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(slots.size())))];
    int undo_slot_b = -1;
    int undo_value_a = current[static_cast<std::size_t>(slot_a)];
    int undo_value_b = -1;

    if (substitute) {
      // Pick an unused candidate uniformly.
      int replacement = -1;
      int seen = 0;
      for (int c = 0; c < n; ++c) {
        if (used[static_cast<std::size_t>(c)]) continue;
        ++seen;
        if (rng.next_below(static_cast<std::uint64_t>(seen)) == 0) replacement = c;
      }
      current[static_cast<std::size_t>(slot_a)] = replacement;
      used[static_cast<std::size_t>(undo_value_a)] = false;
      used[static_cast<std::size_t>(replacement)] = true;
    } else {
      int slot_b = slot_a;
      while (slot_b == slot_a) {
        slot_b = slots[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(slots.size())))];
      }
      undo_slot_b = slot_b;
      undo_value_b = current[static_cast<std::size_t>(slot_b)];
      std::swap(current[static_cast<std::size_t>(slot_a)],
                current[static_cast<std::size_t>(slot_b)]);
    }

    const double proposed = score(instance, candidates, current, network, options);
    const double delta = proposed - current_score;
    const bool accept =
        delta <= 0.0 || rng.next_double() < std::exp(-delta / temperature);
    if (accept) {
      current_score = proposed;
      if (proposed < best_score) {
        best_score = proposed;
        best = current;
      }
    } else {
      // Undo the move.
      if (undo_slot_b >= 0) {
        current[static_cast<std::size_t>(undo_slot_b)] = undo_value_b;
        current[static_cast<std::size_t>(slot_a)] = undo_value_a;
      } else {
        used[static_cast<std::size_t>(current[static_cast<std::size_t>(slot_a)])] =
            false;
        used[static_cast<std::size_t>(undo_value_a)] = true;
        current[static_cast<std::size_t>(slot_a)] = undo_value_a;
      }
    }
  }

  return {std::move(best), best_score};
}

std::unique_ptr<Mapper> make_default_mapper() {
  return std::make_unique<SwapRefineMapper>();
}

}  // namespace hmpi::map
