#include "mapper/mapper.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "estimator/fingerprint.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "telemetry/span.hpp"

namespace hmpi::map {

namespace {

/// Host wall-clock timer for SearchStats (virtual time never advances while
/// the parent runs a search, so this is real elapsed time).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

int context_threads(const SearchContext& context) {
  return context.pool != nullptr ? context.pool->size() : 1;
}

/// Per-select() scorer: resolves the compiled plan and the instance
/// fingerprint once (both are O(model aggregates) — far too expensive per
/// candidate), owns the selection->processors scratch, and routes every
/// evaluation through the cache / compiled IR / interpreter as the context
/// dictates. All routes return bit-identical values (the plan's exact-match
/// contract, estimator/plan.hpp), so the search trajectory — and therefore
/// the selection — is independent of which machinery is plugged in.
///
/// Not thread-safe: one scorer per search thread (parallel mappers already
/// give each chunk/member its own serial search).
class CandidateScorer {
 public:
  CandidateScorer(const pmdl::ModelInstance& instance,
                  std::span<const Candidate> candidates,
                  const hnoc::NetworkModel& network,
                  est::EstimateOptions options, const SearchContext& context)
      : instance_(&instance),
        candidates_(candidates),
        network_(&network),
        options_(options),
        cache_(context.cache) {
    if (context.plans != nullptr) {
      plan_ = context.plans->get(instance);
      if (context.delta) {
        delta_.emplace(*plan_, network, options);
      }
    }
    if (cache_ != nullptr) {
      fingerprint_ = est::estimate_fingerprint(instance, options);
    }
    processors_.resize(static_cast<std::size_t>(instance.size()));
  }

  /// Full evaluation of `selection`. In delta mode this also (re)bases the
  /// incremental state on it, so it doubles as the hill climbers' "accept
  /// this as the current arrangement" entry point.
  double full(std::span<const int> selection, SearchStats* stats) {
    to_processors(selection);
    stats->evaluations += 1;
    if (delta_) {
      // The reset is the evaluation (and the checkpointed base state).
      const double t = delta_->reset(processors_);
      stats->compiled_evaluations += 1;
      const auto ops = static_cast<long long>(plan_->op_count());
      stats->delta_ops_replayed += ops;
      stats->delta_ops_total += ops;
      synced_ops_ = delta_->ops_replayed();
      if (cache_ != nullptr) {
        double cached = 0.0;
        if (cache_->lookup(fingerprint_, processors_, *network_, &cached)) {
          stats->cache_hits += 1;
          return cached;  // == t bit for bit, by the determinism contract
        }
        cache_->insert(fingerprint_, processors_, *network_, t);
        stats->cache_misses += 1;
      }
      return t;
    }
    if (cache_ != nullptr) {
      bool hit = false;
      const double t = cache_->estimate(fingerprint_, *instance_, processors_,
                                        *network_, options_, &hit, plan_.get());
      (hit ? stats->cache_hits : stats->cache_misses) += 1;
      if (!hit && plan_ != nullptr) stats->compiled_evaluations += 1;
      return t;
    }
    if (plan_ != nullptr) {
      stats->compiled_evaluations += 1;
      return plan_->evaluate(processors_, *network_, options_);
    }
    return est::estimate_time(*instance_, processors_, *network_, options_);
  }

  /// Price `selection`, which differs from the last accepted arrangement in
  /// exactly the `changed` slots. Delta mode answers by staged suffix replay
  /// (one cache lookup per proposal, like every other route); the other
  /// modes ignore the hint and evaluate fully.
  double probe(std::span<const int> selection, std::span<const int> changed,
               SearchStats* stats) {
    if (!delta_) return full(selection, stats);
    stats->evaluations += 1;
    moves_.clear();
    for (int a : changed) {
      moves_.push_back(
          {a, candidates_[static_cast<std::size_t>(
                              selection[static_cast<std::size_t>(a)])]
                  .processor});
    }
    const std::span<const int> staged = delta_->stage(moves_);
    if (cache_ != nullptr) {
      double cached = 0.0;
      if (cache_->lookup(fingerprint_, staged, *network_, &cached)) {
        stats->cache_hits += 1;
        delta_->set_staged_value(cached);
        return cached;
      }
    }
    const double t = delta_->replay();
    stats->compiled_evaluations += 1;
    stats->delta_evaluations += 1;
    stats->delta_ops_total += static_cast<long long>(plan_->op_count());
    stats->delta_ops_replayed += delta_->ops_replayed() - synced_ops_;
    synced_ops_ = delta_->ops_replayed();
    if (cache_ != nullptr) {
      cache_->insert(fingerprint_, staged, *network_, t);
      stats->cache_misses += 1;
    }
    return t;
  }

  /// Adopt the last probed proposal as the accepted arrangement. No-op
  /// outside delta mode (the selection vector is the only state there).
  void accept(SearchStats* stats) {
    if (!delta_) return;
    delta_->commit();
    // Commits are O(1), but an unpriced one rebuilds the suffix: keep the
    // replay accounting synced either way.
    stats->delta_ops_replayed += delta_->ops_replayed() - synced_ops_;
    synced_ops_ = delta_->ops_replayed();
  }

 private:
  void to_processors(std::span<const int> selection) {
    for (std::size_t a = 0; a < selection.size(); ++a) {
      processors_[a] =
          candidates_[static_cast<std::size_t>(selection[a])].processor;
    }
  }

  const pmdl::ModelInstance* instance_;
  std::span<const Candidate> candidates_;
  const hnoc::NetworkModel* network_;
  est::EstimateOptions options_;
  est::EstimateCache* cache_;
  std::shared_ptr<const est::Plan> plan_;
  std::optional<est::DeltaEvaluator> delta_;
  std::uint64_t fingerprint_ = 0;
  long long synced_ops_ = 0;
  std::vector<int> processors_;
  std::vector<est::DeltaEvaluator::Move> moves_;
};

/// Batch counterpart of CandidateScorer for the scalable searches: packs a
/// set of complete selections into row-major physical mappings, answers what
/// it can from the estimate cache in one bulk probe per shard, prices the
/// misses through the SoA est::BatchEvaluator (or the interpreter when no
/// plan cache is supplied) and bulk-inserts them back. Values are
/// bit-identical on every route — the same contract CandidateScorer rides
/// on — so batch and one-at-a-time searches agree bit for bit.
///
/// Not thread-safe: one scorer per chunk/chain (all scratch is reused
/// across calls, so a steady-state round allocates nothing).
class BatchScorer {
 public:
  BatchScorer(const pmdl::ModelInstance& instance,
              std::span<const Candidate> candidates,
              const hnoc::NetworkModel& network, est::EstimateOptions options,
              const SearchContext& context)
      : instance_(&instance),
        candidates_(candidates),
        network_(&network),
        options_(options),
        cache_(context.cache),
        width_(static_cast<std::size_t>(instance.size())) {
    if (context.plans != nullptr) plan_ = context.plans->get(instance);
    if (cache_ != nullptr) {
      fingerprint_ = est::estimate_fingerprint(instance, options);
    }
  }

  /// Scores `count` selections laid out row-major (selections[j * width + a]
  /// is the candidate index of abstract slot `a` in selection `j`) into
  /// out[0..count).
  void score(std::span<const int> selections, std::size_t count,
             std::span<double> out, SearchStats* stats) {
    if (count == 0) return;
    stats->evaluations += static_cast<long long>(count);
    stats->batch_chunks += 1;
    stats->batch_candidates += static_cast<long long>(count);

    // Selection -> physical processors, row-major (the cache key layout).
    rows_.resize(count * width_);
    for (std::size_t j = 0; j < count * width_; ++j) {
      rows_[j] = candidates_[static_cast<std::size_t>(selections[j])].processor;
    }

    found_.assign(count, 0);
    std::size_t hits = 0;
    if (cache_ != nullptr) {
      hits = cache_->lookup_batch(fingerprint_, rows_, width_, *network_, out,
                                  found_);
      stats->cache_hits += static_cast<long long>(hits);
      stats->cache_misses += static_cast<long long>(count - hits);
      if (hits == count) return;
    }

    if (plan_ != nullptr) {
      // Pack the miss subset slot-major and price it in one SoA pass.
      miss_index_.clear();
      for (std::size_t j = 0; j < count; ++j) {
        if (found_[j] == 0) miss_index_.push_back(j);
      }
      const std::size_t misses = miss_index_.size();
      soa_.resize(width_ * misses);
      for (std::size_t a = 0; a < width_; ++a) {
        for (std::size_t m = 0; m < misses; ++m) {
          soa_[a * misses + m] = rows_[miss_index_[m] * width_ + a];
        }
      }
      miss_out_.resize(misses);
      batch_.evaluate(*plan_, soa_, misses, *network_, options_, miss_out_);
      for (std::size_t m = 0; m < misses; ++m) {
        out[miss_index_[m]] = miss_out_[m];
      }
      stats->compiled_evaluations += static_cast<long long>(misses);
      stats->batch_evaluated += static_cast<long long>(misses);
    } else {
      for (std::size_t j = 0; j < count; ++j) {
        if (found_[j] != 0) continue;
        out[j] = est::estimate_time(
            *instance_,
            std::span<const int>(rows_).subspan(j * width_, width_), *network_,
            options_);
      }
    }

    if (cache_ != nullptr) {
      cache_->insert_batch(fingerprint_, rows_, width_, *network_, out, found_);
    }
  }

 private:
  const pmdl::ModelInstance* instance_;
  std::span<const Candidate> candidates_;
  const hnoc::NetworkModel* network_;
  est::EstimateOptions options_;
  est::EstimateCache* cache_;
  std::shared_ptr<const est::Plan> plan_;
  std::uint64_t fingerprint_ = 0;
  std::size_t width_;
  est::BatchEvaluator batch_;
  std::vector<int> rows_;
  std::vector<char> found_;
  std::vector<std::size_t> miss_index_;
  std::vector<int> soa_;
  std::vector<double> miss_out_;
};

/// Chunked batch scoring over the context's pool: the candidate set is split
/// into one contiguous range per worker slot, each scored by that slot's own
/// BatchScorer (reused across rounds), stats merged in slot order. Values
/// land in disjoint out ranges and do not depend on which thread computed
/// them, so results are bit-identical for any thread count.
class ParallelBatchScorer {
 public:
  ParallelBatchScorer(const pmdl::ModelInstance& instance,
                      std::span<const Candidate> candidates,
                      const hnoc::NetworkModel& network,
                      est::EstimateOptions options,
                      const SearchContext& context)
      : pool_(context.pool), width_(static_cast<std::size_t>(instance.size())) {
    const int slots = std::max(1, context_threads(context));
    scorers_.reserve(static_cast<std::size_t>(slots));
    for (int t = 0; t < slots; ++t) {
      scorers_.emplace_back(instance, candidates, network, options, context);
    }
    slot_stats_.resize(scorers_.size());
  }

  void score(std::span<const int> selections, std::size_t count,
             std::span<double> out, SearchStats* stats) {
    const std::size_t slots = scorers_.size();
    // Small batches are not worth the fork/join round trip.
    if (pool_ == nullptr || slots <= 1 || count < 2 * slots) {
      scorers_[0].score(selections, count, out, stats);
      return;
    }
    for (SearchStats& s : slot_stats_) s = SearchStats{};
    const std::size_t chunk = (count + slots - 1) / slots;
    pool_->parallel_for(static_cast<int>(slots), [&](int t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      if (begin >= count) return;
      const std::size_t n = std::min(chunk, count - begin);
      scorers_[static_cast<std::size_t>(t)].score(
          selections.subspan(begin * width_, n * width_), n,
          out.subspan(begin, n), &slot_stats_[static_cast<std::size_t>(t)]);
    });
    for (const SearchStats& s : slot_stats_) stats->add_counters(s);
  }

 private:
  support::ThreadPool* pool_;
  std::size_t width_;
  std::vector<BatchScorer> scorers_;
  std::vector<SearchStats> slot_stats_;
};

/// Substitution targets under the locality restriction: every non-parent
/// candidate below the threshold; the top_k fastest (ties towards the lower
/// index) above it.
std::vector<int> substitution_targets(std::span<const Candidate> candidates,
                                      int parent_candidate,
                                      const hnoc::NetworkModel& network,
                                      const LocalityOptions& locality) {
  std::vector<int> order;
  order.reserve(candidates.size());
  for (int c = 0; c < static_cast<int>(candidates.size()); ++c) {
    if (c != parent_candidate) order.push_back(c);
  }
  if (static_cast<int>(candidates.size()) <= locality.threshold) return order;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return network.speed(candidates[static_cast<std::size_t>(a)].processor) >
           network.speed(candidates[static_cast<std::size_t>(b)].processor);
  });
  const auto k = static_cast<std::size_t>(std::max(1, locality.top_k));
  if (order.size() > k) order.resize(k);
  return order;
}

}  // namespace

int Mapper::check(const pmdl::ModelInstance& instance,
                  std::span<const Candidate> candidates, int parent_candidate,
                  const hnoc::NetworkModel& network) {
  const int p = instance.size();
  support::require(static_cast<int>(candidates.size()) >= p,
                   "not enough candidate processes (" +
                       std::to_string(candidates.size()) + ") for " +
                       std::to_string(p) + " abstract processors");
  support::require(parent_candidate >= 0 &&
                       parent_candidate < static_cast<int>(candidates.size()),
                   "parent candidate index out of range");
  for (const Candidate& c : candidates) {
    support::require(c.processor >= 0 && c.processor < network.size(),
                     "candidate references a processor outside the network");
  }
  return p;
}

double Mapper::score(const pmdl::ModelInstance& instance,
                     std::span<const Candidate> candidates,
                     std::span<const int> selection,
                     const hnoc::NetworkModel& network,
                     est::EstimateOptions options, const SearchContext& context,
                     SearchStats* stats) {
  // Thread-local scratch: this runs per candidate in the selection hot path
  // and must not allocate (profile-guided; verified by the A9 ablation).
  static thread_local std::vector<int> processors;
  processors.resize(selection.size());
  for (std::size_t a = 0; a < selection.size(); ++a) {
    processors[a] = candidates[static_cast<std::size_t>(selection[a])].processor;
  }
  stats->evaluations += 1;
  if (context.cache != nullptr) {
    bool hit = false;
    const double t =
        context.cache->estimate(instance, processors, network, options, &hit);
    (hit ? stats->cache_hits : stats->cache_misses) += 1;
    return t;
  }
  return est::estimate_time(instance, processors, network, options);
}

// --- ExhaustiveMapper ---------------------------------------------------------

MappingResult ExhaustiveMapper::select(const pmdl::ModelInstance& instance,
                                       std::span<const Candidate> candidates,
                                       int parent_candidate,
                                       const hnoc::NetworkModel& network,
                                       est::EstimateOptions options,
                                       const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:exhaustive");
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  // Search-space size: P(n-1, p-1) ordered selections of the free slots.
  long long combos = 1;
  for (int i = 0; i < p - 1; ++i) {
    combos *= (n - 1 - i);
    if (combos > max_combinations_) {
      throw InvalidArgument(
          "exhaustive mapping space exceeds the configured limit; use the "
          "greedy or swap-refine mapper");
    }
  }

  // Free abstract slots, in increasing index order (= lexicographic
  // enumeration order of the full selection vector).
  std::vector<int> slots;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) slots.push_back(a);
  }

  if (slots.empty()) {
    // Only the pinned parent: a single arrangement.
    MappingResult result;
    result.candidate_for_abstract.assign(static_cast<std::size_t>(p),
                                         parent_candidate);
    result.estimated_time = score(instance, candidates,
                                  result.candidate_for_abstract, network,
                                  options, context, &result.stats);
    result.stats.threads = context_threads(context);
    result.stats.wall_seconds = timer.seconds();
    return result;
  }

  // Partition by the first free slot's candidate: one independent chunk per
  // non-parent candidate. Each chunk enumerates the remaining slots serially
  // in lexicographic order, so its first-found minimum is the lexicographic
  // smallest of its ties.
  std::vector<int> chunk_first;
  for (int c = 0; c < n; ++c) {
    if (c != parent_candidate) chunk_first.push_back(c);
  }

  struct ChunkResult {
    MappingResult best;
    bool feasible = false;
  };
  std::vector<ChunkResult> chunks(chunk_first.size());

  const auto run_chunk = [&](int chunk_index) {
    ChunkResult& out = chunks[static_cast<std::size_t>(chunk_index)];
    // Per-chunk scorer (one per worker thread). Delta replay is off here:
    // DFS leaves share no accepted base arrangement to diff against, so the
    // compiled full evaluation is the fast path.
    SearchContext chunk_context = context;
    chunk_context.pool = nullptr;
    chunk_context.delta = false;
    CandidateScorer scorer(instance, candidates, network, options,
                           chunk_context);
    std::vector<int> selection(static_cast<std::size_t>(p), -1);
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    selection[static_cast<std::size_t>(parent_abstract)] = parent_candidate;
    used[static_cast<std::size_t>(parent_candidate)] = true;
    const int first = chunk_first[static_cast<std::size_t>(chunk_index)];
    selection[static_cast<std::size_t>(slots.front())] = first;
    used[static_cast<std::size_t>(first)] = true;

    out.best.estimated_time = std::numeric_limits<double>::infinity();

    // Depth-first over the remaining free slots, candidates ascending.
    auto recurse = [&](auto&& self, std::size_t slot_index) -> void {
      if (slot_index == slots.size()) {
        const double t = scorer.full(selection, &out.best.stats);
        if (t < out.best.estimated_time) {
          out.best.estimated_time = t;
          out.best.candidate_for_abstract = selection;
          out.feasible = true;
        }
        return;
      }
      const auto a = static_cast<std::size_t>(slots[slot_index]);
      for (int c = 0; c < n; ++c) {
        if (used[static_cast<std::size_t>(c)]) continue;
        used[static_cast<std::size_t>(c)] = true;
        selection[a] = c;
        self(self, slot_index + 1);
        selection[a] = -1;
        used[static_cast<std::size_t>(c)] = false;
      }
    };
    recurse(recurse, 1);
  };

  const int threads = context_threads(context);
  if (context.pool != nullptr && threads > 1 && chunks.size() > 1) {
    context.pool->parallel_for(static_cast<int>(chunks.size()), run_chunk);
  } else {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      run_chunk(static_cast<int>(i));
    }
  }

  // Argmin reduction in chunk order; exact ties go to the lexicographically
  // smaller selection. Chunk order is ascending first-slot candidate, so the
  // reduction reproduces exactly what a serial lexicographic enumeration
  // would have kept first — bit-identical for 1, 2, or N threads.
  MappingResult best;
  best.estimated_time = std::numeric_limits<double>::infinity();
  bool feasible = false;
  for (const ChunkResult& chunk : chunks) {
    best.stats.add_counters(chunk.best.stats);
    if (!chunk.feasible) continue;
    const bool wins =
        chunk.best.estimated_time < best.estimated_time ||
        (feasible && chunk.best.estimated_time == best.estimated_time &&
         chunk.best.candidate_for_abstract < best.candidate_for_abstract);
    if (!feasible || wins) {
      best.estimated_time = chunk.best.estimated_time;
      best.candidate_for_abstract = chunk.best.candidate_for_abstract;
      feasible = true;
    }
  }
  best.stats.threads = threads;
  best.stats.wall_seconds = timer.seconds();
  return best;
}

// --- GreedyMapper --------------------------------------------------------------

std::vector<int> GreedyMapper::greedy_selection(
    const pmdl::ModelInstance& instance, std::span<const Candidate> candidates,
    int parent_candidate, const hnoc::NetworkModel& network) {
  const int p = instance.size();
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  // Abstract processors by descending volume; ties by index (determinism).
  std::vector<int> abstract_order;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) abstract_order.push_back(a);
  }
  std::stable_sort(abstract_order.begin(), abstract_order.end(),
                   [&](int a, int b) {
                     return instance.node_volume(a) > instance.node_volume(b);
                   });

  // Candidates by descending estimated speed; ties by index.
  std::vector<int> candidate_order;
  for (int c = 0; c < n; ++c) {
    if (c != parent_candidate) candidate_order.push_back(c);
  }
  std::stable_sort(candidate_order.begin(), candidate_order.end(),
                   [&](int a, int b) {
                     return network.speed(candidates[static_cast<std::size_t>(a)]
                                              .processor) >
                            network.speed(candidates[static_cast<std::size_t>(b)]
                                              .processor);
                   });

  std::vector<int> selection(static_cast<std::size_t>(p), -1);
  selection[static_cast<std::size_t>(parent_abstract)] = parent_candidate;
  for (std::size_t i = 0; i < abstract_order.size(); ++i) {
    selection[static_cast<std::size_t>(abstract_order[i])] = candidate_order[i];
  }
  return selection;
}

MappingResult GreedyMapper::select(const pmdl::ModelInstance& instance,
                                   std::span<const Candidate> candidates,
                                   int parent_candidate,
                                   const hnoc::NetworkModel& network,
                                   est::EstimateOptions options,
                                   const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:greedy");
  check(instance, candidates, parent_candidate, network);
  MappingResult result;
  result.candidate_for_abstract =
      greedy_selection(instance, candidates, parent_candidate, network);
  // One evaluation total: no base arrangement to delta against.
  SearchContext single_context = context;
  single_context.delta = false;
  CandidateScorer scorer(instance, candidates, network, options,
                         single_context);
  result.estimated_time =
      scorer.full(result.candidate_for_abstract, &result.stats);
  result.stats.threads = context_threads(context);
  result.stats.wall_seconds = timer.seconds();
  return result;
}

// --- SwapRefineMapper -----------------------------------------------------------

MappingResult SwapRefineMapper::select(const pmdl::ModelInstance& instance,
                                       std::span<const Candidate> candidates,
                                       int parent_candidate,
                                       const hnoc::NetworkModel& network,
                                       est::EstimateOptions options,
                                       const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:swap-refine");
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  SearchStats stats;
  CandidateScorer scorer(instance, candidates, network, options, context);
  std::vector<int> selection =
      GreedyMapper::greedy_selection(instance, candidates, parent_candidate,
                                     network);
  double best = scorer.full(selection, &stats);

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int c : selection) used[static_cast<std::size_t>(c)] = true;

  for (int round = 0; round < max_rounds_; ++round) {
    bool improved = false;

    // Pairwise swaps of assigned candidates (parent slot stays pinned).
    for (int a = 0; a < p; ++a) {
      if (a == parent_abstract) continue;
      for (int b = a + 1; b < p; ++b) {
        if (b == parent_abstract) continue;
        std::swap(selection[static_cast<std::size_t>(a)],
                  selection[static_cast<std::size_t>(b)]);
        const int changed[2] = {a, b};
        const double t = scorer.probe(selection, changed, &stats);
        if (t + 1e-15 < best) {
          best = t;
          improved = true;
          scorer.accept(&stats);
        } else {
          std::swap(selection[static_cast<std::size_t>(a)],
                    selection[static_cast<std::size_t>(b)]);
        }
      }
    }

    // Substitutions: replace an assigned candidate with an unused one.
    for (int a = 0; a < p; ++a) {
      if (a == parent_abstract) continue;
      for (int c = 0; c < n; ++c) {
        if (used[static_cast<std::size_t>(c)]) continue;
        const int old = selection[static_cast<std::size_t>(a)];
        selection[static_cast<std::size_t>(a)] = c;
        const int changed[1] = {a};
        const double t = scorer.probe(selection, changed, &stats);
        if (t + 1e-15 < best) {
          best = t;
          improved = true;
          used[static_cast<std::size_t>(old)] = false;
          used[static_cast<std::size_t>(c)] = true;
          scorer.accept(&stats);
        } else {
          selection[static_cast<std::size_t>(a)] = old;
        }
      }
    }

    if (!improved) break;
  }

  MappingResult result;
  result.candidate_for_abstract = std::move(selection);
  result.estimated_time = best;
  result.stats = stats;
  result.stats.threads = context_threads(context);
  result.stats.wall_seconds = timer.seconds();
  return result;
}

// --- AnnealingMapper -------------------------------------------------------------

MappingResult AnnealingMapper::select(const pmdl::ModelInstance& instance,
                                      std::span<const Candidate> candidates,
                                      int parent_candidate,
                                      const hnoc::NetworkModel& network,
                                      est::EstimateOptions options,
                                      const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:annealing");
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());

  SearchStats stats;
  CandidateScorer scorer(instance, candidates, network, options, context);
  std::vector<int> current = GreedyMapper::greedy_selection(
      instance, candidates, parent_candidate, network);
  double current_score = scorer.full(current, &stats);
  std::vector<int> best = current;
  double best_score = current_score;

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int c : current) used[static_cast<std::size_t>(c)] = true;

  support::Rng rng(options_.seed);
  double temperature = std::max(1e-12, options_.initial_temperature_factor *
                                           current_score);

  // Mutable non-parent slots.
  std::vector<int> slots;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) slots.push_back(a);
  }

  const auto finish = [&](std::vector<int> selection, double t) {
    MappingResult result;
    result.candidate_for_abstract = std::move(selection);
    result.estimated_time = t;
    result.stats = stats;
    result.stats.threads = context_threads(context);
    result.stats.wall_seconds = timer.seconds();
    return result;
  };

  if (slots.empty()) {
    return finish(std::move(best), best_score);
  }

  for (int iter = 0; iter < options_.iterations; ++iter, temperature *= options_.cooling) {
    // Propose a move: swap two slots, or substitute an unused candidate.
    const bool substitute =
        n > p && (slots.size() < 2 || rng.next_double() < 0.5);
    int slot_a = slots[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(slots.size())))];
    int undo_slot_b = -1;
    int undo_value_a = current[static_cast<std::size_t>(slot_a)];
    int undo_value_b = -1;

    if (substitute) {
      // Pick an unused candidate uniformly.
      int replacement = -1;
      int seen = 0;
      for (int c = 0; c < n; ++c) {
        if (used[static_cast<std::size_t>(c)]) continue;
        ++seen;
        if (rng.next_below(static_cast<std::uint64_t>(seen)) == 0) replacement = c;
      }
      current[static_cast<std::size_t>(slot_a)] = replacement;
      used[static_cast<std::size_t>(undo_value_a)] = false;
      used[static_cast<std::size_t>(replacement)] = true;
    } else {
      int slot_b = slot_a;
      while (slot_b == slot_a) {
        slot_b = slots[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(slots.size())))];
      }
      undo_slot_b = slot_b;
      undo_value_b = current[static_cast<std::size_t>(slot_b)];
      std::swap(current[static_cast<std::size_t>(slot_a)],
                current[static_cast<std::size_t>(slot_b)]);
    }

    const int changed[2] = {slot_a, undo_slot_b >= 0 ? undo_slot_b : slot_a};
    const double proposed = scorer.probe(
        current, std::span<const int>(changed, undo_slot_b >= 0 ? 2u : 1u),
        &stats);
    const double delta = proposed - current_score;
    const bool accept =
        delta <= 0.0 || rng.next_double() < std::exp(-delta / temperature);
    if (accept) {
      scorer.accept(&stats);
      current_score = proposed;
      if (proposed < best_score) {
        best_score = proposed;
        best = current;
      }
    } else {
      // Undo the move.
      if (undo_slot_b >= 0) {
        current[static_cast<std::size_t>(undo_slot_b)] = undo_value_b;
        current[static_cast<std::size_t>(slot_a)] = undo_value_a;
      } else {
        used[static_cast<std::size_t>(current[static_cast<std::size_t>(slot_a)])] =
            false;
        used[static_cast<std::size_t>(undo_value_a)] = true;
        current[static_cast<std::size_t>(slot_a)] = undo_value_a;
      }
    }
  }

  return finish(std::move(best), best_score);
}

// --- BeamMapper ------------------------------------------------------------------

BeamMapper::BeamMapper(Options options) : options_(options) {
  support::require(options_.width >= 1, "beam width must be >= 1");
  support::require(options_.max_rounds >= 1, "beam max_rounds must be >= 1");
  support::require(options_.locality.top_k >= 1,
                   "locality top_k must be >= 1");
}

MappingResult BeamMapper::select(const pmdl::ModelInstance& instance,
                                 std::span<const Candidate> candidates,
                                 int parent_candidate,
                                 const hnoc::NetworkModel& network,
                                 est::EstimateOptions options,
                                 const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:beam");
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());
  const auto width = static_cast<std::size_t>(p);

  SearchStats stats;
  ParallelBatchScorer scorer(instance, candidates, network, options, context);

  const auto finish = [&](std::vector<int> selection, double t) {
    MappingResult result;
    result.candidate_for_abstract = std::move(selection);
    result.estimated_time = t;
    result.stats = stats;
    result.stats.threads = context_threads(context);
    result.stats.wall_seconds = timer.seconds();
    return result;
  };

  std::vector<int> start = GreedyMapper::greedy_selection(
      instance, candidates, parent_candidate, network);
  double start_time = 0.0;
  scorer.score(start, 1, std::span<double>(&start_time, 1), &stats);

  // Mutable non-parent slots and (locality-restricted) substitution targets.
  std::vector<int> slots;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) slots.push_back(a);
  }
  if (slots.empty()) return finish(std::move(start), start_time);
  const std::vector<int> targets = substitution_targets(
      candidates, parent_candidate, network, options_.locality);

  // Frontier states, kept sorted by (time, selection) — the lexicographic
  // tie-break makes the frontier, and hence the result, independent of both
  // thread count and enumeration order.
  struct State {
    std::vector<int> selection;
    double time = 0.0;
  };
  std::vector<State> frontier;
  frontier.push_back(State{std::move(start), start_time});
  double best_time = start_time;

  std::vector<int> rows;       // neighbour selections, row-major
  std::vector<double> scores;  // their times
  std::vector<char> used(static_cast<std::size_t>(n), 0);

  for (int round = 0; round < options_.max_rounds; ++round) {
    // Expand every frontier state: all pairwise swaps of free slots, plus
    // substitutions of each free slot to each unused neighbourhood target.
    rows.clear();
    for (const State& state : frontier) {
      std::fill(used.begin(), used.end(), 0);
      for (int c : state.selection) used[static_cast<std::size_t>(c)] = 1;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        for (std::size_t j = i + 1; j < slots.size(); ++j) {
          rows.insert(rows.end(), state.selection.begin(),
                      state.selection.end());
          int* row = rows.data() + (rows.size() - width);
          std::swap(row[slots[i]], row[slots[j]]);
        }
      }
      for (int a : slots) {
        for (int c : targets) {
          if (used[static_cast<std::size_t>(c)] != 0) continue;
          rows.insert(rows.end(), state.selection.begin(),
                      state.selection.end());
          rows[rows.size() - width + static_cast<std::size_t>(a)] = c;
        }
      }
    }
    const std::size_t count = rows.size() / width;
    if (count == 0) break;
    scores.resize(count);
    scorer.score(rows, count, scores, &stats);

    // Merge survivors and neighbours, keep the `width` best. Duplicate
    // selections score identically (deterministic estimator), so they sort
    // adjacent and collapse under unique().
    std::vector<State> merged = std::move(frontier);
    merged.reserve(merged.size() + count);
    for (std::size_t j = 0; j < count; ++j) {
      merged.push_back(
          State{std::vector<int>(rows.begin() + static_cast<std::ptrdiff_t>(
                                     j * width),
                                 rows.begin() + static_cast<std::ptrdiff_t>(
                                     (j + 1) * width)),
                scores[j]});
    }
    std::sort(merged.begin(), merged.end(), [](const State& a, const State& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.selection < b.selection;
    });
    merged.erase(std::unique(merged.begin(), merged.end(),
                             [](const State& a, const State& b) {
                               return a.selection == b.selection;
                             }),
                 merged.end());
    if (merged.size() > static_cast<std::size_t>(options_.width)) {
      merged.resize(static_cast<std::size_t>(options_.width));
    }
    frontier = std::move(merged);

    const double round_best = frontier.front().time;
    if (!(round_best + 1e-15 < best_time)) break;
    best_time = round_best;
  }

  return finish(std::move(frontier.front().selection), frontier.front().time);
}

// --- WorkStealingAnnealingMapper -------------------------------------------------

WorkStealingAnnealingMapper::WorkStealingAnnealingMapper(Options options)
    : options_(options) {
  support::require(options_.chains >= 1, "annealing-ws chains must be >= 1");
  support::require(options_.chunk >= 1, "annealing-ws chunk must be >= 1");
  support::require(options_.locality.top_k >= 1,
                   "locality top_k must be >= 1");
}

MappingResult WorkStealingAnnealingMapper::select(
    const pmdl::ModelInstance& instance, std::span<const Candidate> candidates,
    int parent_candidate, const hnoc::NetworkModel& network,
    est::EstimateOptions options, const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:annealing-ws");
  const int p = check(instance, candidates, parent_candidate, network);
  const int parent_abstract = instance.parent_index();
  const int n = static_cast<int>(candidates.size());
  const auto width = static_cast<std::size_t>(p);
  const int chains = options_.chains;

  // Shared across chains: the greedy start, the mutable slot list, and the
  // (locality-restricted) substitution targets.
  const std::vector<int> start = GreedyMapper::greedy_selection(
      instance, candidates, parent_candidate, network);
  std::vector<int> slots;
  for (int a = 0; a < p; ++a) {
    if (a != parent_abstract) slots.push_back(a);
  }
  const std::vector<int> targets = substitution_targets(
      candidates, parent_candidate, network, options_.locality);

  struct ChainResult {
    std::vector<int> best;
    double best_time = 0.0;
    SearchStats stats;
  };
  std::vector<ChainResult> results(static_cast<std::size_t>(chains));

  // One independent chain per index. Each chain's move sequence is a fixed
  // function of its seed alone: proposals are drawn speculatively in chunks,
  // priced in one batch, then walked in draw order with the exact
  // AnnealingMapper acceptance rule; the first accepted proposal ends the
  // chunk and the rejected tail is discarded (their scores were speculative,
  // their RNG draws were made before pricing, so the trajectory matches the
  // one-at-a-time chain exactly). Threads only decide which worker runs
  // which chain — never what any chain computes.
  const auto run_chain = [&](int ci) {
    ChainResult& out = results[static_cast<std::size_t>(ci)];
    SearchContext chain_context = context;
    chain_context.pool = nullptr;  // chains are the parallelism
    BatchScorer scorer(instance, candidates, network, options, chain_context);
    support::Rng rng(chain_seed(options_.annealing.seed, ci));

    std::vector<int> current = start;
    double current_time = 0.0;
    scorer.score(current, 1, std::span<double>(&current_time, 1), &out.stats);
    out.best = current;
    out.best_time = current_time;
    if (slots.empty()) return;

    std::vector<char> used(static_cast<std::size_t>(n), 0);
    for (int c : current) used[static_cast<std::size_t>(c)] = 1;
    double temperature =
        std::max(1e-12, options_.annealing.initial_temperature_factor *
                            current_time);

    // A proposal is either a swap (slot_b >= 0) or a substitution of
    // `replacement` into slot_a.
    struct Proposal {
      int slot_a = -1;
      int slot_b = -1;
      int replacement = -1;
    };
    std::vector<Proposal> proposals;
    std::vector<int> rows;
    std::vector<double> vals;

    int remaining = options_.annealing.iterations;
    while (remaining > 0) {
      const int k = std::min(options_.chunk, remaining);
      proposals.clear();
      rows.clear();
      for (int j = 0; j < k; ++j) {
        const bool substitute =
            n > p && (slots.size() < 2 || rng.next_double() < 0.5);
        Proposal prop;
        prop.slot_a = slots[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(slots.size())))];
        rows.insert(rows.end(), current.begin(), current.end());
        int* row = rows.data() + (rows.size() - width);
        if (substitute) {
          // Reservoir over the unused neighbourhood targets; if the whole
          // neighbourhood is occupied, fall back to any unused candidate so
          // the move stays feasible (n > p guarantees one exists).
          int replacement = -1;
          int seen = 0;
          for (int c : targets) {
            if (used[static_cast<std::size_t>(c)] != 0) continue;
            ++seen;
            if (rng.next_below(static_cast<std::uint64_t>(seen)) == 0) {
              replacement = c;
            }
          }
          if (replacement < 0) {
            for (int c = 0; c < n; ++c) {
              if (used[static_cast<std::size_t>(c)] != 0) continue;
              ++seen;
              if (rng.next_below(static_cast<std::uint64_t>(seen)) == 0) {
                replacement = c;
              }
            }
          }
          prop.replacement = replacement;
          row[prop.slot_a] = replacement;
        } else {
          int slot_b = prop.slot_a;
          while (slot_b == prop.slot_a) {
            slot_b = slots[static_cast<std::size_t>(
                rng.next_below(static_cast<std::uint64_t>(slots.size())))];
          }
          prop.slot_b = slot_b;
          std::swap(row[prop.slot_a], row[prop.slot_b]);
        }
        proposals.push_back(prop);
      }

      vals.resize(static_cast<std::size_t>(k));
      scorer.score(rows, static_cast<std::size_t>(k), vals, &out.stats);

      int walked = 0;
      for (int j = 0; j < k; ++j) {
        ++walked;
        const double delta = vals[static_cast<std::size_t>(j)] - current_time;
        const bool accept = delta <= 0.0 ||
                            rng.next_double() < std::exp(-delta / temperature);
        temperature *= options_.annealing.cooling;
        if (!accept) continue;
        const Proposal& prop = proposals[static_cast<std::size_t>(j)];
        if (prop.slot_b >= 0) {
          std::swap(current[static_cast<std::size_t>(prop.slot_a)],
                    current[static_cast<std::size_t>(prop.slot_b)]);
        } else {
          used[static_cast<std::size_t>(
              current[static_cast<std::size_t>(prop.slot_a)])] = 0;
          used[static_cast<std::size_t>(prop.replacement)] = 1;
          current[static_cast<std::size_t>(prop.slot_a)] = prop.replacement;
        }
        current_time = vals[static_cast<std::size_t>(j)];
        if (current_time < out.best_time) {
          out.best_time = current_time;
          out.best = current;
        }
        break;  // the rest of the chunk was speculative against the old state
      }
      remaining -= walked;
    }
  };

  const int threads = context_threads(context);
  if (context.pool != nullptr && threads > 1 && chains > 1) {
    context.pool->parallel_for(chains, run_chain);
  } else {
    for (int ci = 0; ci < chains; ++ci) run_chain(ci);
  }

  // Reduce in chain order, strict improvement only: exact ties keep the
  // earliest chain, independent of which thread finished first.
  MappingResult best;
  std::size_t winner = 0;
  for (std::size_t ci = 0; ci < results.size(); ++ci) {
    best.stats.add_counters(results[ci].stats);
    if (ci > 0 && results[ci].best_time < results[winner].best_time) {
      winner = ci;
    }
  }
  best.candidate_for_abstract = std::move(results[winner].best);
  best.estimated_time = results[winner].best_time;
  best.stats.threads = threads;
  best.stats.wall_seconds = timer.seconds();
  return best;
}

// --- PortfolioMapper -------------------------------------------------------------

PortfolioMapper::PortfolioMapper(Options options) : options_(options) {
  support::require(options_.annealing_restarts >= 0,
                   "portfolio annealing restarts must be >= 0");
  support::require(options_.swap_refine_rounds >= 1,
                   "portfolio swap-refine rounds must be >= 1");
  support::require(options_.scale_threshold >= 0,
                   "portfolio scale threshold must be >= 0");
  support::require(options_.beam.width >= 1 && options_.beam.max_rounds >= 1 &&
                       options_.beam.locality.top_k >= 1,
                   "portfolio beam options out of range");
  support::require(options_.work_stealing.chains >= 1 &&
                       options_.work_stealing.chunk >= 1 &&
                       options_.work_stealing.locality.top_k >= 1,
                   "portfolio work-stealing options out of range");
}

MappingResult PortfolioMapper::select(const pmdl::ModelInstance& instance,
                                      std::span<const Candidate> candidates,
                                      int parent_candidate,
                                      const hnoc::NetworkModel& network,
                                      est::EstimateOptions options,
                                      const SearchContext& context) const {
  const WallTimer timer;
  HMPI_SPAN("mapper:portfolio");
  check(instance, candidates, parent_candidate, network);

  // Fixed member order: the reduction prefers earlier members on exact ties,
  // so this order is part of the determinism contract.
  const bool at_scale =
      static_cast<int>(candidates.size()) > options_.scale_threshold;
  std::vector<std::unique_ptr<Mapper>> members;
  if (at_scale) {
    // Large candidate sets: the serial members' O(p^2 n) neighbourhoods are
    // the bottleneck, so enroll the batch searches instead. These
    // parallelise *internally* (chunked batch scoring / chains), so they run
    // in sequence with the pool handed into each — never nested.
    members.push_back(std::make_unique<GreedyMapper>());
    members.push_back(std::make_unique<BeamMapper>(options_.beam));
    members.push_back(
        std::make_unique<WorkStealingAnnealingMapper>(options_.work_stealing));
  } else {
    members.push_back(std::make_unique<GreedyMapper>());
    members.push_back(
        std::make_unique<SwapRefineMapper>(options_.swap_refine_rounds));
    for (int r = 0; r < options_.annealing_restarts; ++r) {
      AnnealingOptions restart = options_.annealing;
      restart.seed = restart_seed(options_.annealing.seed, r);
      members.push_back(std::make_unique<AnnealingMapper>(restart));
    }
  }

  // Below the threshold each member is a serial algorithm and the pool races
  // the members against each other; at scale each member gets the full
  // context (pool included) and they run in sequence. Either way the members
  // share the context's estimate cache (greedy's start is every search's
  // start — instant hits) and the plan cache (one compile serves everyone).
  const SearchContext member_context{at_scale ? context.pool : nullptr,
                                     context.cache, context.plans,
                                     context.delta};
  std::vector<MappingResult> results(members.size());
  const auto run_member = [&](int m) {
    results[static_cast<std::size_t>(m)] =
        members[static_cast<std::size_t>(m)]->select(
            instance, candidates, parent_candidate, network, options,
            member_context);
  };

  const int threads = context_threads(context);
  if (!at_scale && context.pool != nullptr && threads > 1 &&
      members.size() > 1) {
    context.pool->parallel_for(static_cast<int>(members.size()), run_member);
  } else {
    for (std::size_t m = 0; m < members.size(); ++m) {
      run_member(static_cast<int>(m));
    }
  }

  // Every member ran to completion: reduce in member order, strict
  // improvement only, so the winner is thread-count independent.
  MappingResult best;
  std::size_t winner = 0;
  for (std::size_t m = 0; m < results.size(); ++m) {
    best.stats.add_counters(results[m].stats);
    if (m == 0 || results[m].estimated_time < results[winner].estimated_time) {
      winner = m;
    }
  }
  best.candidate_for_abstract =
      std::move(results[winner].candidate_for_abstract);
  best.estimated_time = results[winner].estimated_time;
  best.stats.threads = threads;
  best.stats.wall_seconds = timer.seconds();
  return best;
}

std::unique_ptr<Mapper> make_default_mapper() {
  return std::make_unique<SwapRefineMapper>();
}

}  // namespace hmpi::map
