#include "telemetry/metrics.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <ostream>

#include "telemetry/json.hpp"

namespace hmpi::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {}

void Histogram::observe(double v) {
  std::lock_guard lock(mutex_);
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - upper_bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

double Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = std::max(q * static_cast<double>(count), 1.0);
  long long cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const long long below = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = b == 0 ? min : upper_bounds[b - 1];
    const double upper = b < upper_bounds.size() ? upper_bounds[b] : max;
    const double fraction =
        (target - static_cast<double>(below)) / static_cast<double>(counts[b]);
    return std::clamp(lower + (upper - lower) * fraction, min, max);
  }
  return max;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::span<const double> default_seconds_buckets() {
  static constexpr std::array<double, 17> kBuckets = {
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
      3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0, 30.0, 100.0};
  return kBuckets;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_seconds_buckets();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          upper_bounds.begin(), upper_bounds.end())))
             .first;
  }
  return *it->second;
}

double MetricsRegistry::Snapshot::counter_value(std::string_view name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) return v;
  }
  return 0.0;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << json_quote(snap.counters[i].first) << ": "
       << json_number(snap.counters[i].second);
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << json_quote(snap.gauges[i].first) << ": "
       << json_number(snap.gauges[i].second);
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(name) << ": {"
       << "\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"min\": " << json_number(h.min)
       << ", \"max\": " << json_number(h.max)
       << ", \"p50\": " << json_number(h.percentile(0.50))
       << ", \"p95\": " << json_number(h.percentile(0.95))
       << ", \"p99\": " << json_number(h.percentile(0.99))
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"le\": "
         << (b < h.upper_bounds.size() ? json_number(h.upper_bounds[b])
                                       : std::string("null"))
         << ", \"count\": " << h.counts[b] << "}";
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace hmpi::telemetry
