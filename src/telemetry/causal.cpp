#include "telemetry/causal.hpp"

#include <cstdlib>
#include <string>

namespace hmpi::telemetry {

ProfMode resolve_prof_mode(ProfMode requested) {
  if (requested != ProfMode::kAuto) return requested;
  const char* value = std::getenv("HMPI_PROF");
  if (value == nullptr) return ProfMode::kRing;
  const std::string v(value);
  if (v == "0" || v == "off" || v == "false" || v == "no") return ProfMode::kOff;
  if (v == "1" || v == "on" || v == "true" || v == "yes" || v == "full") {
    return ProfMode::kFull;
  }
  if (v == "ring") return ProfMode::kRing;
  return ProfMode::kRing;
}

CausalLog::CausalLog(int ranks, ProfMode mode, std::size_t ring_capacity)
    : mode_(mode == ProfMode::kAuto ? ProfMode::kRing : mode),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {
  shards_.reserve(static_cast<std::size_t>(ranks > 0 ? ranks : 0));
  for (int r = 0; r < ranks; ++r) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void CausalLog::record(int rank, const CausalEvent& event) {
  if (mode_ == ProfMode::kOff) return;
  if (rank < 0 || rank >= ranks()) return;
  Shard& shard = *shards_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (mode_ == ProfMode::kFull || shard.events.size() < ring_capacity_) {
    shard.events.push_back(event);
    return;
  }
  shard.events[shard.head] = event;
  shard.head = (shard.head + 1) % ring_capacity_;
  ++shard.dropped;
}

std::vector<CausalEvent> CausalLog::events_of(int rank) const {
  std::vector<CausalEvent> out;
  if (rank < 0 || rank >= ranks()) return out;
  const Shard& shard = *shards_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  out.reserve(shard.events.size());
  // Rotate so the oldest surviving event comes first.
  for (std::size_t i = 0; i < shard.events.size(); ++i) {
    out.push_back(shard.events[(shard.head + i) % shard.events.size()]);
  }
  return out;
}

std::uint64_t CausalLog::dropped_of(int rank) const {
  if (rank < 0 || rank >= ranks()) return 0;
  const Shard& shard = *shards_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.dropped;
}

std::size_t CausalLog::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->events.size();
  }
  return total;
}

}  // namespace hmpi::telemetry
