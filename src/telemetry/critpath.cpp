#include "telemetry/critpath.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <tuple>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi::telemetry {

namespace {

bool on_path(const CausalEvent& e) {
  return e.kind != CausalEvent::Kind::kMark;
}

/// (sender rank, dst rank, sequence) -> position of the send event.
using SendIndex =
    std::map<std::tuple<int, int, std::uint64_t>, std::pair<int, std::size_t>>;

std::pair<std::string, std::string> resolve_coll(const CollNamer& namer,
                                                 int op, int algo) {
  if (namer) return namer(op, algo);
  return {"op" + std::to_string(op), "algo" + std::to_string(algo)};
}

}  // namespace

const char* path_segment_kind_name(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kCompute: return "compute";
    case PathSegment::Kind::kElapse: return "elapse";
    case PathSegment::Kind::kSendOverhead: return "send_overhead";
    case PathSegment::Kind::kTransfer: return "transfer";
    case PathSegment::Kind::kRecvOverhead: return "recv_overhead";
    case PathSegment::Kind::kGap: return "gap";
  }
  return "gap";
}

CriticalPathReport analyze_critical_path(const CausalLog& log) {
  CriticalPathReport report;

  std::vector<std::vector<CausalEvent>> events;
  events.reserve(static_cast<std::size_t>(log.ranks()));
  for (int r = 0; r < log.ranks(); ++r) {
    events.push_back(log.events_of(r));
    report.events_dropped += log.dropped_of(r);
  }

  // Index every send by its (sender, destination, sequence) identity so a
  // receive can find its matching send across shards.
  SendIndex sends;
  for (int r = 0; r < log.ranks(); ++r) {
    const auto& shard = events[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < shard.size(); ++i) {
      const CausalEvent& e = shard[i];
      if (e.kind == CausalEvent::Kind::kSend) {
        sends[{e.rank, e.peer, e.seq}] = {r, i};
      }
    }
  }

  // The path ends at the globally latest in-path event (smallest rank wins
  // ties, for determinism across engines).
  int end_rank = -1;
  std::size_t end_index = 0;
  for (int r = 0; r < log.ranks(); ++r) {
    const auto& shard = events[static_cast<std::size_t>(r)];
    for (std::size_t i = shard.size(); i-- > 0;) {
      if (!on_path(shard[i])) continue;
      if (end_rank < 0 || shard[i].t1 > report.makespan_s) {
        report.makespan_s = shard[i].t1;
        end_rank = r;
        end_index = i;
      }
      break;  // only the last in-path event per rank can end the path
    }
  }
  if (end_rank < 0) {
    // Nothing recorded: an empty world (trivially complete) or a disabled
    // log (nothing to say).
    report.complete = log.enabled();
    return report;
  }
  report.end_rank = end_rank;

  // Backward walk. `frontier` is the exclusive upper bound of the next
  // segment; it only ever decreases, so segments never overlap even if a
  // model produced arrival times inside the sender's overhead window.
  std::vector<PathSegment> backward;
  const auto add_segment = [&](PathSegment::Kind kind, const CausalEvent& e,
                               double t0, double t1) {
    if (t1 < t0) t1 = t0;
    PathSegment seg;
    seg.kind = kind;
    seg.rank = e.rank;
    seg.proc = e.proc;
    seg.peer_proc = e.peer_proc;
    seg.t0 = t0;
    seg.t1 = t1;
    seg.coll_op = e.coll_op;
    seg.coll_algo = e.coll_algo;
    backward.push_back(seg);
    const double dur = t1 - t0;
    switch (kind) {
      case PathSegment::Kind::kCompute:
      case PathSegment::Kind::kElapse:
        report.compute_s += dur;
        report.machine_s[seg.proc] += dur;
        break;
      case PathSegment::Kind::kSendOverhead:
        report.overhead_s += dur;
        report.link_s[{seg.proc, seg.peer_proc}] += dur;
        break;
      case PathSegment::Kind::kTransfer:
        report.transfer_s += dur;
        report.link_s[{seg.proc, seg.peer_proc}] += dur;
        break;
      case PathSegment::Kind::kRecvOverhead:
        report.overhead_s += dur;
        if (seg.peer_proc >= 0) {
          report.link_s[{seg.peer_proc, seg.proc}] += dur;
        }
        break;
      case PathSegment::Kind::kGap:
        report.gap_s += dur;
        break;
    }
    if (seg.coll_op >= 0 && kind != PathSegment::Kind::kGap) {
      report.coll_s[{seg.coll_op, seg.coll_algo}] += dur;
    }
  };

  int rank = end_rank;
  std::size_t index = end_index;
  double frontier = report.makespan_s;
  double start_time = frontier;
  bool complete = false;
  while (true) {
    const CausalEvent& e = events[static_cast<std::size_t>(rank)][index];

    if (e.kind == CausalEvent::Kind::kRecv && e.arrival > e.t0) {
      // The receiver was ready before the message arrived: the critical
      // dependency is the message itself. Cross to the matching send.
      const double matched = std::min(e.arrival, frontier);
      add_segment(PathSegment::Kind::kRecvOverhead, e, matched, frontier);
      const auto it = sends.find({e.peer, e.rank, e.seq});
      if (it == sends.end()) {
        start_time = matched;  // sender's history fell off the ring
        break;
      }
      const auto [send_rank, send_index] = it->second;
      const CausalEvent& send =
          events[static_cast<std::size_t>(send_rank)][send_index];
      const double send_end = std::min(send.t1, matched);
      add_segment(PathSegment::Kind::kTransfer, send, send_end, matched);
      rank = send_rank;
      index = send_index;
      frontier = send_end;
      continue;
    }

    PathSegment::Kind kind = PathSegment::Kind::kCompute;
    switch (e.kind) {
      case CausalEvent::Kind::kCompute: kind = PathSegment::Kind::kCompute; break;
      case CausalEvent::Kind::kElapse: kind = PathSegment::Kind::kElapse; break;
      case CausalEvent::Kind::kSend: kind = PathSegment::Kind::kSendOverhead; break;
      case CausalEvent::Kind::kRecv: kind = PathSegment::Kind::kRecvOverhead; break;
      case CausalEvent::Kind::kMark: break;  // unreachable: marks are skipped
    }
    const double lo = std::min(e.t0, frontier);
    add_segment(kind, e, lo, frontier);
    start_time = lo;
    if (lo == 0.0) {
      complete = true;
      break;
    }
    // Local program order: the previous in-path event ends exactly where
    // this one starts (the clock only moves inside recorded events).
    std::size_t prev = index;
    bool found = false;
    while (prev-- > 0) {
      const CausalEvent& cand = events[static_cast<std::size_t>(rank)][prev];
      if (!on_path(cand)) continue;
      if (cand.t1 == e.t0) {
        index = prev;
        frontier = lo;
        found = true;
      }
      break;  // contiguity broken (ring horizon): stop either way
    }
    if (!found) break;
  }

  report.complete = complete;
  report.path_s = report.makespan_s - start_time;
  if (!complete && start_time > 0.0) {
    CausalEvent gap;  // placeholder identity for the unattributed prefix
    gap.rank = -1;
    gap.proc = -1;
    gap.peer_proc = -1;
    gap.coll_op = -1;
    add_segment(PathSegment::Kind::kGap, gap, 0.0, start_time);
  }

  report.segments.assign(backward.rbegin(), backward.rend());
  return report;
}

void write_critpath_json(std::ostream& os, const CriticalPathReport& report,
                         const CollNamer& namer) {
  os << "{\n  \"critical_path\": {\n";
  os << "    \"complete\": " << (report.complete ? "true" : "false") << ",\n";
  os << "    \"makespan_s\": " << json_number(report.makespan_s) << ",\n";
  os << "    \"path_s\": " << json_number(report.path_s) << ",\n";
  os << "    \"compute_s\": " << json_number(report.compute_s) << ",\n";
  os << "    \"transfer_s\": " << json_number(report.transfer_s) << ",\n";
  os << "    \"overhead_s\": " << json_number(report.overhead_s) << ",\n";
  os << "    \"gap_s\": " << json_number(report.gap_s) << ",\n";
  os << "    \"end_rank\": " << report.end_rank << ",\n";
  os << "    \"events_dropped\": " << report.events_dropped << ",\n";

  os << "    \"machines\": [";
  bool first = true;
  for (const auto& [proc, seconds] : report.machine_s) {
    os << (first ? "" : ", ") << "{\"processor\": " << proc
       << ", \"seconds\": " << json_number(seconds) << "}";
    first = false;
  }
  os << "],\n";

  os << "    \"links\": [";
  first = true;
  for (const auto& [link, seconds] : report.link_s) {
    os << (first ? "" : ", ") << "{\"src\": " << link.first
       << ", \"dst\": " << link.second
       << ", \"seconds\": " << json_number(seconds) << "}";
    first = false;
  }
  os << "],\n";

  os << "    \"collectives\": [";
  first = true;
  for (const auto& [key, seconds] : report.coll_s) {
    const auto [op, algo] = resolve_coll(namer, key.first, key.second);
    os << (first ? "" : ", ") << "{\"op\": " << json_quote(op)
       << ", \"algo\": " << json_quote(algo)
       << ", \"seconds\": " << json_number(seconds) << "}";
    first = false;
  }
  os << "],\n";

  os << "    \"segments\": [";
  for (std::size_t i = 0; i < report.segments.size(); ++i) {
    const PathSegment& seg = report.segments[i];
    os << (i == 0 ? "\n" : ",\n") << "      {\"kind\": \""
       << path_segment_kind_name(seg.kind) << "\", \"rank\": " << seg.rank
       << ", \"processor\": " << seg.proc << ", \"peer\": " << seg.peer_proc
       << ", \"start_s\": " << json_number(seg.t0)
       << ", \"end_s\": " << json_number(seg.t1);
    if (seg.coll_op >= 0) {
      const auto [op, algo] = resolve_coll(namer, seg.coll_op, seg.coll_algo);
      os << ", \"op\": " << json_quote(op) << ", \"algo\": " << json_quote(algo);
    }
    os << "}";
  }
  os << (report.segments.empty() ? "" : "\n    ") << "]\n";
  os << "  }\n}\n";
}

void report_to_metrics(const CriticalPathReport& report,
                       MetricsRegistry& registry, const CollNamer& namer) {
  registry.gauge("crit.path_seconds").set(report.path_s);
  registry.gauge("crit.makespan_seconds").set(report.makespan_s);
  registry.gauge("crit.compute_seconds").set(report.compute_s);
  registry.gauge("crit.transfer_seconds").set(report.transfer_s);
  registry.gauge("crit.overhead_seconds").set(report.overhead_s);
  registry.gauge("crit.gap_seconds").set(report.gap_s);
  registry.gauge("crit.segments").set(static_cast<double>(report.segments.size()));
  registry.gauge("crit.complete").set(report.complete ? 1.0 : 0.0);
  registry.gauge("crit.events_dropped")
      .set(static_cast<double>(report.events_dropped));
  for (const auto& [proc, seconds] : report.machine_s) {
    registry.gauge("crit.machine." + std::to_string(proc) + ".seconds")
        .set(seconds);
  }
  for (const auto& [link, seconds] : report.link_s) {
    registry
        .gauge("crit.link." + std::to_string(link.first) + "." +
               std::to_string(link.second) + ".seconds")
        .set(seconds);
  }
  for (const auto& [key, seconds] : report.coll_s) {
    const auto [op, algo] = resolve_coll(namer, key.first, key.second);
    registry.gauge("crit.coll." + op + "." + algo + ".seconds").set(seconds);
  }
}

std::vector<ChromeEvent> causal_flow_events(const CausalLog& log) {
  std::vector<ChromeEvent> flows;
  SendIndex sends;
  std::vector<std::vector<CausalEvent>> events;
  events.reserve(static_cast<std::size_t>(log.ranks()));
  for (int r = 0; r < log.ranks(); ++r) {
    events.push_back(log.events_of(r));
    const auto& shard = events.back();
    for (std::size_t i = 0; i < shard.size(); ++i) {
      if (shard[i].kind == CausalEvent::Kind::kSend) {
        sends[{shard[i].rank, shard[i].peer, shard[i].seq}] = {r, i};
      }
    }
  }
  std::uint64_t next_id = 1;
  for (int r = 0; r < log.ranks(); ++r) {
    for (const CausalEvent& e : events[static_cast<std::size_t>(r)]) {
      if (e.kind != CausalEvent::Kind::kRecv) continue;
      const auto it = sends.find({e.peer, e.rank, e.seq});
      if (it == sends.end()) continue;
      const CausalEvent& send =
          events[static_cast<std::size_t>(it->second.first)][it->second.second];
      const std::uint64_t id = next_id++;
      ChromeEvent start;
      start.name = "msg";
      start.cat = "hmpi.flow";
      start.ph = 's';
      start.ts_us = send.t0 * 1e6;
      start.pid = kVirtualPid;
      start.tid = send.rank;
      start.flow_id = id;
      flows.push_back(std::move(start));
      ChromeEvent finish;
      finish.name = "msg";
      finish.cat = "hmpi.flow";
      finish.ph = 'f';
      finish.ts_us = e.t1 * 1e6;
      finish.pid = kVirtualPid;
      finish.tid = e.rank;
      finish.flow_id = id;
      flows.push_back(std::move(finish));
    }
  }
  return flows;
}

}  // namespace hmpi::telemetry
