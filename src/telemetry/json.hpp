// Minimal JSON support for the telemetry layer.
//
// The telemetry exporters (metrics dump, Chrome trace, prediction ledger,
// BENCH_*.json) emit JSON by hand; this header supplies the two encoding
// helpers they share (json_quote / json_number) plus a small recursive
// descent parser used by tests and tools/telemetry_check to validate that
// the emitted files really are well-formed and carry the promised shape.
// It is deliberately not a general-purpose JSON library: no comments, no
// trailing commas, documents limited to a sane nesting depth.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hmpi::telemetry {

/// Encodes `s` as a JSON string literal, quotes included.
std::string json_quote(std::string_view s);

/// Encodes a finite double as a JSON number: integral values print without a
/// decimal point, everything else with enough digits to round-trip.
/// Non-finite values (which JSON cannot represent) encode as `null`.
std::string json_number(double v);

/// One parsed JSON value (a small DOM). Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_number() const noexcept { return type == Type::kNumber; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_object() const noexcept { return type == Type::kObject; }

  /// First member with key `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document (surrounding whitespace allowed; trailing
/// garbage rejected). Returns nullopt and fills `*error` (when non-null) with
/// a position-annotated message on malformed input.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace hmpi::telemetry
