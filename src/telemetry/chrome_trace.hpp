// Chrome `trace_event` JSON export (loads in Perfetto / chrome://tracing).
//
// Two timelines share one file, separated by pid: the simulator's virtual
// clock (pid kVirtualPid — TraceEvents from mp::Tracer, ts in virtual
// microseconds) and the runtime's wall clock (pid kRuntimePid — telemetry
// spans, ts in microseconds since the process epoch). Mapper searches cost
// wall time but zero virtual time, so folding both onto one clock would
// collapse every search span to a sliver; Perfetto renders the two process
// groups side by side instead. Within each (pid, tid) track the writer
// guarantees non-decreasing ts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/span.hpp"

namespace hmpi::telemetry {

inline constexpr int kVirtualPid = 1;  ///< mpsim events, virtual time.
inline constexpr int kRuntimePid = 2;  ///< telemetry spans, wall time.

/// One event in Chrome trace format. ph 'X' = complete (ts + dur),
/// 'i' = instant, 'M' = metadata, 's'/'f' = flow start/finish (message
/// arrows between tracks; `flow_id` pairs the two ends).
struct ChromeEvent {
  std::string name;
  std::string cat = "hmpi";
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = kVirtualPid;
  int tid = 0;
  std::uint64_t flow_id = 0;  ///< Written as "id" for flow phases only.
  /// Values are raw JSON fragments (already encoded).
  std::vector<std::pair<std::string, std::string>> args;

  ChromeEvent& arg(std::string_view key, double value);
  ChromeEvent& arg(std::string_view key, std::string_view value);
  ChromeEvent& arg_raw(std::string_view key, std::string value);
};

/// Converts finished spans to 'X' events on kRuntimePid (tid = span track).
/// Span ids, parents, and virtual timestamps ride along as args.
std::vector<ChromeEvent> spans_to_chrome(std::span<const SpanRecord> records);

/// Writes `{"traceEvents": [...]}`. Events are stably sorted by
/// (pid, tid, ts) so each track is monotonic, and a process_name metadata
/// record is prepended per pid.
void write_chrome_trace(std::ostream& os, std::vector<ChromeEvent> events);

}  // namespace hmpi::telemetry
